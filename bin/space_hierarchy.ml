(* Command-line driver: reproduce Table 1, run individual protocols, model
   check them, and run the lower-bound adversaries. *)

open Cmdliner

let ells_arg =
  let doc = "Buffer capacities to instantiate the ℓ-buffer rows at." in
  Arg.(value & opt (list int) [ 1; 2; 3 ] & info [ "ells" ] ~docv:"L1,L2,…" ~doc)

let ns_arg =
  let doc = "Process counts to measure at." in
  Arg.(value & opt (list int) [ 2; 3; 5; 8; 12 ] & info [ "ns" ] ~docv:"N1,N2,…" ~doc)

let table_cmd =
  let run ells ns csv =
    print_string
      (if csv then Hierarchy.render_csv ~ells ~ns () else Hierarchy.render ~ells ~ns ())
  in
  let csv_arg =
    let doc = "Emit machine-readable CSV instead of the aligned table." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Reproduce Table 1: paper bounds vs measured locations.")
    Term.(const run $ ells_arg $ ns_arg $ csv_arg)

let row_arg =
  let doc = "Row identifier (see `table`); e.g. swap, max-register, buffer-2." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ROW" ~doc)

let n_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random-scheduler seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let with_row ells id f =
  match Hierarchy.find ~ells id with
  | None -> `Error (false, Printf.sprintf "unknown row %S (try `table`)" id)
  | Some row -> f row

let run_cmd =
  let run ells id n seed prefix =
    with_row ells id (fun row ->
        match Hierarchy.measure ~seed ~prefix row ~n with
        | Error e -> `Error (false, e)
        | Ok m ->
          Printf.printf
            "%s  n=%d  decided=%d  locations=%d (allocated %s)  steps=%d\n"
            row.iset m.n m.decision m.measured
            (match m.allocated with None -> "unbounded" | Some a -> string_of_int a)
            m.steps;
          `Ok ())
  in
  let prefix_arg =
    let doc = "Adversarial random steps before the sequential finish." in
    Arg.(value & opt int 200 & info [ "prefix" ] ~docv:"STEPS" ~doc)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one row's consensus protocol under an adversarial schedule.")
    Term.(ret (const run $ ells_arg $ row_arg $ n_arg $ seed_arg $ prefix_arg))

let modelcheck_cmd =
  let run ells id n depth everywhere engine domains trace no_shrink reduce force timeout
      observe crashes =
    with_row ells id (fun row ->
        let inputs =
          if row.binary_only then Array.init n (fun i -> i land 1)
          else Array.init n (fun i -> i mod n)
        in
        let probe = if everywhere then `Everywhere else `Leaves in
        let engine =
          match engine with
          | "naive" -> Ok `Naive
          | "memo" -> Ok `Memo
          | "parallel" -> Ok (`Parallel domains)
          | e -> Error (Printf.sprintf "unknown engine %S (naive|memo|parallel)" e)
        in
        let reduce =
          match reduce with
          | "none" -> Ok Explore.no_reduction
          | "commute" -> Ok { Explore.commute = true; symmetric = false }
          | "symmetric" -> Ok { Explore.commute = false; symmetric = true }
          | "full" -> Ok Explore.full_reduction
          | r -> Error (Printf.sprintf "unknown reduction %S (none|commute|symmetric|full)" r)
        in
        let notify_symmetry verdict =
          Format.printf "symmetry certificate: %a%s@." Analysis.Symmetry.pp_verdict
            verdict
            (if force && not (Analysis.Symmetry.certified verdict) then
               " — proceeding anyway (--force; reduction may be unsound)"
             else "")
        in
        match (engine, reduce, Observer.of_names observe) with
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
        | _ when crashes < 0 -> `Error (false, "--crashes must be non-negative")
        | Ok engine, Ok reduce, Ok observers ->
          (match
             Explore.run ~probe ~engine ~shrink:(not no_shrink) ~reduce ~crashes ~force
               ~observers ~notify_symmetry ?deadline:timeout row.protocol ~inputs ~depth
           with
           | exception Explore.Observer_unsafe_reduction { observer; reduction } ->
             `Error
               ( false,
                 Printf.sprintf
                   "observer %s is not sound under the %s reduction — drop the \
                    reduction or the observer (or --force to run anyway, at your own \
                    risk)"
                   observer reduction )
           | exception Explore.Uncertified_symmetry { protocol; verdict } ->
             `Error
               ( false,
                 Format.asprintf
                   "symmetric reduction refused for %s: %a@.(use --force to run the \
                    reduction anyway, at your own risk)"
                   protocol Analysis.Symmetry.pp_verdict verdict )
           | Explore.Completed s ->
             Printf.printf
               "%s: OK%s — %d configurations, %d probes, %d dedup hits, %d sleep-pruned, \
                %.3f s%s\n"
               row.iset
               (if crashes > 0 then
                  Printf.sprintf " under every placement of <= %d crash(es)" crashes
                else "")
               s.Explore.configs s.Explore.probes s.Explore.dedup_hits
               s.Explore.sleep_pruned s.Explore.elapsed
               (if s.Explore.truncated then Printf.sprintf " (truncated at depth %d)" depth
                else "");
             `Ok ()
           | Explore.Timed_out t ->
             `Error
               ( false,
                 Printf.sprintf
                   "%s: TIMEOUT — wall-clock budget of %.3gs expired after %d \
                    configurations and %d probes (%.3f s); raise --timeout or lower \
                    --depth"
                   row.iset t.Explore.deadline t.Explore.partial.Explore.configs
                   t.Explore.partial.Explore.probes t.Explore.partial.Explore.elapsed )
           | Explore.Falsified f ->
             let w = f.Explore.witness in
             let b = Buffer.create 256 in
             Buffer.add_string b ("violation: " ^ w.Explore.message ^ "\n");
             Buffer.add_string b
               (Printf.sprintf "  kind: %s\n" (Explore.kind_name w.Explore.kind));
             let orig = List.length f.Explore.original.Explore.schedule in
             let now = List.length w.Explore.schedule in
             Buffer.add_string b
               (Printf.sprintf "  schedule (%d step%s%s): [%s]%s\n" now
                  (if now = 1 then "" else "s")
                  (if now < orig then Printf.sprintf ", shrunk from %d" orig else "")
                  (String.concat "; "
                     (List.map Explore.pp_schedule_entry w.Explore.schedule))
                  (match w.Explore.probe with
                   | Some p -> Printf.sprintf " then p%d solo" p
                   | None -> ""));
             Buffer.add_string b
               (Printf.sprintf "  replay reproduces: %b\n" f.Explore.reproduced);
             if trace then begin
               match f.Explore.trace with
               | Some t ->
                 Buffer.add_string b "  event trace of the replay:\n";
                 String.split_on_char '\n' t
                 |> List.iter (fun line ->
                        if line <> "" then Buffer.add_string b ("  " ^ line ^ "\n"))
               | None -> Buffer.add_string b "  (no trace: replay did not reproduce)\n"
             end;
             `Error (false, String.trim (Buffer.contents b))))
  in
  let depth_arg =
    let doc = "Exhaustive exploration depth (all schedules)." in
    Arg.(value & opt int 10 & info [ "depth" ] ~docv:"D" ~doc)
  in
  let everywhere_arg =
    let doc = "Probe obstruction-freedom at every configuration (slower)." in
    Arg.(value & flag & info [ "everywhere" ] ~doc)
  in
  let engine_arg =
    let doc = "Exploration engine: naive, memo, or parallel." in
    Arg.(value & opt string "memo" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains for --engine=parallel." in
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let trace_arg =
    let doc = "On a violation, print the replayed event trace of the witness." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let no_shrink_arg =
    let doc = "Report the witness exactly as found, without delta-debugging it." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let reduce_arg =
    let doc =
      "State-space reduction: none, commute (sleep-set commutativity, sound for every \
       protocol), symmetric (process-symmetry fingerprints, sound only for \
       pid-symmetric protocols), or full (both).  Symmetric reduction is gated on the \
       pid-symmetry certifier (see the lint command): the run prints the certificate \
       verdict and refuses uncertified protocols unless --force is given."
    in
    Arg.(value & opt string "none" & info [ "reduce" ] ~docv:"REDUCTION" ~doc)
  in
  let force_arg =
    let doc =
      "Run a symmetric reduction even when the certifier does not certify the protocol \
       pid-symmetric.  The exploration may then conflate configurations the protocol \
       distinguishes and miss violations — use only to experiment with what the \
       (unsound) reduction would prune."
    in
    Arg.(value & flag & info [ "force" ] ~doc)
  in
  let timeout_arg =
    let doc =
      "Wall-clock budget in seconds; an expired run exits non-zero reporting the \
       partial statistics instead of exploring unbounded."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let observe_arg =
    let doc =
      "Check these observers instead of the built-in agreement/validity/termination \
       checks: agreement, validity, solo-termination, lockout, maxreg-monotonic, \
       recoverable-agreement, recoverable-validity, or `default' (the first three).  \
       Observers marked unsafe under the chosen --reduce refuse to run unless --force \
       is given."
    in
    Arg.(value & opt (list string) [] & info [ "observe" ] ~docv:"OBS1,…" ~doc)
  in
  let crashes_arg =
    let doc =
      "Crash budget for exhaustive crash-point enumeration (Golab's crash-recovery \
       model): every placement of at most this many crash-recover transitions is \
       explored — a crashed process loses its program state, keeps shared memory, and \
       restarts from the protocol root.  Crash entries render as †pN in witness \
       schedules and CRASH events in --trace.  0 (the default) is the historical \
       crash-free check, bit-identical to a build without the crash subsystem.  The \
       recovery rows (rc-tas-naive, rc-cas) exist to be checked under this flag."
    in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"BUDGET" ~doc)
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:"Exhaustively explore all schedules of a row's protocol up to a depth.")
    Term.(
      ret
        (const run $ ells_arg $ row_arg $ n_arg $ depth_arg $ everywhere_arg $ engine_arg
       $ domains_arg $ trace_arg $ no_shrink_arg $ reduce_arg $ force_arg $ timeout_arg
       $ observe_arg $ crashes_arg))

let lint_cmd =
  let run ells ns ids strict json cfg selftest mutants recovery =
    let findings =
      if selftest then Ok (Analysis.Lint.selftest ())
      else if mutants then
        Ok
          (List.concat_map
             (fun (m : Analysis.Mutants.iset_mutant) -> Analysis.Lint.lint_iset m.iset)
             Analysis.Mutants.iset_mutants
          @ List.concat_map
              (fun (m : Analysis.Mutants.proto_mutant) ->
                Analysis.Lint.lint_protocol ~cfg ~ns m.proto)
              Analysis.Mutants.proto_mutants)
      else
        match Analysis.Lint.run ~ells ~recovery ~ns ~cfg ~ids () with
        | fs -> Ok fs
        | exception Invalid_argument msg -> Error msg
    in
    match findings with
    | Error msg -> `Error (false, msg)
    | Ok findings ->
      let errors = Analysis.Report.errors findings in
      let warnings = Analysis.Report.warnings findings in
      if json then print_endline (Analysis.Report.json_of_findings findings)
      else begin
        List.iter (fun f -> Format.printf "%a@." Analysis.Report.pp_finding f) findings;
        Printf.printf "%d finding%s: %d error%s, %d warning%s\n" (List.length findings)
          (if List.length findings = 1 then "" else "s")
          errors
          (if errors = 1 then "" else "s")
          warnings
          (if warnings = 1 then "" else "s")
      end;
      if strict && errors > 0 then
        `Error (false, Printf.sprintf "lint --strict: %d error finding(s)" errors)
      else `Ok ()
  in
  let lint_ns_arg =
    let doc = "Process counts to certify and space-check protocols at." in
    Arg.(value & opt (list int) [ 2; 3 ] & info [ "ns" ] ~docv:"N1,N2,…" ~doc)
  in
  let rows_arg =
    let doc = "Rows to lint (default: all registered rows); e.g. cas max-register." in
    Arg.(value & pos_all string [] & info [] ~docv:"ROW…" ~doc)
  in
  let strict_arg =
    let doc = "Exit non-zero if any Error-severity finding is reported." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the findings as a JSON array instead of aligned text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let cfg_arg =
    let doc =
      "Layer the CFG/abstract-interpretation passes on top of the classic evidence \
       tiers: certified whole-program footprint bounds, dead-branch detection and \
       decision-reachability (see also the analyze command)."
    in
    Arg.(value & flag & info [ "cfg" ] ~doc)
  in
  let selftest_arg =
    let doc =
      "Lint the mutant regression corpus and check every deliberately broken \
       instruction set and protocol trips its expected rule; an escaped mutant is an \
       Error."
    in
    Arg.(value & flag & info [ "selftest" ] ~doc)
  in
  let mutants_arg =
    let doc =
      "Lint the mutant corpus as if it were real code (expected to fail --strict) — \
       demonstrates what each rule's report looks like."
    in
    Arg.(value & flag & info [ "mutants" ] ~doc)
  in
  let recovery_arg =
    let doc =
      "Also lint the crash-recovery rows (rc- prefix).  Each gets the \
       crash-symmetry rule: symmetry certificates cover crash-free executions only, \
       so the pid-symmetric reduction must not be combined with a positive \
       --crashes budget on these rows."
    in
    Arg.(value & flag & info [ "recovery" ] ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse instruction sets and protocols: property-check each \
          iset's declared commutativity/triviality/hashing contracts, certify each \
          protocol pid-symmetric (or not) by symbolic unfolding, and check declared \
          Table-1 space claims against concrete, exhaustive and symbolic footprints.")
    Term.(
      ret
        (const run $ ells_arg $ lint_ns_arg $ rows_arg $ strict_arg $ json_arg $ cfg_arg
       $ selftest_arg $ mutants_arg $ recovery_arg))

let analyze_cmd =
  let run ells ns ids json strict =
    let rows = Hierarchy.rows ~ells () in
    let bad =
      List.filter
        (fun id -> not (List.exists (fun (r : Hierarchy.row) -> r.id = id) rows))
        ids
    in
    if bad <> [] then
      `Error
        (false, Printf.sprintf "unknown row id(s): %s" (String.concat ", " bad))
    else begin
      let rows =
        if ids = [] then rows
        else List.filter (fun (r : Hierarchy.row) -> List.mem r.id ids) rows
      in
      let failures = ref 0 in
      let entries =
        List.concat_map
          (fun (row : Hierarchy.row) ->
            List.map
              (fun n ->
                let (module P : Consensus.Proto.S) = row.protocol in
                let a = Analysis.Absint.analyze (module P : Consensus.Proto.S) ~n in
                let verdict =
                  Analysis.Symmetry.certify (module P : Consensus.Proto.S) ~n
                in
                (match verdict with
                 | Analysis.Symmetry.Unknown _ -> incr failures
                 | _ -> ());
                let findings =
                  Analysis.Absint.lint_findings ?declared:(P.locations ~n) a
                in
                if Analysis.Report.errors findings > 0 then incr failures;
                (row, n, a, verdict, findings))
              ns)
          rows
      in
      if json then begin
        let open Campaign.Json in
        let ints xs = List (List.map (fun i -> Int i) xs) in
        print_endline
          (to_string_pretty
             (List
                (List.map
                   (fun ((row : Hierarchy.row), n, (a : Analysis.Absint.t), verdict,
                         findings) ->
                     Obj
                       [
                         ("row", String row.id);
                         ("protocol", String a.Analysis.Absint.name);
                         ("n", Int n);
                         ("nodes", Int a.Analysis.Absint.nodes);
                         ("edges", Int a.Analysis.Absint.edges);
                         ("retro_edges", Int a.Analysis.Absint.retro_edges);
                         ("sig_depth", Int a.Analysis.Absint.sig_depth);
                         ("work", Int a.Analysis.Absint.work);
                         ( "truncated",
                           match a.Analysis.Absint.truncated with
                           | None -> Null
                           | Some r -> String r );
                         ("converged", Bool a.Analysis.Absint.converged);
                         ("complete", Bool a.Analysis.Absint.complete);
                         ("footprint_all", ints a.Analysis.Absint.footprint_all);
                         ("footprint_feasible", ints a.Analysis.Absint.footprint_feasible);
                         ("dead_nodes", Int a.Analysis.Absint.dead_nodes);
                         ("undecided_nodes", Int a.Analysis.Absint.undecided_nodes);
                         ("decisions", ints a.Analysis.Absint.decisions);
                         ( "ops",
                           List
                             (List.map (fun s -> String s) a.Analysis.Absint.ops) );
                         ( "symmetry",
                           String
                             (match verdict with
                              | Analysis.Symmetry.Certified_symmetric _ -> "certified"
                              | Analysis.Symmetry.Asymmetric _ -> "asymmetric"
                              | Analysis.Symmetry.Unknown _ -> "unknown") );
                         ( "symmetry_detail",
                           String
                             (Format.asprintf "%a" Analysis.Symmetry.pp_verdict verdict)
                         );
                         ( "findings",
                           List
                             (List.map
                                (fun (f : Analysis.Report.finding) ->
                                  Obj
                                    [
                                      ( "severity",
                                        String
                                          (Analysis.Report.severity_name f.severity) );
                                      ("rule", String f.rule);
                                      ("detail", String f.detail);
                                    ])
                                findings) );
                       ])
                   entries)))
      end
      else
        List.iter
          (fun ((row : Hierarchy.row), n, (a : Analysis.Absint.t), verdict, findings) ->
            Printf.printf
              "%-28s n=%d  %4d nodes  %4d edges  %2d back-edges  %s  footprint %d (%s)%s\n"
              row.id n a.Analysis.Absint.nodes a.Analysis.Absint.edges
              a.Analysis.Absint.retro_edges
              (if a.Analysis.Absint.complete then "certified"
               else
                 Printf.sprintf "partial (%s)"
                   (match a.Analysis.Absint.truncated with
                    | Some r -> r
                    | None ->
                      if not a.Analysis.Absint.converged then "no fixpoint"
                      else "value closure unbounded"))
              (List.length a.Analysis.Absint.footprint_feasible)
              (String.concat "," (List.map string_of_int a.Analysis.Absint.footprint_feasible))
              (if a.Analysis.Absint.dead_nodes > 0 then
                 Printf.sprintf "  %d dead" a.Analysis.Absint.dead_nodes
               else "");
            Format.printf "  symmetry: %a@." Analysis.Symmetry.pp_verdict verdict;
            List.iter
              (fun f -> Format.printf "  %a@." Analysis.Report.pp_finding f)
              findings)
          entries;
      if strict && !failures > 0 then
        `Error
          ( false,
            Printf.sprintf
              "analyze --strict: %d row(s) with Unknown symmetry or Error findings"
              !failures )
      else `Ok ()
    end
  in
  let analyze_ns_arg =
    let doc = "Process counts to analyze at." in
    Arg.(value & opt (list int) [ 2; 3 ] & info [ "ns" ] ~docv:"N1,N2,…" ~doc)
  in
  let rows_arg =
    let doc = "Rows to analyze (default: all registered rows)." in
    Arg.(value & pos_all string [] & info [] ~docv:"ROW…" ~doc)
  in
  let json_arg =
    let doc = "Emit the per-row summaries as a JSON array." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc =
      "Exit non-zero if any row's symmetry verdict is Unknown or any CFG finding is \
       an Error."
    in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Extract each row's control-flow graph by symbolic unfolding with node \
          hashing (retry loops become back-edges) and run the abstract-interpretation \
          passes over it: certified whole-program footprint bounds, dead-branch and \
          decision-reachability detection, issued-op summaries and the CFG \
          pid-symmetry certificate.")
    Term.(
      ret (const run $ ells_arg $ analyze_ns_arg $ rows_arg $ json_arg $ strict_arg))

let growth_cmd =
  let run rounds n =
    let inputs = Array.init (Stdlib.max 3 n) (fun i -> i land 1) in
    match
      Lowerbound.Growth.run
        (Consensus.Tracks_protocol.protocol_typed ~flavour:Isets.Bits.Tas_only)
        ~rounds ~inputs
    with
    | Ok progress ->
      print_endline "Lemma 9.1 adversary vs the test-and-set tracks protocol:";
      List.iter
        (fun (p : Lowerbound.Growth.progress) ->
          Printf.printf "  round %2d: %d locations set, %d touched\n" p.round p.ones
            p.touched)
        progress;
      `Ok ()
    | Error e -> `Error (false, e)
  in
  let rounds_arg =
    let doc = "Adversary rounds (each sets at least one fresh location)." in
    Arg.(value & opt int 8 & info [ "rounds" ] ~docv:"R" ~doc)
  in
  Cmd.v
    (Cmd.info "growth"
       ~doc:
         "Run the Lemma 9.1 adversary: drive a read/test-and-set protocol to \
          use ever more locations.")
    Term.(ret (const run $ rounds_arg $ n_arg))

let adversary_cmd =
  let run which =
    match which with
    | "maxreg" ->
      (match Lowerbound.Interleave.run Lowerbound.Victims.naive_maxreg ~n:2 with
       | Lowerbound.Interleave.Agreement_violated { p_decision; q_decision; steps; _ } ->
         Printf.printf
           "Theorem 4.1 adversary vs a single-max-register protocol:\n\
           \  interleaved both solo runs in %d steps; decisions %d and %d — \
            agreement violated.\n"
           steps p_decision q_decision;
         `Ok ()
       | Protocol_error e -> `Error (false, e))
    | "fai" ->
      (match Lowerbound.Fai_adversary.run Lowerbound.Victims.naive_fai ~n:2 with
       | Lowerbound.Fai_adversary.Agreement_violated { p_decision; q_decision; _ } ->
         Printf.printf
           "Theorem 5.1 adversary vs a single read/write/fetch-and-increment \
            location:\n\
           \  decisions %d and %d — agreement violated.\n"
           p_decision q_decision;
         `Ok ()
       | Protocol_error e -> `Error (false, e))
    | other -> `Error (false, Printf.sprintf "unknown adversary %S (maxreg|fai)" other)
  in
  let which_arg =
    let doc = "Which impossibility proof to execute: maxreg (Thm 4.1) or fai (Thm 5.1)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WHICH" ~doc)
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Execute an impossibility proof's adversary against a candidate protocol.")
    Term.(ret (const run $ which_arg))

let witness_cmd =
  let run ells id n depth =
    with_row ells id (fun row ->
        let inputs = Array.init n (fun i -> i mod n) in
        match Lowerbound.Covering_witness.witness ~search_depth:depth row.protocol ~inputs with
        | Ok (r : Lowerbound.Covering_witness.report) ->
          Printf.printf
            "Lemma 6.5 on %s (n=%d):\n\
            \  bivalent pair Q = {p%d, p%d} after %d setup steps\n\
            \  coverers R = [%s] covering L = [%s]\n\
            \  a %d-step Q-only execution leaves Q covering fresh location %d\n\
            \  bivalent after the block write to L: %b\n"
            row.iset n (fst r.bivalent_pair) (snd r.bivalent_pair) r.setup_steps
            (String.concat "," (List.map string_of_int r.coverers))
            (String.concat "," (List.map string_of_int r.covered))
            r.xi_steps r.fresh_location r.still_bivalent_after_block_write;
          `Ok ()
        | Error e -> `Error (false, e))
  in
  let depth_arg =
    let doc = "Search depth for the bivalence and ξ searches." in
    Arg.(value & opt int 8 & info [ "depth" ] ~docv:"D" ~doc)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:
         "Exhibit the Lemma 6.5 covering step concretely on a row's protocol \
          (bivalent pair, coverers, block write, fresh location).")
    Term.(ret (const run $ ells_arg $ row_arg $ n_arg $ depth_arg))

let synth_cmd =
  let run machine depth =
    let show (type c) (m : c Synth.machine) =
      match Synth.search m ~depth with
      | Synth.Found p ->
        assert (Synth.check m p);
        Printf.printf "%s: FOUND a wait-free 2-process protocol at depth %d\n" m.name
          depth;
        Format.printf "  p0 input 0: @[%a@]@." (Synth.pp_tree ~ops:m.ops) p.t00;
        Format.printf "  p0 input 1: @[%a@]@." (Synth.pp_tree ~ops:m.ops) p.t01;
        Format.printf "  p1 input 0: @[%a@]@." (Synth.pp_tree ~ops:m.ops) p.t10;
        Format.printf "  p1 input 1: @[%a@]@." (Synth.pp_tree ~ops:m.ops) p.t11;
        `Ok ()
      | Synth.Impossible_within_depth ->
        Printf.printf
          "%s: no 2-process binary consensus protocol exists with at most %d \
           instructions per process (exhaustive search)\n"
          m.name depth;
        `Ok ()
    in
    match machine with
    | "cas" -> show Synth.cas_cell
    | "swap" -> show Synth.swap_cell
    | "tas" -> show Synth.tas_bit
    | "rw01" -> show Synth.rw01_bit
    | other -> `Error (false, Printf.sprintf "unknown machine %S (cas|swap|tas|rw01)" other)
  in
  let machine_arg =
    let doc = "One-location machine to synthesise over: cas, swap, tas or rw01." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc)
  in
  let depth_arg =
    let doc = "Maximum instructions per process (3 is expensive for rw01)." in
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"D" ~doc)
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Exhaustively synthesise (or refute) a wait-free 2-process binary \
          consensus protocol on a one-location machine.")
    Term.(ret (const run $ machine_arg $ depth_arg))

let campaign_cmd =
  let build_spec rows exclude ells ns depths engines reduces timeout solo_fuel observe
      crashes stress_seeds stress_prefix stress_burst smoke =
    let base = if smoke then Campaign.Spec.smoke else Campaign.Spec.default in
    let ( |? ) opt default = Option.value opt ~default in
    let parse_all f l =
      List.fold_right
        (fun x acc ->
          match (f x, acc) with
          | Ok v, Ok acc -> Ok (v :: acc)
          | (Error _ as e), _ | _, (Error _ as e) -> e)
        l (Ok [])
    in
    let engines =
      match engines with
      | None -> Ok base.Campaign.Spec.engines
      | Some es -> parse_all Campaign.Spec.engine_of_string es
    in
    let reduces =
      match reduces with
      | None -> Ok base.Campaign.Spec.reduces
      | Some rs -> parse_all Campaign.Spec.reduction_of_string rs
    in
    match (engines, reduces) with
    | Error e, _ | _, Error e -> Error e
    | _ when crashes < 0 -> Error "--crashes must be non-negative"
    | Ok engines, Ok reduces ->
      Ok
        {
          base with
          Campaign.Spec.include_rows = rows;
          exclude_rows = exclude;
          ells = ells |? base.Campaign.Spec.ells;
          ns = ns |? base.Campaign.Spec.ns;
          depths = depths |? base.Campaign.Spec.depths;
          engines;
          reduces;
          solo_fuel = solo_fuel |? base.Campaign.Spec.solo_fuel;
          observe = observe |? base.Campaign.Spec.observe;
          crashes;
          deadline =
            (match timeout with
             | Some t -> if t > 0.0 then Some t else None
             | None -> base.Campaign.Spec.deadline);
          stress_seeds = stress_seeds |? base.Campaign.Spec.stress_seeds;
          stress_prefix = stress_prefix |? base.Campaign.Spec.stress_prefix;
          stress_max_burst = stress_burst |? base.Campaign.Spec.stress_max_burst;
        }
  in
  let progress ~quiet ~dir ~total ev =
    if not quiet then
      match ev with
      | Campaign.Executor.Campaign_started { total; cached } ->
        Printf.printf "campaign: %d task(s), %d already in %s\n%!" total cached dir
      | Campaign.Executor.Task_started _ -> ()
      | Campaign.Executor.Task_yielded { index; task } ->
        Printf.printf "[%3d/%d] %-9s %s (another worker holds the lease)\n%!"
          (index + 1) total "yielded" (Campaign.Task.describe task)
      | Campaign.Executor.Task_finished { index; task; record; cached } ->
        Printf.printf "[%3d/%d] %-9s %s (%.2fs)%s\n%!" (index + 1) total
          (Campaign.Record.status_name record.Campaign.Record.status)
          (Campaign.Task.describe task) record.Campaign.Record.elapsed
          (if cached then " [cached]" else "")
      | Campaign.Executor.Campaign_finished o ->
        Printf.printf
          "campaign finished: %d executed, %d cached, %d aborted (%.2fs)\n%!"
          o.Campaign.Executor.executed o.Campaign.Executor.cached
          o.Campaign.Executor.aborted o.Campaign.Executor.elapsed
  in
  let write_file path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let finish_with_report ~json_file ~csv_file ~fail_on_unexpected report =
    print_newline ();
    print_string (Campaign.Report.render report);
    Option.iter
      (fun p ->
        write_file p (Campaign.Json.to_string_pretty (Campaign.Report.to_json report)))
      json_file;
    Option.iter (fun p -> write_file p (Campaign.Report.to_csv report)) csv_file;
    match Campaign.Report.unexpected report with
    | [] -> `Ok ()
    | bad when fail_on_unexpected ->
      List.iter (fun r -> Format.eprintf "unexpected: %a@." Campaign.Record.pp r) bad;
      `Error (false, Printf.sprintf "%d task(s) did not verify" (List.length bad))
    | _ -> `Ok ()
  in
  let run spec domains dir fresh dry_run json_file csv_file quiet fail_on_unexpected =
    match spec with
    | Error e -> `Error (false, e)
    | Ok spec ->
      (match Campaign.Spec.tasks spec with
       | Error e -> `Error (false, e)
       | Ok tasks when dry_run ->
         List.iter
           (fun t ->
             Printf.printf "%s  %s\n" (Campaign.Task.fingerprint t)
               (Campaign.Task.describe t))
           tasks;
         Printf.printf "%d task(s) — dry run, nothing executed\n" (List.length tasks);
         `Ok ()
       | Ok tasks ->
         let store = Campaign.Store.open_ ~dir () in
         let on_event = progress ~quiet ~dir ~total:(List.length tasks) in
         let outcome =
           Campaign.Executor.run ~domains ~use_cache:(not fresh) ~on_event ~store tasks
         in
         finish_with_report ~json_file ~csv_file ~fail_on_unexpected
           (Campaign.Report.make outcome.Campaign.Executor.records))
  in
  let worker spec domains dir lease_ttl quiet fail_on_unexpected =
    match spec with
    | Error e -> `Error (false, e)
    | Ok spec ->
      (match Campaign.Spec.tasks spec with
       | Error e -> `Error (false, e)
       | Ok tasks ->
         if not quiet then
           Printf.printf "worker %d: claiming tasks from %s\n%!" (Unix.getpid ()) dir;
         let store = Campaign.Store.open_ ~lease_ttl ~dir () in
         let on_event = progress ~quiet ~dir ~total:(List.length tasks) in
         let outcome = Campaign.Executor.run_shared ~domains ~on_event ~store tasks in
         finish_with_report ~json_file:None ~csv_file:None ~fail_on_unexpected
           (Campaign.Report.make outcome.Campaign.Executor.records))
  in
  let status dir as_json watch =
    let show () =
      match Campaign.Status.load ~dir with
      | Error e -> Error e
      | Ok s ->
        if as_json then
          print_endline (Campaign.Json.to_string_pretty (Campaign.Status.to_json s))
        else print_string (Campaign.Status.render s);
        Ok ()
    in
    match watch with
    | None -> (match show () with Ok () -> `Ok () | Error e -> `Error (false, e))
    | Some period when period <= 0.0 -> `Error (false, "--watch period must be positive")
    | Some period ->
      (* live refresh: redraw from each writer's telemetry until interrupted.
         A transient load error (e.g. a worker mid-write, or no telemetry
         yet) is displayed and retried rather than aborting the watch. *)
      let rec loop () =
        print_string "\027[2J\027[H";
        (match show () with
         | Ok () -> ()
         | Error e -> Printf.printf "status unavailable: %s\n" e);
        Printf.printf "\n[watching %s every %gs — Ctrl-C to stop]\n%!" dir period;
        Unix.sleepf period;
        loop ()
      in
      loop ()
  in
  let report dir json_file csv_file fail_on_unexpected =
    let store = Campaign.Store.open_ ~dir () in
    if Campaign.Store.count store = 0 then
      `Error (false, Printf.sprintf "no campaign records under %s" dir)
    else
      finish_with_report ~json_file ~csv_file ~fail_on_unexpected
        (Campaign.Report.of_store store)
  in
  let rows_arg =
    let doc = "Rows to include (default: every registered row); e.g. cas buffer-2." in
    Arg.(value & pos_all string [] & info [] ~docv:"ROW…" ~doc)
  in
  let exclude_arg =
    let doc = "Rows to exclude from the grid." in
    Arg.(value & opt (list string) [] & info [ "exclude" ] ~docv:"ROW,…" ~doc)
  in
  let opt_ints name docv doc =
    Arg.(value & opt (some (list int)) None & info [ name ] ~docv ~doc)
  in
  let ells_arg = opt_ints "ells" "L1,…" "Buffer capacities for the ℓ-buffer rows." in
  let ns_arg = opt_ints "ns" "N1,…" "Process counts in the grid." in
  let depths_arg = opt_ints "depths" "D1,…" "Exploration depths in the grid." in
  let engines_arg =
    let doc = "Engines in the grid: naive, memo, parallel or parallel-<k>." in
    Arg.(value & opt (some (list string)) None & info [ "engines" ] ~docv:"E1,…" ~doc)
  in
  let reduces_arg =
    let doc = "Reductions in the grid: none, commute, symmetric, full." in
    Arg.(value & opt (some (list string)) None & info [ "reduce" ] ~docv:"R1,…" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-task wall-clock budget in seconds for check tasks (0 disables); an \
       expired task records a timeout verdict and the sweep continues."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let solo_fuel_arg =
    let doc = "Solo-probe fuel for check tasks." in
    Arg.(value & opt (some int) None & info [ "solo-fuel" ] ~docv:"FUEL" ~doc)
  in
  let observe_arg =
    let doc =
      "Observer names applied to every check task (see `modelcheck --observe'); \
       empty (the default) keeps the legacy built-in checks.  The observer set is \
       part of each task's fingerprint, so observed and unobserved sweeps coexist \
       in one store."
    in
    Arg.(value & opt (some (list string)) None & info [ "observe" ] ~docv:"OBS1,…" ~doc)
  in
  let crashes_spec_arg =
    let doc =
      "Crash budget applied to every check task (see `modelcheck --crashes'); 0 (the \
       default) keeps the historical crash-free grid and its store keys.  A positive \
       budget also admits the recovery rows (rc- prefix) into the grid."
    in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"BUDGET" ~doc)
  in
  let stress_seeds_arg =
    let doc = "Stress-run seeds (one stress task per row, n and seed)." in
    Arg.(value & opt (some (list int)) None & info [ "stress-seeds" ] ~docv:"S1,…" ~doc)
  in
  let stress_prefix_arg =
    let doc = "Adversarial random steps before each stress run's sequential finish." in
    Arg.(value & opt (some int) None & info [ "stress-prefix" ] ~docv:"STEPS" ~doc)
  in
  let stress_burst_arg =
    let doc = "Maximum burst length of the stress runs' bursty-random adversary." in
    Arg.(value & opt (some int) None & info [ "stress-burst" ] ~docv:"B" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains executing tasks concurrently." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)
  in
  let dir_arg =
    let doc =
      "Campaign store directory: results land in DIR/results, claim leases in \
       DIR/claims, telemetry in DIR/events.jsonl.  Re-running with the same \
       directory resumes, skipping every task already recorded.  Any number of \
       `worker' processes may share one directory."
    in
    Arg.(value & opt string "_campaign" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let smoke_arg =
    let doc =
      "Use the CI smoke preset (every registry row, n=2, depth 4, one stress seed) \
       as the base grid; other flags still override it."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let fresh_arg =
    let doc = "Ignore stored results: re-run and overwrite every task." in
    Arg.(value & flag & info [ "fresh" ] ~doc)
  in
  let dry_run_arg =
    let doc = "Print the expanded task list with fingerprints and exit." in
    Arg.(value & flag & info [ "dry-run" ] ~doc)
  in
  let json_arg =
    let doc = "Write the JSON report (grid + every record) to this file." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let csv_arg =
    let doc = "Write the per-record CSV report to this file." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-task progress lines (the report still prints)." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let fail_arg =
    let doc = "Exit non-zero if any task's verdict is not `verified'." in
    Arg.(value & flag & info [ "fail-on-unexpected" ] ~doc)
  in
  let lease_ttl_arg =
    let doc =
      "Seconds after which another worker's claim lease counts as crashed and \
       its task may be re-claimed.  Must exceed the slowest task's runtime, or \
       live tasks get duplicated (harmlessly — verdicts are deterministic)."
    in
    Arg.(value & opt float 120.0 & info [ "lease-ttl" ] ~docv:"SECONDS" ~doc)
  in
  let status_json_arg =
    let doc = "Emit the aggregated status as JSON instead of the aligned table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let spec_term =
    Term.(
      const build_spec $ rows_arg $ exclude_arg $ ells_arg $ ns_arg $ depths_arg
      $ engines_arg $ reduces_arg $ timeout_arg $ solo_fuel_arg $ observe_arg
      $ crashes_spec_arg $ stress_seeds_arg $ stress_prefix_arg $ stress_burst_arg
      $ smoke_arg)
  in
  let run_term =
    Term.(
      ret
        (const run $ spec_term $ domains_arg $ dir_arg $ fresh_arg $ dry_run_arg
       $ json_arg $ csv_arg $ quiet_arg $ fail_arg))
  in
  let worker_term =
    Term.(
      ret
        (const worker $ spec_term $ domains_arg $ dir_arg $ lease_ttl_arg $ quiet_arg
       $ fail_arg))
  in
  let watch_arg =
    let doc =
      "Refresh the status display every SECONDS (clearing the screen between \
       redraws) instead of printing once — a live dashboard for a running worker \
       fleet.  Stop with Ctrl-C."
    in
    Arg.(value & opt (some float) None & info [ "watch" ] ~docv:"SECONDS" ~doc)
  in
  let status_term = Term.(ret (const status $ dir_arg $ status_json_arg $ watch_arg)) in
  let report_term =
    Term.(ret (const report $ dir_arg $ json_arg $ csv_arg $ fail_arg))
  in
  Cmd.group
    ~default:run_term
    (Cmd.info "campaign"
       ~doc:
         "Run a persistent, resumable verification campaign over the Table-1 \
          matrix: expand a rows × n × depth × engine × reduction grid (plus \
          seeded stress runs) into content-addressed tasks, execute them over a \
          domain pool with per-task deadlines and crash isolation, store every \
          verdict on disk, and render the verified slice of Table 1.  Killing a \
          campaign loses nothing: re-running with the same --dir resumes where \
          it stopped.  Subcommands: `worker' joins a fleet of processes sharing \
          one --dir through claim leases, `status' aggregates every writer's \
          telemetry, `report' renders the store without executing anything.")
    [
      Cmd.v
        (Cmd.info "run"
           ~doc:
             "Run a campaign as the directory's only writer (the default when \
              no subcommand is given).")
        run_term;
      Cmd.v
        (Cmd.info "worker"
           ~doc:
             "Run a campaign as one worker of a fleet: N processes sharing one \
              --dir claim pending tasks through lease files instead of \
              partitioning statically; claim losers re-read the winner's record \
              instead of re-executing, and a crashed worker's tasks are \
              re-claimed after --lease-ttl.")
        worker_term;
      Cmd.v
        (Cmd.info "status"
           ~doc:
             "Fold every writer's events.jsonl telemetry into per-worker \
              progress and throughput: tasks claimed / executed / cached / \
              yielded, configurations per second, duplicated executions.")
        status_term;
      Cmd.v
        (Cmd.info "report"
           ~doc:
             "Render the Table-1 report from the records already in --dir \
              without executing anything — the aggregation step after a worker \
              fleet finishes.")
        report_term;
    ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "space_hierarchy" ~version:"1.0.0"
             ~doc:
               "The space hierarchy for multiprocessor synchronization \
                (Ellen–Gelashvili–Shavit–Zhu, PODC 2016), executable.")
          [
            table_cmd;
            run_cmd;
            modelcheck_cmd;
            campaign_cmd;
            lint_cmd;
            analyze_cmd;
            growth_cmd;
            adversary_cmd;
            synth_cmd;
            witness_cmd;
          ]))
