(** Recoverable-consensus protocols for the crash–recovery model (Golab,
    arXiv 1804.10597), exercised by the model checker's crash budget
    ([Explore.run ~crashes]).  A crashed process restarts from its protocol
    root with shared memory intact; a protocol is recoverable when every
    placement of crashes still yields a single consistent decision —
    including re-decisions by processes that crashed after deciding. *)

val tas_naive : Consensus.Proto.t
(** ["rc-tas-naive"]: the classical 2-process consensus from test-and-set
    plus announcement registers (announce, race on the TAS, winner decides
    itself, loser adopts the winner's announcement).  Correct and wait-free
    crash-free at n = 2; {e not} recoverable — a winner that crashes after
    its TAS cannot recognise the set bit as its own win, re-runs, loses,
    and decides the other value.  The model checker falsifies agreement
    under a 1-crash budget; kept as the negative exemplar of Golab's
    TAS/CAS separation. *)

val cas_durable : Consensus.Proto.t
(** ["rc-cas"]: recoverable consensus from compare-and-swap.  The race
    outcome is itself durable (a write-once winner cell), and each process
    persists its decision in a private write-once cell it consults first on
    every (re)start — the recovery-cell discipline.  Certified under
    exhaustive crash-point enumeration for any crash budget. *)

val protocols : Consensus.Proto.t list
(** Both of the above, falsifiable first. *)
