(* Recoverable-consensus protocols for the crash–recovery model (Golab,
   arXiv 1804.10597): a crashed process loses its program state — it
   restarts from the protocol root — but shared memory survives, so a
   protocol is recoverable exactly when re-running it from scratch against
   its own partial footprint still decides consistently.

   The pair below demonstrates Golab's separation:

   - [tas_naive] is the classical 2-process consensus from test-and-set plus
     registers.  Crash-free it is correct (and wait-free), but it is {e not}
     recoverable: winning the TAS leaves no trace the winner can recognise
     as its own, so a winner that crashes after the TAS re-runs, loses its
     own TAS, and adopts the other announcement — deciding against its first
     incarnation.  The model checker falsifies it under a 1-crash budget.

   - [cas_durable] is consensus from compare-and-swap with the recovery
     discipline Golab's constructions use: the outcome of the race is itself
     readable (the winner cell is write-once), and each process persists its
     decision in a private write-once cell which it consults first on every
     (re)start.  Certified under exhaustive crash-point enumeration. *)

open Model
open Proc.Syntax

let tas_naive : Consensus.Proto.t =
  (module struct
    module I = Isets.Tasrw

    let name = "rc-tas-naive"

    (* loc 0: the TAS bit; loc 1+pid: pid's announcement register *)
    let locations ~n = Some (n + 1)

    (* Announce, race on the TAS, winner decides itself, loser adopts the
       first announcement it finds.  Correct for n = 2 crash-free: the
       winner announced before its TAS, so the loser's scan finds exactly
       the winner's value.  Not recoverable — see above. *)
    let proc ~n ~pid ~input =
      let* () = Isets.Tasrw.write (1 + pid) (Value.Int input) in
      let* won = Isets.Tasrw.tas 0 in
      if won then Proc.return input
      else begin
        let rec scan q =
          if q >= n then Proc.return input
          else if q = pid then scan (q + 1)
          else
            let* v = Isets.Tasrw.read (1 + q) in
            match v with
            | Value.Bot -> scan (q + 1)
            | v -> Proc.return (Value.to_int_exn v)
        in
        scan 0
      end
  end)

let cas_durable : Consensus.Proto.t =
  (module struct
    module I = Isets.Cas

    let name = "rc-cas"

    (* loc 0: write-once winner cell; loc 1+pid: pid's persistent decision
       cell, its private recovery cell in Golab's sense *)
    let locations ~n = Some (n + 1)

    (* a trivial compare-and-swap is a read: it never changes the cell and
       always returns its current value *)
    let read loc = Isets.Cas.cas loc ~expected:Value.Bot ~desired:Value.Bot

    let proc ~n:_ ~pid ~input =
      let dec = 1 + pid in
      let* mine = read dec in
      match mine with
      | Value.Bot | Value.Unit ->
        let* prev = Isets.Cas.cas 0 ~expected:Value.Bot ~desired:(Value.Int input) in
        let d = match prev with Value.Bot -> input | v -> Value.to_int_exn v in
        (* persist before deciding; if a pre-crash incarnation already
           persisted, this CAS fails and the read-back below returns the
           durable value — which equals [d], since the winner cell is
           write-once *)
        let* _ = Isets.Cas.cas dec ~expected:Value.Bot ~desired:(Value.Int d) in
        let* durable = read dec in
        Proc.return (Value.to_int_exn durable)
      | v -> Proc.return (Value.to_int_exn v)
  end)

let protocols = [ tas_naive; cas_durable ]
