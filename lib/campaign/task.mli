(** One unit of campaign work, content-addressed and crash-isolated.

    A task names a registry row, a process count, and either a bounded
    exhaustive check (engine × reduction × depth, with a wall-clock
    deadline) or a seeded stress run (a deterministic bursty-random
    adversary driven to completion).  {!fingerprint} is the store key:
    it hashes the protocol's observable behaviour — not its name — plus
    every parameter that can change the verdict, so re-running a campaign
    skips exactly the tasks whose answer is already known, and editing a
    protocol invalidates its cached results. *)

type work =
  | Check of {
      engine : Explore.engine;
      reduce : Explore.reduction;
      depth : int;
      probe : Explore.probe_policy;
      crashes : int;
          (** crash budget for exhaustive crash-point enumeration
              ([Explore.run ?crashes]); [0] — the default everywhere — is
              the crash-free check, whose fingerprint is byte-identical to
              one minted before the crash subsystem existed *)
    }  (** bounded exhaustive exploration, as in [modelcheck] *)
  | Stress of { seed : int; prefix : int; max_burst : int; fuel : int }
      (** one full run under [Sched.random_bursts ~seed ~max_burst] for
          [prefix] steps then a sequential finish, checked for
          agreement/validity; [fuel] bounds total steps ([Timeout] past
          it).  Deterministic in [seed]. *)

type t = {
  row : Hierarchy.row;
  n : int;
  inputs : int array;  (** [i mod n], or [i land 1] for binary-only rows *)
  solo_fuel : int;
  deadline : float option;  (** wall-clock budget for [Check] work *)
  observe : string list;
      (** observer names ({!Observer.of_names}) checked during [Check]
          work; resolved at {!run} time, so an unknown name yields a
          [Crash] record rather than an exception.  Empty — always the
          case for [Stress] — means the legacy hard-coded
          agreement/validity/termination checks.  A non-empty set is part
          of the task's {!fingerprint}: observed and unobserved runs of
          the same grid point are distinct store entries. *)
  work : work;
}

val check :
  ?probe:Explore.probe_policy ->
  ?solo_fuel:int ->
  ?deadline:float ->
  ?observe:string list ->
  ?crashes:int ->
  engine:Explore.engine ->
  reduce:Explore.reduction ->
  depth:int ->
  Hierarchy.row ->
  n:int ->
  t

val stress :
  ?solo_fuel:int ->
  ?fuel:int ->
  seed:int ->
  prefix:int ->
  max_burst:int ->
  Hierarchy.row ->
  n:int ->
  t

val engine_name : Explore.engine -> string
(** ["naive"], ["memo"], ["parallel-k"]. *)

val reduce_name : Explore.reduction -> string
(** ["none"], ["commute"], ["symmetric"], ["full"]. *)

val describe : t -> string
(** One-line human description (row, n, work parameters). *)

val digest : Consensus.Proto.t -> inputs:int array -> params:string -> string
(** The content-addressing primitive: a 16-hex-char digest of the
    protocol's observable behaviour (configuration fingerprints along two
    fixed deterministic schedules from the initial configuration) mixed
    with [params].  Also used directly by the bench writers, so bench
    records share the campaign store's key space. *)

val fingerprint : t -> string
(** [digest] of the task's protocol, inputs and all work parameters. *)

val run : t -> Record.t
(** Execute the task and report a {!Record.t} (kind ["check"] or
    ["stress"]).  Never raises: protocol exceptions — including a refused
    symmetric reduction — come back as [Record.Crash]. *)
