(** A minimal JSON tree, printer and parser.

    The repository deliberately carries no third-party JSON dependency; this
    module is the single JSON implementation shared by the campaign store,
    the campaign reports and the bench writers, so all of their outputs
    round-trip through the same code and are diffable with the same
    tooling.  It covers exactly the JSON this repository emits: finite
    floats, 63-bit integers, UTF-8 passed through byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Finite floats print
    with enough digits to round-trip exactly through {!of_string}.  JSON
    has no non-finite number literals, so [Float nan] and [Float
    (±infinity)] render as the documented string sentinels ["NaN"],
    ["Infinity"] and ["-Infinity]" — still valid JSON (earlier versions
    printed the unparsable ["nan"]/["inf"], silently corrupting any record
    containing one); {!get_float} maps the sentinels back, so the numeric
    view round-trips even though the re-parsed constructor is [String]. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for files meant to be read by humans
    (campaign reports, bench outputs). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed); [Error _] carries
    a byte offset.  Numbers with a ['.'], ['e'] or ['E'] parse as [Float],
    the rest as [Int]. *)

val member : string -> t -> t
(** Field of an [Obj], or [Null] when absent or not an object — composes
    without option-plumbing: [json |> member "a" |> member "b"]. *)

val get_string : t -> string option
val get_int : t -> int option

val get_float : t -> float option
(** [Int] values promote; the non-finite string sentinels ["NaN"],
    ["Infinity"], ["-Infinity"] map back to their floats (see
    {!to_string}). *)

val get_bool : t -> bool option
val get_list : t -> t list option
