type outcome = {
  total : int;
  executed : int;
  cached : int;
  aborted : int;
  records : Record.t list;
  elapsed : float;
}

type event =
  | Campaign_started of { total : int; cached : int }
  | Task_started of { index : int; task : Task.t }
  | Task_yielded of { index : int; task : Task.t }
  | Task_finished of {
      index : int;
      task : Task.t;
      record : Record.t;
      cached : bool;
    }
  | Campaign_finished of outcome

let json_of_event = function
  | Campaign_started { total; cached } ->
    Json.Obj
      [
        ("event", Json.String "campaign_started");
        ("total", Json.Int total);
        ("cached", Json.Int cached);
      ]
  | Task_started { index; task } ->
    Json.Obj
      [
        ("event", Json.String "task_started");
        ("index", Json.Int index);
        ("task", Json.String (Task.fingerprint task));
        ("describe", Json.String (Task.describe task));
      ]
  | Task_yielded { index; task } ->
    Json.Obj
      [
        ("event", Json.String "task_yielded");
        ("index", Json.Int index);
        ("task", Json.String (Task.fingerprint task));
      ]
  | Task_finished { index; task = _; record; cached } ->
    Json.Obj
      [
        ("event", Json.String "task_finished");
        ("index", Json.Int index);
        ("task", Json.String record.Record.task);
        ("status", Json.String (Record.status_name record.status));
        ("configs", Json.Int record.configs);
        ("elapsed", Json.Float record.elapsed);
        ("cached", Json.Bool cached);
      ]
  | Campaign_finished o ->
    Json.Obj
      [
        ("event", Json.String "campaign_finished");
        ("total", Json.Int o.total);
        ("executed", Json.Int o.executed);
        ("cached", Json.Int o.cached);
        ("aborted", Json.Int o.aborted);
        ("elapsed", Json.Float o.elapsed);
      ]

(* Warm the symmetry-certification cache before the pool starts, so worker
   domains hit it instead of each redoing the certification.  The key must
   match the one [Explore.certify_gate] computes for the task: same inputs,
   and the gate's effective depth — it clamps the exploration depth up to
   [Analysis.Symmetry.default_depth].  The cache itself is sharded by key
   hash with a mutex per shard, so a mismatch here costs duplicated work,
   not a race.

   With [store], certificates also go through the directory's [certs/]
   side-table ({!Cert}): a verdict another fleet member (or an earlier
   campaign over the same directory) already persisted is preloaded into the
   in-process cache instead of recomputed, and freshly computed verdicts are
   persisted for the rest of the fleet.  Tasks sharing a certification key
   are deduplicated first, so each key is certified (or read) once per
   invocation. *)
let precertify ?store tasks =
  let budget = Analysis.Symmetry.default_budget in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (t : Task.t) ->
      match t.work with
      | Task.Check { reduce; depth; _ } when reduce.Explore.symmetric ->
        let depth = Stdlib.max depth Analysis.Symmetry.default_depth in
        let key =
          Analysis.Symmetry.run_key t.row.protocol ~inputs:t.inputs ~depth ~budget
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          match store with
          | None ->
            ignore
              (Analysis.Symmetry.certify_for_run t.row.protocol ~inputs:t.inputs
                 ~depth)
          | Some store ->
            (match
               Analysis.Symmetry.peek_for_run t.row.protocol ~inputs:t.inputs ~depth
             with
             | Some _ -> () (* already warm in this process *)
             | None ->
               let fp = Cert.fingerprint t ~depth ~budget in
               (match
                  Option.bind (Store.find_cert store fp) (fun s ->
                      Result.to_option (Cert.of_string s))
                with
                | Some verdict ->
                  Analysis.Symmetry.preload_for_run t.row.protocol ~inputs:t.inputs
                    ~depth verdict
                | None ->
                  let verdict =
                    Analysis.Symmetry.certify_for_run t.row.protocol ~inputs:t.inputs
                      ~depth
                  in
                  Store.put_cert store fp (Cert.to_string verdict)))
        end
      | _ -> ())
    tasks

let run ?(domains = 1) ?(use_cache = true) ?(stop = fun () -> false)
    ?(on_event = fun _ -> ()) ~store tasks =
  let t0 = Unix.gettimeofday () in
  let items =
    List.mapi (fun index task -> (index, task, Task.fingerprint task)) tasks
  in
  let total = List.length items in
  let cached, pending =
    List.partition_map
      (fun (index, task, fp) ->
        match if use_cache then Store.find store fp else None with
        | Some record -> Either.Left (index, task, record)
        | None -> Either.Right (index, task))
      items
  in
  (* the store's own lock serializes the telemetry lines; the user callback
     runs outside any lock so a slow progress printer cannot serialize the
     worker domains *)
  let emit ev =
    Store.log_event store (json_of_event ev);
    on_event ev
  in
  emit (Campaign_started { total; cached = List.length cached });
  let results = Array.make total None in
  List.iter
    (fun (index, task, record) ->
      results.(index) <- Some record;
      emit (Task_finished { index; task; record; cached = true }))
    cached;
  precertify ~store (List.map snd pending);
  let queue = Array.of_list pending in
  let next = Atomic.make 0 in
  let executed = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      if stop () then continue := false
      else begin
        let i = Atomic.fetch_and_add next 1 in
        if i >= Array.length queue then continue := false
        else begin
          let index, task = queue.(i) in
          emit (Task_started { index; task });
          let record = Task.run task in
          Store.put store record;
          results.(index) <- Some record;
          Atomic.incr executed;
          emit (Task_finished { index; task; record; cached = false })
        end
      end
    done
  in
  let width = max 1 (min domains (Array.length queue)) in
  if width <= 1 then worker ()
  else
    Array.init width (fun _ -> Domain.spawn worker)
    |> Array.iter Domain.join;
  let executed = Atomic.get executed in
  let records =
    Array.to_list results |> List.filter_map (fun r -> r)
  in
  let outcome =
    {
      total;
      executed;
      cached = List.length cached;
      aborted = total - executed - List.length cached;
      records;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  emit (Campaign_finished outcome);
  outcome

(* ------------------------------------------------- shared-store worker -- *)

(* The `campaign worker` engine: N OS processes share one store directory
   and one spec; instead of statically partitioning the task list, each
   pending task is claimed through the store's lease protocol.  Claim
   losers park the task and poll for the winner's record (re-claiming only
   if the winner's lease expires), so a task is executed once fleet-wide in
   the common case and at most once per lease expiry in the worst. *)
let run_shared ?(domains = 1) ?(stop = fun () -> false) ?(on_event = fun _ -> ())
    ?(poll_interval = 0.05) ?drain_timeout ~store tasks =
  let t0 = Unix.gettimeofday () in
  (* Two lease TTLs covers the worst honest case: a winner that claimed a
     task just before we parked it has a full TTL to finish, and a crashed
     winner's lease takes at most one more TTL to look expired. *)
  let drain_timeout =
    match drain_timeout with
    | Some s -> s
    | None -> Stdlib.max (2.0 *. Store.lease_ttl store) 1.0
  in
  let items =
    List.mapi (fun index task -> (index, task, Task.fingerprint task)) tasks
  in
  let total = List.length items in
  let emit ev =
    Store.log_event store (json_of_event ev);
    on_event ev
  in
  let cached, pending =
    List.partition_map
      (fun (index, task, fp) ->
        match Store.find store fp with
        | Some record -> Either.Left (index, task, record)
        | None -> Either.Right (index, task, fp))
      items
  in
  emit (Campaign_started { total; cached = List.length cached });
  let results = Array.make total None in
  List.iter
    (fun (index, task, record) ->
      results.(index) <- Some record;
      emit (Task_finished { index; task; record; cached = true }))
    cached;
  precertify ~store (List.map (fun (_, task, _) -> task) pending);
  (* start each worker process at a pid-dependent offset so a fleet
     launched simultaneously contends on different tasks, not the head *)
  let queue = Array.of_list (Spec.rotate ~by:(Unix.getpid ()) pending) in
  let next = Atomic.make 0 in
  let executed = Atomic.make 0 in
  let deduped = Atomic.make 0 in
  let stopped = Atomic.make false in
  let settle (index, task) record ~ran =
    results.(index) <- Some record;
    Atomic.incr (if ran then executed else deduped);
    emit (Task_finished { index; task; record; cached = not ran })
  in
  (* Returns false iff another live writer holds the task's lease. *)
  let resolve ~announce_yield (index, task, fp) =
    match Store.claim store fp with
    | `Done record ->
      settle (index, task) record ~ran:false;
      true
    | `Lost ->
      if announce_yield then emit (Task_yielded { index; task });
      false
    | `Claimed ->
      emit (Task_started { index; task });
      let record = Task.run task in
      Store.put store record;
      settle (index, task) record ~ran:true;
      true
  in
  let dmu = Mutex.create () in
  let deferred = ref [] in
  let worker () =
    let continue = ref true in
    while !continue do
      if stop () then begin
        Atomic.set stopped true;
        continue := false
      end
      else begin
        let i = Atomic.fetch_and_add next 1 in
        if i >= Array.length queue then continue := false
        else if not (resolve ~announce_yield:true queue.(i)) then begin
          Mutex.lock dmu;
          deferred := queue.(i) :: !deferred;
          Mutex.unlock dmu
        end
      end
    done
  in
  let width = max 1 (min domains (Array.length queue)) in
  if width <= 1 then worker ()
  else
    Array.init width (fun _ -> Domain.spawn worker) |> Array.iter Domain.join;
  (* waiting room: tasks some other writer holds.  Poll for their records;
     if a holder dies, its lease expires and the re-claim executes here.
     The poll is bounded by [drain_timeout]: a lease whose mtime sits in
     the future (clock-skewed holder) never looks expired to [Store.claim],
     so an unbounded loop could spin forever.  Past the bound each stuck
     lease is force-broken ([Store.break_lease]) and the task resolved one
     final time — executed here, or returned unresolved (counted
     [aborted]) if yet another writer snatches the freed lease. *)
  let drain_deadline = Unix.gettimeofday () +. drain_timeout in
  let rec drain backlog =
    if backlog <> [] && not (stop () || Atomic.get stopped) then begin
      let unresolved =
        List.filter
          (fun item -> not (resolve ~announce_yield:false item))
          backlog
      in
      if unresolved <> [] then begin
        if Unix.gettimeofday () > drain_deadline then
          List.iter
            (fun ((_, _, fp) as item) ->
              Store.break_lease store fp;
              ignore (resolve ~announce_yield:false item))
            unresolved
        else begin
          Unix.sleepf poll_interval;
          drain unresolved
        end
      end
    end
  in
  drain !deferred;
  let executed = Atomic.get executed in
  let cached = List.length cached + Atomic.get deduped in
  let records = Array.to_list results |> List.filter_map (fun r -> r) in
  let outcome =
    {
      total;
      executed;
      cached;
      aborted = total - executed - cached;
      records;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  emit (Campaign_finished outcome);
  outcome
