(** The shared result-record schema.

    One record describes one unit of verification work on one protocol: a
    campaign task, or a bench measurement.  The campaign store persists
    records content-addressed by [task]; the bench writers
    ([BENCH_modelcheck.json], [BENCH_reduce.json], [BENCH_campaign.json])
    emit lists of the same records, so campaign and bench outputs are
    diffable with the same tooling. *)

type status =
  | Verified  (** exploration/run completed with no violation *)
  | Violation of {
      kind : string;         (** agreement, validity, obstruction-freedom, … *)
      message : string;
      schedule : int list;   (** witness schedule, execution order *)
      probe : int option;    (** solo-probe pid of the witness, if any *)
    }
  | Timeout  (** the wall-clock deadline (or fuel) expired first *)
  | Crash of string
      (** the task raised; campaign executors record the exception and move
          on — one diverging protocol cannot sink a sweep *)

val status_name : status -> string
(** ["verified"], ["violation:<kind>"], ["timeout"], ["crash"]. *)

type t = {
  task : string;      (** content-addressed task fingerprint (16 hex chars) *)
  kind : string;      (** e.g. ["check"], ["stress"], ["bench-mc"] *)
  row : string;       (** registry row id ({!Hierarchy.row.id}) *)
  protocol : string;  (** protocol name *)
  n : int;
  depth : int;        (** exploration depth, or schedule-prefix length *)
  engine : string;    (** ["naive"], ["memo"], ["parallel-k"], ["driver"] *)
  reduce : string;    (** ["none"], ["commute"], ["symmetric"], ["full"] *)
  observers : string list;
      (** observer names the check ran under ({!Task.t.observe}); [[]]
          means the legacy hard-coded checks.  Serialized only when
          non-empty, so pre-observer records parse back unchanged. *)
  crashes : int;
      (** crash budget of the check ([Explore.run ?crashes]); [0] means a
          crash-free check.  Serialized only when positive, so crash-free
          records keep their pre-crash-subsystem bytes. *)
  status : status;
  configs : int;
  probes : int;
  dedup_hits : int;
  sleep_pruned : int;
  truncated : bool;
  elapsed : float;    (** wall-clock seconds of the work proper *)
  extra : (string * Json.t) list;
      (** producer-specific fields (bench ratios, stress step counts, …) —
          round-tripped verbatim *)
}

val make :
  task:string ->
  kind:string ->
  row:string ->
  protocol:string ->
  n:int ->
  depth:int ->
  engine:string ->
  reduce:string ->
  ?observers:string list ->
  ?crashes:int ->
  status:status ->
  ?configs:int ->
  ?probes:int ->
  ?dedup_hits:int ->
  ?sleep_pruned:int ->
  ?truncated:bool ->
  ?elapsed:float ->
  ?extra:(string * Json.t) list ->
  unit ->
  t
(** Counters default to 0 / [false] / [0.0] / [[]]. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json r) = Ok r]. *)

val same_verdict : t -> t -> bool
(** Equality on everything that identifies the work and its verdict — task,
    kind, row, protocol, n, depth, engine, reduce, observers, crashes,
    status —
    ignoring the
    timing and search counters that legitimately differ between two writers
    executing the same task (elapsed, configs, probes, …).  This is the
    dedupe invariant of multi-writer campaigns: any two records written for
    one task fingerprint must satisfy [same_verdict]. *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering (row, n, engine/reduce, status, timing). *)
