type work =
  | Check of {
      engine : Explore.engine;
      reduce : Explore.reduction;
      depth : int;
      probe : Explore.probe_policy;
      crashes : int;
    }
  | Stress of { seed : int; prefix : int; max_burst : int; fuel : int }

type t = {
  row : Hierarchy.row;
  n : int;
  inputs : int array;
  solo_fuel : int;
  deadline : float option;
  observe : string list;
  work : work;
}

(* the registry convention: binary-only protocols get 0/1 inputs, the rest
   spread over the value domain *)
let inputs_for (row : Hierarchy.row) ~n =
  if row.binary_only then Array.init n (fun i -> i land 1)
  else Array.init n (fun i -> i mod n)

let check ?(probe = `Leaves) ?(solo_fuel = 100_000) ?deadline ?(observe = [])
    ?(crashes = 0) ~engine ~reduce ~depth row ~n =
  {
    row;
    n;
    inputs = inputs_for row ~n;
    solo_fuel;
    deadline;
    observe;
    work = Check { engine; reduce; depth; probe; crashes };
  }

let stress ?(solo_fuel = 100_000) ?(fuel = 50_000_000) ~seed ~prefix ~max_burst row ~n =
  {
    row;
    n;
    inputs = inputs_for row ~n;
    solo_fuel;
    deadline = None;
    observe = [];
    work = Stress { seed; prefix; max_burst; fuel };
  }

let engine_name = function
  | `Naive -> "naive"
  | `Memo -> "memo"
  | `Parallel k -> Printf.sprintf "parallel-%d" k

let reduce_name (r : Explore.reduction) =
  match (r.commute, r.symmetric) with
  | false, false -> "none"
  | true, false -> "commute"
  | false, true -> "symmetric"
  | true, true -> "full"

let probe_name = function `Leaves -> "leaves" | `Everywhere -> "everywhere" | `Never -> "never"

let describe t =
  match t.work with
  | Check { engine; reduce; depth; probe; crashes } ->
    Printf.sprintf "%s n=%d check %s/%s depth=%d probe=%s%s%s%s" t.row.id t.n
      (engine_name engine) (reduce_name reduce) depth (probe_name probe)
      (if crashes > 0 then Printf.sprintf " crashes=%d" crashes else "")
      (match t.observe with
       | [] -> ""
       | os -> " observe=" ^ String.concat "," os)
      (match t.deadline with
       | Some d -> Printf.sprintf " deadline=%.3gs" d
       | None -> "")
  | Stress { seed; prefix; max_burst; _ } ->
    Printf.sprintf "%s n=%d stress seed=%d prefix=%d max_burst=%d" t.row.id t.n seed
      prefix max_burst

(* -------------------------------------------------- content address -- *)

(* 63-bit FNV-style mixing, same family as [Machine.fingerprint]. *)
let mix h v = (h lxor (v land max_int)) * 0x100000001b3 land max_int

(* Hash the protocol's observable behaviour: configuration fingerprints
   along two fixed deterministic schedules from the initial configuration.
   Keying on behaviour rather than the protocol's name means editing a
   protocol invalidates its cached campaign results, while renaming one
   does not.  A protocol that raises mid-walk still digests deterministically
   (the exception text is mixed in). *)
let behaviour_steps = 48

let digest proto ~inputs ~params =
  let (module P : Consensus.Proto.S) = proto in
  let n = Array.length inputs in
  let module M = Model.Machine.Make (P.I) in
  let walk pick h0 =
    match
      let root =
        M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
      in
      let rec go cfg k h =
        if k = 0 then h
        else
          match M.running cfg with
          | [] -> h
          | running ->
            let cfg = M.step cfg (pick running k) in
            go cfg (k - 1) (mix h (M.fingerprint cfg))
      in
      go root behaviour_steps h0
    with
    | h -> h
    | exception exn -> mix h0 (Hashtbl.hash (Printexc.to_string exn))
  in
  let h = 0x51F6_CDD1_2545_F491 land max_int in
  (* all-solo: each process's private behaviour *)
  let h = walk (fun running _ -> List.hd running) h in
  (* rotating: cross-process interference *)
  let h = walk (fun running k -> List.nth running (k mod List.length running)) h in
  let h = mix h (Hashtbl.hash (Array.to_list inputs)) in
  let h = mix h (Hashtbl.hash params) in
  Printf.sprintf "%016x" h

let fingerprint t =
  let params =
    match t.work with
    | Check { engine; reduce; depth; probe; crashes } ->
      (* the observer and crash suffixes appear only when non-trivial, so
         every fingerprint minted before those features existed stays
         valid — crash-free grids address the same store entries as ever *)
      Printf.sprintf "check/%s/%s/%d/%s/%d%s%s" (engine_name engine) (reduce_name reduce)
        depth (probe_name probe) t.solo_fuel
        (match t.observe with
         | [] -> ""
         | os -> "/obs=" ^ String.concat "+" os)
        (if crashes > 0 then Printf.sprintf "/crashes=%d" crashes else "")
    | Stress { seed; prefix; max_burst; fuel } ->
      Printf.sprintf "stress/%d/%d/%d/%d" seed prefix max_burst fuel
  in
  digest t.row.protocol ~inputs:t.inputs ~params

(* --------------------------------------------------------------- run -- *)

let run t =
  let task = fingerprint t in
  let protocol = Consensus.Proto.name t.row.protocol in
  let base ~kind ~depth ~engine ~reduce ?(crashes = 0) =
    fun ~status ?configs ?probes ?dedup_hits ?sleep_pruned ?truncated ?elapsed ?extra () ->
    Record.make ~task ~kind ~row:t.row.id ~protocol ~n:t.n ~depth ~engine ~reduce
      ~observers:t.observe ~crashes ~status ?configs ?probes ?dedup_hits ?sleep_pruned
      ?truncated ?elapsed ?extra ()
  in
  let t0 = Unix.gettimeofday () in
  match t.work with
  | Check { engine; reduce; depth; probe; crashes } ->
    let record =
      base ~kind:"check" ~depth ~engine:(engine_name engine)
        ~reduce:(reduce_name reduce) ~crashes
    in
    let of_stats status (s : Explore.stats) =
      record ~status ~configs:s.configs ~probes:s.probes ~dedup_hits:s.dedup_hits
        ~sleep_pruned:s.sleep_pruned ~truncated:s.truncated ~elapsed:s.elapsed ()
    in
    (match
       (* observer names resolve at run time, not construction time, so an
          unknown name in a stored spec surfaces as a Crash record instead of
          sinking the whole campaign *)
       match Observer.of_names t.observe with
       | Error e -> Error e
       | Ok observers ->
         Ok
           (Explore.run ~probe ~solo_fuel:t.solo_fuel ~engine ~reduce ~crashes
              ~observers ?deadline:t.deadline t.row.protocol ~inputs:t.inputs ~depth)
     with
     | Error e ->
       record ~status:(Record.Crash e) ~elapsed:(Unix.gettimeofday () -. t0) ()
     | Ok (Explore.Completed s) -> of_stats Record.Verified s
     | Ok (Explore.Falsified f) ->
       let w = f.witness in
       of_stats
         (Record.Violation
            {
              kind = Explore.kind_name w.kind;
              message = w.message;
              schedule = w.schedule;
              probe = w.probe;
            })
         f.stats
     | Ok (Explore.Timed_out { partial; _ }) -> of_stats Record.Timeout partial
     | exception Explore.Uncertified_symmetry { verdict; _ } ->
       record
         ~status:
           (Record.Crash
              (Format.asprintf "symmetric reduction refused: %a"
                 Analysis.Symmetry.pp_verdict verdict))
         ~elapsed:(Unix.gettimeofday () -. t0) ()
     | exception exn ->
       record
         ~status:(Record.Crash (Printexc.to_string exn))
         ~elapsed:(Unix.gettimeofday () -. t0) ())
  | Stress { seed; prefix; max_burst; fuel } ->
    let record = base ~kind:"stress" ~depth:prefix ~engine:"driver" ~reduce:"none" in
    (match
       let sched =
         Model.Sched.phased
           [ (prefix, Model.Sched.random_bursts ~seed ~max_burst) ]
           Model.Sched.sequential
       in
       Consensus.Driver.run ~fuel t.row.protocol ~inputs:t.inputs ~sched
     with
     | report ->
       let elapsed = Unix.gettimeofday () -. t0 in
       let extra =
         [
           ("seed", Json.Int seed);
           ("max_burst", Json.Int max_burst);
           ("steps", Json.Int report.steps);
           ("locations_used", Json.Int report.locations_used);
           ("decided", Json.Int (List.length report.decisions));
         ]
       in
       let status =
         match report.outcome with
         | `Out_of_fuel -> Record.Timeout
         | `Sched_stopped ->
           (* sequential never stops while someone runs, so this means a
              blocked process — surface it rather than vacuously passing
              the check over the decided subset *)
           Record.Crash "stress: scheduler stopped before every process decided"
         | `All_decided ->
           (match Consensus.Driver.check report ~inputs:t.inputs with
            | Ok () -> Record.Verified
            | Error msg ->
              let kind =
                if String.length msg >= 9 && String.sub msg 0 9 = "agreement" then
                  "agreement"
                else if String.length msg >= 8 && String.sub msg 0 8 = "validity" then
                  "validity"
                else "driver"
              in
              Record.Violation { kind; message = msg; schedule = []; probe = None })
       in
       record ~status ~elapsed ~extra ()
     | exception exn ->
       record
         ~status:(Record.Crash (Printexc.to_string exn))
         ~elapsed:(Unix.gettimeofday () -. t0) ())
