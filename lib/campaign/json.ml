type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------- print -- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no literal for non-finite floats: the old code printed "inf" /
   "nan" here, which [of_string] rejects — a record containing one was
   silently dropped when the store re-read its log.  Non-finite floats are
   instead serialized as the string sentinels ["Infinity"], ["-Infinity"]
   and ["NaN"] (see [emit]), which [get_float] maps back, so the numeric
   view round-trips even though the constructor changes to [String]. *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips; fall back to 17 digits *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let nonfinite_sentinel f =
  if Float.is_nan f then Some "NaN"
  else if f = Float.infinity then Some "Infinity"
  else if f = Float.neg_infinity then Some "-Infinity"
  else None

(* [indent = None] is the compact form; [Some pad] pretty-prints. *)
let rec emit buf ~indent ~level = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (match nonfinite_sentinel f with
     | Some sentinel -> escape buf sentinel
     | None -> Buffer.add_string buf (float_literal f))
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    seq buf ~indent ~level '[' ']' (fun buf level item -> emit buf ~indent ~level item) items
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    seq buf ~indent ~level '{' '}'
      (fun buf level (k, v) ->
        escape buf k;
        Buffer.add_string buf (if indent = None then ":" else ": ");
        emit buf ~indent ~level v)
      fields

and seq : 'a. Buffer.t -> indent:string option -> level:int -> char -> char ->
    (Buffer.t -> int -> 'a -> unit) -> 'a list -> unit =
 fun buf ~indent ~level open_ close each items ->
  let pad level =
    match indent with
    | None -> ()
    | Some pad ->
      Buffer.add_char buf '\n';
      for _ = 1 to level do
        Buffer.add_string buf pad
      done
  in
  Buffer.add_char buf open_;
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char buf ',';
      pad (level + 1);
      each buf (level + 1) item)
    items;
  pad level;
  Buffer.add_char buf close

let render ~indent json =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 json;
  Buffer.contents buf

let to_string json = render ~indent:None json
let to_string_pretty json = render ~indent:(Some "  ") json

(* ------------------------------------------------------------- parse -- *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let is_hex = function
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
             | _ -> false
           in
           (* validate before converting: int_of_string accepts OCaml-isms
              (underscores, sign) and raises on garbage, both of which must
              surface as a parse error, not an escaping Failure *)
           if not (String.for_all is_hex hex) then fail "bad \\u escape";
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some code -> code
             | None -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* we only emit \u for control characters; decode the BMP point
              as UTF-8 so parse inverts print *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); true
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        true
      | _ -> false
    in
    while consume () do
      ()
    done;
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad float " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail ("bad number " ^ lit)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_body ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --------------------------------------------------------- accessors -- *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "Infinity" -> Some Float.infinity
  | String "-Infinity" -> Some Float.neg_infinity
  | String "NaN" -> Some Float.nan
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
