(** Declarative campaign specifications.

    A spec is a grid — registry rows × process counts × depths × engines ×
    reductions, plus stress seeds — with include/exclude row filters.
    {!tasks} expands it into the concrete task list the executor runs; the
    expansion is deterministic, so the same spec always names the same
    content-addressed tasks and a re-run resumes instead of restarting. *)

type t = {
  ells : int list;  (** ℓ-buffer instantiations, as in {!Hierarchy.rows} *)
  include_rows : string list;  (** row ids to keep; empty means every row *)
  exclude_rows : string list;
  ns : int list;
  depths : int list;
  engines : Explore.engine list;
  reduces : Explore.reduction list;
  probe : Explore.probe_policy;
  solo_fuel : int;
  deadline : float option;  (** per-task wall-clock budget for checks *)
  observe : string list;
      (** observer names ({!Observer.of_names}; ["default"] expands) applied
          to every [Check] task; empty means the legacy hard-coded checks.
          Validated and canonicalized by {!tasks}, so a misspelt name fails
          the whole expansion rather than crashing tasks one by one. *)
  crashes : int;
      (** crash budget applied to every [Check] task ([Explore.run
          ?crashes]).  [0] (the default) expands exactly the historical
          crash-free grid; a positive budget additionally admits the
          recovery rows ([rc-] prefix) into the registry the row filters
          see. *)
  stress_seeds : int list;  (** one stress task per (row, n, seed) *)
  stress_prefix : int;
  stress_max_burst : int;
  stress_fuel : int;
}

val default : t
(** Every row, [ns = [2; 3]], depths [[6]], memo engine, commute reduction,
    10 s deadline, two stress seeds. *)

val smoke : t
(** The CI preset: every registry row ([ells = [1; 2]]) at [n = 2],
    depth 4, memo engine with commutativity reduction, a 10 s per-task
    deadline and one stress seed — small enough for a pull-request gate,
    wide enough to cover the full Table 1 registry. *)

val engine_of_string : string -> (Explore.engine, string) result
(** ["naive"], ["memo"], ["parallel"] or ["parallel-<k>"]. *)

val reduction_of_string : string -> (Explore.reduction, string) result
(** ["none"], ["commute"], ["symmetric"], ["full"]. *)

val rotate : by:int -> 'a list -> 'a list
(** Left-rotate a list by [by mod length] (negative [by] allowed).  Used by
    shared-store workers to start claiming at a pid-dependent offset, so a
    fleet launched at once spreads over the grid instead of contending on
    the first task. *)

val tasks : t -> (Task.t list, string) result
(** Expand the grid: per (row, n), one [Check] task per depth × engine ×
    reduction and one [Stress] task per stress seed.  [Error _] if a filter
    names an unknown row id, a grid dimension is empty, or [observe] names
    an unknown observer. *)
