(* Persistable analysis certificates.

   A pid-symmetry verdict is a pure function of (protocol behaviour, inputs,
   depth, budget), so it is content-addressed exactly like a task:
   {!Task.digest} over the protocol's observed behaviour plus a parameter
   string naming the certifier and its budgets.  Two campaign directories
   built from different binaries agree on fingerprints iff the protocols
   behave identically — the property that makes a shared [certs/] directory
   safe for a worker fleet. *)

let fingerprint (t : Task.t) ~depth ~budget =
  Task.digest t.Task.row.Hierarchy.protocol ~inputs:t.Task.inputs
    ~params:(Printf.sprintf "symcert/%d/%d" depth budget)

let verdict_to_json (v : Analysis.Symmetry.verdict) =
  match v with
  | Analysis.Symmetry.Certified_symmetric { depth; pairs } ->
    Json.Obj
      [ ("kind", Json.String "certified"); ("depth", Json.Int depth);
        ("pairs", Json.Int pairs) ]
  | Analysis.Symmetry.Asymmetric w ->
    Json.Obj
      [ ("kind", Json.String "asymmetric");
        ("pid_a", Json.Int w.Analysis.Symmetry.pid_a);
        ("pid_b", Json.Int w.Analysis.Symmetry.pid_b);
        ("input", Json.Int w.Analysis.Symmetry.input);
        ("detail", Json.String w.Analysis.Symmetry.detail) ]
  | Analysis.Symmetry.Unknown reason ->
    Json.Obj [ ("kind", Json.String "unknown"); ("reason", Json.String reason) ]

let verdict_of_json json =
  let str k = Json.get_string (Json.member k json) in
  let int k = Json.get_int (Json.member k json) in
  match str "kind" with
  | Some "certified" -> (
    match (int "depth", int "pairs") with
    | Some depth, Some pairs ->
      Ok (Analysis.Symmetry.Certified_symmetric { depth; pairs })
    | _ -> Error "certified verdict missing depth/pairs")
  | Some "asymmetric" -> (
    match (int "pid_a", int "pid_b", int "input", str "detail") with
    | Some pid_a, Some pid_b, Some input, Some detail ->
      Ok (Analysis.Symmetry.Asymmetric { pid_a; pid_b; input; detail })
    | _ -> Error "asymmetric verdict missing witness fields")
  | Some "unknown" -> (
    match str "reason" with
    | Some reason -> Ok (Analysis.Symmetry.Unknown reason)
    | None -> Error "unknown verdict missing reason")
  | Some other -> Error (Printf.sprintf "unknown certificate kind %S" other)
  | None -> Error "certificate has no kind"

let to_string v = Json.to_string_pretty (verdict_to_json v) ^ "\n"
let of_string s = Result.bind (Json.of_string s) verdict_of_json
