(** Content-addressed analysis certificates for the campaign store.

    A pid-symmetry verdict ({!Analysis.Symmetry.verdict}) depends only on
    the protocol's behaviour, the run inputs and the certifier's budgets, so
    a fleet sharing one store directory can certify each protocol once and
    let every other worker read the verdict from [certs/] instead of
    re-running the certifier (see {!Executor.precertify}). *)

val fingerprint : Task.t -> depth:int -> budget:int -> string
(** The certificate's address: {!Task.digest} of the task's protocol and
    inputs under a ["symcert/<depth>/<budget>"] parameter string.  Behaviour
    hashed, not code: two binaries whose protocols behave identically share
    certificates. *)

val verdict_to_json : Analysis.Symmetry.verdict -> Json.t
val verdict_of_json : Json.t -> (Analysis.Symmetry.verdict, string) result

val to_string : Analysis.Symmetry.verdict -> string
(** Pretty JSON plus trailing newline — the [certs/<fp>.json] file format. *)

val of_string : string -> (Analysis.Symmetry.verdict, string) result
