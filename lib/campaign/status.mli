(** The `campaign status` aggregator: fold every writer's [events.jsonl]
    lines into live per-worker progress and throughput.

    The store appends one JSON line per {!Executor.event}, stamped with the
    writer's [pid] and a [ts] timestamp (see {!Store.log_event}); because
    each line is a single [O_APPEND] write, the file is a well-formed
    multi-writer log that can be folded at any time — mid-campaign for live
    progress, or afterwards for a throughput post-mortem.  Lines from
    several runs over the same directory accumulate and are all counted;
    lines predating the multi-writer schema (no [pid] field) fold under
    pid 0.  Malformed lines are counted and skipped, never fatal. *)

type worker = {
  pid : int;
  runs : int;  (** campaign_started lines: invocations by this writer *)
  claimed : int;  (** task_started lines: leases won and executed here *)
  executed : int;  (** task_finished with [cached = false] *)
  cached : int;
      (** task_finished with [cached = true]: resumed from the store or
          deduped against a concurrent writer's record *)
  yielded : int;  (** task_yielded lines: leases lost to another writer *)
  configs : int;  (** configurations explored by this writer's executions *)
  task_seconds : float;  (** summed task [elapsed] of executions *)
  first_ts : float;  (** earliest event timestamp ([infinity] if none) *)
  last_ts : float;  (** latest event timestamp ([neg_infinity] if none) *)
}

type t = {
  workers : worker list;  (** sorted by pid *)
  tasks_finished : int;  (** distinct task fingerprints with a record *)
  executions : int;  (** non-cached executions, fleet-wide *)
  duplicated : int;
      (** executions beyond the first per task — claim races and lease
          expiries; 0 in a healthy fleet *)
  events : int;
  malformed : int;
  span : float;  (** latest minus earliest timestamp across all writers *)
}

val of_lines : string list -> t
(** Fold raw event lines (blank lines ignored). *)

val of_file : string -> (t, string) result

val load : dir:string -> (t, string) result
(** Fold [dir/events.jsonl]; [Error _] if the store has no telemetry. *)

val worker_span : worker -> float
(** Seconds between the worker's first and last event (0 if fewer than
    two timestamped events). *)

val throughput : worker -> float
(** Explored configurations per second of wall-clock span. *)

val render : t -> string
(** Aligned per-worker table plus a fleet summary line. *)

val to_json : t -> Json.t
