type cell = {
  row : string;
  n : int;
  status : Record.status;
  verified : int;
  total : int;
  configs : int;
  elapsed : float;
}

type t = {
  row_ids : string list;
  ns : int list;
  grid : cell list;
  records : Record.t list;
}

let severity = function
  | Record.Violation _ -> 3
  | Record.Crash _ -> 2
  | Record.Timeout -> 1
  | Record.Verified -> 0

(* wide enough to cover every ℓ a campaign plausibly instantiates *)
let registry_ells = List.init 12 (fun i -> i + 1)

(* metadata lookup only, so including the recovery rows is harmless: a
   row id appears in the rendering only if some record references it *)
let registry = lazy (Hierarchy.rows ~ells:registry_ells ~recovery:true ())

let registry_row id =
  List.find_opt (fun (r : Hierarchy.row) -> r.id = id) (Lazy.force registry)

let make records =
  let sorted_uniq cmp l = List.sort_uniq cmp l in
  let ids = sorted_uniq compare (List.map (fun (r : Record.t) -> r.row) records) in
  let row_ids =
    (* registry order first, then ids the registry does not know *)
    let known =
      List.filter_map
        (fun (r : Hierarchy.row) -> if List.mem r.id ids then Some r.id else None)
        (Lazy.force registry)
    in
    known @ List.filter (fun id -> not (List.mem id known)) ids
  in
  let ns = sorted_uniq compare (List.map (fun (r : Record.t) -> r.n) records) in
  let grid =
    List.concat_map
      (fun row ->
        List.filter_map
          (fun n ->
            match
              List.filter (fun (r : Record.t) -> r.row = row && r.n = n) records
            with
            | [] -> None
            | rs ->
              let worst =
                List.fold_left
                  (fun acc (r : Record.t) ->
                    if severity r.status > severity acc then r.status else acc)
                  Record.Verified rs
              in
              Some
                {
                  row;
                  n;
                  status = worst;
                  verified =
                    List.length
                      (List.filter
                         (fun (r : Record.t) -> r.status = Record.Verified)
                         rs);
                  total = List.length rs;
                  configs =
                    List.fold_left (fun a (r : Record.t) -> a + r.configs) 0 rs;
                  elapsed =
                    List.fold_left (fun a (r : Record.t) -> a +. r.elapsed) 0. rs;
                })
          ns)
      row_ids
  in
  { row_ids; ns; grid; records }

let of_store store = make (Store.records store)

let cells t = t.grid

let unexpected t =
  List.filter (fun (r : Record.t) -> r.status <> Record.Verified) t.records

let status_cellname = function
  | Record.Verified -> "ok"
  | Record.Violation { kind; _ } -> "VIOLATION:" ^ kind
  | Record.Timeout -> "timeout"
  | Record.Crash _ -> "CRASH"

let cell_text c =
  match c.status with
  | Record.Verified -> Printf.sprintf "ok %d/%d %.2fs" c.verified c.total c.elapsed
  | status ->
    Printf.sprintf "%s %d/%d" (status_cellname status) (c.total - c.verified) c.total

let render t =
  let find_cell row n =
    List.find_opt (fun c -> c.row = row && c.n = n) t.grid
  in
  let header =
    [ "row"; "iset"; "paper lower"; "paper upper" ]
    @ List.map (fun n -> Printf.sprintf "n=%d" n) t.ns
  in
  let line row =
    let iset, lower, upper =
      match registry_row row with
      | Some r -> (r.iset, r.paper_lower, r.paper_upper)
      | None -> ("?", "?", "?")
    in
    [ row; iset; lower; upper ]
    @ List.map
        (fun n ->
          match find_cell row n with None -> "\xe2\x80\x94" | Some c -> cell_text c)
        t.ns
  in
  let table = header :: List.map line t.row_ids in
  (* display width: the em dash is 3 bytes, 1 column *)
  let width s = if s = "\xe2\x80\x94" then 1 else String.length s in
  let cols = List.length header in
  let colw =
    List.init cols (fun i ->
        List.fold_left (fun w line -> max w (width (List.nth line i))) 0 table)
  in
  let buf = Buffer.create 1024 in
  let emit line =
    List.iteri
      (fun i s ->
        Buffer.add_string buf s;
        if i < cols - 1 then
          Buffer.add_string buf (String.make (List.nth colw i - width s + 2) ' '))
      line;
    Buffer.add_char buf '\n'
  in
  emit header;
  emit (List.map (fun w -> String.make w '-') colw);
  List.iter (fun row -> emit (line row)) t.row_ids;
  Buffer.contents buf

let to_json t =
  let cell_json c =
    Json.Obj
      [
        ("n", Json.Int c.n);
        ("status", Json.String (Record.status_name c.status));
        ("verified", Json.Int c.verified);
        ("total", Json.Int c.total);
        ("configs", Json.Int c.configs);
        ("elapsed", Json.Float c.elapsed);
      ]
  in
  let row_json id =
    let meta =
      match registry_row id with
      | Some r ->
        [
          ("iset", Json.String r.iset);
          ("paper_lower", Json.String r.paper_lower);
          ("paper_upper", Json.String r.paper_upper);
        ]
      | None -> []
    in
    Json.Obj
      ((("id", Json.String id) :: meta)
      @ [
          ( "cells",
            Json.List
              (List.filter_map
                 (fun c -> if c.row = id then Some (cell_json c) else None)
                 t.grid) );
        ])
  in
  Json.Obj
    [
      ("ns", Json.List (List.map (fun n -> Json.Int n) t.ns));
      ("rows", Json.List (List.map row_json t.row_ids));
      ("unexpected", Json.Int (List.length (unexpected t)));
      ("records", Json.List (List.map Record.to_json t.records));
    ]

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "row,n,kind,engine,reduce,observers,depth,status,configs,probes,elapsed,task\n";
  List.iter
    (fun (r : Record.t) ->
      Buffer.add_string buf
        (String.concat ","
           [
             csv_field r.row;
             string_of_int r.n;
             csv_field r.kind;
             csv_field r.engine;
             csv_field r.reduce;
             csv_field (String.concat "+" r.observers);
             string_of_int r.depth;
             csv_field (Record.status_name r.status);
             string_of_int r.configs;
             string_of_int r.probes;
             Printf.sprintf "%.6f" r.elapsed;
             csv_field r.task;
           ]);
      Buffer.add_char buf '\n')
    t.records;
  Buffer.contents buf
