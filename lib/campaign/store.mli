(** The persistent, content-addressed campaign result store.

    On-disk layout under the store directory:
    {v
      results/<task-fingerprint>.json    one Record.t per completed task
      events.jsonl                       append-only telemetry log
    v}

    Records are written atomically (temp file + rename), so a campaign
    killed mid-run leaves only whole records behind; re-opening the store
    recovers every completed task and the executor skips them.  Corrupt or
    foreign files under [results/] are ignored with a warning rather than
    poisoning the sweep.  All operations are safe to call from multiple
    domains. *)

type t

val open_ : dir:string -> t
(** Open (creating directories as needed) and index every valid record. *)

val dir : t -> string

val find : t -> string -> Record.t option
(** Look up by task fingerprint. *)

val mem : t -> string -> bool

val put : t -> Record.t -> unit
(** Persist atomically under [results/<r.task>.json] and index in memory;
    overwrites any previous record for the same task. *)

val records : t -> Record.t list
(** Every indexed record, sorted by (row, n, kind, task) for stable
    reports. *)

val count : t -> int

val log_event : t -> Json.t -> unit
(** Append one compact JSON line to [events.jsonl]. *)
