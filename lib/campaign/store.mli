(** The persistent, content-addressed campaign result store — a safe
    multi-writer substrate.

    On-disk layout under the store directory:
    {v
      results/<task-fingerprint>.json    one Record.t per completed task
      certs/<cert-fingerprint>.json      one analysis certificate (see Cert)
      claims/<task>.<pid>                a writer's lease file (see claim)
      claims/<task>.lease                hard link to the winning lease
      events.jsonl                       append-only telemetry log
    v}

    Records are written through a {e writer-unique} temp name
    ([<final>.tmp.<pid>.<counter>]) and renamed into place, so any number of
    processes sharing the directory can race on the same task and the final
    file is always one writer's whole record — never a truncation of two.
    Stale [*.json.tmp*] files and expired claim leases left by crashed runs
    are swept when the store is opened.  Corrupt or foreign files under
    [results/] are ignored with a warning rather than poisoning the sweep.
    All operations are safe to call from multiple domains of one process
    {e and} from multiple processes sharing the directory (one host; the
    claim protocol relies on POSIX [link(2)] atomicity and live pids). *)

type t

val open_ : ?lease_ttl:float -> dir:string -> unit -> t
(** Open (creating directories as needed), sweep stale temp files and
    expired claims, and index every valid record.  [lease_ttl] (default
    120 s) is the age at which another writer's claim lease — and any
    leftover temp file — counts as a crashed holder and may be broken. *)

val dir : t -> string

val lease_ttl : t -> float
(** The TTL this store was opened with — callers deriving their own
    patience from the lease protocol (e.g. {!Executor.run_shared}'s drain
    bound) read it here instead of re-stating the default. *)

val find : t -> string -> Record.t option
(** Look up by task fingerprint.  On an index miss the store probes
    [results/] on disk before answering, so records renamed into place by
    {e other processes} are found without reopening. *)

val mem : t -> string -> bool

val claim : t -> string -> [ `Claimed | `Done of Record.t | `Lost ]
(** Optimistic claim-then-write: try to become the unique executor of a
    task.  [`Done r] — the task already has a record (possibly another
    writer's; losers re-read instead of re-executing).  [`Claimed] — this
    writer now holds the lease and should execute then {!put} (which
    releases).  [`Lost] — another live writer holds the lease; poll
    {!find} for its record, or {!claim} again once the lease could have
    expired.  Arbitration is a hard link from the writer's own lease file
    [claims/<task>.<pid>] to [claims/<task>.lease]: atomic on POSIX, so at
    most one claimant wins while the lease is live.  A lease older than
    [lease_ttl] is treated as crashed and broken.  Re-claiming a task this
    writer already holds returns [`Claimed]. *)

val release : t -> string -> unit
(** Drop this writer's claim on a task without writing a record (the
    failure path; {!put} releases automatically). *)

val break_lease : t -> string -> unit
(** Unconditionally remove the task's arbitration lease, whoever holds it
    and whatever its age.  {!claim} only breaks leases older than
    [lease_ttl] {e by mtime}, so a lease stamped in the future — a holder
    with a skewed clock — never looks expired; this is the documented
    escape hatch for such visibly-stuck leases (used by
    {!Executor.run_shared} once its drain bound expires).  Breaking a {e
    live} holder's lease risks one duplicate execution, which the store's
    atomic record rename tolerates by design. *)

val put : t -> Record.t -> unit
(** Persist atomically under [results/<r.task>.json] (unique temp name +
    rename), index in memory, and release any claim this writer holds on
    the task; overwrites any previous record for the same task. *)

val find_cert : t -> string -> string option
(** Raw contents of [certs/<fingerprint>.json], probed on disk every call —
    certificates written by other fleet members are visible without
    reopening.  Parsing belongs to {!Cert}. *)

val put_cert : t -> string -> string -> unit
(** Persist a certificate atomically under [certs/<fingerprint>.json]
    (unique temp name + rename; stale temp debris is swept at open).  No
    claim protocol: racing writers produce identical certificates for the
    same fingerprint, and the last rename wins harmlessly. *)

val records : t -> Record.t list
(** Every indexed record, sorted by (row, n, kind, task) for stable
    reports. *)

val count : t -> int

val log_event : t -> Json.t -> unit
(** Append one compact JSON line to [events.jsonl].  Object events gain
    ["pid"] and ["ts"] fields identifying the writer.  The line is emitted
    as a single [O_APPEND] write on a channel kept open for the store's
    lifetime, so concurrent writers' lines never interleave byte-wise. *)

val close : t -> unit
(** Close the telemetry channel (reopened lazily if logging resumes). *)
