type t = {
  dir : string;
  results_dir : string;
  events_file : string;
  index : (string, Record.t) Hashtbl.t;
  mu : Mutex.t;
}

let rec mkdirs path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let dir t = t.dir

let open_ ~dir =
  let results_dir = Filename.concat dir "results" in
  mkdirs results_dir;
  let index = Hashtbl.create 64 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".json" then begin
        let path = Filename.concat results_dir file in
        match Result.bind (Json.of_string (read_file path)) Record.of_json with
        | Ok r -> Hashtbl.replace index r.Record.task r
        | Error e ->
          Printf.eprintf "campaign store: skipping unreadable %s (%s)\n%!" path e
        | exception Sys_error e ->
          Printf.eprintf "campaign store: skipping unreadable %s (%s)\n%!" path e
      end)
    (Sys.readdir results_dir);
  {
    dir;
    results_dir;
    events_file = Filename.concat dir "events.jsonl";
    index;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let find t task = locked t (fun () -> Hashtbl.find_opt t.index task)
let mem t task = locked t (fun () -> Hashtbl.mem t.index task)

let put t (r : Record.t) =
  locked t (fun () ->
      let final = Filename.concat t.results_dir (r.task ^ ".json") in
      (* atomic on POSIX: a crashed campaign leaves whole records or none *)
      let tmp = final ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Json.to_string_pretty (Record.to_json r));
          output_char oc '\n');
      Sys.rename tmp final;
      Hashtbl.replace t.index r.task r)

let records t =
  locked t (fun () ->
      Hashtbl.fold (fun _ r acc -> r :: acc) t.index []
      |> List.sort (fun (a : Record.t) (b : Record.t) ->
             compare (a.row, a.n, a.kind, a.task) (b.row, b.n, b.kind, b.task)))

let count t = locked t (fun () -> Hashtbl.length t.index)

let log_event t json =
  locked t (fun () ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.events_file
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Json.to_string json);
          output_char oc '\n'))
