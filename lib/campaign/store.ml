type t = {
  dir : string;
  results_dir : string;
  certs_dir : string;
  claims_dir : string;
  events_file : string;
  mutable events_fd : Unix.file_descr option;
  lease_ttl : float;
  pid : int;
  index : (string, Record.t) Hashtbl.t;
  mu : Mutex.t;
}

(* Tmp-name disambiguator shared by every store handle in this process: two
   handles on the same directory (same pid) must still never reuse a name. *)
let tmp_counter = Atomic.make 0

let rec mkdirs path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let dir t = t.dir
let lease_ttl t = t.lease_ttl

(* Crashed writers leave two kinds of debris: half-written [*.json.tmp*]
   files under results/ and lease files under claims/.  Both are junk once
   older than the lease: a live writer holds a tmp file for milliseconds and
   refreshes nothing, so age is the discriminator. *)
let sweep_stale ~ttl dirpath keep =
  match Sys.readdir dirpath with
  | exception Sys_error _ -> ()
  | entries ->
    let now = Unix.gettimeofday () in
    Array.iter
      (fun file ->
        if not (keep file) then begin
          let path = Filename.concat dirpath file in
          match Unix.stat path with
          | s when now -. s.Unix.st_mtime > ttl -> (
            try Unix.unlink path with Unix.Unix_error _ -> ())
          | _ | (exception Unix.Unix_error _) -> ()
        end)
      entries

let open_ ?(lease_ttl = 120.0) ~dir () =
  let results_dir = Filename.concat dir "results" in
  let certs_dir = Filename.concat dir "certs" in
  let claims_dir = Filename.concat dir "claims" in
  mkdirs results_dir;
  mkdirs certs_dir;
  mkdirs claims_dir;
  sweep_stale ~ttl:lease_ttl results_dir (fun f ->
      not (contains_substring f ".json.tmp"));
  sweep_stale ~ttl:lease_ttl certs_dir (fun f ->
      not (contains_substring f ".json.tmp"));
  sweep_stale ~ttl:lease_ttl claims_dir (fun _ -> false);
  let index = Hashtbl.create 64 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".json" then begin
        let path = Filename.concat results_dir file in
        match Result.bind (Json.of_string (read_file path)) Record.of_json with
        | Ok r -> Hashtbl.replace index r.Record.task r
        | Error e ->
          Printf.eprintf "campaign store: skipping unreadable %s (%s)\n%!" path e
        | exception Sys_error e ->
          Printf.eprintf "campaign store: skipping unreadable %s (%s)\n%!" path e
      end)
    (Sys.readdir results_dir);
  {
    dir;
    results_dir;
    certs_dir;
    claims_dir;
    events_file = Filename.concat dir "events.jsonl";
    events_fd = None;
    lease_ttl;
    pid = Unix.getpid ();
    index;
    mu = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let result_path t task = Filename.concat t.results_dir (task ^ ".json")

(* The index is one writer's view; other processes rename records into
   results/ behind our back.  A miss therefore probes the disk before
   answering — this is the reconciliation step the claim protocol's losers
   rely on to re-read instead of re-execute. *)
let find_unlocked t task =
  match Hashtbl.find_opt t.index task with
  | Some _ as r -> r
  | None -> (
    match read_file (result_path t task) with
    | exception Sys_error _ -> None
    | contents -> (
      match Result.bind (Json.of_string contents) Record.of_json with
      | Ok r when r.Record.task = task ->
        Hashtbl.replace t.index task r;
        Some r
      | Ok _ | Error _ -> None))

let find t task = locked t (fun () -> find_unlocked t task)
let mem t task = locked t (fun () -> find_unlocked t task <> None)

(* ------------------------------------------------------------- claims -- *)

(* One lease per task: the holder's writer-unique file [claims/<task>.<pid>]
   hard-linked to the arbitration name [claims/<task>.lease].  [link] is
   atomic on POSIX, so exactly one contender wins even across processes; a
   lease whose mtime is older than [lease_ttl] counts as a crashed holder
   and may be broken by any contender. *)

let claim_paths t task =
  ( Filename.concat t.claims_dir (Printf.sprintf "%s.%d" task t.pid),
    Filename.concat t.claims_dir (task ^ ".lease") )

let same_inode a b =
  match (Unix.stat a, Unix.stat b) with
  | sa, sb -> sa.Unix.st_ino = sb.Unix.st_ino && sa.Unix.st_dev = sb.Unix.st_dev
  | exception Unix.Unix_error _ -> false

let release_unlocked t task =
  let own, lock = claim_paths t task in
  if same_inode own lock then (
    try Unix.unlink lock with Unix.Unix_error _ -> ());
  try Unix.unlink own with Unix.Unix_error _ -> ()

let release t task = locked t (fun () -> release_unlocked t task)

(* Escape hatch for visibly-stuck leases: [claim] only breaks a lease whose
   mtime is older than [lease_ttl], so a lease stamped in the future (a
   holder with a skewed clock, or a crash during a clock step) never looks
   expired and would block contenders forever.  Unconditionally unlinking
   the arbitration link frees the task; the worst case is one duplicate
   execution, which the store's atomic rename already tolerates. *)
let break_lease t task =
  locked t (fun () ->
      let _own, lock = claim_paths t task in
      try Unix.unlink lock with Unix.Unix_error _ -> ())

let claim t task =
  locked t (fun () ->
      match find_unlocked t task with
      | Some r -> `Done r
      | None ->
        let own, lock = claim_paths t task in
        write_file own (string_of_int t.pid ^ "\n");
        let rec acquire retries =
          match Unix.link own lock with
          | () -> (
            (* the previous holder may have renamed its record between our
               index miss and the link — hand it back instead of re-running *)
            match find_unlocked t task with
            | Some r ->
              release_unlocked t task;
              `Done r
            | None -> `Claimed)
          | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
            if same_inode own lock then `Claimed (* re-claim by the holder *)
            else begin
              let expired =
                match Unix.stat lock with
                | s -> Unix.gettimeofday () -. s.Unix.st_mtime > t.lease_ttl
                | exception Unix.Unix_error _ -> true (* vanished: free *)
              in
              if expired && retries > 0 then begin
                (try Unix.unlink lock with Unix.Unix_error _ -> ());
                acquire (retries - 1)
              end
              else begin
                (try Unix.unlink own with Unix.Unix_error _ -> ());
                match find_unlocked t task with
                | Some r -> `Done r
                | None -> `Lost
              end
            end
        in
        acquire 2)

(* ------------------------------------------------------------ records -- *)

let put t (r : Record.t) =
  locked t (fun () ->
      let final = result_path t r.task in
      (* writer-unique tmp name: two processes racing on the same task each
         write their own file, and the rename is atomic on POSIX — a crashed
         campaign leaves whole records or swept-at-open tmp debris, never a
         truncated record under the final name *)
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" final t.pid
          (Atomic.fetch_and_add tmp_counter 1)
      in
      write_file tmp (Json.to_string_pretty (Record.to_json r) ^ "\n");
      Sys.rename tmp final;
      Hashtbl.replace t.index r.task r;
      release_unlocked t r.task)

(* ------------------------------------------------------ certificates -- *)

(* A side-table of analysis certificates (pid-symmetry verdicts, see
   {!Cert}), content-addressed like results but with no claim protocol:
   certification is cheap enough that two writers racing each just write
   identical records, and the atomic rename keeps whichever lands last. *)

let cert_path t fp = Filename.concat t.certs_dir (fp ^ ".json")

let find_cert t fp =
  match read_file (cert_path t fp) with
  | contents -> Some contents
  | exception Sys_error _ -> None

let put_cert t fp contents =
  locked t (fun () ->
      let final = cert_path t fp in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" final t.pid
          (Atomic.fetch_and_add tmp_counter 1)
      in
      write_file tmp contents;
      Sys.rename tmp final)

let records t =
  locked t (fun () ->
      Hashtbl.fold (fun _ r acc -> r :: acc) t.index []
      |> List.sort (fun (a : Record.t) (b : Record.t) ->
             compare (a.row, a.n, a.kind, a.task) (b.row, b.n, b.kind, b.task)))

let count t = locked t (fun () -> Hashtbl.length t.index)

(* ------------------------------------------------------------- events -- *)

let log_event t json =
  locked t (fun () ->
      let fd =
        match t.events_fd with
        | Some fd -> fd
        | None ->
          let fd =
            Unix.openfile t.events_file
              [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
              0o644
          in
          t.events_fd <- Some fd;
          fd
      in
      let json =
        match json with
        | Json.Obj fields ->
          Json.Obj
            (fields
            @ [ ("pid", Json.Int t.pid); ("ts", Json.Float (Unix.gettimeofday ())) ])
        | j -> j
      in
      let line = Bytes.of_string (Json.to_string json ^ "\n") in
      let len = Bytes.length line in
      (* one O_APPEND write per event: concurrent writers' lines land whole,
         in some order, never interleaved byte-wise *)
      let written = Unix.single_write fd line 0 len in
      assert (written = len))

let close t =
  locked t (fun () ->
      match t.events_fd with
      | None -> ()
      | Some fd ->
        t.events_fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ()))
