(** The campaign work-queue executor.

    Expands nothing and decides nothing: it takes the task list a {!Spec}
    produced, skips every task whose fingerprint already has a record in the
    {!Store} (the resume path), and runs the rest over a pool of domains
    with crash isolation — a task that raises becomes a [Crash] record, not
    a dead campaign.  Every task completion is persisted to the store
    before the next task starts, so killing the process at any point loses
    at most the tasks in flight.

    Two execution modes share that contract.  {!run} owns its task list
    outright (one process per store directory).  {!run_shared} is the
    [campaign worker] engine: any number of OS processes open the same
    store directory and the same spec, and each pending task is {e claimed}
    through the store's lease protocol instead of statically partitioned —
    claim losers re-read the winner's record instead of re-executing. *)

type outcome = {
  total : int;  (** tasks in the campaign *)
  executed : int;  (** tasks actually run in this invocation *)
  cached : int;
      (** tasks resolved without executing here: already recorded when the
          run started, or (shared mode) executed by a concurrent worker *)
  aborted : int;  (** tasks never started because [stop] fired *)
  records : Record.t list;
      (** one record per non-aborted task, in task-list order *)
  elapsed : float;
}

type event =
  | Campaign_started of { total : int; cached : int }
  | Task_started of { index : int; task : Task.t }
  | Task_yielded of { index : int; task : Task.t }
      (** shared mode only: another live worker holds this task's lease;
          this process parks it and will re-read the winner's record *)
  | Task_finished of {
      index : int;
      task : Task.t;
      record : Record.t;
      cached : bool;
    }
  | Campaign_finished of outcome

val json_of_event : event -> Json.t
(** The structured telemetry rendering appended to the store's
    [events.jsonl] for every event (the store stamps each line with the
    writer's [pid] and a [ts] timestamp). *)

val precertify : ?store:Store.t -> Task.t list -> unit
(** Warm the pid-symmetry certification cache for every symmetric-reduction
    task in the list, deduplicated by certification key.  With [store], each
    verdict is first looked up in the store's [certs/] side-table ({!Cert})
    and preloaded on a hit; misses are computed and persisted for the rest
    of the fleet.  Both {!run} and {!run_shared} call this on their pending
    tasks before starting workers; it is exposed so benchmarks and external
    drivers can measure or stage the warm-up separately. *)

val run :
  ?domains:int ->
  ?use_cache:bool ->
  ?stop:(unit -> bool) ->
  ?on_event:(event -> unit) ->
  store:Store.t ->
  Task.t list ->
  outcome
(** Run a campaign.

    [domains] (default 1) is the worker-pool width; with 1 the tasks run
    inline on the calling domain.  [use_cache] (default [true]) controls
    the resume path — [false] re-runs every task, overwriting stored
    records.  [stop] (default never) is polled before each task is
    claimed; once it returns [true] no further tasks start, already
    running tasks finish, and the remainder count as [aborted].
    [on_event] observes progress; telemetry is logged under the store's
    lock but the callback itself runs outside any lock, so a slow callback
    never serializes the worker domains — with [domains > 1] it may be
    invoked from several domains concurrently.

    Symmetric-reduction tasks are pre-certified sequentially before the
    pool starts, deduplicated by certification key, so worker domains hit a
    warm cache instead of each redoing the unfolding.  Each verdict is also
    read from / persisted to the store's [certs/] side-table ({!Cert}), so a
    fleet sharing the directory — or a later campaign over it — certifies
    each (protocol, inputs, budgets) triple once fleet-wide. *)

val run_shared :
  ?domains:int ->
  ?stop:(unit -> bool) ->
  ?on_event:(event -> unit) ->
  ?poll_interval:float ->
  ?drain_timeout:float ->
  store:Store.t ->
  Task.t list ->
  outcome
(** Run a campaign as one worker of a fleet sharing the store directory.

    Each pending task goes through {!Store.claim}: [`Claimed] executes and
    persists here; [`Done] (another writer already recorded it) counts as
    [cached]; [`Lost] (another live writer holds the lease) emits
    {!Task_yielded} and parks the task.  After the claimable tasks drain,
    parked tasks are polled every [poll_interval] seconds (default 0.05)
    until the winner's record appears — or the winner crashes, its lease
    expires and the re-claim executes the task here, so a dead worker
    delays its in-flight tasks by at most the store's lease TTL.  The task
    list is rotated by this process's pid before claiming, so a fleet
    launched simultaneously spreads over the grid.

    The polling loop is bounded: {!Store.claim} only breaks leases that
    {e look} expired by mtime, so a lease stamped in the future — a holder
    whose clock is skewed — would otherwise park its task forever.  After
    [drain_timeout] seconds (default [max (2 * lease TTL) 1]: one TTL for
    an honest winner to finish plus one for a crashed winner's lease to
    age out) each still-stuck lease is force-broken
    ({!Store.break_lease}) and the task claimed one final time — executed
    here, or counted [aborted] if yet another writer takes the freed
    lease first.

    Fleet-wide, every task is executed exactly once in the absence of
    crashes; duplicate execution is possible only through lease expiry and
    is harmless — tasks are deterministic and records content-addressed,
    so concurrent writers' records agree on the verdict
    ({!Record.same_verdict}) and the atomic store keeps whichever rename
    lands last.  [stop] aborts both the claim loop and the polling loop.
    A rerun over a completed store reports [0 executed] exactly like
    {!run} — the resume property is mode-independent. *)
