(** The campaign work-queue executor.

    Expands nothing and decides nothing: it takes the task list a {!Spec}
    produced, skips every task whose fingerprint already has a record in the
    {!Store} (the resume path), and runs the rest over a pool of domains
    with crash isolation — a task that raises becomes a [Crash] record, not
    a dead campaign.  Every task completion is persisted to the store
    before the next task starts, so killing the process at any point loses
    at most the tasks in flight. *)

type outcome = {
  total : int;  (** tasks in the campaign *)
  executed : int;  (** tasks actually run in this invocation *)
  cached : int;  (** tasks skipped because the store already had a record *)
  aborted : int;  (** tasks never started because [stop] fired *)
  records : Record.t list;
      (** one record per non-aborted task, in task-list order *)
  elapsed : float;
}

type event =
  | Campaign_started of { total : int; cached : int }
  | Task_started of { index : int; task : Task.t }
  | Task_finished of {
      index : int;
      task : Task.t;
      record : Record.t;
      cached : bool;
    }
  | Campaign_finished of outcome

val json_of_event : event -> Json.t
(** The structured telemetry rendering appended to the store's
    [events.jsonl] for every event. *)

val run :
  ?domains:int ->
  ?use_cache:bool ->
  ?stop:(unit -> bool) ->
  ?on_event:(event -> unit) ->
  store:Store.t ->
  Task.t list ->
  outcome
(** Run a campaign.

    [domains] (default 1) is the worker-pool width; with 1 the tasks run
    inline on the calling domain.  [use_cache] (default [true]) controls
    the resume path — [false] re-runs every task, overwriting stored
    records.  [stop] (default never) is polled before each task is
    claimed; once it returns [true] no further tasks start, already
    running tasks finish, and the remainder count as [aborted].
    [on_event] observes progress; it is called under the executor's lock,
    so events arrive serialized and in order per task.

    Symmetric-reduction tasks are pre-certified sequentially before the
    pool starts (the certification cache is not safe to populate from
    concurrent domains); the certification cost is attributed to the first
    task that needs each (protocol, inputs) pair. *)
