type t = {
  ells : int list;
  include_rows : string list;
  exclude_rows : string list;
  ns : int list;
  depths : int list;
  engines : Explore.engine list;
  reduces : Explore.reduction list;
  probe : Explore.probe_policy;
  solo_fuel : int;
  deadline : float option;
  observe : string list;
  crashes : int;
  stress_seeds : int list;
  stress_prefix : int;
  stress_max_burst : int;
  stress_fuel : int;
}

let default =
  {
    ells = [ 1; 2; 3 ];
    include_rows = [];
    exclude_rows = [];
    ns = [ 2; 3 ];
    depths = [ 6 ];
    engines = [ `Memo ];
    reduces = [ { Explore.commute = true; symmetric = false } ];
    probe = `Leaves;
    solo_fuel = 100_000;
    deadline = Some 10.0;
    observe = [];
    crashes = 0;
    stress_seeds = [ 1; 2 ];
    stress_prefix = 200;
    stress_max_burst = 4;
    stress_fuel = 50_000_000;
  }

let smoke =
  {
    default with
    ells = [ 1; 2 ];
    ns = [ 2 ];
    depths = [ 4 ];
    stress_seeds = [ 1 ];
    stress_prefix = 64;
  }

let engine_of_string s =
  match s with
  | "naive" -> Ok `Naive
  | "memo" -> Ok `Memo
  | "parallel" -> Ok (`Parallel 2)
  | _ ->
    (match String.index_opt s '-' with
     | Some i when String.sub s 0 i = "parallel" ->
       (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some k when k >= 1 -> Ok (`Parallel k)
        | _ -> Error (Printf.sprintf "bad domain count in engine %S" s))
     | _ -> Error (Printf.sprintf "unknown engine %S (naive|memo|parallel[-k])" s))

let reduction_of_string = function
  | "none" -> Ok Explore.no_reduction
  | "commute" -> Ok { Explore.commute = true; symmetric = false }
  | "symmetric" -> Ok { Explore.commute = false; symmetric = true }
  | "full" -> Ok Explore.full_reduction
  | r -> Error (Printf.sprintf "unknown reduction %S (none|commute|symmetric|full)" r)

(* Deterministic left-rotation: `campaign worker` processes rotate the
   shared task list by their pid so a simultaneously launched fleet claims
   from different ends of the grid instead of racing on the head. *)
let rotate ~by l =
  match l with
  | [] | [ _ ] -> l
  | l ->
    let a = Array.of_list l in
    let n = Array.length a in
    let by = ((by mod n) + n) mod n in
    List.init n (fun i -> a.((i + by) mod n))

let tasks spec =
  match Observer.of_names spec.observe with
  | Error e -> Error e
  | Ok observer_set ->
  (* canonical observer names ("default" expanded), so two spellings of one
     observer set name the same content-addressed tasks *)
  let observe = List.map (fun ((module O) : Observer.t) -> O.name) observer_set in
  (* a crash campaign sees the recovery rows; crash-free grids keep the
     historical registry, so their task lists (and store keys) are
     untouched by the crash subsystem *)
  let all_rows = Hierarchy.rows ~ells:spec.ells ~recovery:(spec.crashes > 0) () in
  let known id = List.exists (fun (r : Hierarchy.row) -> r.id = id) all_rows in
  let unknown = List.filter (fun id -> not (known id)) (spec.include_rows @ spec.exclude_rows) in
  if unknown <> [] then
    Error
      (Printf.sprintf "unknown row id(s): %s (try `table`)" (String.concat ", " unknown))
  else if spec.ns = [] then Error "empty n grid"
  else if spec.depths = [] && spec.stress_seeds = [] then
    Error "empty grid: no depths and no stress seeds"
  else if spec.depths <> [] && (spec.engines = [] || spec.reduces = []) then
    Error "empty grid: depths given but no engines or no reductions"
  else begin
    let rows =
      List.filter
        (fun (r : Hierarchy.row) ->
          (spec.include_rows = [] || List.mem r.id spec.include_rows)
          && not (List.mem r.id spec.exclude_rows))
        all_rows
    in
    Ok
      (List.concat_map
         (fun (row : Hierarchy.row) ->
           List.concat_map
             (fun n ->
               List.concat_map
                 (fun depth ->
                   List.concat_map
                     (fun engine ->
                       List.map
                         (fun reduce ->
                           Task.check ~probe:spec.probe ~solo_fuel:spec.solo_fuel
                             ?deadline:spec.deadline ~observe ~crashes:spec.crashes
                             ~engine ~reduce ~depth row ~n)
                         spec.reduces)
                     spec.engines)
                 spec.depths
               @ List.map
                   (fun seed ->
                     Task.stress ~solo_fuel:spec.solo_fuel ~fuel:spec.stress_fuel ~seed
                       ~prefix:spec.stress_prefix ~max_burst:spec.stress_max_burst row ~n)
                   spec.stress_seeds)
             spec.ns)
         rows)
  end
