type worker = {
  pid : int;
  runs : int;
  claimed : int;
  executed : int;
  cached : int;
  yielded : int;
  configs : int;
  task_seconds : float;
  first_ts : float;
  last_ts : float;
}

type t = {
  workers : worker list;
  tasks_finished : int;
  executions : int;
  duplicated : int;
  events : int;
  malformed : int;
  span : float;
}

let fresh_worker pid =
  {
    pid;
    runs = 0;
    claimed = 0;
    executed = 0;
    cached = 0;
    yielded = 0;
    configs = 0;
    task_seconds = 0.0;
    first_ts = infinity;
    last_ts = neg_infinity;
  }

let of_lines lines =
  let workers : (int, worker) Hashtbl.t = Hashtbl.create 8 in
  (* task fingerprint -> number of non-cached executions, fleet-wide *)
  let executions_by_task : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let finished_tasks : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let events = ref 0 in
  let malformed = ref 0 in
  let span_lo = ref infinity and span_hi = ref neg_infinity in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Json.of_string line with
        | Error _ -> incr malformed
        | Ok json -> (
          match Json.get_string (Json.member "event" json) with
          | None -> incr malformed
          | Some event ->
            incr events;
            (* lines written before the multi-writer schema carry no pid *)
            let pid =
              Option.value ~default:0 (Json.get_int (Json.member "pid" json))
            in
            let w =
              match Hashtbl.find_opt workers pid with
              | Some w -> w
              | None -> fresh_worker pid
            in
            let w =
              match Json.get_float (Json.member "ts" json) with
              | None -> w
              | Some ts ->
                if ts < !span_lo then span_lo := ts;
                if ts > !span_hi then span_hi := ts;
                { w with first_ts = min w.first_ts ts; last_ts = max w.last_ts ts }
            in
            let w =
              match event with
              | "campaign_started" -> { w with runs = w.runs + 1 }
              | "task_started" -> { w with claimed = w.claimed + 1 }
              | "task_yielded" -> { w with yielded = w.yielded + 1 }
              | "task_finished" ->
                let cached =
                  Option.value ~default:false
                    (Json.get_bool (Json.member "cached" json))
                in
                let configs =
                  Option.value ~default:0 (Json.get_int (Json.member "configs" json))
                in
                let elapsed =
                  Option.value ~default:0.0
                    (Json.get_float (Json.member "elapsed" json))
                in
                (match Json.get_string (Json.member "task" json) with
                 | None -> ()
                 | Some task ->
                   Hashtbl.replace finished_tasks task ();
                   if not cached then
                     Hashtbl.replace executions_by_task task
                       (1
                       + Option.value ~default:0
                           (Hashtbl.find_opt executions_by_task task)));
                if cached then { w with cached = w.cached + 1 }
                else
                  {
                    w with
                    executed = w.executed + 1;
                    configs = w.configs + configs;
                    task_seconds = w.task_seconds +. elapsed;
                  }
              | _ -> w
            in
            Hashtbl.replace workers pid w))
    lines;
  let workers =
    Hashtbl.fold (fun _ w acc -> w :: acc) workers []
    |> List.sort (fun a b -> compare a.pid b.pid)
  in
  let executions = Hashtbl.fold (fun _ c acc -> acc + c) executions_by_task 0 in
  let duplicated =
    Hashtbl.fold (fun _ c acc -> acc + max 0 (c - 1)) executions_by_task 0
  in
  {
    workers;
    tasks_finished = Hashtbl.length finished_tasks;
    executions;
    duplicated;
    events = !events;
    malformed = !malformed;
    span = (if !span_hi >= !span_lo then !span_hi -. !span_lo else 0.0);
  }

let of_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    Ok (of_lines (List.rev !lines))

let load ~dir =
  let path = Filename.concat dir "events.jsonl" in
  if Sys.file_exists path then of_file path
  else Error (Printf.sprintf "no campaign telemetry at %s" path)

let worker_span w =
  if w.last_ts > w.first_ts then w.last_ts -. w.first_ts else 0.0

let throughput w =
  let span = worker_span w in
  if span > 0.0 then float_of_int w.configs /. span else 0.0

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %5s %8s %9s %7s %8s %10s %11s %9s\n" "worker" "runs"
       "claimed" "executed" "cached" "yielded" "configs" "configs/s" "span");
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %5d %8d %9d %7d %8d %10d %11.1f %8.2fs\n"
           (if w.pid = 0 then "(no pid)" else Printf.sprintf "pid %d" w.pid)
           w.runs w.claimed w.executed w.cached w.yielded w.configs
           (throughput w) (worker_span w)))
    t.workers;
  Buffer.add_string buf
    (Printf.sprintf
       "%d worker(s), %d event(s)%s; %d task(s) finished, %d execution(s), %d \
        duplicated; span %.2fs\n"
       (List.length t.workers) t.events
       (if t.malformed = 0 then ""
        else Printf.sprintf " (%d malformed line(s) skipped)" t.malformed)
       t.tasks_finished t.executions t.duplicated t.span);
  Buffer.contents buf

let to_json t =
  let worker_json w =
    Json.Obj
      [
        ("pid", Json.Int w.pid);
        ("runs", Json.Int w.runs);
        ("claimed", Json.Int w.claimed);
        ("executed", Json.Int w.executed);
        ("cached", Json.Int w.cached);
        ("yielded", Json.Int w.yielded);
        ("configs", Json.Int w.configs);
        ("task_seconds", Json.Float w.task_seconds);
        ("span", Json.Float (worker_span w));
        ("configs_per_sec", Json.Float (throughput w));
      ]
  in
  Json.Obj
    [
      ("workers", Json.List (List.map worker_json t.workers));
      ("tasks_finished", Json.Int t.tasks_finished);
      ("executions", Json.Int t.executions);
      ("duplicated", Json.Int t.duplicated);
      ("events", Json.Int t.events);
      ("malformed", Json.Int t.malformed);
      ("span", Json.Float t.span);
    ]
