(** Campaign reports: the verified slice of Table 1.

    A report folds a record list into a (row × n) cell grid.  Each cell
    aggregates every record for that (row, n) — checks across the
    engine/reduction/depth grid plus stress runs — under the worst status
    found: a single violation outranks any number of verified cells.
    Renderable as an aligned terminal table shaped like the paper's
    Table 1, as JSON for tooling, or as CSV for spreadsheets. *)

type cell = {
  row : string;
  n : int;
  status : Record.status;  (** worst status among the cell's records *)
  verified : int;  (** records with status [Verified] *)
  total : int;  (** all records contributing to the cell *)
  configs : int;  (** summed over the cell's records *)
  elapsed : float;  (** summed over the cell's records *)
}

type t

val make : Record.t list -> t
(** Group records into cells.  Row order follows the registry
    ({!Hierarchy.rows}) where ids match, unknown ids last,
    alphabetically; [ns] are sorted ascending. *)

val of_store : Store.t -> t
(** [make] over everything the store has indexed — the `campaign report`
    path: renders the merged result of any number of workers' runs without
    re-executing anything.  Because cells aggregate by verdict and the
    multi-writer store guarantees verdict-identical records per task
    ({!Record.same_verdict}), the rendering is independent of how many
    processes produced the records. *)

val cells : t -> cell list

val unexpected : t -> Record.t list
(** Every record whose status is not [Verified] — the campaign's failure
    set, used for CI exit codes. *)

val render : t -> string
(** The Table-1-shaped terminal rendering: one line per row (id,
    instruction set and paper bounds where the registry knows the id) with
    one verdict + timing column per n.  Cells with no records render
    as [—]. *)

val to_json : t -> Json.t
(** The grid plus the full record list, self-describing. *)

val to_csv : t -> string
(** One line per record:
    [row,n,kind,engine,reduce,observers,depth,status,configs,probes,elapsed,task]
    — [observers] is the ["+"]-joined observer-name list, empty for the
    legacy checks. *)
