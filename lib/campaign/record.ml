type status =
  | Verified
  | Violation of {
      kind : string;
      message : string;
      schedule : int list;
      probe : int option;
    }
  | Timeout
  | Crash of string

let status_name = function
  | Verified -> "verified"
  | Violation { kind; _ } -> "violation:" ^ kind
  | Timeout -> "timeout"
  | Crash _ -> "crash"

type t = {
  task : string;
  kind : string;
  row : string;
  protocol : string;
  n : int;
  depth : int;
  engine : string;
  reduce : string;
  observers : string list;
  crashes : int;
  status : status;
  configs : int;
  probes : int;
  dedup_hits : int;
  sleep_pruned : int;
  truncated : bool;
  elapsed : float;
  extra : (string * Json.t) list;
}

let make ~task ~kind ~row ~protocol ~n ~depth ~engine ~reduce ?(observers = [])
    ?(crashes = 0) ~status ?(configs = 0) ?(probes = 0) ?(dedup_hits = 0)
    ?(sleep_pruned = 0) ?(truncated = false) ?(elapsed = 0.0) ?(extra = []) () =
  {
    task;
    kind;
    row;
    protocol;
    n;
    depth;
    engine;
    reduce;
    observers;
    crashes;
    status;
    configs;
    probes;
    dedup_hits;
    sleep_pruned;
    truncated;
    elapsed;
    extra;
  }

let json_of_status = function
  | Verified -> [ ("status", Json.String "verified") ]
  | Violation { kind; message; schedule; probe } ->
    [
      ("status", Json.String "violation");
      ( "violation",
        Json.Obj
          [
            ("kind", Json.String kind);
            ("message", Json.String message);
            ("schedule", Json.List (List.map (fun p -> Json.Int p) schedule));
            ("probe", match probe with Some p -> Json.Int p | None -> Json.Null);
          ] );
    ]
  | Timeout -> [ ("status", Json.String "timeout") ]
  | Crash message ->
    [ ("status", Json.String "crash"); ("crash", Json.String message) ]

let to_json r =
  Json.Obj
    ([
       ("task", Json.String r.task);
       ("kind", Json.String r.kind);
       ("row", Json.String r.row);
       ("protocol", Json.String r.protocol);
       ("n", Json.Int r.n);
       ("depth", Json.Int r.depth);
       ("engine", Json.String r.engine);
       ("reduce", Json.String r.reduce);
     ]
    (* absent ≡ []: records minted before observers existed stay readable,
       and legacy records round-trip byte-for-byte *)
    @ (match r.observers with
      | [] -> []
      | os -> [ ("observers", Json.List (List.map (fun o -> Json.String o) os)) ])
    (* absent ≡ 0: crash-free records keep their pre-crash-subsystem bytes *)
    @ (if r.crashes > 0 then [ ("crashes", Json.Int r.crashes) ] else [])
    @ json_of_status r.status
    @ [
        ("configs", Json.Int r.configs);
        ("probes", Json.Int r.probes);
        ("dedup_hits", Json.Int r.dedup_hits);
        ("sleep_pruned", Json.Int r.sleep_pruned);
        ("truncated", Json.Bool r.truncated);
        ("elapsed", Json.Float r.elapsed);
      ]
    @ match r.extra with [] -> [] | extra -> [ ("extra", Json.Obj extra) ])

let of_json json =
  let ( let* ) = Result.bind in
  let field name get =
    match get (Json.member name json) with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "record: missing or ill-typed field %S" name)
  in
  let* task = field "task" Json.get_string in
  let* kind = field "kind" Json.get_string in
  let* row = field "row" Json.get_string in
  let* protocol = field "protocol" Json.get_string in
  let* n = field "n" Json.get_int in
  let* depth = field "depth" Json.get_int in
  let* engine = field "engine" Json.get_string in
  let* reduce = field "reduce" Json.get_string in
  let* observers =
    match Json.member "observers" json with
    | Json.Null -> Ok [] (* pre-observer record *)
    | j -> (
      match Json.get_list j with
      | None -> Error "record: ill-typed field \"observers\""
      | Some items ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match Json.get_string item with
            | Some name -> Ok (name :: acc)
            | None -> Error "record: non-string observer name")
          items (Ok []))
  in
  let crashes =
    match Json.get_int (Json.member "crashes" json) with Some c -> c | None -> 0
  in
  let* status =
    match Json.get_string (Json.member "status" json) with
    | Some "verified" -> Ok Verified
    | Some "timeout" -> Ok Timeout
    | Some "crash" ->
      let* message = field "crash" Json.get_string in
      Ok (Crash message)
    | Some "violation" ->
      let v = Json.member "violation" json in
      let vfield name get =
        match get (Json.member name v) with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "record: violation missing field %S" name)
      in
      let* vkind = vfield "kind" Json.get_string in
      let* message = vfield "message" Json.get_string in
      let* schedule_json = vfield "schedule" Json.get_list in
      let* schedule =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match Json.get_int item with
            | Some p -> Ok (p :: acc)
            | None -> Error "record: non-integer pid in violation schedule")
          schedule_json (Ok [])
      in
      let probe = Json.get_int (Json.member "probe" v) in
      Ok (Violation { kind = vkind; message; schedule; probe })
    | Some other -> Error (Printf.sprintf "record: unknown status %S" other)
    | None -> Error "record: missing status"
  in
  let* configs = field "configs" Json.get_int in
  let* probes = field "probes" Json.get_int in
  let* dedup_hits = field "dedup_hits" Json.get_int in
  let* sleep_pruned = field "sleep_pruned" Json.get_int in
  let* truncated = field "truncated" Json.get_bool in
  let* elapsed = field "elapsed" Json.get_float in
  let extra =
    match Json.member "extra" json with Json.Obj fields -> fields | _ -> []
  in
  Ok
    {
      task;
      kind;
      row;
      protocol;
      n;
      depth;
      engine;
      reduce;
      observers;
      crashes;
      status;
      configs;
      probes;
      dedup_hits;
      sleep_pruned;
      truncated;
      elapsed;
      extra;
    }

let same_verdict (a : t) (b : t) =
  a.task = b.task && a.kind = b.kind && a.row = b.row && a.protocol = b.protocol
  && a.n = b.n && a.depth = b.depth && a.engine = b.engine && a.reduce = b.reduce
  && a.observers = b.observers && a.crashes = b.crashes && a.status = b.status

let pp ppf r =
  Format.fprintf ppf "%s n=%d %s/%s d=%d%s: %s (%d configs, %.3f s)" r.row r.n r.engine
    r.reduce r.depth
    (if r.crashes > 0 then Printf.sprintf " crashes=%d" r.crashes else "")
    (status_name r.status) r.configs r.elapsed
