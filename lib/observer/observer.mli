(** Composable checked properties over the exploration event stream.

    The model checker historically verified exactly one hard-coded property —
    consensus agreement/validity, with solo probes for obstruction-freedom.
    An {e observer} makes the property pluggable: a finite-state monitor
    machine that consumes the events of an exploration (process steps, memory
    accesses, decisions, solo-probe outcomes) and renders a three-way verdict
    at every visited configuration — safety violation, liveness-under-
    fairness violation, or ok.

    Observers are driven inline by the exploration engines ({!Explore.run}
    [?observers]): no event values are allocated on the hot path — the engine
    calls the monitor's transition functions directly on the step it is
    already making.  States must be {e immutable} values: the parallel engine
    shares them across domains, and the memoized engines compare and fold
    their {!S.digest} into the transposition key.

    {2 Soundness contract}

    The memoized engines prune a revisited configuration when its machine
    fingerprint {e and} observer digest were both seen at adequate depth
    (a product construction: the monitor rides along in the state space).
    For that pruning — and the verdict — to be exact, [digest] must
    determine the observer's verdict and its future behaviour: two states
    with equal digests must render equal verdicts now and after any common
    event suffix.  Latching violations into a sink state (as every built-in
    observer does) satisfies this trivially on the violation side.

    The state-space reductions need per-observer opt-in:

    - {e Commutativity} ([commute_safe]): the sleep-set reduction explores
      only one order of two independent (commuting) steps.  Every reachable
      configuration is still visited, so any observer whose verdict at a
      configuration is a function of that configuration's machine state
      (decision sets, per-location value history for correctly declared
      [commutes]) is safe; an observer sensitive to the {e interleaving
      order} of independent steps (e.g. {!lockout}'s fairness envelope) is
      not, and must declare [commute_safe = false].
    - {e Symmetry} ([symmetric_safe]): the symmetric reduction conflates
      configurations that differ by permuting equal-input processes.  An
      observer whose state is pid-indexed (e.g. {!per_pid}, {!lockout})
      distinguishes configurations the reduction conflates and must declare
      [symmetric_safe = false].

    {!Explore.run} refuses (raises) a reduction an observer declares unsafe
    unless forced. *)

type probe_outcome =
  | Probe_decided of { pid : int; decisions : (int * int) list }
      (** [pid] ran solo and decided; then every remaining running process
          was run solo once, all decided, and [decisions] is the complete
          decision set of that probe execution ((pid, value) pairs). *)
  | Probe_stuck of { pid : int; fuel : int }
      (** [pid] did not decide within [fuel] solo steps — an
          obstruction-freedom violation in the paper's sense. *)
  | Probe_starved of { pid : int; straggler : int }
      (** [pid] decided solo, but [straggler] remained undecided after its
          own bounded solo run — a termination failure of the probe chain. *)
(** The outcome of one solo probe (the legacy probe chain of
    {!Explore.run}, run on {!Model.Machine.Make.Scratch}). *)

val probe_pid : probe_outcome -> int
(** The probed pid the outcome belongs to. *)

type verdict =
  | Ok
  | Violation of { kind : string; liveness : bool; message : string }
      (** [kind] names the violation (it becomes the witness
          {!Explore.violation_kind}); [liveness] distinguishes
          liveness-under-fairness violations from safety violations;
          [message] is the human-readable report. *)

module type S = sig
  type state

  val name : string
  (** Registry/display name, e.g. ["agreement"]. *)

  val wants_probes : bool
  (** Whether the engine should run solo probes and feed their outcomes to
      {!on_probe}.  Probes run iff the probe policy allows them {e and} some
      observer of the run wants them. *)

  val wants_accesses : bool
  (** Whether {!on_access} should be fed.  Computing access results costs an
      extra [I.apply] per access, so observers that do not read memory
      traffic leave this [false]. *)

  val commute_safe : bool
  val symmetric_safe : bool
  (** See the soundness contract above. *)

  val init : n:int -> inputs:int array -> state

  val on_step : state -> pid:int -> state
  (** [pid] performed one atomic step. *)

  val on_access : state -> pid:int -> loc:int -> value:int option -> state
  (** One memory access of a step, {e before} {!on_step}: [pid] applied an
      instruction to [loc] and it returned [value]
      ({!Model.Iset.S.observe_result}: [None] for structured or unit-like
      results).  Multi-assignment steps feed one access per location, in
      instruction order.  Only scheduled steps are observed — solo-probe
      internals are summarized by {!on_probe}. *)

  val on_decide : state -> pid:int -> value:int -> state
  (** [pid]'s step just decided [value] (fed after {!on_step}). *)

  val on_probe : state -> probe_outcome -> state
  (** A solo probe ran from the current configuration.  Probe feeding is
      config-local: the engine discards the post-probe state after checking
      its verdict, mirroring the legacy probes (which never mutate the
      exploration). *)

  val digest : state -> int
  (** O(1) digest folded into the transposition key; must determine
      {!verdict} and future behaviour (see the soundness contract). *)

  val verdict : state -> verdict
end

type t = (module S)

val name : t -> string

(** {2 Built-in observers}

    [agreement] and [validity] are the legacy hard-coded checks of
    {!Explore} as observers (differentially pinned to the old path by the
    test suite); [solo_termination] is the legacy probe chain's
    obstruction-freedom/termination judgment; together
    ({!defaults}) they reproduce the legacy checker exactly. *)

val agreement : t
(** Safety: no two processes decide different values.  Latches on the first
    disagreement, among scheduled decisions or a probe's decision set. *)

val validity : t
(** Safety: every decided value was some process's input. *)

val solo_termination : t
(** Liveness (obstruction-freedom, Section 2 of the paper): every probed
    process decides within its solo fuel, and the probe chain's remaining
    processes terminate.  Wants probes; verdict kinds are
    ["obstruction-freedom"] and ["termination"], matching the legacy
    checker. *)

val lockout : ?fair_bound:int -> ?patience:int -> unit -> t
(** Liveness under fairness ({!Model.Sched.fair} semantics): a process that
    keeps getting scheduled — [patience] own steps (default 8) — while the
    execution stays within the fairness envelope — no running process falls
    more than [fair_bound] (default 2) steps of others behind — must have
    decided.  Executions that leave the envelope disarm the monitor (an
    unfair execution cannot witness lockout).  A blocked process also
    disarms it, conservatively.  Not commute-safe (the fairness envelope is
    interleaving-order sensitive) and not symmetric-safe (pid-indexed). *)

val maxreg_monotonic : t
(** Safety, for max-register rows: the integer values observed at each
    location never decrease.  Only accesses whose result observes as an int
    are tracked ({!Model.Iset.S.observe_result}), so unit-returning writes
    are invisible.  Commute-safe for correctly declared [commutes] (two
    same-location instructions may only be declared commuting when both
    return the same results in either order) and symmetric-safe (state is
    per-location, not per-pid). *)

val recoverable_agreement : t
(** Safety under crash–recovery (Golab, arXiv 1804.10597): decisions agree
    across processes {e and} across incarnations — a process that decides,
    crashes and re-decides must re-decide the same value.  Refines
    {!agreement} with which kind of conflict occurred (the cross-incarnation
    flip is the signature failure of non-recoverable protocols); crash-free
    it degenerates to plain agreement.  Commute-safe; not symmetric-safe
    (pid-indexed state). *)

val recoverable_validity : t
(** Safety under crash–recovery: every incarnation's decision was some
    process's input.  {!validity}'s latch under its own verdict kind,
    applied to post-crash re-decisions too. *)

val defaults : t list
(** [[agreement; validity; solo_termination]] — the observer set equivalent
    to the legacy hard-coded checker. *)

(** {2 Combinators} *)

val all : t list -> t
(** Product observer: runs every member, reports the first member's
    violation (in list order).  Safe for a reduction iff every member is. *)

val named : string -> t -> t
(** Same observer under a different name (and witness kind prefix). *)

val per_pid : t -> t
(** Per-process product: one copy of the observer per pid, each fed only its
    own pid's events (a probe outcome routes to the probed pid).  A copy's
    violation is reported with a ["p<i>: "] message prefix.  Never
    symmetric-safe (the product state is pid-indexed). *)

(** {2 Registry} *)

val known : (string * string) list
(** [(name, one-line description)] of every registered observer name. *)

val of_name : string -> (t, string) result
(** Look up a registered observer: ["agreement"], ["validity"],
    ["solo-termination"], ["lockout"] (default parameters),
    ["maxreg-monotonic"], ["recoverable-agreement"],
    ["recoverable-validity"]. *)

val of_names : string list -> (t list, string) result
(** Resolve a list of names; ["default"] expands to {!defaults}. *)

(** {2 Driver runtime}

    The packed, immutable multi-observer state the exploration engines
    thread through the walk.  One {!Run.t} value corresponds to one
    configuration; transitions return a new value (physically equal when no
    member's state changed, so the common stateless case allocates
    nothing). *)
module Run : sig
  type t

  val make : (module S) list -> n:int -> inputs:int array -> t
  val wants_probes : t -> bool
  val wants_accesses : t -> bool
  val step : t -> pid:int -> t
  val access : t -> pid:int -> loc:int -> value:int option -> t
  val decide : t -> pid:int -> value:int -> t
  val probe : t -> probe_outcome -> t

  val digest : t -> int
  (** Order-dependent fold of the members' digests (constant for a
      stateless set). *)

  val verdict : t -> (string * bool * string) option
  (** [(kind, liveness, message)] of the first member reporting a
      violation, in set order. *)

  val first_unsafe : commute:bool -> symmetric:bool -> (module S) list -> (string * string) option
  (** [(observer name, reduction name)] of the first observer in the set
      that declares the requested reduction unsafe, if any. *)
end
