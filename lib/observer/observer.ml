(* Composable checked properties: finite-state monitors over the exploration
   event stream.  See observer.mli for the soundness contract; the short
   version is that states are immutable, violations latch into sink states,
   and [digest] must determine the verdict and future behaviour because the
   memoized engines fold it into the transposition key. *)

type probe_outcome =
  | Probe_decided of { pid : int; decisions : (int * int) list }
  | Probe_stuck of { pid : int; fuel : int }
  | Probe_starved of { pid : int; straggler : int }

let probe_pid = function
  | Probe_decided { pid; _ } | Probe_stuck { pid; _ } | Probe_starved { pid; _ } -> pid

type verdict =
  | Ok
  | Violation of { kind : string; liveness : bool; message : string }

module type S = sig
  type state

  val name : string
  val wants_probes : bool
  val wants_accesses : bool
  val commute_safe : bool
  val symmetric_safe : bool
  val init : n:int -> inputs:int array -> state
  val on_step : state -> pid:int -> state
  val on_access : state -> pid:int -> loc:int -> value:int option -> state
  val on_decide : state -> pid:int -> value:int -> state
  val on_probe : state -> probe_outcome -> state
  val digest : state -> int
  val verdict : state -> verdict
end

type t = (module S)

let name (module O : S) = O.name

(* Same 63-bit multiplicative mixing family as [Machine.fingerprint] and
   [Task.digest]. *)
let mix h v = (h lxor (v land max_int)) * 0x100000001b3 land max_int

(* ------------------------------------------------------ driver runtime -- *)

module Run = struct
  type packed = P : (module S with type state = 's) * 's -> packed

  type t = {
    packs : packed array;
    wants_probes : bool;
    wants_accesses : bool;
  }

  let make set ~n ~inputs =
    {
      packs =
        Array.of_list
          (List.map
             (fun ((module O : S) as _o) -> P ((module O), O.init ~n ~inputs))
             set);
      wants_probes = List.exists (fun (module O : S) -> O.wants_probes) set;
      wants_accesses = List.exists (fun (module O : S) -> O.wants_accesses) set;
    }

  let wants_probes t = t.wants_probes
  let wants_accesses t = t.wants_accesses

  type app = { f : 's. (module S with type state = 's) -> 's -> 's }

  (* Transition every member; keep the array (and the whole [t]) physically
     unchanged when every member's state is — stateless observers then cost
     no allocation per event. *)
  let update t app =
    let changed = ref false in
    let packs =
      Array.map
        (fun (P ((module O), s) as p) ->
          let s' = app.f (module O) s in
          if s' == s then p
          else begin
            changed := true;
            P ((module O), s')
          end)
        t.packs
    in
    if !changed then { t with packs } else t

  let step t ~pid =
    update t { f = (fun (type s) (module O : S with type state = s) st -> O.on_step st ~pid) }

  let access t ~pid ~loc ~value =
    update t
      { f = (fun (type s) (module O : S with type state = s) st -> O.on_access st ~pid ~loc ~value) }

  let decide t ~pid ~value =
    update t
      { f = (fun (type s) (module O : S with type state = s) st -> O.on_decide st ~pid ~value) }

  let probe t outcome =
    update t { f = (fun (type s) (module O : S with type state = s) st -> O.on_probe st outcome) }

  let digest t =
    Array.fold_left
      (fun acc (P ((module O), s)) -> mix acc (O.digest s))
      0x243F6A8885A308D3 (* π, an arbitrary non-zero seed *)
      t.packs

  let verdict t =
    let len = Array.length t.packs in
    let rec go i =
      if i >= len then None
      else begin
        let (P ((module O), s)) = t.packs.(i) in
        match O.verdict s with
        | Ok -> go (i + 1)
        | Violation { kind; liveness; message } -> Some (kind, liveness, message)
      end
    in
    go 0

  let first_unsafe ~commute ~symmetric set =
    List.find_map
      (fun (module O : S) ->
        if commute && not O.commute_safe then Some (O.name, "commute")
        else if symmetric && not O.symmetric_safe then Some (O.name, "symmetric")
        else None)
      set
end

(* -------------------------------------------------- built-in observers -- *)

(* Agreement: no two processes decide different values.  The incremental
   reference value is the chronologically first decision (the legacy checker
   re-derives it per configuration from the lowest decided pid — the verdict
   "two distinct decided values exist" is the same either way); a probe's
   complete decision set is re-checked with the legacy fold so probe-found
   violations carry the legacy message. *)
module Agreement = struct
  type state = { first : int option; bad : string option }

  let name = "agreement"
  let wants_probes = true
  let wants_accesses = false
  let commute_safe = true (* verdict is a function of the configuration's decision set *)
  let symmetric_safe = true (* no pid in the state; digest hashes values only *)
  let init ~n:_ ~inputs:_ = { first = None; bad = None }
  let on_step st ~pid:_ = st
  let on_access st ~pid:_ ~loc:_ ~value:_ = st

  let on_decide st ~pid ~value =
    match (st.bad, st.first) with
    | Some _, _ -> st
    | None, None -> { st with first = Some value }
    | None, Some f when value = f -> st
    | None, Some f ->
      {
        st with
        bad =
          Some
            (Printf.sprintf "agreement: process %d decided %d but %d was also decided"
               pid value f);
      }

  let check_set st decisions =
    match (st.bad, decisions) with
    | Some _, _ | None, [] -> st
    | None, (_, first) :: _ ->
      (match
         List.find_map
           (fun (pid, v) -> if v <> first then Some (pid, v) else None)
           decisions
       with
       | None -> st
       | Some (pid, v) ->
         {
           st with
           bad =
             Some
               (Printf.sprintf "agreement: process %d decided %d but %d was also decided"
                  pid v first);
         })

  let on_probe st = function
    | Probe_decided { decisions; _ } -> check_set st decisions
    | Probe_stuck _ | Probe_starved _ -> st

  let digest st =
    match (st.bad, st.first) with
    | Some _, _ -> 0x7f1 (* violation sink *)
    | None, None -> 1
    | None, Some v -> mix 2 v

  let verdict st =
    match st.bad with
    | None -> Ok
    | Some message -> Violation { kind = "agreement"; liveness = false; message }
end

(* Validity: every decided value was proposed.  On a probe's decision set
   only the first decision is checked — exactly what the legacy checker
   does (a differing invalid decision trips agreement first). *)
module Validity = struct
  type state = { valid : int -> bool; bad : string option }

  let name = "validity"
  let wants_probes = true
  let wants_accesses = false
  let commute_safe = true
  let symmetric_safe = true

  let init ~n:_ ~inputs =
    let inputs = Array.copy inputs in
    { valid = (fun v -> Array.exists (fun i -> i = v) inputs); bad = None }

  let on_step st ~pid:_ = st
  let on_access st ~pid:_ ~loc:_ ~value:_ = st

  let latch st v =
    if st.valid v then st
    else { st with bad = Some (Printf.sprintf "validity: %d decided but never proposed" v) }

  let on_decide st ~pid:_ ~value =
    match st.bad with Some _ -> st | None -> latch st value

  let on_probe st = function
    | Probe_decided { decisions = (_, first) :: _; _ } when st.bad = None -> latch st first
    | _ -> st

  let digest st = match st.bad with Some _ -> 0x7f2 | None -> 3

  let verdict st =
    match st.bad with
    | None -> Ok
    | Some message -> Violation { kind = "validity"; liveness = false; message }
end

(* Obstruction-freedom as a checked property: the probe chain must complete.
   Stateless until a probe fails; messages match the legacy checker so the
   observer path and the legacy path report identical witnesses. *)
module Solo_termination = struct
  type state = (string * string) option (* kind, message *)

  let name = "solo-termination"
  let wants_probes = true
  let wants_accesses = false
  let commute_safe = true (* probes run at every visited configuration *)
  let symmetric_safe = true
  let init ~n:_ ~inputs:_ = None
  let on_step st ~pid:_ = st
  let on_access st ~pid:_ ~loc:_ ~value:_ = st
  let on_decide st ~pid:_ ~value:_ = st

  let on_probe st outcome =
    match (st, outcome) with
    | Some _, _ | None, Probe_decided _ -> st
    | None, Probe_stuck { pid; fuel } ->
      Some
        ( "obstruction-freedom",
          Printf.sprintf
            "obstruction-freedom: process %d did not decide solo within %d steps" pid fuel
        )
    | None, Probe_starved { straggler; _ } ->
      Some
        ( "termination",
          Printf.sprintf "termination: process %d still undecided after solo runs"
            straggler )

  let digest = function None -> 5 | Some _ -> 0x7f3

  let verdict = function
    | None -> Ok
    | Some (kind, message) -> Violation { kind; liveness = true; message }
end

(* Lockout under [Sched.fair] semantics.  Per pid: [own] steps taken (capped
   at [patience]) and [gap] steps by others since its last step (capped one
   past [fair_bound]); the monitor disarms permanently once any undecided
   process's gap exceeds the bound — such an execution is not fair, so it
   cannot witness lockout.  The caps make the monitor finite-state, and the
   verdict is a pure function of the state (checked at every visited
   configuration), so no latch is needed. *)
module type LOCKOUT_PARAMS = sig
  val fair_bound : int
  val patience : int
end

module Lockout (Params : LOCKOUT_PARAMS) = struct
  type pstate = { own : int; gap : int; decided : bool }
  type state = { procs : pstate array; armed : bool }

  let name = "lockout"
  let wants_probes = false
  let wants_accesses = false
  let commute_safe = false (* the fairness envelope is interleaving-order sensitive *)
  let symmetric_safe = false (* pid-indexed state *)

  let init ~n ~inputs:_ =
    { procs = Array.make n { own = 0; gap = 0; decided = false }; armed = true }

  let on_step st ~pid =
    if not st.armed then st
    else begin
      let procs = Array.copy st.procs in
      let armed = ref true in
      Array.iteri
        (fun q p ->
          if not p.decided then
            if q = pid then
              procs.(q) <- { p with own = Stdlib.min (p.own + 1) Params.patience; gap = 0 }
            else begin
              let gap = Stdlib.min (p.gap + 1) (Params.fair_bound + 1) in
              if gap > Params.fair_bound then armed := false;
              procs.(q) <- { p with gap }
            end)
        st.procs;
      { procs; armed = !armed }
    end

  let on_access st ~pid:_ ~loc:_ ~value:_ = st

  let on_decide st ~pid ~value:_ =
    if not st.armed then st
    else begin
      let procs = Array.copy st.procs in
      procs.(pid) <- { (procs.(pid)) with decided = true };
      { st with procs }
    end

  let on_probe st _ = st

  let digest st =
    if not st.armed then 7
    else
      Array.fold_left
        (fun acc p -> mix acc ((p.own * 4) + (p.gap * 2) + if p.decided then 1 else 0))
        11 st.procs

  let verdict st =
    if not st.armed then Ok
    else begin
      let n = Array.length st.procs in
      let rec go pid =
        if pid >= n then Ok
        else begin
          let p = st.procs.(pid) in
          if (not p.decided) && p.own >= Params.patience then
            Violation
              {
                kind = "lockout";
                liveness = true;
                message =
                  Printf.sprintf
                    "lockout: process %d took %d steps under fair scheduling (bound %d) \
                     without deciding"
                    pid p.own Params.fair_bound;
              }
          else go (pid + 1)
        end
      in
      go 0
    end
end

let lockout ?(fair_bound = 2) ?(patience = 8) () : t =
  let module L = Lockout (struct
    let fair_bound = fair_bound
    let patience = patience
  end) in
  (module L)

(* Max-register monotonicity: per location, the integer values observed by
   accesses never decrease.  Only int-observable results are tracked, so a
   unit-returning write is invisible and the monitor effectively watches the
   read stream.  The per-location last-value map is kept sorted by location
   so the digest is canonical. *)
module Maxreg_monotonic = struct
  type state = { last : (int * int) list; bad : string option }

  let name = "maxreg-monotonic"
  let wants_probes = false
  let wants_accesses = true

  (* Commute-safe: different-location reorderings preserve each location's
     observation sequence, and a same-location pair may only be declared
     commuting when both instructions return the same results in either
     order ([Iset.S.commutes] is exact), so no reordering the reduction
     prunes can flip a monotonicity comparison. *)
  let commute_safe = true
  let symmetric_safe = true (* per-location state, no pids *)
  let init ~n:_ ~inputs:_ = { last = []; bad = None }
  let on_step st ~pid:_ = st

  let rec put loc v = function
    | [] -> [ (loc, v) ]
    | (l, _) :: rest when l = loc -> (loc, v) :: rest
    | (l, _) :: _ as list when l > loc -> (loc, v) :: list
    | entry :: rest -> entry :: put loc v rest

  let on_access st ~pid:_ ~loc ~value =
    match (st.bad, value) with
    | Some _, _ | None, None -> st
    | None, Some v ->
      (match List.assoc_opt loc st.last with
       | Some prev when v < prev ->
         {
           st with
           bad =
             Some
               (Printf.sprintf
                  "maxreg-monotonic: location %d observed %d after already observing %d"
                  loc v prev);
         }
       | Some prev when v = prev -> st
       | _ -> { st with last = put loc v st.last })

  let on_decide st ~pid:_ ~value:_ = st
  let on_probe st _ = st

  let digest st =
    match st.bad with
    | Some _ -> 0x7f4
    | None -> List.fold_left (fun acc (l, v) -> mix (mix acc l) v) 13 st.last

  let verdict st =
    match st.bad with
    | None -> Ok
    | Some message -> Violation { kind = "maxreg-monotonic"; liveness = false; message }
end

(* Recoverable agreement (Golab's crash–recovery model): agreement across
   incarnations.  Per pid the first decision is remembered; a later decide
   by the same pid is a re-decision by a post-crash incarnation and must
   match, and decisions across pids must agree as usual.  Functionally this
   refines [Agreement]'s verdict with {e which} kind of conflict occurred —
   the cross-incarnation flip is the signature failure of non-recoverable
   protocols.  Crash-free the monitor never sees a second decide for a pid,
   so it degenerates to plain agreement. *)
module Recoverable_agreement = struct
  (* [decided] is sorted by pid so the digest is canonical *)
  type state = { decided : (int * int) list; bad : string option }

  let name = "recoverable-agreement"
  let wants_probes = true
  let wants_accesses = false
  let commute_safe = true (* verdict is a function of the per-pid decision sequences *)
  let symmetric_safe = false (* pid-indexed state *)
  let init ~n:_ ~inputs:_ = { decided = []; bad = None }
  let on_step st ~pid:_ = st
  let on_access st ~pid:_ ~loc:_ ~value:_ = st

  let rec put pid v = function
    | [] -> [ (pid, v) ]
    | (p, _) :: _ as list when p > pid -> (pid, v) :: list
    | entry :: rest -> entry :: put pid v rest

  let on_decide st ~pid ~value =
    match st.bad with
    | Some _ -> st
    | None ->
      (match List.assoc_opt pid st.decided with
       | Some prev when prev <> value ->
         {
           st with
           bad =
             Some
               (Printf.sprintf
                  "recoverable-agreement: process %d decided %d after its pre-crash \
                   incarnation decided %d"
                  pid value prev);
         }
       | Some _ -> st
       | None ->
         (match
            List.find_map
              (fun (q, w) -> if w <> value then Some (q, w) else None)
              st.decided
          with
          | Some (q, w) ->
            {
              st with
              bad =
                Some
                  (Printf.sprintf
                     "recoverable-agreement: process %d decided %d but process %d \
                      decided %d"
                     pid value q w);
            }
          | None -> { st with decided = put pid value st.decided }))

  (* a probe's complete decision set is crash-free from here on, so only the
     cross-pid half applies *)
  let on_probe st = function
    | Probe_decided { decisions; _ } ->
      List.fold_left (fun st (pid, value) -> on_decide st ~pid ~value) st decisions
    | Probe_stuck _ | Probe_starved _ -> st

  let digest st =
    match st.bad with
    | Some _ -> 0x7f5
    | None -> List.fold_left (fun acc (p, v) -> mix (mix acc p) v) 19 st.decided

  let verdict st =
    match st.bad with
    | None -> Ok
    | Some message ->
      Violation { kind = "recoverable-agreement"; liveness = false; message }
end

(* Recoverable validity: every decision of every incarnation was some
   process's input.  Same latch as [Validity], checked on every decide —
   including post-crash re-decisions — under its own kind. *)
module Recoverable_validity = struct
  type state = { valid : int -> bool; bad : string option }

  let name = "recoverable-validity"
  let wants_probes = true
  let wants_accesses = false
  let commute_safe = true
  let symmetric_safe = true

  let init ~n:_ ~inputs =
    let inputs = Array.copy inputs in
    { valid = (fun v -> Array.exists (fun i -> i = v) inputs); bad = None }

  let on_step st ~pid:_ = st
  let on_access st ~pid:_ ~loc:_ ~value:_ = st

  let latch st v =
    if st.valid v then st
    else
      {
        st with
        bad =
          Some (Printf.sprintf "recoverable-validity: %d decided but never proposed" v);
      }

  let on_decide st ~pid:_ ~value =
    match st.bad with Some _ -> st | None -> latch st value

  let on_probe st = function
    | Probe_decided { decisions; _ } when st.bad = None ->
      List.fold_left (fun st (_, v) -> latch st v) st decisions
    | _ -> st

  let digest st = match st.bad with Some _ -> 0x7f6 | None -> 23

  let verdict st =
    match st.bad with
    | None -> Ok
    | Some message -> Violation { kind = "recoverable-validity"; liveness = false; message }
end

let agreement : t = (module Agreement)
let validity : t = (module Validity)
let solo_termination : t = (module Solo_termination)
let maxreg_monotonic : t = (module Maxreg_monotonic)
let recoverable_agreement : t = (module Recoverable_agreement)
let recoverable_validity : t = (module Recoverable_validity)
let defaults = [ agreement; validity; solo_termination ]

(* -------------------------------------------------------- combinators -- *)

let all set : t =
  let module A = struct
    type state = Run.t

    let name =
      "all(" ^ String.concat "," (List.map (fun (module O : S) -> O.name) set) ^ ")"

    let wants_probes = List.exists (fun (module O : S) -> O.wants_probes) set
    let wants_accesses = List.exists (fun (module O : S) -> O.wants_accesses) set
    let commute_safe = List.for_all (fun (module O : S) -> O.commute_safe) set
    let symmetric_safe = List.for_all (fun (module O : S) -> O.symmetric_safe) set
    let init ~n ~inputs = Run.make set ~n ~inputs
    let on_step st ~pid = Run.step st ~pid
    let on_access st ~pid ~loc ~value = Run.access st ~pid ~loc ~value
    let on_decide st ~pid ~value = Run.decide st ~pid ~value
    let on_probe st outcome = Run.probe st outcome
    let digest = Run.digest

    let verdict st =
      match Run.verdict st with
      | None -> Ok
      | Some (kind, liveness, message) -> Violation { kind; liveness; message }
  end in
  (module A)

let named rename (module O : S) : t =
  let module N = struct
    include O

    let name = rename

    let verdict st =
      match O.verdict st with
      | Ok -> Ok
      | Violation v -> Violation { v with kind = rename }
  end in
  (module N)

let per_pid (module O : S) : t =
  let module PP = struct
    type state = O.state array

    let name = "per-pid(" ^ O.name ^ ")"
    let wants_probes = O.wants_probes
    let wants_accesses = O.wants_accesses

    (* Filtering to one pid's own event subsequence commutes with reordering
       independent steps (two steps of the same process are never reordered),
       so the inner observer's commute-safety carries over; the product is
       pid-indexed, so it is never symmetric-safe. *)
    let commute_safe = O.commute_safe
    let symmetric_safe = false
    let init ~n ~inputs = Array.init n (fun _ -> O.init ~n ~inputs)

    let route st pid f =
      if pid < 0 || pid >= Array.length st then st
      else begin
        let s = st.(pid) in
        let s' = f s in
        if s' == s then st
        else begin
          let st = Array.copy st in
          st.(pid) <- s';
          st
        end
      end

    let on_step st ~pid = route st pid (fun s -> O.on_step s ~pid)
    let on_access st ~pid ~loc ~value = route st pid (fun s -> O.on_access s ~pid ~loc ~value)
    let on_decide st ~pid ~value = route st pid (fun s -> O.on_decide s ~pid ~value)
    let on_probe st outcome = route st (probe_pid outcome) (fun s -> O.on_probe s outcome)
    let digest st = Array.fold_left (fun acc s -> mix acc (O.digest s)) 17 st

    let verdict st =
      let n = Array.length st in
      let rec go i =
        if i >= n then Ok
        else begin
          match O.verdict st.(i) with
          | Ok -> go (i + 1)
          | Violation v ->
            Violation { v with message = Printf.sprintf "p%d: %s" i v.message }
        end
      in
      go 0
  end in
  (module PP)

(* ----------------------------------------------------------- registry -- *)

let known =
  [
    ("agreement", "no two processes decide different values");
    ("validity", "every decided value was some process's input");
    ("solo-termination", "every solo probe decides (obstruction-freedom) and the probe chain terminates");
    ("lockout", "a fairly scheduled process decides within its patience (liveness under Sched.fair)");
    ("maxreg-monotonic", "integer values observed per location never decrease");
    ("recoverable-agreement", "decisions agree across processes and across crash-recovery incarnations");
    ("recoverable-validity", "every incarnation's decision was some process's input");
  ]

let of_name = function
  | "agreement" -> Stdlib.Ok agreement
  | "validity" -> Stdlib.Ok validity
  | "solo-termination" -> Stdlib.Ok solo_termination
  | "lockout" -> Stdlib.Ok (lockout ())
  | "maxreg-monotonic" -> Stdlib.Ok maxreg_monotonic
  | "recoverable-agreement" -> Stdlib.Ok recoverable_agreement
  | "recoverable-validity" -> Stdlib.Ok recoverable_validity
  | other ->
    Stdlib.Error
      (Printf.sprintf "unknown observer %S (known: %s, or `default')" other
         (String.concat ", " (List.map fst known)))

let of_names names =
  List.fold_right
    (fun name acc ->
      match acc with
      | Stdlib.Error _ as e -> e
      | Stdlib.Ok tail ->
        (match name with
         | "default" -> Stdlib.Ok (defaults @ tail)
         | name ->
           (match of_name name with
            | Stdlib.Ok o -> Stdlib.Ok (o :: tail)
            | Stdlib.Error _ as e -> e)))
    names (Stdlib.Ok [])
