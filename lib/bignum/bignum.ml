(* Sign-magnitude arbitrary-precision integers.

   The magnitude is a little-endian array of base-2^31 digits with no
   trailing zero digit; the magnitude of zero is the empty array.  All
   digit products and carries fit in OCaml's 63-bit native ints. *)

let base_bits = 31
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* Strip trailing zero digits and normalise the sign of zero. *)
let make sign mag =
  let n = Array.length mag in
  let rec significant i = if i > 0 && mag.(i - 1) = 0 then significant (i - 1) else i in
  let k = significant n in
  if k = 0 then zero
  else if k = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 k }

(* Build directly from a signed value with |v| < 2^62 — at most two
   base-2^31 digits, allocated without the generic renormalising copy.
   This is the single-digit fast-path constructor the arithmetic below
   leans on: model-checked protocols overwhelmingly compute on cell values
   that fit one digit. *)
let of_small v =
  if v = 0 then zero
  else begin
    let sign = if v < 0 then -1 else 1 in
    let m = Stdlib.abs v in
    let d1 = m lsr base_bits in
    { sign; mag = (if d1 = 0 then [| m |] else [| m land base_mask; d1 |]) }
  end

let of_int i =
  if i = Stdlib.min_int then
    (* |min_int| = 2^62, i.e. bit 0 of the third base-2^31 digit. *)
    { sign = -1; mag = [| 0; 0; 1 |] }
  else of_small i

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0

(* Compare magnitudes. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0

(* [compare x (of_int y)] without building the bignum.  Any non-min_int
   native magnitude fits in at most two base-2^31 digits (|y| <= 2^62 - 1);
   min_int's magnitude is exactly 2^62, whose precomputed representation is
   the only allocation-free way to avoid [abs min_int] overflowing. *)
let min_int_big = { sign = -1; mag = [| 0; 0; 1 |] }

let compare_int x y =
  if y = 0 then Stdlib.compare x.sign 0
  else if y = Stdlib.min_int then compare x min_int_big
  else begin
    let ys = if y < 0 then -1 else 1 in
    if x.sign <> ys then Stdlib.compare x.sign ys
    else begin
      let m = Stdlib.abs y in
      let d0 = m land base_mask in
      let d1 = m lsr base_bits in
      let ylen = if d1 <> 0 then 2 else 1 in
      let xlen = Array.length x.mag in
      let c =
        if xlen <> ylen then Stdlib.compare xlen ylen
        else if xlen = 2 then begin
          let c1 = Stdlib.compare x.mag.(1) d1 in
          if c1 <> 0 then c1 else Stdlib.compare x.mag.(0) d0
        end
        else Stdlib.compare x.mag.(0) d0
      in
      if x.sign < 0 then -c else c
    end
  end

let equal_int x y = compare_int x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let out = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let da = if i < la then a.(i) else 0 and db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  out.(l) <- !carry;
  out

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let d = a.(i) - db - !borrow in
    if d < 0 then begin out.(i) <- d + base; borrow := 1 end
    else begin out.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  out

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if Array.length x.mag = 1 && Array.length y.mag = 1 then
    (* single-digit operands: one machine-int add replaces the carry loop
       and the renormalising copy — the overwhelmingly common case in the
       model checker's arithmetic instruction sets *)
    of_small ((x.sign * x.mag.(0)) + (y.sign * y.mag.(0)))
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)
let succ x = add x one
let pred x = sub x one

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else if Array.length x.mag = 1 && Array.length y.mag = 1 then
    (* single-digit operands: the product of two base-2^31 digits fits a
       native int (< 2^62), skipping the schoolbook loop entirely *)
    of_small (x.sign * y.sign * (x.mag.(0) * y.mag.(0)))
  else begin
    let a = x.mag and b = y.mag in
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + out.(i + j) + !carry in
        out.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      (* Propagate the final carry; it fits in one digit. *)
      let k = ref (i + lb) in
      let c = ref !carry in
      while !c <> 0 do
        let t = out.(!k) + !c in
        out.(!k) <- t land base_mask;
        c := t lsr base_bits;
        incr k
      done
    done;
    make (x.sign * y.sign) out
  end

let add_int x i = add x (of_int i)
let mul_int x i = mul x (of_int i)

let divmod_small x d =
  if d <= 0 || d >= base then invalid_arg "Bignum.divmod_small: divisor out of range";
  if x.sign = 0 then (zero, 0)
  else if Array.length x.mag = 1 then begin
    let m = x.mag.(0) in
    (of_small (x.sign * (m / d)), x.sign * (m mod d))
  end
  else begin
    let a = x.mag in
    let l = Array.length a in
    let q = Array.make l 0 in
    let rem = ref 0 in
    for i = l - 1 downto 0 do
      let cur = (!rem lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (make x.sign q, x.sign * !rem)
  end

let num_bits x =
  let l = Array.length x.mag in
  if l = 0 then 0
  else begin
    let top = x.mag.(l - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((l - 1) * base_bits) + width 0 top
  end

let bit x i =
  if i < 0 then invalid_arg "Bignum.bit";
  let digit = i / base_bits and off = i mod base_bits in
  digit < Array.length x.mag && (x.mag.(digit) lsr off) land 1 = 1

let set_bit x i =
  if i < 0 then invalid_arg "Bignum.set_bit";
  let digit = i / base_bits and off = i mod base_bits in
  let l = Stdlib.max (Array.length x.mag) (digit + 1) in
  let mag = Array.make l 0 in
  Array.blit x.mag 0 mag 0 (Array.length x.mag);
  mag.(digit) <- mag.(digit) lor (1 lsl off);
  make (if x.sign = 0 then 1 else x.sign) mag

let shift_left x k =
  if k < 0 then invalid_arg "Bignum.shift_left";
  if x.sign = 0 || k = 0 then x
  else begin
    let digit = k / base_bits and off = k mod base_bits in
    let la = Array.length x.mag in
    let out = Array.make (la + digit + 1) 0 in
    for i = 0 to la - 1 do
      let v = x.mag.(i) lsl off in
      out.(i + digit) <- out.(i + digit) lor (v land base_mask);
      out.(i + digit + 1) <- v lsr base_bits
    done;
    make x.sign out
  end

let shift_right x k =
  if k < 0 then invalid_arg "Bignum.shift_right";
  if x.sign = 0 || k = 0 then x
  else begin
    let digit = k / base_bits and off = k mod base_bits in
    let la = Array.length x.mag in
    if digit >= la then zero
    else begin
      let l = la - digit in
      let out = Array.make l 0 in
      for i = 0 to l - 1 do
        let lo = x.mag.(i + digit) lsr off in
        let hi =
          if off = 0 || i + digit + 1 >= la then 0
          else (x.mag.(i + digit + 1) lsl (base_bits - off)) land base_mask
        in
        out.(i) <- lo lor hi
      done;
      make x.sign out
    end
  end

(* Binary long division on magnitudes: simple, O(bits * digits), and easy to
   trust.  Divisions in this codebase are by small moduli or rare, so
   simplicity wins over Knuth's algorithm D. *)
let divmod x y =
  if y.sign = 0 then raise Division_by_zero;
  let ax = abs x and ay = abs y in
  if cmp_mag ax.mag ay.mag < 0 then (zero, x)
  else begin
    let n = num_bits ax in
    let q = ref zero and r = ref zero in
    for i = n - 1 downto 0 do
      r := shift_left !r 1;
      if bit ax i then r := add !r one;
      if compare !r ay >= 0 then begin
        r := sub !r ay;
        q := set_bit !q i
      end
    done;
    let qs = x.sign * y.sign in
    let q = if qs < 0 then neg !q else !q in
    let r = if x.sign < 0 then neg !r else !r in
    (q, r)
  end

let pow b e =
  if e < 0 then invalid_arg "Bignum.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let to_int x =
  if Array.length x.mag <= 2 then
    (* at most 62 significant bits: always representable *)
    Some
      (match x.mag with
       | [||] -> 0
       | [| d0 |] -> x.sign * d0
       | m -> x.sign * ((m.(1) lsl base_bits) lor m.(0)))
  else begin
  (* An int fits iff the magnitude has at most 62 significant bits (or is
     exactly 2^62 for min_int). *)
  let n = num_bits x in
  if n = 0 then Some 0
  else if n <= 62 then begin
    let v = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor x.mag.(i)
    done;
    Some (x.sign * !v)
  end
  else if n = 63 && x.sign < 0 && equal x (of_int Stdlib.min_int) then Some Stdlib.min_int
  else None
  end

let to_int_exn x =
  match to_int x with
  | Some i -> i
  | None -> invalid_arg "Bignum.to_int_exn: out of range"

let valuation x p =
  if p <= 1 then invalid_arg "Bignum.valuation";
  if x.sign = 0 then (0, zero)
  else if Array.length x.mag = 1 then begin
    (* single-digit magnitude: strip factors of [p] on machine ints *)
    let rec go k m = if m mod p = 0 then go (k + 1) (m / p) else (k, of_small (x.sign * m)) in
    go 0 x.mag.(0)
  end
  else begin
    let rec go k v =
      let q, r = divmod_small v p in
      if r = 0 && not (is_zero q) then go (k + 1) q
      else if r = 0 && is_zero q then (k + 1, zero)
      else (k, v)
    in
    go 0 x
  end

let digits x b =
  if b <= 1 || b >= base then invalid_arg "Bignum.digits";
  let rec go acc v =
    if is_zero v then List.rev acc
    else begin
      let q, r = divmod_small v b in
      go (Stdlib.abs r :: acc) q
    end
  in
  go [] (abs x)

let to_string x =
  if x.sign = 0 then "0"
  else begin
    (* Chunks of 9 decimal digits per division keep this linear-ish. *)
    let chunk = 1_000_000_000 in
    let rec go acc v =
      if is_zero v then acc
      else begin
        let q, r = divmod_small v chunk in
        go (r :: acc) q
      end
    in
    let parts = go [] (abs x) in
    let buf = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match parts with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "%09d" p)) rest);
    Buffer.contents buf
  end

let of_string s =
  let l = String.length s in
  if l = 0 then invalid_arg "Bignum.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= l then invalid_arg "Bignum.of_string: no digits";
  let v = ref zero in
  for i = start to l - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bignum.of_string: bad digit";
    v := add_int (mul_int !v 10) (Char.code c - Char.code '0')
  done;
  if negative then neg !v else !v

let hash x =
  Array.fold_left (fun acc d -> (acc * 65599) + d) (x.sign + 17) x.mag land Stdlib.max_int

(* Folds the base-2^31 digits of [i] exactly as [hash (of_int i)] would,
   without building the digit array. *)
let hash_of_int i =
  if i = 0 then 17
  else if i = Stdlib.min_int then hash (of_int Stdlib.min_int)
  else begin
    let acc = ref ((if i < 0 then -1 else 1) + 17) in
    let m = ref (Stdlib.abs i) in
    while !m <> 0 do
      acc := (!acc * 65599) + (!m land base_mask);
      m := !m lsr base_bits
    done;
    !acc land Stdlib.max_int
  end

let pp ppf x = Format.pp_print_string ppf (to_string x)
