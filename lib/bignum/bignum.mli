(** Arbitrary-precision signed integers.

    The paper's model assumes memory locations hold unbounded integers: the
    prime-product encoding of Theorem 3.3, the base-[3n] counter encoding,
    and the [(x+1)*y^r] max-register encoding all overflow machine words
    almost immediately.  This module restores the unbounded-word assumption.

    Numbers are immutable.  All operations are total except where
    documented. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some i] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Invalid_argument when the value does not fit in an [int]. *)

val of_string : string -> t
(** Decimal, with an optional leading ['-'].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation, e.g. ["-12345"]. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool

val compare_int : t -> int -> int
(** [compare_int x y = compare x (of_int y)] without allocating the bignum —
    the fast path for the mixed native/arbitrary-precision comparisons in
    [Value.compare], which sit on the model checker's hot loop. *)

val equal_int : t -> int -> bool
(** [equal_int x y = compare_int x y = 0]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncating towards zero,
    so [r] has the sign of [a] and [|r| < |b|].
    @raise Division_by_zero when [b] is zero. *)

val divmod_small : t -> int -> t * int
(** Specialised [divmod] by a non-zero native divisor with
    [0 < divisor < 2^31]; much faster than the general routine.
    @raise Invalid_argument when the divisor is out of range. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0].
    @raise Invalid_argument on a negative exponent. *)

val add_int : t -> int -> t
val mul_int : t -> int -> t

(** {1 Bit operations}

    Bits are those of the magnitude; these are used by the set-bit
    instruction encodings, which only ever apply to non-negative values. *)

val bit : t -> int -> bool
(** [bit x i] is bit [i] (little-endian) of [|x|]. *)

val set_bit : t -> int -> t
(** [set_bit x i] sets bit [i] of [|x|] to one, preserving the sign
    ([set_bit zero i] is positive). *)

val num_bits : t -> int
(** Number of significant bits of [|x|]; [0] for zero. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude, sign preserved. *)

(** {1 Number theory helpers} *)

val valuation : t -> int -> int * t
(** [valuation x p] is [(k, x/p^k)] where [p^k] is the largest power of the
    small base [p > 1] dividing [x].  [valuation zero p] is [(0, zero)]. *)

val digits : t -> int -> int list
(** [digits x b] are the base-[b] digits of [|x|], least significant first;
    empty for zero.  [b] must satisfy [1 < b < 2^31]. *)

(** {1 Misc} *)

val hash : t -> int

val hash_of_int : int -> int
(** [hash_of_int i = hash (of_int i)] without allocating the bignum — the
    fast path for hashing native integers that must agree with their
    arbitrary-precision representation (e.g. [Value.Int] vs [Value.Big]). *)

val pp : Format.formatter -> t -> unit
