open Model

type cell = Value.t
type op = Read | Write of Value.t | Tas
type result = Value.t

let name = "{read(), write(x), test-and-set()}"
let init = Value.Bot

(* test-and-set on a register: an unset cell is claimed (set to 1) and the
   caller learns it won (0); a set cell is left alone and the caller learns
   it lost (1).  The conventional 0 = won / 1 = lost return values of the
   one-shot TAS object. *)
let apply op c =
  match op with
  | Read -> (c, c)
  | Write v -> (v, Value.Unit)
  | Tas -> if Value.equal c Value.Bot then (Value.Int 1, Value.Int 0) else (c, Value.Int 1)

let trivial = function Read -> true | Write _ -> false | Tas -> false

(* Reads reorder freely and same-value writes do too (as in {!Rw}); TAS
   commutes with nothing, not even another TAS — on an unset cell exactly
   one of the pair wins and the winner depends on the order. *)
let commutes a b =
  match (a, b) with
  | Read, Read -> true
  | Write x, Write y -> Value.equal x y
  | _ -> false

let multi_assignment = false
let equal_cell = Value.equal
let hash_cell = Value.hash
let hash_result = Value.hash
let observe_result = Value.observe_int
let pp_cell = Value.pp
let pp_result = Value.pp

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "read()"
  | Write v -> Format.fprintf ppf "write(%a)" Value.pp v
  | Tas -> Format.pp_print_string ppf "test-and-set()"

let sample_values = [ Value.Bot; Value.Int 0; Value.Int 1; Value.Int 2 ]
let sample_cells = Iset.memo (fun () -> sample_values)

let sample_ops =
  Iset.memo (fun () -> Read :: Tas :: List.map (fun v -> Write v) sample_values)

let read loc = Proc.access loc Read
let write loc v = Proc.map ignore (Proc.access loc (Write v))

let tas loc =
  Proc.map (fun r -> Value.equal r (Value.Int 0)) (Proc.access loc Tas)
