open Model

type cell = Bignum.t
type op = Read_max | Write_max of Bignum.t
type result = Value.t

let name = "{read-max(), write-max(x)}"
let init = Bignum.zero

let apply op c =
  match op with
  | Read_max -> (c, Value.Big c)
  | Write_max x -> (Bignum.max c x, Value.Unit)

let trivial = function Read_max -> true | Write_max _ -> false

(* max is commutative and write-max returns unit, so any two write-max
   invocations are independent — the heart of why max-registers sit low in
   the hierarchy. *)
let commutes a b =
  match (a, b) with
  | Read_max, Read_max | Write_max _, Write_max _ -> true
  | _ -> false

let multi_assignment = false
let equal_cell = Bignum.equal
let hash_cell = Bignum.hash
let hash_result = Value.hash
let observe_result = Value.observe_int
let pp_cell = Bignum.pp
let pp_result = Value.pp

let pp_op ppf = function
  | Read_max -> Format.pp_print_string ppf "read-max()"
  | Write_max x -> Format.fprintf ppf "write-max(%a)" Bignum.pp x

let sample_bigs = List.map Bignum.of_int [ 0; 1; 2; 5 ]
let sample_cells = Iset.memo (fun () -> sample_bigs)

let sample_ops =
  Iset.memo (fun () -> Read_max :: List.map (fun x -> Write_max x) sample_bigs)

let read_max loc = Proc.map Value.to_big_exn (Proc.access loc Read_max)
let write_max loc x = Proc.map ignore (Proc.access loc (Write_max x))
