(** The instruction set [{read(), write(x), test-and-set()}]: registers plus
    one-shot test-and-set bits — the classical consensus-number-2 base the
    crash–recovery separation is stated against (Golab, arXiv 1804.10597:
    TAS-based consensus does not survive crash–recovery, CAS-based does).

    [Tas] on an unset cell claims it (sets 1) and returns 0 ("won"); on a
    set cell it is a no-op returning 1 ("lost"). *)

type op = Read | Write of Model.Value.t | Tas

include
  Model.Iset.S
    with type cell = Model.Value.t
     and type op := op
     and type result = Model.Value.t

(** Typed process helpers. *)

val read : int -> (op, result, Model.Value.t) Model.Proc.t
val write : int -> Model.Value.t -> (op, result, unit) Model.Proc.t

val tas : int -> (op, result, bool) Model.Proc.t
(** [true] iff this call won the test-and-set. *)
