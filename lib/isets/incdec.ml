open Model

type cell = Bignum.t
type op = Read | Write of Bignum.t | Increment | Decrement
type result = Value.t

let name = "{read(), write(x), increment(), decrement()}"
let init = Bignum.zero

let apply op c =
  match op with
  | Read -> (c, Value.Big c)
  | Write x -> (x, Value.Unit)
  | Increment -> (Bignum.succ c, Value.Unit)
  | Decrement -> (Bignum.pred c, Value.Unit)

let trivial = function Read -> true | Write _ | Increment | Decrement -> false

(* increment and decrement both commute with each other (succ and pred
   compose in either order) and return unit; writes only with equal writes. *)
let commutes a b =
  match (a, b) with
  | Read, Read -> true
  | (Increment | Decrement), (Increment | Decrement) -> true
  | Write x, Write y -> Bignum.equal x y
  | _ -> false

let multi_assignment = false
let equal_cell = Bignum.equal
let hash_cell = Bignum.hash
let hash_result = Value.hash
let observe_result = Value.observe_int
let pp_cell = Bignum.pp
let pp_result = Value.pp

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "read()"
  | Write x -> Format.fprintf ppf "write(%a)" Bignum.pp x
  | Increment -> Format.pp_print_string ppf "increment()"
  | Decrement -> Format.pp_print_string ppf "decrement()"

let sample_cells =
  Iset.memo (fun () -> List.map Bignum.of_int [ 0; 1; -1; 2; -2; 3; -3 ])

let sample_ops =
  Iset.memo (fun () ->
      [ Read; Write Bignum.zero; Write Bignum.two; Increment; Decrement ])

let read loc = Proc.map Value.to_big_exn (Proc.access loc Read)
let write loc x = Proc.map ignore (Proc.access loc (Write x))
let increment loc = Proc.map ignore (Proc.access loc Increment)
let decrement loc = Proc.map ignore (Proc.access loc Decrement)
