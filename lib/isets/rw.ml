open Model

type cell = Value.t
type op = Read | Write of Value.t
type result = Value.t

let name = "{read(), write(x)}"
let init = Value.Bot

let apply op c =
  match op with
  | Read -> (c, c)
  | Write v -> (v, Value.Unit)

let trivial = function Read -> true | Write _ -> false

(* Two reads reorder freely; two writes of the {e same} value do too (the
   cell ends up holding that value either way and both return unit). *)
let commutes a b =
  match (a, b) with
  | Read, Read -> true
  | Write x, Write y -> Value.equal x y
  | _ -> false

let multi_assignment = false
let equal_cell = Value.equal
let hash_cell = Value.hash
let hash_result = Value.hash
let observe_result = Value.observe_int
let pp_cell = Value.pp
let pp_result = Value.pp

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "read()"
  | Write v -> Format.fprintf ppf "write(%a)" Value.pp v

let sample_values = [ Value.Bot; Value.Int 0; Value.Int 1; Value.Int 2 ]
let sample_cells = Iset.memo (fun () -> sample_values)
let sample_ops = Iset.memo (fun () -> Read :: List.map (fun v -> Write v) sample_values)

let read loc = Proc.access loc Read
let write loc v = Proc.map ignore (Proc.access loc (Write v))
