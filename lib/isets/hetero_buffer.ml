open Model

type op = Buf_read of int | Buf_write of int * Value.t

type cell = int * Value.t list
type result = Value.t

let name = "{l(r)-buffer-read(), l(r)-buffer-write(x)} (heterogeneous)"
let init = (0, [])

let pp_op ppf = function
  | Buf_read c -> Format.fprintf ppf "%d-buffer-read()" c
  | Buf_write (c, v) -> Format.fprintf ppf "%d-buffer-write(%a)" c Value.pp v

let capacity_of op = match op with Buf_read c | Buf_write (c, _) -> c

let check_capacity op (stored, entries) =
  let c = capacity_of op in
  if c < 1 then Format.kasprintf invalid_arg "hetero buffer: capacity %d < 1" c;
  if stored <> 0 && stored <> c then
    Format.kasprintf invalid_arg
      "hetero buffer: location has capacity %d but %a declares %d" stored pp_op op c;
  (c, entries)

let to_vector ~capacity newest_first =
  let v = Array.make capacity Value.Bot in
  List.iteri (fun i x -> v.(capacity - 1 - i) <- x) newest_first;
  v

let apply op cell =
  let c, entries = check_capacity op cell in
  match op with
  | Buf_read _ -> ((c, entries), Value.Vec (to_vector ~capacity:c entries))
  | Buf_write (_, x) ->
    let entries =
      x :: (if List.length entries >= c then List.filteri (fun i _ -> i < c - 1) entries
            else entries)
    in
    ((c, entries), Value.Unit)

let trivial = function Buf_read _ -> true | Buf_write _ -> false

(* Mismatched declared capacities raise in [apply], so we additionally require
   agreeing capacities before declaring a pair independent. *)
let commutes a b =
  match (a, b) with
  | Buf_read c1, Buf_read c2 -> c1 = c2
  | Buf_write (c1, x), Buf_write (c2, y) -> c1 = c2 && Value.equal x y
  | _ -> false

let multi_assignment = false

let equal_cell (c1, e1) (c2, e2) =
  c1 = c2 && List.length e1 = List.length e2 && List.for_all2 Value.equal e1 e2

let hash_cell (c, entries) =
  List.fold_left
    (fun acc x -> (acc * 0x100000001b3) lxor Value.hash x)
    ((c * 0x100000001b3) lxor List.length entries)
    entries

let hash_result = Value.hash
let observe_result = Value.observe_int

let pp_cell ppf (c, entries) =
  Format.fprintf ppf "cap=%d [%a]" c
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Value.pp)
    entries

let pp_result = Value.pp

(* Cells of capacities 1 and 2 plus the untouched cell; ops declare the same
   two capacities, so the linter's apply calls on mismatched (op, cell) pairs
   raise and are skipped as inapplicable. *)
let sample_cells =
  Iset.memo (fun () ->
      [ init; (1, [ Value.Int 0 ]); (2, [ Value.Int 1 ]); (2, [ Value.Int 0; Value.Int 1 ]) ])

let sample_ops =
  Iset.memo (fun () ->
      [ Buf_read 1; Buf_write (1, Value.Int 0); Buf_write (1, Value.Int 1);
        Buf_read 2; Buf_write (2, Value.Int 0) ])

let read ~capacities loc =
  Proc.map
    (function
      | Value.Vec v -> v
      | v -> Format.kasprintf invalid_arg "hetero buffer read returned %a" Value.pp v)
    (Proc.access loc (Buf_read (capacities loc)))

let write ~capacities loc v =
  Proc.map ignore (Proc.access loc (Buf_write (capacities loc, v)))
