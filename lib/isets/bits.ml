open Model

type flavour = Write1_only | Tas_only | Write01 | Tas_reset

type op = Read | Write0 | Write1 | Tas | Reset

let flavour_name = function
  | Write1_only -> "{read(), write(1)}"
  | Tas_only -> "{read(), test-and-set()}"
  | Write01 -> "{read(), write(1), write(0)}"
  | Tas_reset -> "{read(), test-and-set(), reset()}"

module Make (F : sig
  val flavour : flavour
end) =
struct
  type cell = bool
  type nonrec op = op
  type result = Value.t

  let name = flavour_name F.flavour
  let init = false

  let allowed = function
    | Read -> true
    | Write1 -> (match F.flavour with Write1_only | Write01 -> true | _ -> false)
    | Write0 -> F.flavour = Write01
    | Tas -> (match F.flavour with Tas_only | Tas_reset -> true | _ -> false)
    | Reset -> F.flavour = Tas_reset

  let pp_op ppf op =
    Format.pp_print_string ppf
      (match op with
       | Read -> "read()"
       | Write0 -> "write(0)"
       | Write1 -> "write(1)"
       | Tas -> "test-and-set()"
       | Reset -> "reset()")

  let apply op c =
    if not (allowed op) then
      Format.kasprintf invalid_arg "%s does not support %a" name pp_op op;
    match op with
    | Read -> (c, Value.Int (if c then 1 else 0))
    | Write0 | Reset -> (false, Value.Unit)
    | Write1 -> (true, Value.Unit)
    | Tas -> (true, Value.Int (if c then 1 else 0))

  let trivial = function Read -> true | Write0 | Write1 | Tas | Reset -> false

  (* write(1) pairs and clearing pairs (write(0)/reset()) land the bit in the
     same state and return unit; test-and-set returns the old bit, so it never
     commutes with anything that can change it (including another tas). *)
  let commutes a b =
    match (a, b) with
    | Read, Read | Write1, Write1 -> true
    | (Write0 | Reset), (Write0 | Reset) -> true
    | _ -> false

  let multi_assignment = false
  let equal_cell = Bool.equal
  let hash_cell c = if c then 1 else 0
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell ppf c = Format.pp_print_int ppf (if c then 1 else 0)
  let pp_result = Value.pp

  let sample_cells = Iset.memo (fun () -> [ false; true ])

  (* only the flavour's own instructions: [apply] rejects the others *)
  let sample_ops =
    Iset.memo (fun () -> List.filter allowed [ Read; Write0; Write1; Tas; Reset ])

  let read loc = Proc.map Value.to_int_exn (Proc.access loc Read)

  let write1 loc =
    let op = match F.flavour with Tas_only | Tas_reset -> Tas | _ -> Write1 in
    Proc.map ignore (Proc.access loc op)

  let write0 loc =
    let op =
      match F.flavour with
      | Write01 -> Write0
      | Tas_reset -> Reset
      | _ -> Format.kasprintf invalid_arg "%s cannot clear a location" name
    in
    Proc.map ignore (Proc.access loc op)

  let tas loc = Proc.map Value.to_int_exn (Proc.access loc Tas)
end
