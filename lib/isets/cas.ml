open Model

type cell = Value.t
type op = Cas of Value.t * Value.t
type result = Value.t

let name = "{compare-and-swap(x,y)}"
let init = Value.Bot

let apply (Cas (expected, desired)) c =
  if Value.equal c expected then (desired, c) else (c, c)

let trivial (Cas (expected, desired)) = Value.equal expected desired

(* compare-and-swap returns the old value, so any state-changing pair is
   order-sensitive; only two no-op CASes (expected = desired) commute. *)
let commutes a b = trivial a && trivial b

let multi_assignment = false
let equal_cell = Value.equal
let hash_cell = Value.hash
let hash_result = Value.hash
let observe_result = Value.observe_int
let pp_cell = Value.pp
let pp_result = Value.pp

let pp_op ppf (Cas (x, y)) =
  Format.fprintf ppf "compare-and-swap(%a, %a)" Value.pp x Value.pp y

let sample_values = [ Value.Bot; Value.Int 0; Value.Int 1; Value.Int 2 ]
let sample_cells = Iset.memo (fun () -> sample_values)

let sample_ops =
  Iset.memo (fun () ->
      List.concat_map
        (fun x -> List.map (fun y -> Cas (x, y)) sample_values)
        sample_values)

let cas loc ~expected ~desired = Proc.access loc (Cas (expected, desired))
