open Model

(* Shared plumbing for instruction sets whose cells are integers. *)
let big_result b = Value.Big b

(* Shared cell sample for the integer-cell sets (the lint's bounded
   enumerators); sets with a different natural range override it. *)
let sample_ints is = List.map Bignum.of_int is

module Add = struct
  type cell = Bignum.t
  type op = Read | Add of Bignum.t
  type result = Value.t

  let name = "{read(), add(x)}"
  let init = Bignum.zero

  let apply op c =
    match op with
    | Read -> (c, big_result c)
    | Add x -> (Bignum.add c x, Value.Unit)

  let trivial = function Read -> true | Add _ -> false

  (* addition is commutative and add returns unit *)
  let commutes a b =
    match (a, b) with Read, Read | Add _, Add _ -> true | _ -> false

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp

  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read()"
    | Add x -> Format.fprintf ppf "add(%a)" Bignum.pp x

  let sample_cells = Iset.memo (fun () -> sample_ints [ 0; 1; 2; 5 ])

  let sample_ops =
    Iset.memo (fun () -> Read :: List.map (fun x -> Add x) (sample_ints [ 1; 2; 3 ]))

  let read loc = Proc.map Value.to_big_exn (Proc.access loc Read)
  let add loc x = Proc.map ignore (Proc.access loc (Add x))
end

module Mul = struct
  type cell = Bignum.t
  type op = Read | Mul of Bignum.t
  type result = Value.t

  let name = "{read(), multiply(x)}"

  (* The prime-product encoding wants an initial value of 1 (empty product);
     the paper initialises the location accordingly. *)
  let init = Bignum.one

  let apply op c =
    match op with
    | Read -> (c, big_result c)
    | Mul x -> (Bignum.mul c x, Value.Unit)

  let trivial = function Read -> true | Mul _ -> false

  (* multiplication is commutative and multiply returns unit *)
  let commutes a b =
    match (a, b) with Read, Read | Mul _, Mul _ -> true | _ -> false

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp

  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read()"
    | Mul x -> Format.fprintf ppf "multiply(%a)" Bignum.pp x

  let sample_cells = Iset.memo (fun () -> sample_ints [ 1; 2; 3; 6 ])

  let sample_ops =
    Iset.memo (fun () -> Read :: List.map (fun x -> Mul x) (sample_ints [ 2; 3; 5 ]))

  let read loc = Proc.map Value.to_big_exn (Proc.access loc Read)
  let mul loc x = Proc.map ignore (Proc.access loc (Mul x))
end

module Setbit = struct
  type cell = Bignum.t
  type op = Read | Set_bit of int
  type result = Value.t

  let name = "{read(), set-bit(x)}"
  let init = Bignum.zero

  let apply op c =
    match op with
    | Read -> (c, big_result c)
    | Set_bit i -> (Bignum.set_bit c i, Value.Unit)

  let trivial = function Read -> true | Set_bit _ -> false

  (* setting bits is idempotent and order-insensitive *)
  let commutes a b =
    match (a, b) with Read, Read | Set_bit _, Set_bit _ -> true | _ -> false

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp

  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read()"
    | Set_bit i -> Format.fprintf ppf "set-bit(%d)" i

  let sample_cells = Iset.memo (fun () -> sample_ints [ 0; 1; 2; 5 ])

  let sample_ops =
    Iset.memo (fun () -> [ Read; Set_bit 0; Set_bit 1; Set_bit 3 ])

  let read loc = Proc.map Value.to_big_exn (Proc.access loc Read)
  let set_bit loc i = Proc.map ignore (Proc.access loc (Set_bit i))
end

module Faa = struct
  type cell = Bignum.t
  type op = Fetch_add of Bignum.t
  type result = Value.t

  let name = "{fetch-and-add(x)}"
  let init = Bignum.zero

  let apply (Fetch_add x) c = (Bignum.add c x, big_result c)
  let trivial (Fetch_add x) = Bignum.is_zero x

  (* fetch-and-add returns the old value, so any non-trivial invocation is
     observed by the other's result *)
  let commutes a b = trivial a && trivial b

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp
  let pp_op ppf (Fetch_add x) = Format.fprintf ppf "fetch-and-add(%a)" Bignum.pp x

  let sample_cells = Iset.memo (fun () -> sample_ints [ 0; 1; 2; 5 ])

  let sample_ops =
    Iset.memo (fun () -> List.map (fun x -> Fetch_add x) (sample_ints [ 0; 1; 2 ]))

  let fetch_add loc x = Proc.map Value.to_big_exn (Proc.access loc (Fetch_add x))
  let read loc = fetch_add loc Bignum.zero
end

module Fam = struct
  type cell = Bignum.t
  type op = Fetch_mul of Bignum.t
  type result = Value.t

  let name = "{fetch-and-multiply(x)}"
  let init = Bignum.one

  let apply (Fetch_mul x) c = (Bignum.mul c x, big_result c)
  let trivial (Fetch_mul x) = Bignum.equal x Bignum.one

  let commutes a b = trivial a && trivial b
  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp
  let pp_op ppf (Fetch_mul x) = Format.fprintf ppf "fetch-and-multiply(%a)" Bignum.pp x

  let sample_cells = Iset.memo (fun () -> sample_ints [ 1; 2; 3; 6 ])

  let sample_ops =
    Iset.memo (fun () -> List.map (fun x -> Fetch_mul x) (sample_ints [ 1; 2; 3 ]))

  let fetch_mul loc x = Proc.map Value.to_big_exn (Proc.access loc (Fetch_mul x))
  let read loc = fetch_mul loc Bignum.one
end

module Decmul = struct
  type cell = Bignum.t
  type op = Read | Decrement | Multiply of int
  type result = Value.t

  let name = "{read(), decrement(), multiply(x)}"
  let init = Bignum.one

  let apply op c =
    match op with
    | Read -> (c, big_result c)
    | Decrement -> (Bignum.pred c, Value.Unit)
    | Multiply x -> (Bignum.mul_int c x, Value.Unit)

  let trivial = function Read -> true | Decrement | Multiply _ -> false

  (* decrements commute with decrements and multiplies with multiplies, but
     (c-1)·x ≠ c·x - 1: the mixed pair is order-sensitive *)
  let commutes a b =
    match (a, b) with
    | Read, Read | Decrement, Decrement | Multiply _, Multiply _ -> true
    | _ -> false

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp

  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read()"
    | Decrement -> Format.pp_print_string ppf "decrement()"
    | Multiply x -> Format.fprintf ppf "multiply(%d)" x

  let sample_cells = Iset.memo (fun () -> sample_ints [ 1; 2; 3; 0; -1 ])
  let sample_ops = Iset.memo (fun () -> [ Read; Decrement; Multiply 2; Multiply 3 ])

  let read loc = Proc.map Value.to_big_exn (Proc.access loc Read)
  let decrement loc = Proc.map ignore (Proc.access loc Decrement)
  let multiply loc x = Proc.map ignore (Proc.access loc (Multiply x))
end

module Faa2_tas = struct
  type cell = Bignum.t
  type op = Fetch_add2 | Tas
  type result = Value.t

  let name = "{fetch-and-add(2), test-and-set()}"
  let init = Bignum.zero

  let apply op c =
    match op with
    | Fetch_add2 -> (Bignum.add c Bignum.two, big_result c)
    | Tas ->
      let c' = if Bignum.is_zero c then Bignum.one else c in
      (c', big_result c)

  let trivial = function Fetch_add2 | Tas -> false

  (* both instructions return the old value: nothing commutes *)
  let commutes _ _ = false

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp

  let pp_op ppf = function
    | Fetch_add2 -> Format.pp_print_string ppf "fetch-and-add(2)"
    | Tas -> Format.pp_print_string ppf "test-and-set()"

  let sample_cells = Iset.memo (fun () -> sample_ints [ 0; 1; 2; 3 ])
  let sample_ops = Iset.memo (fun () -> [ Fetch_add2; Tas ])

  let fetch_add2 loc = Proc.map Value.to_big_exn (Proc.access loc Fetch_add2)
  let tas loc = Proc.map Value.to_big_exn (Proc.access loc Tas)
end
