open Model

type flavour = Increment_only | Fetch_increment

type op = Read | Write of Bignum.t | Increment | Fetch_incr

let flavour_name = function
  | Increment_only -> "{read(), write(x), increment()}"
  | Fetch_increment -> "{read(), write(x), fetch-and-increment()}"

module Make (F : sig
  val flavour : flavour
end) =
struct
  type cell = Bignum.t
  type nonrec op = op
  type result = Value.t

  let name = flavour_name F.flavour
  let init = Bignum.zero

  let allowed = function
    | Read | Write _ -> true
    | Increment -> F.flavour = Increment_only
    | Fetch_incr -> F.flavour = Fetch_increment

  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read()"
    | Write x -> Format.fprintf ppf "write(%a)" Bignum.pp x
    | Increment -> Format.pp_print_string ppf "increment()"
    | Fetch_incr -> Format.pp_print_string ppf "fetch-and-increment()"

  let apply op c =
    if not (allowed op) then
      Format.kasprintf invalid_arg "%s does not support %a" name pp_op op;
    match op with
    | Read -> (c, Value.Big c)
    | Write x -> (x, Value.Unit)
    | Increment -> (Bignum.succ c, Value.Unit)
    | Fetch_incr -> (Bignum.succ c, Value.Big c)

  let trivial = function Read -> true | Write _ | Increment | Fetch_incr -> false

  (* fetch-and-increment returns the old value, so only blind operations
     commute: reads, increments, and writes of the same value. *)
  let commutes a b =
    match (a, b) with
    | Read, Read | Increment, Increment -> true
    | Write x, Write y -> Bignum.equal x y
    | _ -> false

  let multi_assignment = false
  let equal_cell = Bignum.equal
  let hash_cell = Bignum.hash
  let hash_result = Value.hash
  let observe_result = Value.observe_int
  let pp_cell = Bignum.pp
  let pp_result = Value.pp

  let sample_cells = Iset.memo (fun () -> List.map Bignum.of_int [ 0; 1; 2; 3 ])

  let sample_ops =
    Iset.memo (fun () ->
        List.filter allowed
          [ Read; Write Bignum.zero; Write Bignum.one; Write Bignum.two;
            Increment; Fetch_incr ])

  let read loc = Proc.map Value.to_big_exn (Proc.access loc Read)
  let write loc x = Proc.map ignore (Proc.access loc (Write x))

  let increment loc =
    let op = match F.flavour with Increment_only -> Increment | Fetch_increment -> Fetch_incr in
    Proc.map ignore (Proc.access loc op)

  let fetch_increment loc =
    match F.flavour with
    | Fetch_increment -> Proc.map Value.to_big_exn (Proc.access loc Fetch_incr)
    | Increment_only ->
      Format.kasprintf invalid_arg "%s does not support fetch-and-increment" name
end
