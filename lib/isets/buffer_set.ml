open Model

type op = Buf_read | Buf_write of Value.t

module Make (C : sig
  val capacity : int
  val multi_assignment : bool
end) =
struct
  let () = if C.capacity < 1 then invalid_arg "Buffer_set.Make: capacity < 1"

  let capacity = C.capacity

  (* Newest-first list of the ≤ ℓ most recent writes. *)
  type cell = Value.t list

  type nonrec op = op
  type result = Value.t

  let name =
    let base = Printf.sprintf "{%d-buffer-read(), %d-buffer-write(x)}" capacity capacity in
    if C.multi_assignment then base ^ " + multiple assignment" else base

  let init = []

  let to_vector newest_first =
    let v = Array.make capacity Value.Bot in
    List.iteri (fun i x -> v.(capacity - 1 - i) <- x) newest_first;
    v

  let apply op c =
    match op with
    | Buf_read -> (c, Value.Vec (to_vector c))
    | Buf_write x ->
      let c' = x :: (if List.length c >= capacity then List.filteri (fun i _ -> i < capacity - 1) c else c) in
      (c', Value.Unit)

  let trivial = function Buf_read -> true | Buf_write _ -> false

  (* writes of distinct values leave the buffer in a different newest-first
     order, so only equal-value write pairs (and read pairs) commute *)
  let commutes a b =
    match (a, b) with
    | Buf_read, Buf_read -> true
    | Buf_write x, Buf_write y -> Value.equal x y
    | _ -> false

  let multi_assignment = C.multi_assignment

  let equal_cell a b = List.length a = List.length b && List.for_all2 Value.equal a b

  let hash_cell c =
    List.fold_left (fun acc x -> (acc * 0x100000001b3) lxor Value.hash x) (List.length c) c

  let hash_result = Value.hash
  let observe_result = Value.observe_int

  let pp_cell ppf c =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Value.pp)
      c

  let pp_result = Value.pp

  let pp_op ppf = function
    | Buf_read -> Format.fprintf ppf "%d-buffer-read()" capacity
    | Buf_write v -> Format.fprintf ppf "%d-buffer-write(%a)" capacity Value.pp v

  (* every newest-first stack over {0,1} up to min(capacity,2) deep: small
     but hits the truncation boundary when capacity ≤ 2 *)
  let sample_cells =
    Iset.memo (fun () ->
        let vals = [ Value.Int 0; Value.Int 1 ] in
        let depth1 = List.map (fun v -> [ v ]) vals in
        let depth2 =
          if capacity < 2 then []
          else List.concat_map (fun v -> List.map (fun w -> [ v; w ]) vals) vals
        in
        ([] :: depth1) @ depth2)

  let sample_ops =
    Iset.memo (fun () ->
        [ Buf_read; Buf_write (Value.Int 0); Buf_write (Value.Int 1) ])

  let read loc =
    Proc.map
      (function
        | Value.Vec v -> v
        | v -> Format.kasprintf invalid_arg "buffer read returned %a" Value.pp v)
      (Proc.access loc Buf_read)

  let write loc v = Proc.map ignore (Proc.access loc (Buf_write v))

  let write_many assignments =
    Proc.map ignore
      (Proc.multi_access (List.map (fun (loc, v) -> (loc, Buf_write v)) assignments))
end
