open Model

type cell = Value.t
type op = Read | Swap of Value.t
type result = Value.t

let name = "{read(), swap(x)}"
let init = Value.Bot

let apply op c =
  match op with
  | Read -> (c, c)
  | Swap v -> (v, c)

let trivial = function Read -> true | Swap _ -> false

(* Swaps return the old value, so even equal-argument swaps observe the
   order; only read pairs are independent. *)
let commutes a b = trivial a && trivial b

let multi_assignment = false
let equal_cell = Value.equal
let hash_cell = Value.hash
let hash_result = Value.hash
let observe_result = Value.observe_int
let pp_cell = Value.pp
let pp_result = Value.pp

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "read()"
  | Swap v -> Format.fprintf ppf "swap(%a)" Value.pp v

let sample_values = [ Value.Bot; Value.Int 0; Value.Int 1; Value.Int 2 ]
let sample_cells = Iset.memo (fun () -> sample_values)
let sample_ops = Iset.memo (fun () -> Read :: List.map (fun v -> Swap v) sample_values)

let read loc = Proc.access loc Read
let swap loc v = Proc.access loc (Swap v)
