(* Sharded transposition table over two-word configuration fingerprints.

   One table serves both the sequential [`Memo] engine (a single unlocked
   shard) and the parallel engine (N locked shards, shard chosen by the
   fingerprint's low bits so concurrent lookups of distinct states almost
   never contend).  Entries are {e claim lists}: each claim [(d, S)] records
   one exploration pass through the keyed configuration — "every enabled
   transition outside the sleep set [S] has been (or is being) explored to
   remaining depth [d]".  Claims are inserted before the subtree is walked,
   matching the sequential engine's historical replace-then-visit order; in
   the parallel engine this optimistic claim is sound because workers join
   before a [Completed] verdict is produced, and a stopped run reports
   [Timed_out]/[Falsified], never a completed exploration.

   [plan] implements sleep sets with state matching and partial
   re-exploration (Godefroid's Algorithm 5, generalized to depth-bounded
   claims): a revisit covered by some claim is pruned outright ([Hit]); a
   revisit at a depth no prior pass reached re-explores in full ([Visit]);
   and a revisit whose depth is covered but whose sleep set is incomparable
   re-explores {e only} the transitions every adequate prior pass had
   asleep ([Partial] carries their intersection).  The old single-entry
   table treated the third case as a full re-visit, which is where the
   commutativity reduction's config counts regressed past plain memoization
   on the RED bench. *)

type plan =
  | Hit
  | Visit
  | Partial of int

type shard = {
  mu : Mutex.t;
  (* (lane_a, lane_b) -> claims [(depth, sleep); ...], newest first; no
     claim dominates another *)
  tbl : (int * int, (int * int) list) Hashtbl.t;
}

type t = {
  shards : shard array;
  mask : int;
  concurrent : bool;
}

(* Keep claim lists short: claims only enable pruning, so dropping one costs
   re-exploration, never soundness. *)
let max_claims = 4

let create ?shards ~concurrent () =
  let shards =
    match shards with
    | Some s when s > 0 ->
      (* round up to a power of two so the low-bit mask is uniform *)
      let rec pow2 k = if k >= s then k else pow2 (k * 2) in
      pow2 1
    | _ -> if concurrent then 64 else 1
  in
  {
    shards =
      Array.init shards (fun _ -> { mu = Mutex.create (); tbl = Hashtbl.create 1024 });
    mask = shards - 1;
    concurrent;
  }

let shard_count t = Array.length t.shards

(* [covers (d1, s1) (d2, s2)]: a pass at depth [d1] from sleep set [s1]
   explores a superset of what a pass at depth [d2] from sleep set [s2]
   would. *)
let covers (d1, s1) (d2, s2) = d1 >= d2 && s1 land lnot s2 = 0

let locked shard f =
  Mutex.lock shard.mu;
  let r = try f () with e -> Mutex.unlock shard.mu; raise e in
  Mutex.unlock shard.mu;
  r

let plan t a b ~depth ~sleep =
  let shard = t.shards.(a land t.mask) in
  let decide () =
    let key = (a, b) in
    let claims = Option.value (Hashtbl.find_opt shard.tbl key) ~default:[] in
    if List.exists (fun c -> covers c (depth, sleep)) claims then Hit
    else begin
      (* prior passes deep enough to cover this revisit's subtrees *)
      let applicable = List.filter (fun (d', _) -> d' >= depth) claims in
      let claim, result =
        match applicable with
        | [] -> ((depth, sleep), Visit)
        | _ ->
          (* a transition needs (re-)exploration only if every adequate
             prior pass had it asleep *)
          let inter = List.fold_left (fun m (_, s') -> m land s') (-1) applicable in
          ((depth, sleep land inter), Partial inter)
      in
      let kept = List.filter (fun c -> not (covers claim c)) claims in
      let kept =
        (* cap the list; dropping the oldest surviving claim is sound *)
        if List.length kept >= max_claims then
          List.filteri (fun i _ -> i < max_claims - 1) kept
        else kept
      in
      Hashtbl.replace shard.tbl key (claim :: kept);
      result
    end
  in
  if t.concurrent then locked shard decide else decide ()

let stats t =
  Array.fold_left (fun acc s -> acc + Hashtbl.length s.tbl) 0 t.shards
