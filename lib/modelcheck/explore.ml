(* The exploration engines behind [Modelcheck.explore].

   Three engines share one DFS core:
   - [`Naive] is the original depth-first walk of every schedule.
   - [`Memo] adds a transposition table keyed on [Machine.fingerprint]:
     configurations reached by permuting independent (commuting) steps
     coincide and their subtrees are explored once.  Each entry remembers
     the largest remaining depth already explored from that configuration,
     so a revisit is pruned only when the stored exploration covers it.
   - [`Parallel k] grows a sequential BFS prefix until the frontier is wide
     enough to share, then [k] domains drain the frontier from a shared
     work queue, each running the memoized DFS with a domain-local table. *)

type engine = [ `Naive | `Memo | `Parallel of int ]
type probe_policy = [ `Leaves | `Everywhere | `Never ]

type stats = {
  configs : int;
  probes : int;
  truncated : bool;
  dedup_hits : int;
  elapsed : float;
}

type outcome = (stats, string) result

exception Violation of string

let violationf fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

let check_decisions ~inputs decisions =
  match decisions with
  | [] -> ()
  | (_, first) :: _ ->
    List.iter
      (fun (pid, v) ->
        if v <> first then
          violationf "agreement: process %d decided %d but %d was also decided" pid v first)
      decisions;
    if not (Array.exists (fun i -> i = first) inputs) then
      violationf "validity: %d decided but never proposed" first

module Run (P : Consensus.Proto.S) = struct
  module M = Model.Machine.Make (P.I)

  type counters = {
    mutable configs : int;
    mutable probes : int;
    mutable truncated : bool;
    mutable hits : int;
  }

  let fresh () = { configs = 0; probes = 0; truncated = false; hits = 0 }

  let merge into c =
    into.configs <- into.configs + c.configs;
    into.probes <- into.probes + c.probes;
    into.truncated <- into.truncated || c.truncated;
    into.hits <- into.hits + c.hits

  (* Run [pid] solo (it must decide — obstruction-freedom), then everyone
     else sequentially, and check the complete decision set. *)
  let probe_one ~solo_fuel ~inputs c cfg pid =
    c.probes <- c.probes + 1;
    let cfg, dec = M.run_solo ~fuel:solo_fuel ~pid cfg in
    (match dec with
     | None ->
       violationf "obstruction-freedom: process %d did not decide solo within %d steps"
         pid solo_fuel
     | Some _ -> ());
    let rec finish cfg =
      match M.running cfg with
      | [] -> cfg
      | q :: _ -> finish (fst (M.run_solo ~fuel:solo_fuel ~pid:q cfg))
    in
    let cfg = finish cfg in
    (match M.running cfg with
     | [] -> ()
     | q :: _ -> violationf "termination: process %d still undecided after solo runs" q);
    check_decisions ~inputs (M.decisions cfg)

  exception Stop

  (* The DFS core all engines share.  [table = None] is the naive engine;
     [Some tbl] prunes a revisited fingerprint whose stored remaining depth
     covers the current one.  [stop] aborts cooperatively (parallel mode). *)
  let dfs ~probe ~solo_fuel ~inputs ~table ~stop c cfg depth =
    let rec go cfg d =
      match table with
      | None -> visit cfg d
      | Some tbl ->
        let fp = M.fingerprint cfg in
        (match Hashtbl.find_opt tbl fp with
         | Some d' when d' >= d -> c.hits <- c.hits + 1
         | _ ->
           Hashtbl.replace tbl fp d;
           visit cfg d)
    and visit cfg d =
      if stop () then raise Stop;
      c.configs <- c.configs + 1;
      check_decisions ~inputs (M.decisions cfg);
      if M.running_count cfg > 0 then begin
        let running = M.running cfg in
        let at_bound = d <= 0 in
        if at_bound then c.truncated <- true;
        let should_probe =
          match probe with `Never -> false | `Leaves -> at_bound | `Everywhere -> true
        in
        if should_probe then List.iter (probe_one ~solo_fuel ~inputs c cfg) running;
        if not at_bound then List.iter (fun pid -> go (M.step cfg pid) (d - 1)) running
      end
    in
    go cfg depth

  let no_stop () = false

  (* Parallel frontier: a sequential BFS prefix visits the shallow
     configurations (so their checks and `Everywhere probes still run
     exactly once), then the unvisited frontier is deduped by fingerprint
     and drained by [domains] workers from a shared queue. *)
  let parallel ~domains ~probe ~solo_fuel ~inputs c root depth =
    let domains = max 1 domains in
    let target = max 16 (4 * domains) in
    let rec prefix level d =
      if d <= 0 || List.length level >= target then (level, d)
      else begin
        let next =
          List.concat_map
            (fun cfg ->
              c.configs <- c.configs + 1;
              check_decisions ~inputs (M.decisions cfg);
              if M.running_count cfg = 0 then []
              else begin
                let running = M.running cfg in
                if probe = `Everywhere then
                  List.iter (probe_one ~solo_fuel ~inputs c cfg) running;
                List.map (M.step cfg) running
              end)
            level
        in
        if next = [] then ([], d - 1) else prefix next (d - 1)
      end
    in
    let frontier, d = prefix [ root ] depth in
    let seen = Hashtbl.create 64 in
    let frontier =
      List.filter
        (fun cfg ->
          let fp = M.fingerprint cfg in
          if Hashtbl.mem seen fp then begin
            c.hits <- c.hits + 1;
            false
          end
          else begin
            Hashtbl.add seen fp ();
            true
          end)
        frontier
    in
    let items = Array.of_list frontier in
    let next_item = Atomic.make 0 in
    let stopped = Atomic.make false in
    let mu = Mutex.create () in
    let errors = ref [] in
    let worker_counters = ref [] in
    let worker () =
      let wc = fresh () in
      let table = Some (Hashtbl.create 4096) in
      let stop () = Atomic.get stopped in
      let rec loop () =
        if not (Atomic.get stopped) then begin
          let i = Atomic.fetch_and_add next_item 1 in
          if i < Array.length items then begin
            (match dfs ~probe ~solo_fuel ~inputs ~table ~stop wc items.(i) d with
             | () -> ()
             | exception Violation msg ->
               Mutex.lock mu;
               errors := (i, msg) :: !errors;
               Mutex.unlock mu;
               Atomic.set stopped true
             | exception Stop -> ());
            loop ()
          end
        end
      in
      loop ();
      Mutex.lock mu;
      worker_counters := wc :: !worker_counters;
      Mutex.unlock mu
    in
    let doms = List.init domains (fun _ -> Domain.spawn worker) in
    List.iter Domain.join doms;
    List.iter (merge c) !worker_counters;
    (* Report the violation of the earliest frontier item that found one,
       so the message is as deterministic as the work split allows. *)
    match List.sort compare !errors with
    | (_, msg) :: _ -> raise (Violation msg)
    | [] -> ()
end

let run ?(probe = `Leaves) ?(solo_fuel = 100_000) ?(engine = `Naive)
    (module P : Consensus.Proto.S) ~inputs ~depth =
  let module R = Run (P) in
  let n = Array.length inputs in
  let t0 = Unix.gettimeofday () in
  let c = R.fresh () in
  let root =
    R.M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
  in
  let result =
    try
      (match engine with
       | `Naive ->
         R.dfs ~probe ~solo_fuel ~inputs ~table:None ~stop:R.no_stop c root depth
       | `Memo ->
         R.dfs ~probe ~solo_fuel ~inputs ~table:(Some (Hashtbl.create 4096))
           ~stop:R.no_stop c root depth
       | `Parallel k -> R.parallel ~domains:k ~probe ~solo_fuel ~inputs c root depth);
      Ok ()
    with Violation msg -> Error msg
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats =
    {
      configs = c.configs;
      probes = c.probes;
      truncated = c.truncated;
      dedup_hits = c.hits;
      elapsed;
    }
  in
  match result with Ok () -> Ok stats | Error msg -> Error msg

type deepen_report = {
  depth_reached : int;
  complete : bool;
  last : stats;
  total_configs : int;
  total_elapsed : float;
}

let deepen ?(probe = `Leaves) ?(solo_fuel = 100_000) ?(engine = `Memo) ?(budget = 1.0)
    proto ~inputs ~max_depth =
  if max_depth < 1 then invalid_arg "Explore.deepen: max_depth < 1";
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let rec go d best =
    let out_of_budget = match best with Some _ -> elapsed () >= budget | None -> false in
    if d > max_depth || out_of_budget then Ok (Option.get best)
    else begin
      match run ~probe ~solo_fuel ~engine proto ~inputs ~depth:d with
      | Error e -> Error e
      | Ok s ->
        let total_configs =
          (match best with Some b -> b.total_configs | None -> 0) + s.configs
        in
        let b =
          {
            depth_reached = d;
            complete = not s.truncated;
            last = s;
            total_configs;
            total_elapsed = elapsed ();
          }
        in
        if not s.truncated then Ok b else go (d + 1) (Some b)
    end
  in
  go 1 None
