(* The exploration engines behind [Modelcheck.explore].

   Three engines share one DFS core:
   - [`Naive] is the original depth-first walk of every schedule.
   - [`Memo] adds a transposition table ([Transposition]) keyed on the
     two-word [Machine.fingerprint_words]: configurations reached by
     permuting independent (commuting) steps coincide and their subtrees
     are explored once.  Entries are claim lists remembering the remaining
     depths (and sleep sets) already explored from that configuration, so a
     revisit is pruned when covered — and only {e partially} re-explored
     when a prior pass covered the depth from an incomparable sleep set.
   - [`Parallel k] grows a sequential BFS prefix until the frontier is wide
     enough to share, then [k] domains drain the frontier from a shared
     work queue in batches, all updating one {e shared, sharded}
     transposition table — work one domain claims is never repeated by
     another, which is what domain-local tables used to do.

   Fingerprints are read off the machine's incrementally maintained
   two-lane digest (O(1) per configuration).  Setting the environment
   variable [SPACE_HIERARCHY_FP=fold] (or passing [~fingerprint_mode:`Fold])
   switches every engine to the original from-scratch fingerprint fold —
   the debug path the differential tests compare against.

   Every engine threads the schedule — the list of pids stepped from the
   root, plus the pid of the solo probe that exposed the violation, if any —
   to each configuration it visits.  A violation is therefore reported as a
   structured [witness] rather than a prose string: the witness replays
   deterministically through [Model.Machine] (regenerating the full event
   trace), and is shrunk by greedy segment deletion, keeping a candidate iff
   its replay still raises the same violation kind.

   On top of the engines sits an optional reduction layer ([reduction]):

   - Commutativity (sleep sets).  When two processes are poised at accesses
     that are independent — disjoint locations, or the same location with
     [I.commutes] instructions — stepping them in either order reaches the
     same configuration, so only one interleaving of the pair needs its
     subtree explored.  We use Godefroid-style sleep sets: after exploring
     sibling [p] at a node, [p] is put to sleep in the subtrees of its later
     siblings and stays asleep until a dependent step wakes it.  Sleep sets
     prune redundant {e transitions} but still visit every reachable
     configuration (at the same depth, since commuting schedules have equal
     length), so the per-configuration checks and probes see exactly the
     states they would without reduction.  Combined with the transposition
     table this needs care: a stored exploration only covers a revisit if it
     explored at least as deep {e and} from a sleep set no larger than the
     current one, so table entries store (depth, sleep set) and both are
     compared — with reduction off the sleep sets are always empty and the
     guard degenerates to the old depth-only check.

   - Process symmetry.  For pid-symmetric protocols (the process code
     ignores its pid except through its input), permuting the full states
     of equal-input processes yields an equivalent configuration, so the
     table can key on [Machine.canonical_fingerprint] instead of
     [Machine.fingerprint].  This is opt-in ([symmetric = true]) and
     unsound for pid-dependent protocols — see [Machine.mli].

     Because an over-eager [symmetric = true] silently corrupts the
     exploration (states conflated that the protocol distinguishes), the
     reduction is gated on [Analysis.Symmetry.certify_for_run]: every
     equal-input pid pair is certified pid-oblivious through the requested
     depth by lockstep symbolic unfolding.  An uncertified protocol raises
     [Uncertified_symmetry] instead of exploring unsoundly; [~force:true]
     overrides the gate (for experiments — e.g. measuring what the unsound
     reduction would prune), and [~notify_symmetry] surfaces the verdict to
     the caller either way.  Note the certificate's bounds: solo probes can
     run processes beyond the certified depth, so for probe-heavy runs the
     certificate is strong evidence rather than proof. *)

type engine = [ `Naive | `Memo | `Parallel of int ]
type probe_policy = [ `Leaves | `Everywhere | `Never ]
type fingerprint_mode = [ `Flat | `Fold ]

(* The debug escape hatch: [SPACE_HIERARCHY_FP=fold] forces every engine
   onto the original from-scratch fingerprint fold, read once at load. *)
let default_fingerprint_mode : fingerprint_mode =
  match Sys.getenv_opt "SPACE_HIERARCHY_FP" with
  | Some ("fold" | "FOLD" | "slow") -> `Fold
  | _ -> `Flat

type reduction = { commute : bool; symmetric : bool }

let no_reduction = { commute = false; symmetric = false }
let full_reduction = { commute = true; symmetric = true }

exception
  Uncertified_symmetry of { protocol : string; verdict : Analysis.Symmetry.verdict }

let () =
  Printexc.register_printer (function
    | Uncertified_symmetry { protocol; verdict } ->
      Some
        (Format.asprintf
           "Uncertified_symmetry: symmetric reduction refused for %s (%a); rerun with \
            ~force:true to override"
           protocol Analysis.Symmetry.pp_verdict verdict)
    | _ -> None)

exception Observer_unsafe_reduction of { observer : string; reduction : string }

let () =
  Printexc.register_printer (function
    | Observer_unsafe_reduction { observer; reduction } ->
      Some
        (Printf.sprintf
           "Observer_unsafe_reduction: observer %s declares the %s reduction unsound for \
            itself; drop the reduction or the observer, or rerun with ~force:true"
           observer reduction)
    | _ -> None)

(* The gate in front of every reduced observer run: an observer that
   declares a requested reduction unsafe ([commute_safe]/[symmetric_safe],
   see [Observer.S]) refuses the combination instead of exploring
   unsoundly.  [~force:true] overrides, mirroring the symmetry gate. *)
let observer_gate ~reduce ~force observers =
  if not force then begin
    match
      Observer.Run.first_unsafe ~commute:reduce.commute ~symmetric:reduce.symmetric
        observers
    with
    | None -> ()
    | Some (observer, reduction) -> raise (Observer_unsafe_reduction { observer; reduction })
  end

(* The gate in front of every [symmetric = true] exploration: certify the
   equal-input pid pairs of this run to (at least) the exploration depth.
   Certification is memoized in [Analysis.Symmetry], so engines, depths and
   repeated runs over the same (protocol, inputs) share the work. *)
let certify_gate ~reduce ~force ~notify (module P : Consensus.Proto.S) ~inputs ~depth =
  if reduce.symmetric then begin
    let depth = max depth Analysis.Symmetry.default_depth in
    let verdict =
      Analysis.Symmetry.certify_for_run (module P : Consensus.Proto.S) ~inputs ~depth
    in
    (match notify with Some f -> f verdict | None -> ());
    if (not (Analysis.Symmetry.certified verdict)) && not force then
      raise (Uncertified_symmetry { protocol = P.name; verdict })
  end

type violation_kind =
  [ `Agreement | `Validity | `Obstruction_freedom | `Termination | `Observer of string ]

let kind_name = function
  | `Agreement -> "agreement"
  | `Validity -> "validity"
  | `Obstruction_freedom -> "obstruction-freedom"
  | `Termination -> "termination"
  | `Observer s -> s

(* Observer verdict kinds name witnesses; the legacy names map back onto the
   legacy constructors so the observer-driven agreement/validity/probe checks
   report kinds indistinguishable from the hard-coded path (the differential
   tests compare them directly). *)
let kind_of_name : string -> violation_kind = function
  | "agreement" -> `Agreement
  | "validity" -> `Validity
  | "obstruction-freedom" -> `Obstruction_freedom
  | "termination" -> `Termination
  | s -> `Observer s

type witness = {
  kind : violation_kind;
  message : string;
  schedule : int list;
  probe : int option;
}

(* Crash–recover events ride along in the witness schedule as negative
   entries: [-(pid+1)] means "crash–recover process pid".  Ordinary pids are
   non-negative, so the encoding is unambiguous, survives the campaign
   store's JSON int lists unchanged, and shrinks like any other schedule
   entry (deleting a crash is just another deletion candidate; replay
   validates the remainder). *)
let crash_code pid = -(pid + 1)
let is_crash code = code < 0
let crash_pid code = -code - 1

type stats = {
  configs : int;
  probes : int;
  truncated : bool;
  dedup_hits : int;
  sleep_pruned : int;
  elapsed : float;
}

type failure = {
  witness : witness;
  original : witness;
  reproduced : bool;
  shrink_attempts : int;
  trace : string option;
  stats : stats;
  diagnosis_elapsed : float;
}

let failure_message f = f.witness.message

let pp_schedule_entry code =
  if is_crash code then "\xe2\x80\xa0p" ^ string_of_int (crash_pid code)
  else "p" ^ string_of_int code

let pp_witness ppf w =
  (* [message] already starts with "<kind>:"; a "†pN" entry is a
     crash–recover of process N *)
  Format.fprintf ppf "@[<v>%s@,schedule (%d steps): [%s]%s@]" w.message
    (List.length w.schedule)
    (String.concat " " (List.map pp_schedule_entry w.schedule))
    (match w.probe with
     | None -> ""
     | Some pid -> Printf.sprintf " then p%d solo" pid)

type timeout = { partial : stats; deadline : float }

type 'a verdict =
  | Completed of 'a
  | Falsified of failure
  | Timed_out of timeout

exception Violation of witness

(* Internal: a property check failed; the engine in whose context it fired
   attaches the schedule and re-raises [Violation]. *)
exception Check of violation_kind * string

let checkf kind fmt = Format.kasprintf (fun s -> raise (Check (kind, s))) fmt

let check_decisions ~inputs decisions =
  match decisions with
  | [] -> ()
  | (_, first) :: _ ->
    List.iter
      (fun (pid, v) ->
        if v <> first then
          checkf `Agreement "agreement: process %d decided %d but %d was also decided" pid v
            first)
      decisions;
    if not (Array.exists (fun i -> i = first) inputs) then
      checkf `Validity "validity: %d decided but never proposed" first

(* Mutable per-run counters, shared by all engines (each parallel worker
   gets its own and they are merged at the end). *)
type counters = {
  mutable configs : int;
  mutable probes : int;
  mutable truncated : bool;
  mutable hits : int;
  mutable sleeps : int;
}

let fresh () = { configs = 0; probes = 0; truncated = false; hits = 0; sleeps = 0 }

let merge into c =
  into.configs <- into.configs + c.configs;
  into.probes <- into.probes + c.probes;
  into.truncated <- into.truncated || c.truncated;
  into.hits <- into.hits + c.hits;
  into.sleeps <- into.sleeps + c.sleeps

let stats_of c ~elapsed =
  {
    configs = c.configs;
    probes = c.probes;
    truncated = c.truncated;
    dedup_hits = c.hits;
    sleep_pruned = c.sleeps;
    elapsed;
  }

module Run (P : Consensus.Proto.S) = struct
  module M = Model.Machine.Make (P.I)

  let root_config ~record_trace ~inputs =
    let n = Array.length inputs in
    M.make ~record_trace ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))

  (* [path] is the reversed schedule from the root; witnesses store it in
     execution order. *)
  let witness_of ~path ~probe (kind, message) =
    { kind; message; schedule = List.rev path; probe }

  let check ~inputs ~path cfg =
    match check_decisions ~inputs (M.decisions cfg) with
    | () -> ()
    | exception Check (k, m) -> raise (Violation (witness_of ~path ~probe:None (k, m)))

  (* One solo probe from [cfg]: run [pid] solo (it must decide —
     obstruction-freedom), then every other running process solo {e once
     each} — a non-deciding straggler must surface as a termination
     violation, not retry the same pid forever — and check the complete
     decision set.  Returns the final configuration and the violation the
     probe ran into, if any. *)
  let probe_steps ~solo_fuel ~inputs cfg pid =
    let cfg, dec = M.run_solo ~fuel:solo_fuel ~pid cfg in
    match dec with
    | None ->
      ( cfg,
        Some
          ( `Obstruction_freedom,
            Printf.sprintf
              "obstruction-freedom: process %d did not decide solo within %d steps" pid
              solo_fuel ) )
    | Some _ ->
      let cfg =
        List.fold_left
          (fun cfg q -> fst (M.run_solo ~fuel:solo_fuel ~pid:q cfg))
          cfg (M.running cfg)
      in
      (match M.running cfg with
       | q :: _ ->
         ( cfg,
           Some
             ( `Termination,
               Printf.sprintf "termination: process %d still undecided after solo runs" q
             ) )
       | [] ->
         (match check_decisions ~inputs (M.decisions cfg) with
          | () -> (cfg, None)
          | exception Check (k, m) -> (cfg, Some (k, m))))

  (* The same decision logic as [probe_steps], on a mutable scratch copy
     ([M.Scratch]) instead of the persistent machine.  Probe steps are the
     model checker's hot loop — every leaf probes every running process, and
     each probe chains full solo runs — but none of their intermediate
     configurations is fingerprinted or branched from, so the in-place
     workspace does the same stepping several times faster.  [probe_steps]
     stays as the persistent reference: [replay] uses it (witness replays
     want the event trace) and the differential tests pin the two paths to
     identical violations. *)
  let probe_violation ~solo_fuel ~inputs cfg pid =
    let s = M.Scratch.of_config cfg in
    match M.Scratch.run_solo ~fuel:solo_fuel ~pid s with
    | None ->
      Some
        ( `Obstruction_freedom,
          Printf.sprintf
            "obstruction-freedom: process %d did not decide solo within %d steps" pid
            solo_fuel )
    | Some _ ->
      List.iter
        (fun q -> ignore (M.Scratch.run_solo ~fuel:solo_fuel ~pid:q s))
        (M.Scratch.running s);
      (match M.Scratch.running s with
       | q :: _ ->
         Some
           ( `Termination,
             Printf.sprintf "termination: process %d still undecided after solo runs" q )
       | [] ->
         (match check_decisions ~inputs (M.Scratch.decisions s) with
          | () -> None
          | exception Check (k, m) -> Some (k, m)))

  let probe_one ~solo_fuel ~inputs ~path c cfg pid =
    c.probes <- c.probes + 1;
    match probe_violation ~solo_fuel ~inputs cfg pid with
    | None -> ()
    | Some v -> raise (Violation (witness_of ~path ~probe:(Some pid) v))

  (* ---- observer plumbing ----------------------------------------------

     [obs] is [Some run] iff the caller supplied observers; [None] keeps
     every engine on the legacy hard-coded checker.  With observers the
     legacy agreement/validity checks and probe judgments are {e replaced}:
     the observer set defines the property (the legacy set is
     [Observer.defaults], differentially pinned by the test suite).

     Soundness with the transposition table: [obs_key] folds the observer
     digest into both fingerprint lanes — a product construction, the
     monitor rides along in the explored state space — so a revisit is
     pruned only when machine fingerprint {e and} observer digest coincide.
     By the [Observer.S.digest] contract (digest determines verdict and
     future behaviour) the first visit already rendered this verdict and
     the observers behave identically below, so pruning, [Partial]
     revisits and the commute/symmetric reductions (gated per observer by
     [observer_gate]) stay exact. *)

  let feed_accesses o cfg pid =
    match M.poised cfg pid with
    | None | Some [] -> o
    | Some [ (loc, op) ] ->
      let _, r = P.I.apply op (M.cell cfg loc) in
      Observer.Run.access o ~pid ~loc ~value:(P.I.observe_result r)
    | Some accesses ->
      (* multi-assignment: later ops of the step see earlier writes *)
      let overlay = ref [] in
      List.fold_left
        (fun o (loc, op) ->
          let cell =
            match List.assoc_opt loc !overlay with
            | Some c -> c
            | None -> M.cell cfg loc
          in
          let cell', r = P.I.apply op cell in
          overlay := (loc, cell') :: !overlay;
          Observer.Run.access o ~pid ~loc ~value:(P.I.observe_result r))
        o accesses

  (* Advance the monitors over one scheduled step [cfg --pid--> cfg']:
     accesses (when wanted), then the step, then the decision it made, if
     any. *)
  let obs_step o cfg pid cfg' =
    let o = if Observer.Run.wants_accesses o then feed_accesses o cfg pid else o in
    let o = Observer.Run.step o ~pid in
    match M.decision cfg' pid with
    | Some v -> Observer.Run.decide o ~pid ~value:v
    | None -> o

  let obs_advance obs cfg pid cfg' =
    match obs with None -> None | Some o -> Some (obs_step o cfg pid cfg')

  (* A process built from [Proc.return] is decided in the root configuration,
     before any step exists to observe; feed those decisions at creation so
     the monitors see the same decision sets the legacy checker reads off the
     configuration. *)
  let obs_make set ~inputs root =
    let o = Observer.Run.make set ~n:(Array.length inputs) ~inputs in
    List.fold_left
      (fun o (pid, value) -> Observer.Run.decide o ~pid ~value)
      o (M.decisions root)

  let obs_check ~path ~probe o =
    match Observer.Run.verdict o with
    | None -> ()
    | Some (kind, _liveness, message) ->
      raise (Violation (witness_of ~path ~probe (kind_of_name kind, message)))

  let obs_key obs (a, b) =
    match obs with
    | None -> (a, b)
    | Some o ->
      let h = Observer.Run.digest o in
      ((a lxor (h * 0x100000001B3)) land max_int, (b lxor (h * 0x1000193)) land max_int)

  (* The probe chain of [probe_violation], summarized as an event for the
     observers.  Runs on the scratch workspace; config-local — the caller
     checks the post-probe verdict and discards the state, mirroring the
     legacy probes (which never mutate the exploration). *)
  let scratch_outcome ~solo_fuel cfg pid =
    let s = M.Scratch.of_config cfg in
    match M.Scratch.run_solo ~fuel:solo_fuel ~pid s with
    | None -> Observer.Probe_stuck { pid; fuel = solo_fuel }
    | Some _ ->
      List.iter
        (fun q -> ignore (M.Scratch.run_solo ~fuel:solo_fuel ~pid:q s))
        (M.Scratch.running s);
      (match M.Scratch.running s with
       | q :: _ -> Observer.Probe_starved { pid; straggler = q }
       | [] -> Observer.Probe_decided { pid; decisions = M.Scratch.decisions s })

  let obs_probe_one ~solo_fuel ~path c cfg o pid =
    c.probes <- c.probes + 1;
    obs_check ~path ~probe:(Some pid)
      (Observer.Run.probe o (scratch_outcome ~solo_fuel cfg pid))

  exception Stop

  (* The two-word fingerprint the transposition table keys on: plain, or
     quotiented by process symmetry when the reduction asks for it.  In
     [`Fold] mode the original from-scratch single-word fold is used for
     both lanes — the reference the differential tests compare the
     incremental digest against. *)
  let fingerprint_words_fn ~reduce ~inputs ~fp_mode =
    match (fp_mode : fingerprint_mode) with
    | `Flat ->
      if reduce.symmetric then M.canonical_fingerprint_words ~inputs
      else M.fingerprint_words
    | `Fold ->
      if reduce.symmetric then fun cfg ->
        let h = M.slow_canonical_fingerprint ~inputs cfg in
        (h, h)
      else fun cfg ->
        let h = M.slow_fingerprint cfg in
        (h, h)

  (* Interned-op independence for the sleep-set filter: each domain interns
     the ops it encounters to dense ids ([Model.Intern]) and keeps an
     eagerly filled commutation bit-matrix over the ids, so the repeated
     question "do these two poised accesses commute?" is two array loads
     instead of a structural match per query.  The closure owns its table —
     create one per domain (intern tables are not thread-safe).

     [indep cfg p q]: whether the atomic steps [p] and [q] are poised at
     are independent — every pair of accesses is to distinct locations or
     commutes on the shared one.  Only meaningful when both are poised.

     [seed] pre-interns the ops the protocol statically issues (the CFG
     summary of {!Analysis.Absint.Issued}), so the matrix starts
     protocol-restricted and complete instead of growing lazily
     mid-exploration.  Purely a warm start: an op the seed missed still
     interns lazily, and every entry is computed by the same [P.I.commutes],
     so the independence relation — and hence the explored configuration
     set — is identical with or without it. *)
  let make_independent ?(seed = []) () =
    let module OI = Model.Intern.Poly (struct
      type t = P.I.op
    end) in
    let ops = OI.create () in
    let cap = ref 0 in
    let mat = ref Bytes.empty in
    let filled = ref 0 in
    let fill upto =
      if upto > !cap then begin
        let ncap = Stdlib.max 16 (Stdlib.max upto (!cap * 2)) in
        let nmat = Bytes.make (ncap * ncap) '\000' in
        for i = 0 to !filled - 1 do
          Bytes.blit !mat (i * !cap) nmat (i * ncap) !filled
        done;
        cap := ncap;
        mat := nmat
      end;
      for i = !filled to upto - 1 do
        let oi = OI.value ops i in
        for j = 0 to upto - 1 do
          let oj = OI.value ops j in
          Bytes.set !mat ((i * !cap) + j) (if P.I.commutes oi oj then '\001' else '\000');
          Bytes.set !mat ((j * !cap) + i) (if P.I.commutes oj oi then '\001' else '\000')
        done
      done;
      filled := upto
    in
    let op_id o =
      let i = OI.id ops o in
      if OI.size ops > !filled then fill (OI.size ops);
      i
    in
    let commutes_id i j = Bytes.get !mat ((i * !cap) + j) = '\001' in
    List.iter (fun o -> ignore (op_id o)) seed;
    fun cfg p q ->
      match (M.poised cfg p, M.poised cfg q) with
      | Some ap, Some aq ->
        List.for_all
          (fun (l1, o1) ->
            let i1 = op_id o1 in
            List.for_all (fun (l2, o2) -> l1 <> l2 || commutes_id i1 (op_id o2)) aq)
          ap
      | _ -> false

  (* The ops this protocol statically issues at these inputs, from the CFG
     issued-op summary — the [seed] for {!make_independent}.  Only computed
     when the sleep-set filter will actually consult the matrix; any failure
     of the static analysis degrades to the unseeded lazy path. *)
  let static_ops ~reduce ~inputs =
    if not reduce.commute then []
    else
      let module S = Analysis.Absint.Issued (P) in
      let n = Array.length inputs in
      (try S.ops ~n ~inputs:(List.sort_uniq compare (Array.to_list inputs))
       with _ -> [])

  (* The sibling loop shared by full visits and partial revisits.  [inter]
     restricts which transitions still need exploring: a pid outside it was
     already explored from this configuration by a prior, at-least-as-deep
     pass (a full visit passes [-1] — everything needs exploring).  Covered
     pids join the sleep set up front: their subtrees are explored
     elsewhere, which is exactly the sleep-set invariant, so later siblings
     may sleep on them like on any explored sibling.

     [asleep] accumulates the inherited sleep set plus the siblings already
     explored at this node; after exploring child [pid], later siblings
     inherit [pid] asleep as long as their step is independent of [pid]'s —
     a dependent step wakes it. *)
  let children ~reduce ~indep ~go c cfg d path sleep obs inter =
    let running = M.running cfg in
    let covered = lnot inter in
    let asleep = ref sleep in
    if covered <> 0 then
      List.iter
        (fun q -> if covered land (1 lsl q) <> 0 then asleep := !asleep lor (1 lsl q))
        running;
    List.iter
      (fun pid ->
        let bit = 1 lsl pid in
        if !asleep land bit <> 0 then begin
          if covered land bit = 0 then c.sleeps <- c.sleeps + 1
        end
        else begin
          let succ_sleep =
            if not reduce.commute then 0
            else
              List.fold_left
                (fun m q ->
                  if !asleep land (1 lsl q) <> 0 && indep cfg q pid then m lor (1 lsl q)
                  else m)
                0 running
          in
          let cfg' = M.step cfg pid in
          go cfg' (d - 1) (pid :: path) succ_sleep (obs_advance obs cfg pid cfg');
          asleep := !asleep lor bit
        end)
      running

  (* Crash–recover branches: one child per crashable process while the run's
     crash budget allows.  Crashes are kept out of the sleep-set machinery —
     a crash never sleeps (it does not commute with anything the victim
     does) and its subtree starts with an empty sleep set.  Unlike steps,
     crashes also branch from fully-decided configurations: a decided
     process that crashes loses its decision and re-executes the protocol,
     which is exactly the re-decision scenario recoverable consensus must
     survive.  Sound under the transposition table because recovery epochs
     are folded into the fingerprint: equal keys imply equal epoch vectors,
     hence equal crash counts and equal remaining budget.  The observer
     state crosses a crash unchanged — monitors see no event, and the
     recovered process's later decisions reach them as ordinary [decide]s.
     With a zero budget all of this is dead code: no [M.crashable] call, no
     branch, bit-identical exploration. *)
  let crash_children ~crash_budget ~go cfg d path obs =
    if crash_budget > 0 && M.crashes cfg < crash_budget then
      List.iter
        (fun pid ->
          let cfg' = M.crash_recover cfg pid in
          go cfg' (d - 1) (crash_code pid :: path) 0 obs)
        (M.crashable cfg)

  (* Whether [cfg] still has crash branches the depth bound cut off. *)
  let crash_truncated ~crash_budget cfg =
    crash_budget > 0 && M.crashes cfg < crash_budget && M.crashable cfg <> []

  (* The DFS core all engines share.  [stop] aborts cooperatively (parallel
     mode); [path] seeds the schedule of every witness found below [cfg].

     [sleep] is the sleep set: pids whose subtrees here are already covered
     by an equivalent interleaving explored at a sibling.  Sleeping pids are
     not stepped, but they still count as running for checks and probes —
     sleep sets preserve the set of visited configurations, only pruning
     redundant transitions into them.

     On a [Partial] revisit — the configuration's depth is covered by prior
     passes, but some transitions were asleep in all of them — only those
     transitions are explored, and the per-configuration work (counting,
     checking, probing) is skipped: it ran when the configuration was first
     visited, and depends only on the configuration. *)
  let dfs ~reduce ~crash_budget ~probe ~solo_fuel ~inputs ~table ~fpw ~indep ~stop ~obs c
      cfg depth path =
    let rec go cfg d path sleep obs =
      match table with
      | None -> visit cfg d path sleep obs
      | Some tbl ->
        let a, b = obs_key obs (fpw cfg) in
        (match Transposition.plan tbl a b ~depth:d ~sleep with
         | Transposition.Hit -> c.hits <- c.hits + 1
         | Transposition.Visit -> visit cfg d path sleep obs
         | Transposition.Partial inter ->
           (* crash branches are never slept, so the prior pass that covers
              this depth already explored all of them — only step
              transitions can still need subtrees here *)
           c.hits <- c.hits + 1;
           if stop () then raise Stop;
           if d > 0 && M.running_count cfg > 0 then
             children ~reduce ~indep ~go c cfg d path sleep obs inter)
    and visit cfg d path sleep obs =
      if stop () then raise Stop;
      c.configs <- c.configs + 1;
      (match obs with
       | None -> check ~inputs ~path cfg
       | Some o -> obs_check ~path ~probe:None o);
      let at_bound = d <= 0 in
      if M.running_count cfg > 0 then begin
        let running = M.running cfg in
        if at_bound then c.truncated <- true;
        let should_probe =
          (match probe with `Never -> false | `Leaves -> at_bound | `Everywhere -> true)
          && (match obs with None -> true | Some o -> Observer.Run.wants_probes o)
        in
        if should_probe then begin
          match obs with
          | None -> List.iter (probe_one ~solo_fuel ~inputs ~path c cfg) running
          | Some o -> List.iter (obs_probe_one ~solo_fuel ~path c cfg o) running
        end;
        if not at_bound then children ~reduce ~indep ~go c cfg d path sleep obs (-1)
      end;
      if at_bound then begin
        if crash_truncated ~crash_budget cfg then c.truncated <- true
      end
      else crash_children ~crash_budget ~go cfg d path obs
    in
    go cfg depth path 0 obs

  let no_stop () = false

  (* Parallel frontier: a sequential BFS prefix visits the shallow
     configurations (so their checks and `Everywhere probes still run
     exactly once), then the unvisited frontier is deduped by fingerprint
     and drained by [domains] workers from a shared queue in batches.  Each
     frontier item carries its schedule prefix so workers report full
     witnesses.

     All workers share one sharded transposition table: a subtree one
     domain claims is never re-explored by another (domain-local tables
     used to repeat that work), and the shard locks — selected by the
     fingerprint's low bits — almost never contend.  Claims are optimistic
     (inserted before the subtree is walked); that is sound here because
     every worker joins before a verdict is produced, so a claim whose
     exploration was cut short can only coexist with a [Falsified] or
     [Timed_out] verdict, never launder an incomplete [Completed]. *)
  let parallel ~reduce ~crash_budget ~domains ~probe ~solo_fuel ~inputs ~fp_mode ~past
      ~obs c root depth =
    let fpw = fingerprint_words_fn ~reduce ~inputs ~fp_mode in
    let domains = max 1 domains in
    let target = max 16 (4 * domains) in
    let rec prefix level d =
      if d <= 0 || List.length level >= target then (level, d)
      else begin
        let next =
          List.concat_map
            (fun (path, cfg, obs) ->
              if past () then raise Stop;
              c.configs <- c.configs + 1;
              (match obs with
               | None -> check ~inputs ~path cfg
               | Some o -> obs_check ~path ~probe:None o);
              let stepped =
                if M.running_count cfg = 0 then []
                else begin
                  let running = M.running cfg in
                  let probe_here =
                    probe = `Everywhere
                    && (match obs with
                        | None -> true
                        | Some o -> Observer.Run.wants_probes o)
                  in
                  if probe_here then begin
                    match obs with
                    | None -> List.iter (probe_one ~solo_fuel ~inputs ~path c cfg) running
                    | Some o -> List.iter (obs_probe_one ~solo_fuel ~path c cfg o) running
                  end;
                  List.map
                    (fun pid ->
                      let cfg' = M.step cfg pid in
                      (pid :: path, cfg', obs_advance obs cfg pid cfg'))
                    running
                end
              in
              let crashed =
                if crash_budget > 0 && M.crashes cfg < crash_budget then
                  List.map
                    (fun pid -> (crash_code pid :: path, M.crash_recover cfg pid, obs))
                    (M.crashable cfg)
                else []
              in
              stepped @ crashed)
            level
        in
        if next = [] then ([], d - 1) else prefix next (d - 1)
      end
    in
    let frontier, d = prefix [ ([], root, obs) ] depth in
    let seen = Hashtbl.create 64 in
    let frontier =
      List.filter
        (fun (_, cfg, obs) ->
          let h = obs_key obs (fpw cfg) in
          if Hashtbl.mem seen h then begin
            c.hits <- c.hits + 1;
            false
          end
          else begin
            Hashtbl.add seen h ();
            true
          end)
        frontier
    in
    let items = Array.of_list frontier in
    let len = Array.length items in
    (* Batching the work queue: a worker claims a run of consecutive items
       per fetch-and-add, so domains stop hitting the shared counter on
       every item.  Small frontiers degenerate to batch 1 (maximal load
       balance); the cap keeps one slow batch from starving the rest. *)
    let batch = Stdlib.max 1 (Stdlib.min 16 (len / (domains * 8))) in
    let table = Some (Transposition.create ~concurrent:true ()) in
    (* computed once, outside the domains: each worker's matrix is its own,
       but the static summary is shared *)
    let seed = static_ops ~reduce ~inputs in
    let next_item = Atomic.make 0 in
    let stopped = Atomic.make false in
    let timed = Atomic.make false in
    let mu = Mutex.create () in
    let errors = ref [] in
    let worker_counters = ref [] in
    let worker () =
      (* Enlarge this domain's minor heap (4M words): every minor
         collection in OCaml 5 is a stop-the-world handshake across all
         domains, and on an oversubscribed host each handshake can cost a
         scheduling quantum — fewer, larger collections roughly halve the
         engine's wall clock when domains exceed cores. *)
      Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
      let wc = fresh () in
      let indep = make_independent ~seed () in
      (* the deadline stops a worker exactly like a sibling's violation does;
         [timed] remembers which of the two it was *)
      let stop () =
        Atomic.get stopped
        ||
        if past () then begin
          Atomic.set timed true;
          true
        end
        else Atomic.get timed
      in
      let item i =
        let path, cfg, obs = items.(i) in
        match
          dfs ~reduce ~crash_budget ~probe ~solo_fuel ~inputs ~table ~fpw ~indep ~stop
            ~obs wc cfg d path
        with
        | () -> ()
        | exception Violation w ->
          Mutex.lock mu;
          errors := (i, w) :: !errors;
          Mutex.unlock mu;
          Atomic.set stopped true
        | exception Stop -> ()
      in
      let rec loop () =
        if not (Atomic.get stopped || Atomic.get timed) then begin
          let i0 = Atomic.fetch_and_add next_item batch in
          if i0 < len then begin
            let hi = Stdlib.min len (i0 + batch) in
            let rec batch_loop i =
              if i < hi && not (Atomic.get stopped || Atomic.get timed) then begin
                item i;
                batch_loop (i + 1)
              end
            in
            batch_loop i0;
            loop ()
          end
        end
      in
      loop ();
      Mutex.lock mu;
      worker_counters := wc :: !worker_counters;
      Mutex.unlock mu
    in
    let doms = List.init domains (fun _ -> Domain.spawn worker) in
    List.iter Domain.join doms;
    List.iter (merge c) !worker_counters;
    (* Report the violation of the earliest frontier item that found one,
       so the witness is as deterministic as the work split allows.  A
       violation outranks the deadline: it is real partial evidence. *)
    match List.sort compare !errors with
    | (_, w) :: _ -> raise (Violation w)
    | [] -> if Atomic.get timed then raise Stop

  exception Invalid_schedule

  (* [probe_steps]'s persistent chain, summarized as an [Observer]
     outcome — the replay counterpart of [scratch_outcome] (witness replays
     want the event trace, so they stay on the persistent machine). *)
  let probe_outcome_steps ~solo_fuel cfg pid =
    let cfg, dec = M.run_solo ~fuel:solo_fuel ~pid cfg in
    match dec with
    | None -> (cfg, Observer.Probe_stuck { pid; fuel = solo_fuel })
    | Some _ ->
      let cfg =
        List.fold_left
          (fun cfg q -> fst (M.run_solo ~fuel:solo_fuel ~pid:q cfg))
          cfg (M.running cfg)
      in
      (match M.running cfg with
       | q :: _ -> (cfg, Observer.Probe_starved { pid; straggler = q })
       | [] -> (cfg, Observer.Probe_decided { pid; decisions = M.decisions cfg }))

  (* Deterministically re-execute a witness from the root: step its schedule
     pid by pid, then re-run the solo probe if it has one, then re-check.
     Returns the final configuration and the violation the execution ran
     into, if any.  Raises [Invalid_schedule] when the schedule names a pid
     that cannot step, or when [probe] names a pid that is not running at
     the end of the schedule (a decided or finished process cannot be
     probed) — possible only for shrink candidates and hand-edited
     witnesses, never for a witness an engine just reported.

     With [observers] the observer set defines the property, exactly as in
     the engines: the monitors are advanced over every step and their
     verdict is checked after each one (the engines check at every visited
     configuration, so a non-latching observer — e.g. [Observer.lockout] —
     must be re-checked per step here too); the replay stops at the first
     violation. *)
  let replay ?(observers = []) ~record_trace ~solo_fuel ~inputs (w : witness) =
    let n = Array.length inputs in
    (* negative schedule entries are crash–recover events ([crash_code]);
       a crash of a non-crashable process is as invalid as a step of a
       non-running one — shrink candidates that delete the victim's steps
       get rejected here instead of replaying a no-op crash *)
    let step cfg code =
      if is_crash code then begin
        let pid = crash_pid code in
        if pid >= n then raise Invalid_schedule;
        if List.mem pid (M.crashable cfg) then M.crash_recover cfg pid
        else raise Invalid_schedule
      end
      else begin
        if code >= n then raise Invalid_schedule;
        match M.poised cfg code with
        | Some (_ :: _) -> M.step cfg code
        | Some [] | None -> raise Invalid_schedule
      end
    in
    let probeable cfg pid = pid >= 0 && pid < n && List.mem pid (M.running cfg) in
    let root = root_config ~record_trace ~inputs in
    match observers with
    | [] ->
      let cfg = List.fold_left step root w.schedule in
      (match w.probe with
       | Some pid when probeable cfg pid -> probe_steps ~solo_fuel ~inputs cfg pid
       | Some _ -> raise Invalid_schedule
       | None ->
         (match check_decisions ~inputs (M.decisions cfg) with
          | () -> (cfg, None)
          | exception Check (k, m) -> (cfg, Some (k, m))))
    | set ->
      let violation o =
        match Observer.Run.verdict o with
        | None -> None
        | Some (kind, _liveness, m) -> Some (kind_of_name kind, m)
      in
      let rec steps cfg o = function
        | [] ->
          (match w.probe with
           | None -> (cfg, None)
           | Some pid when probeable cfg pid ->
             let cfg, outcome = probe_outcome_steps ~solo_fuel cfg pid in
             (cfg, violation (Observer.Run.probe o outcome))
           | Some _ -> raise Invalid_schedule)
        | code :: rest ->
          let cfg' = step cfg code in
          (* monitors cross a crash unchanged, as in the engines *)
          let o = if is_crash code then o else obs_step o cfg code cfg' in
          (match violation o with
           | Some v -> (cfg', Some v)
           | None -> steps cfg' o rest)
      in
      let o = obs_make set ~inputs root in
      (match violation o with Some v -> (root, Some v) | None -> steps root o w.schedule)

  (* Greedy delta debugging on the schedule: repeatedly delete segments,
     halving the segment size from len/2 down to single steps; a deletion is
     kept iff the shortened witness still replays to the same violation
     kind.  Returns the shrunk witness and the number of candidate replays
     attempted. *)
  let shrink ~observers ~solo_fuel ~inputs (w : witness) =
    let attempts = ref 0 in
    let reproduces sched =
      incr attempts;
      let cand = { w with schedule = sched } in
      match replay ~observers ~record_trace:false ~solo_fuel ~inputs cand with
      | _, Some (k, m) when k = w.kind -> Some { cand with message = m }
      | _, _ -> None
      | exception Invalid_schedule -> None
    in
    (* [len] is [List.length w.schedule], maintained across deletions rather
       than recomputed at every index (which made one sweep quadratic). *)
    let rec sweep w len chunk i =
      if i >= len then (w, len)
      else begin
        let cand = List.filteri (fun j _ -> j < i || j >= i + chunk) w.schedule in
        match reproduces cand with
        | Some w' -> sweep w' (len - min chunk (len - i)) chunk i
        | None -> sweep w len chunk (i + chunk)
      end
    in
    let rec halve w len chunk =
      if chunk < 1 then w
      else begin
        let w, len = sweep w len chunk 0 in
        halve w len (chunk / 2)
      end
    in
    let len = List.length w.schedule in
    let w = if len = 0 then w else halve w len (max 1 (len / 2)) in
    (w, !attempts)

  let trace_of cfg = Format.asprintf "%a" M.pp_trace cfg

  (* Package a caught violation: verify the witness replays to the same
     kind, shrink it if asked, and regenerate the full event trace of the
     (shrunk) replay with trace recording on.  [stats] are the engine's
     counters up to the violation; the replay/shrink work done here is timed
     separately as [diagnosis_elapsed] so engine comparisons are not skewed
     by diagnosis cost. *)
  let failure ~shrink:do_shrink ~observers ~solo_fuel ~inputs ~stats (w : witness) =
    let t0 = Unix.gettimeofday () in
    let reproduced =
      match replay ~observers ~record_trace:false ~solo_fuel ~inputs w with
      | _, Some (k, _) -> k = w.kind
      | _, None -> false
      | exception Invalid_schedule -> false
    in
    let witness, shrink_attempts =
      if do_shrink && reproduced then shrink ~observers ~solo_fuel ~inputs w else (w, 0)
    in
    let trace =
      if not reproduced then None
      else begin
        match replay ~observers ~record_trace:true ~solo_fuel ~inputs witness with
        | cfg, _ -> Some (trace_of cfg)
        | exception Invalid_schedule -> None
      end
    in
    {
      witness;
      original = w;
      reproduced;
      shrink_attempts;
      trace;
      stats;
      diagnosis_elapsed = Unix.gettimeofday () -. t0;
    }

  (* The bivalence walk of [Modelcheck.decidable_values], on the shared
     memoized core: collect every value decided in some reachable
     configuration or decidable by a solo continuation from one.  Sound to
     prune on the fingerprint table because equal fingerprints imply equal
     future behaviour, hence equal decidable-value contributions. *)
  let decidable ~reduce ~crash_budget ~solo_fuel ~inputs ~table ~fp_mode ~stop ~obs c cfg
      depth =
    let fpw = fingerprint_words_fn ~reduce ~inputs ~fp_mode in
    let indep = make_independent ~seed:(static_ops ~reduce ~inputs) () in
    let seen = Hashtbl.create 7 in
    let rec go cfg d path sleep obs =
      match table with
      | None -> visit cfg d path sleep obs
      | Some tbl ->
        let a, b = obs_key obs (fpw cfg) in
        (match Transposition.plan tbl a b ~depth:d ~sleep with
         | Transposition.Hit -> c.hits <- c.hits + 1
         | Transposition.Visit -> visit cfg d path sleep obs
         | Transposition.Partial inter ->
           (* decisions and probes ran when this configuration was first
              visited; only the transitions every adequate prior pass left
              asleep still need subtrees *)
           c.hits <- c.hits + 1;
           if stop () then raise Stop;
           if d > 0 && M.running_count cfg > 0 then
             children ~reduce ~indep ~go c cfg d path sleep obs inter)
    and visit cfg d path sleep obs =
      if stop () then raise Stop;
      c.configs <- c.configs + 1;
      (match obs with None -> () | Some o -> obs_check ~path ~probe:None o);
      List.iter (fun (_, v) -> Hashtbl.replace seen v ()) (M.decisions cfg);
      if d > 0 then crash_children ~crash_budget ~go cfg d path obs;
      match M.running cfg with
      | [] -> ()
      | running ->
        (* solo probes run from every visited configuration for {e all}
           running processes, sleeping or not — reduction prunes redundant
           transitions, never the per-configuration probing.  The bivalence
           walk keeps its native obstruction-freedom raise (it needs the
           decided values regardless of the observer set); observers that
           want probes are fed the full probe chain on top. *)
        List.iter
          (fun pid ->
            c.probes <- c.probes + 1;
            match M.Scratch.run_solo ~fuel:solo_fuel ~pid (M.Scratch.of_config cfg) with
            | Some v -> Hashtbl.replace seen v ()
            | None ->
              raise
                (Violation
                   (witness_of ~path ~probe:(Some pid)
                      ( `Obstruction_freedom,
                        Printf.sprintf
                          "obstruction-freedom: process %d did not decide solo within %d \
                           steps"
                          pid solo_fuel ))))
          running;
        (match obs with
         | Some o when Observer.Run.wants_probes o ->
           List.iter (obs_probe_one ~solo_fuel ~path c cfg o) running
         | _ -> ());
        if d > 0 then children ~reduce ~indep ~go c cfg d path sleep obs (-1)
    in
    go cfg depth [] 0 obs;
    List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen [])
end

(* The deadline clock starts after the symmetry gate: certification cost is
   bounded and cached, and billing it to the engine would make the same task
   time out on a cold cache but complete on a warm one. *)
let past_of ~t0 = function
  | None -> None
  | Some d ->
    let at = t0 +. d in
    Some (fun () -> Unix.gettimeofday () > at)

let run ?(probe = `Leaves) ?(solo_fuel = 100_000) ?(engine = `Naive) ?(shrink = true)
    ?(reduce = no_reduction) ?(crashes = 0) ?(force = false) ?notify_symmetry ?deadline
    ?(fingerprint_mode = default_fingerprint_mode) ?(observers = [])
    (module P : Consensus.Proto.S) ~inputs ~depth =
  if crashes < 0 then invalid_arg "Explore.run: negative crash budget";
  observer_gate ~reduce ~force observers;
  certify_gate ~reduce ~force ~notify:notify_symmetry (module P) ~inputs ~depth;
  let module R = Run (P) in
  let t0 = Unix.gettimeofday () in
  let past = Option.value (past_of ~t0 deadline) ~default:R.no_stop in
  let c = fresh () in
  let root = R.root_config ~record_trace:false ~inputs in
  let obs =
    match observers with
    | [] -> None
    | set -> Some (R.obs_make set ~inputs root)
  in
  let fp_mode = fingerprint_mode in
  let fpw = R.fingerprint_words_fn ~reduce ~inputs ~fp_mode in
  let result =
    try
      let seed = R.static_ops ~reduce ~inputs in
      (match engine with
       | `Naive ->
         R.dfs ~reduce ~crash_budget:crashes ~probe ~solo_fuel ~inputs ~table:None ~fpw
           ~indep:(R.make_independent ~seed ()) ~stop:past ~obs c root depth []
       | `Memo ->
         R.dfs ~reduce ~crash_budget:crashes ~probe ~solo_fuel ~inputs
           ~table:(Some (Transposition.create ~concurrent:false ())) ~fpw
           ~indep:(R.make_independent ~seed ()) ~stop:past ~obs c root depth []
       | `Parallel k ->
         R.parallel ~reduce ~crash_budget:crashes ~domains:k ~probe ~solo_fuel ~inputs
           ~fp_mode ~past ~obs c root depth);
      `Done
    with
    | Violation w -> `Violation w
    | R.Stop -> `Timeout
  in
  (* engine time only — witness replay/shrink below is timed separately *)
  let stats = stats_of c ~elapsed:(Unix.gettimeofday () -. t0) in
  match result with
  | `Done -> Completed stats
  | `Violation w -> Falsified (R.failure ~shrink ~observers ~solo_fuel ~inputs ~stats w)
  | `Timeout ->
    Timed_out { partial = stats; deadline = Option.value deadline ~default:0. }

type replay_report = {
  violation : (violation_kind * string) option;
  events : string;
}

let replay ?(solo_fuel = 100_000) ?(observers = []) (module P : Consensus.Proto.S)
    ~inputs w =
  let module R = Run (P) in
  match R.replay ~observers ~record_trace:true ~solo_fuel ~inputs w with
  | cfg, violation -> Ok { violation; events = R.trace_of cfg }
  | exception R.Invalid_schedule ->
    Error
      "invalid witness: the schedule names a process that cannot step, or the probe \
       names a process that is not running"

let decidable_values ?(solo_fuel = 100_000) ?(memo = true) ?(shrink = true)
    ?(reduce = no_reduction) ?(crashes = 0) ?(force = false) ?notify_symmetry ?deadline
    ?(fingerprint_mode = default_fingerprint_mode) ?(observers = [])
    (module P : Consensus.Proto.S) ~inputs ~depth =
  if crashes < 0 then invalid_arg "Explore.decidable_values: negative crash budget";
  observer_gate ~reduce ~force observers;
  certify_gate ~reduce ~force ~notify:notify_symmetry (module P) ~inputs ~depth;
  let module R = Run (P) in
  let t0 = Unix.gettimeofday () in
  let past = Option.value (past_of ~t0 deadline) ~default:R.no_stop in
  let c = fresh () in
  let root = R.root_config ~record_trace:false ~inputs in
  let obs =
    match observers with
    | [] -> None
    | set -> Some (R.obs_make set ~inputs root)
  in
  let table = if memo then Some (Transposition.create ~concurrent:false ()) else None in
  match
    R.decidable ~reduce ~crash_budget:crashes ~solo_fuel ~inputs ~table
      ~fp_mode:fingerprint_mode ~stop:past ~obs c root depth
  with
  | values -> Completed values
  | exception Violation w ->
    let stats = stats_of c ~elapsed:(Unix.gettimeofday () -. t0) in
    Falsified (R.failure ~shrink ~observers ~solo_fuel ~inputs ~stats w)
  | exception R.Stop ->
    let stats = stats_of c ~elapsed:(Unix.gettimeofday () -. t0) in
    Timed_out { partial = stats; deadline = Option.value deadline ~default:0. }

type deepen_report = {
  depth_reached : int;
  complete : bool;
  last : stats;
  total_configs : int;
  total_elapsed : float;
}

let deepen ?(probe = `Leaves) ?(solo_fuel = 100_000) ?(engine = `Memo) ?(budget = 1.0)
    ?shrink ?(reduce = no_reduction) ?(crashes = 0) ?(force = false) ?notify_symmetry
    ?fingerprint_mode ?(observers = []) proto ~inputs ~max_depth =
  if max_depth < 1 then invalid_arg "Explore.deepen: max_depth < 1";
  (* gate (and notify) once at the deepest depth the iteration can reach,
     then let the per-depth runs through — their certificates are implied
     (the per-depth [run]s pass [~force:true], which skips both gates) *)
  observer_gate ~reduce ~force observers;
  certify_gate ~reduce ~force ~notify:notify_symmetry proto ~inputs ~depth:max_depth;
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let rec go d best =
    let out_of_budget = match best with Some _ -> elapsed () >= budget | None -> false in
    if d > max_depth || out_of_budget then Completed (Option.get best)
    else begin
      (* the remaining budget bounds each iteration, so one oversized
         iteration can no longer blow past the budget *)
      match
        run ~probe ~solo_fuel ~engine ?shrink ~reduce ~crashes ~force:true
          ?fingerprint_mode ~observers ~deadline:(budget -. elapsed ()) proto ~inputs
          ~depth:d
      with
      | Falsified f -> Falsified f
      | Timed_out t ->
        (match best with
         | Some b ->
           Completed
             {
               b with
               total_configs = b.total_configs + t.partial.configs;
               total_elapsed = elapsed ();
             }
         | None -> Timed_out { t with deadline = budget })
      | Completed s ->
        let total_configs =
          (match best with Some b -> b.total_configs | None -> 0) + s.configs
        in
        let b =
          {
            depth_reached = d;
            complete = not s.truncated;
            last = s;
            total_configs;
            total_elapsed = elapsed ();
          }
        in
        if not s.truncated then Completed b else go (d + 1) (Some b)
    end
  in
  go 1 None
