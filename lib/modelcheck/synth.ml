type 'cell machine = {
  name : string;
  init : 'cell;
  ops : (string * ('cell -> 'cell * int)) array;
  max_branch : int;
  equal : 'cell -> 'cell -> bool;
}

type tree =
  | Decide of int
  | Invoke of int * tree array
  | Stuck

type protocol = {
  t00 : tree;
  t01 : tree;
  t10 : tree;
  t11 : tree;
}

type result = Found of protocol | Impossible_within_depth

let rec pp_tree ~ops ppf = function
  | Decide v -> Format.fprintf ppf "decide %d" v
  | Stuck -> Format.pp_print_string ppf "unreachable"
  | Invoke (op, subs) ->
    let name, _ = ops.(op) in
    Format.fprintf ppf "@[<v 2>%s:" name;
    Array.iteri (fun b t -> Format.fprintf ppf "@,%d -> %a" b (pp_tree ~ops) t) subs;
    Format.fprintf ppf "@]"

(* --- state-set machinery ------------------------------------------------ *)

(* State sets used to be plain lists with linear [mem], so every closure was
   O(n²) in the number of reachable cell states.  A hashtable keyed on the
   generic structural hash, with buckets resolved through [m.equal], makes
   membership O(1).  This requires [m.equal] to be hash-compatible (equal
   cells hash equal), which holds for the structural equalities every
   machine here uses. *)
module Stateset = struct
  type 'cell t = {
    tbl : (int, 'cell list) Hashtbl.t;
    equal : 'cell -> 'cell -> bool;
  }

  let create equal = { tbl = Hashtbl.create 64; equal }

  (* Insert [s]; [true] iff it was not already present. *)
  let add t s =
    let h = Hashtbl.hash s in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt t.tbl h) in
    if List.exists (t.equal s) bucket then false
    else begin
      Hashtbl.replace t.tbl h (s :: bucket);
      true
    end
end

(* All cell states the peer can produce from [set] with any op sequence.
   Returns each reachable state once; enumeration below depends only on the
   state {e set}, so the change of representation is invisible to it. *)
let closure m set =
  let seen = Stateset.create m.equal in
  let frontier = Queue.create () in
  let out = ref [] in
  let visit s =
    if Stateset.add seen s then begin
      out := s :: !out;
      Queue.add s frontier
    end
  in
  List.iter visit set;
  while not (Queue.is_empty frontier) do
    let s = Queue.pop frontier in
    Array.iter (fun (_, sem) -> visit (fst (sem s))) m.ops
  done;
  List.rev !out

(* --- enumeration --------------------------------------------------------- *)

(* All trees of at most [depth] instructions observable from the cell-state
   set [states] (already peer-closed).  Unreachable branches collapse to
   [Stuck], which is what keeps the space tractable. *)
let rec enumerate m ~depth ~states =
  let decisions = [ Decide 0; Decide 1 ] in
  if depth = 0 then decisions
  else begin
    let invokes =
      List.init (Array.length m.ops) (fun i -> i)
      |> List.concat_map (fun op_index ->
             let _, sem = m.ops.(op_index) in
             (* split states by branch *)
             let branch_states =
               Array.init m.max_branch (fun b ->
                   List.filter_map
                     (fun s ->
                       let s', b' = sem s in
                       if b' = b then Some s' else None)
                     states)
             in
             let subtree_choices =
               Array.map
                 (fun bs ->
                   if bs = [] then [ Stuck ]
                   else enumerate m ~depth:(depth - 1) ~states:(closure m bs))
                 branch_states
             in
             (* cartesian product over branches *)
             let rec combos b =
               if b >= m.max_branch then [ [] ]
               else begin
                 let rest = combos (b + 1) in
                 List.concat_map
                   (fun t -> List.map (fun r -> t :: r) rest)
                   subtree_choices.(b)
               end
             in
             List.map (fun combo -> Invoke (op_index, Array.of_list combo)) (combos 0))
    in
    decisions @ invokes
  end

(* Solo run: the tree alone from the initial cell. *)
let solo_decision m tree =
  let rec go s = function
    | Decide v -> Some v
    | Stuck -> None
    | Invoke (op, subs) ->
      let _, sem = m.ops.(op) in
      let s', b = sem s in
      go s' subs.(b)
  in
  go m.init tree

let candidates m ~depth ~input =
  enumerate m ~depth ~states:(closure m [ m.init ])
  |> List.filter (fun t -> solo_decision m t = Some input)

(* --- interleaving check --------------------------------------------------- *)

exception Bad_pair

(* Explore every interleaving of two trees sharing the cell; call [record]
   on each pair of final decisions. *)
let explore_pair m ta tb ~record =
  let rec go s ta tb =
    match ta, tb with
    | Stuck, _ | _, Stuck -> raise Bad_pair
    | Decide da, Decide db -> record da db
    | _ ->
      let step_a () =
        match ta with
        | Invoke (op, subs) ->
          let _, sem = m.ops.(op) in
          let s', b = sem s in
          go s' subs.(b) tb
        | _ -> ()
      in
      let step_b () =
        match tb with
        | Invoke (op, subs) ->
          let _, sem = m.ops.(op) in
          let s', b = sem s in
          go s' ta subs.(b)
        | _ -> ()
      in
      (match ta, tb with
       | Invoke _, Invoke _ ->
         step_a ();
         step_b ()
       | Invoke _, Decide _ -> step_a ()
       | Decide _, Invoke _ -> step_b ()
       | _ -> assert false)
  in
  go m.init ta tb

(* Every interleaving decides (da, db) with [ok da db]. *)
let compatible m ta tb ~ok =
  match explore_pair m ta tb ~record:(fun da db -> if not (ok da db) then raise Bad_pair)
  with
  | () -> true
  | exception Bad_pair -> false

let check m { t00; t01; t10; t11 } =
  List.for_all (fun t -> solo_decision m t = Some 0) [ t00; t10 ]
  && List.for_all (fun t -> solo_decision m t = Some 1) [ t01; t11 ]
  && compatible m t00 t10 ~ok:(fun a b -> a = 0 && b = 0)
  && compatible m t01 t11 ~ok:(fun a b -> a = 1 && b = 1)
  && compatible m t00 t11 ~ok:(fun a b -> a = b)
  && compatible m t01 t10 ~ok:(fun a b -> a = b)

(* --- search --------------------------------------------------------------- *)

(* Bitset rows for the compatibility matrices. *)
module Bits = struct
  type t = { words : int array }

  let create n = { words = Array.make ((n + 62) / 63) 0 }
  let set t i = t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))
  let get t i = t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

  let inter_first a b =
    let rec go i =
      if i >= Array.length a.words then None
      else begin
        let w = a.words.(i) land b.words.(i) in
        if w = 0 then go (i + 1)
        else begin
          let rec bit j = if w land (1 lsl j) <> 0 then j else bit (j + 1) in
          Some ((i * 63) + bit 0)
        end
      end
    in
    go 0
end

let search m ~depth =
  let c0 = Array.of_list (candidates m ~depth ~input:0) in
  let c1 = Array.of_list (candidates m ~depth ~input:1) in
  let n0 = Array.length c0 and n1 = Array.length c1 in
  if n0 = 0 || n1 = 0 then Impossible_within_depth
  else begin
    (* m0.(i): set of j with (c0.(i) as p0, c0.(j) as p1) unanimously 0 *)
    let m0 =
      Array.init n0 (fun i ->
          let row = Bits.create n0 in
          for j = 0 to n0 - 1 do
            if compatible m c0.(i) c0.(j) ~ok:(fun a b -> a = 0 && b = 0) then
              Bits.set row j
          done;
          row)
    in
    let m1 =
      Array.init n1 (fun i ->
          let row = Bits.create n1 in
          for j = 0 to n1 - 1 do
            if compatible m c1.(i) c1.(j) ~ok:(fun a b -> a = 1 && b = 1) then
              Bits.set row j
          done;
          row)
    in
    (* x.(i): set of j ∈ C1 with (c0.(i) as p0, c1.(j) as p1) agreeing *)
    let x =
      Array.init n0 (fun i ->
          let row = Bits.create n1 in
          for j = 0 to n1 - 1 do
            if compatible m c0.(i) c1.(j) ~ok:(fun a b -> a = b) then Bits.set row j
          done;
          row)
    in
    (* Constraints on a quadruple (pid-symmetric machine, so the unanimous
       matrices are symmetric and the mixed pairing (t01, t10) reads as
       X[t10][t01]):
         M0[i00][i10]  M1[i01][i11]  X[i00][i11]  X[i10][i01] *)
    let found = ref None in
    (try
       for i00 = 0 to n0 - 1 do
         for i11 = 0 to n1 - 1 do
           if Bits.get x.(i00) i11 then
             for i10 = 0 to n0 - 1 do
               if Bits.get m0.(i00) i10 then begin
                 match Bits.inter_first m1.(i11) x.(i10) with
                 | Some i01 ->
                   found :=
                     Some
                       { t00 = c0.(i00); t01 = c1.(i01); t10 = c0.(i10); t11 = c1.(i11) };
                   raise Exit
                 | None -> ()
               end
             done
         done
       done
     with Exit -> ());
    match !found with
    | Some p -> if check m p then Found p else Impossible_within_depth
    | None -> Impossible_within_depth
  end

(* --- three processes -------------------------------------------------------- *)

type result3 =
  | Found3 of tree array array
  | Impossible3_within_depth

(* Explore every interleaving of up to three trees sharing the cell.  A
   tree that has decided stops; [record] fires when all have. *)
let explore3 m trees ~record =
  let rec go s trees =
    if Array.for_all (function Decide _ -> true | _ -> false) trees then
      record (Array.map (function Decide v -> v | _ -> assert false) trees)
    else
      Array.iteri
        (fun i t ->
          match t with
          | Decide _ -> ()
          | Stuck -> raise Bad_pair
          | Invoke (op, subs) ->
            let _, sem = m.ops.(op) in
            let s', b = sem s in
            let trees' = Array.copy trees in
            trees'.(i) <- subs.(b);
            go s' trees')
        trees
  in
  go m.init trees

let check3 m trees =
  Array.length trees = 3
  && Array.for_all (fun row -> Array.length row = 2) trees
  && begin
    let solo_ok =
      Array.for_all
        (fun row ->
          solo_decision m row.(0) = Some 0 && solo_decision m row.(1) = Some 1)
        trees
    in
    let subset_ok pids inputs =
      (* all interleavings of the processes in [pids] with these inputs *)
      let players = Array.of_list (List.map (fun p -> trees.(p).(List.assoc p inputs)) pids) in
      let valid d = List.exists (fun (_, v) -> v = d) inputs in
      match
        explore3 m players ~record:(fun decisions ->
            let first = decisions.(0) in
            if not (Array.for_all (fun d -> d = first) decisions && valid first) then
              raise Bad_pair)
      with
      | () -> true
      | exception Bad_pair -> false
    in
    let input_vectors k =
      (* all assignments of {0,1} to k pids *)
      let rec go k = if k = 0 then [ [] ] else List.concat_map (fun v -> List.map (fun r -> v :: r) (go (k - 1))) [ 0; 1 ] in
      go k
    in
    let subsets = [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ] in
    solo_ok
    && List.for_all
         (fun pids ->
           List.for_all
             (fun vs -> subset_ok pids (List.combine pids vs))
             (input_vectors (List.length pids)))
         subsets
  end

let search3 ?(mode = `Full) m ~depth =
  (* Two processes running alone form a valid 3-process execution, so
     2-process impossibility settles the question immediately. *)
  match search m ~depth with
  | Impossible_within_depth -> Impossible3_within_depth
  | Found _ ->
    let c0 = Array.of_list (candidates m ~depth ~input:0) in
    let c1 = Array.of_list (candidates m ~depth ~input:1) in
    let n0 = Array.length c0 and n1 = Array.length c1 in
    let pair_ok ta tb ~ok = compatible m ta tb ~ok in
    (* pairwise compatibility matrices (as in the 2-process search) *)
    let m0 =
      Array.init n0 (fun i ->
          Array.init n0 (fun j -> pair_ok c0.(i) c0.(j) ~ok:(fun a b -> a = 0 && b = 0)))
    in
    let m1 =
      Array.init n1 (fun i ->
          Array.init n1 (fun j -> pair_ok c1.(i) c1.(j) ~ok:(fun a b -> a = 1 && b = 1)))
    in
    let x =
      Array.init n0 (fun i -> Array.init n1 (fun j -> pair_ok c0.(i) c1.(j) ~ok:( = )))
    in
    let roles_ok r =
      (* necessary pairwise conditions between every two roles *)
      let pair p q =
        m0.(fst r.(p)).(fst r.(q))
        && m1.(snd r.(p)).(snd r.(q))
        && x.(fst r.(p)).(snd r.(q))
        && x.(fst r.(q)).(snd r.(p))
      in
      pair 0 1 && pair 0 2 && pair 1 2
    in
    let to_trees r =
      Array.map (fun (i0, i1) -> [| c0.(i0); c1.(i1) |]) r
    in
    let found = ref None in
    (try
       match mode with
       | `Symmetric ->
         for i0 = 0 to n0 - 1 do
           for i1 = 0 to n1 - 1 do
             let r = [| (i0, i1); (i0, i1); (i0, i1) |] in
             if roles_ok r then begin
               let trees = to_trees r in
               if check3 m trees then begin
                 found := Some trees;
                 raise Exit
               end
             end
           done
         done
       | `Full ->
         for a0 = 0 to n0 - 1 do
           for a1 = 0 to n1 - 1 do
             for b0 = 0 to n0 - 1 do
               if m0.(a0).(b0) then
                 for b1 = 0 to n1 - 1 do
                   if m1.(a1).(b1) && x.(a0).(b1) && x.(b0).(a1) then
                     for c0i = 0 to n0 - 1 do
                       if m0.(a0).(c0i) && m0.(b0).(c0i) then
                         for c1i = 0 to n1 - 1 do
                           let r = [| (a0, a1); (b0, b1); (c0i, c1i) |] in
                           if roles_ok r then begin
                             let trees = to_trees r in
                             if check3 m trees then begin
                               found := Some trees;
                               raise Exit
                             end
                           end
                         done
                     done
                 done
             done
           done
         done
     with Exit -> ());
    (match !found with Some trees -> Found3 trees | None -> Impossible3_within_depth)

(* --- ready-made machines --------------------------------------------------- *)

let tas_bit =
  {
    name = "one bit, {read, test-and-set}";
    init = false;
    ops =
      [|
        ("read", fun s -> (s, if s then 1 else 0));
        ("tas", fun s -> (true, if s then 1 else 0));
      |];
    max_branch = 2;
    equal = Bool.equal;
  }

let rw01_bit =
  {
    name = "one bit, {read, write0, write1}";
    init = false;
    ops =
      [|
        ("read", fun s -> (s, if s then 1 else 0));
        ("write0", fun _ -> (false, 0));
        ("write1", fun _ -> (true, 0));
      |];
    max_branch = 2;
    equal = Bool.equal;
  }

(* cells: 0 = ⊥, 1 = value 0, 2 = value 1; branch = observed old state *)
let cas_cell =
  {
    name = "one cell over {bot,0,1}, {cas}";
    init = 0;
    ops =
      [|
        ("cas(bot,0)", fun s -> ((if s = 0 then 1 else s), s));
        ("cas(bot,1)", fun s -> ((if s = 0 then 2 else s), s));
        ("read", fun s -> (s, s));
      |];
    max_branch = 3;
    equal = Int.equal;
  }

let swap_cell =
  {
    name = "one cell over {bot,0,1}, {read, swap}";
    init = 0;
    ops =
      [|
        ("swap(0)", fun s -> (1, s));
        ("swap(1)", fun s -> (2, s));
        ("read", fun s -> (s, s));
      |];
    max_branch = 3;
    equal = Int.equal;
  }
