type stats = {
  configs : int;
  probes : int;
  truncated : bool;
}

type outcome = (stats, string) result

exception Violation of string

(* The exploration engines live in [Explore]; this is the historical entry
   point, kept as a thin wrapper so existing callers (synthesis, tests,
   executables) keep their signature. *)
let explore ?probe ?solo_fuel ?engine p ~inputs ~depth =
  match Explore.run ?probe ?solo_fuel ?engine p ~inputs ~depth with
  | Ok (s : Explore.stats) ->
    Ok { configs = s.Explore.configs; probes = s.Explore.probes; truncated = s.Explore.truncated }
  | Error msg -> Error msg

let decidable_values ?(solo_fuel = 100_000) (module P : Consensus.Proto.S) ~inputs ~depth =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let seen = Hashtbl.create 7 in
  let rec go cfg d =
    List.iter (fun (_, v) -> Hashtbl.replace seen v ()) (M.decisions cfg);
    match M.running cfg with
    | [] -> ()
    | running ->
      List.iter
        (fun pid ->
          match M.run_solo ~fuel:solo_fuel ~pid cfg with
          | _, Some v -> Hashtbl.replace seen v ()
          | _, None ->
            raise
              (Violation
                 (Printf.sprintf "process %d did not decide solo within %d steps" pid
                    solo_fuel)))
        running;
      if d > 0 then List.iter (fun pid -> go (M.step cfg pid) (d - 1)) running
  in
  let cfg = M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
  match go cfg depth with
  | () -> Ok (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen []))
  | exception Violation msg -> Error msg
