type stats = {
  configs : int;
  probes : int;
  truncated : bool;
}

exception Violation of string

let failure_message = Explore.failure_message

(* The exploration engines live in [Explore]; this is the historical entry
   point, kept as a thin wrapper so existing callers (synthesis, tests,
   executables) keep their signature.  Violations now carry a replayable,
   shrunk witness; [failure_message] recovers the old string. *)
let explore ?probe ?solo_fuel ?engine ?shrink ?reduce ?crashes ?force ?notify_symmetry
    ?deadline ?observers p ~inputs ~depth =
  match
    Explore.run ?probe ?solo_fuel ?engine ?shrink ?reduce ?crashes ?force
      ?notify_symmetry ?deadline ?observers p ~inputs ~depth
  with
  | Explore.Completed (s : Explore.stats) ->
    Explore.Completed
      { configs = s.Explore.configs; probes = s.Explore.probes; truncated = s.Explore.truncated }
  | Falsified f -> Falsified f
  | Timed_out t -> Timed_out t

(* Bivalence on the shared memoized DFS core (Explore's fingerprint
   transposition table); errors flattened back to strings for the callers
   that predate witnesses — a timeout flattens too, since for bivalence a
   partial value set is not a sound answer. *)
let decidable_values ?solo_fuel ?reduce ?crashes ?force ?notify_symmetry ?deadline
    ?observers p ~inputs ~depth =
  match
    Explore.decidable_values ?solo_fuel ~memo:true ?reduce ?crashes ?force
      ?notify_symmetry ?deadline ?observers p ~inputs ~depth
  with
  | Explore.Completed vs -> Ok vs
  | Falsified f -> Error (failure_message f)
  | Timed_out t ->
    Error
      (Printf.sprintf "timed out after %.3gs (%d configurations visited)" t.deadline
         t.partial.configs)

(* The original unmemoized walk, kept verbatim as the reference
   implementation for differential testing of the port above. *)
let decidable_values_naive ?(solo_fuel = 100_000) (module P : Consensus.Proto.S) ~inputs
    ~depth =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let seen = Hashtbl.create 7 in
  let rec go cfg d =
    List.iter (fun (_, v) -> Hashtbl.replace seen v ()) (M.decisions cfg);
    match M.running cfg with
    | [] -> ()
    | running ->
      List.iter
        (fun pid ->
          match M.run_solo ~fuel:solo_fuel ~pid cfg with
          | _, Some v -> Hashtbl.replace seen v ()
          | _, None ->
            raise
              (Violation
                 (Printf.sprintf "process %d did not decide solo within %d steps" pid
                    solo_fuel)))
        running;
      if d > 0 then List.iter (fun pid -> go (M.step cfg pid) (d - 1)) running
  in
  let cfg = M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
  match go cfg depth with
  | () -> Ok (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen []))
  | exception Violation msg -> Error msg
