(** The exploration engines behind {!Modelcheck.explore}.

    All engines decide the same property — they walk the schedule tree of a
    protocol to a depth bound, checking agreement/validity at every visited
    configuration and optionally probing obstruction-freedom — but differ in
    how much of the tree they actually touch:

    - [`Naive] walks every schedule (the original engine).
    - [`Memo] keeps a transposition table keyed on
      {!Model.Machine.Make.fingerprint}: schedules that permute independent
      (commuting) steps converge to the same configuration, whose subtree is
      then explored once.  Entries remember the deepest remaining depth
      already covered, so pruning never loses reachable configurations.
    - [`Parallel k] expands a sequential BFS prefix and hands the frontier
      to [k] domains ([Domain.spawn]) that drain a shared work queue, each
      with a domain-local transposition table.

    Engines agree on the verdict: [Ok _] vs [Error _], and the violation
    class, match across engines on the same protocol/depth (the exact
    counter-example message may differ for [`Parallel]).  Stats differ by
    design — [`Memo] visits fewer configurations. *)

type engine = [ `Naive | `Memo | `Parallel of int ]
type probe_policy = [ `Leaves | `Everywhere | `Never ]

type stats = {
  configs : int;      (** configurations visited (dedup'd ones not counted) *)
  probes : int;       (** solo/termination probes run *)
  truncated : bool;   (** some branch hit the depth bound *)
  dedup_hits : int;   (** revisits pruned by the transposition table *)
  elapsed : float;    (** wall-clock seconds for the whole exploration *)
}

type outcome = (stats, string) result
(** [Error msg] describes the first violation found. *)

val run :
  ?probe:probe_policy ->
  ?solo_fuel:int ->
  ?engine:engine ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  outcome
(** [run proto ~inputs ~depth] explores the schedule tree to [depth] steps
    with the chosen [engine] (default [`Naive]).  Probing (default
    [`Leaves]) is as in {!Modelcheck.explore}. *)

type deepen_report = {
  depth_reached : int;   (** deepest completed iteration *)
  complete : bool;       (** exploration finished without hitting the bound *)
  last : stats;          (** stats of the deepest iteration *)
  total_configs : int;   (** configurations visited across all iterations *)
  total_elapsed : float; (** wall-clock seconds across all iterations *)
}

val deepen :
  ?probe:probe_policy ->
  ?solo_fuel:int ->
  ?engine:engine ->
  ?budget:float ->
  Consensus.Proto.t ->
  inputs:int array ->
  max_depth:int ->
  (deepen_report, string) result
(** Iterative deepening: run depth 1, 2, … until the exploration completes
    (no branch truncated), [max_depth] is reached, or the wall-clock
    [budget] (default 1.0 s, checked between iterations) runs out.  The
    default [engine] is [`Memo], which makes each re-iteration cheap.
    [Error msg] if any iteration finds a violation. *)
