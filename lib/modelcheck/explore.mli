(** The exploration engines behind {!Modelcheck.explore}.

    All engines decide the same property — they walk the schedule tree of a
    protocol to a depth bound, checking agreement/validity at every visited
    configuration and optionally probing obstruction-freedom — but differ in
    how much of the tree they actually touch:

    - [`Naive] walks every schedule (the original engine).
    - [`Memo] keeps a transposition table keyed on
      {!Model.Machine.Make.fingerprint}: schedules that permute independent
      (commuting) steps converge to the same configuration, whose subtree is
      then explored once.  Entries remember the deepest remaining depth
      already covered, so pruning never loses reachable configurations.
    - [`Parallel k] expands a sequential BFS prefix and hands the frontier
      to [k] domains ([Domain.spawn]) that drain a shared work queue, each
      with a domain-local transposition table.

    Engines agree on the verdict: [Ok _] vs [Error _], and the violation
    {!violation_kind}, match across engines on the same protocol/depth (the
    exact counter-example may differ for [`Parallel]).  Stats differ by
    design — [`Memo] visits fewer configurations.

    Every engine additionally threads the schedule leading to each
    configuration, so a violation is reported as a structured {!witness}:
    the adversarial interleaving as data, in the spirit of the paper's
    lower-bound proofs ("here is the execution that breaks you").  Witnesses
    replay deterministically ({!replay}) and are shrunk to a minimal
    interleaving by delta debugging before being reported. *)

type engine = [ `Naive | `Memo | `Parallel of int ]
type probe_policy = [ `Leaves | `Everywhere | `Never ]

type violation_kind = [ `Agreement | `Validity | `Obstruction_freedom | `Termination ]

val kind_name : violation_kind -> string
(** ["agreement"], ["validity"], ["obstruction-freedom"], ["termination"] —
    also the prefix of every violation message. *)

type witness = {
  kind : violation_kind;
  message : string;    (** human-readable description of the violation *)
  schedule : int list; (** pids stepped from the root, in execution order *)
  probe : int option;
      (** the pid whose solo probe (followed by one bounded solo run of each
          remaining process) exposed the violation, if it was found by a
          probe rather than at the scheduled configuration itself *)
}
(** A counterexample: replaying [schedule] from the initial configuration —
    then the solo probe of [probe], if any — reproduces the violation. *)

val pp_witness : Format.formatter -> witness -> unit

type failure = {
  witness : witness;       (** the shrunk witness (equal to [original] when
                               shrinking is disabled or replay failed) *)
  original : witness;      (** the witness exactly as the engine found it *)
  reproduced : bool;       (** replaying [original] raised the same kind *)
  shrink_attempts : int;   (** candidate replays tried while shrinking *)
  trace : string option;   (** pretty-printed event trace of the shrunk
                               witness's replay ({!Model.Machine.Make.pp_trace}) *)
}
(** Everything known about one violation.  [witness.message] is the
    string earlier releases reported; {!failure_message} recovers it. *)

val failure_message : failure -> string
(** The violation message of the (shrunk) witness — string-compatible with
    the pre-witness API. *)

type stats = {
  configs : int;      (** configurations visited (dedup'd ones not counted) *)
  probes : int;       (** solo/termination probes run *)
  truncated : bool;   (** some branch hit the depth bound *)
  dedup_hits : int;   (** revisits pruned by the transposition table *)
  elapsed : float;    (** wall-clock seconds for the whole exploration *)
}

type outcome = (stats, failure) result
(** [Error f] describes the first violation found, with its witness. *)

val run :
  ?probe:probe_policy ->
  ?solo_fuel:int ->
  ?engine:engine ->
  ?shrink:bool ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  outcome
(** [run proto ~inputs ~depth] explores the schedule tree to [depth] steps
    with the chosen [engine] (default [`Naive]).  Probing (default
    [`Leaves]) is as in {!Modelcheck.explore}.  On a violation the witness
    is replayed for confirmation and, unless [shrink:false], minimized by
    greedy schedule-segment deletion (each candidate kept iff its replay
    still raises the same violation kind). *)

type replay_report = {
  violation : (violation_kind * string) option;
      (** the violation the replay ran into ([None]: it completed cleanly —
          the witness does not reproduce) *)
  events : string;  (** the full event trace of the replayed execution *)
}

val replay :
  ?solo_fuel:int ->
  Consensus.Proto.t ->
  inputs:int array ->
  witness ->
  (replay_report, string) result
(** Deterministically re-execute a witness from the initial configuration:
    step its schedule pid by pid, then re-run its solo probe, then re-check
    agreement/validity.  [Error _] if the schedule names a process that
    cannot step (only possible for hand-edited witnesses). *)

val decidable_values :
  ?solo_fuel:int ->
  ?memo:bool ->
  ?shrink:bool ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  (int list, failure) result
(** The set of values some solo continuation decides from some configuration
    reachable within [depth] steps — ≥ 2 values demonstrate bivalence
    (Lemma 6.4).  Runs on the same fingerprint transposition table as the
    [`Memo] engine (disable with [memo:false] to get the naive walk); a
    process that fails to decide solo is reported as an obstruction-freedom
    failure with a witness. *)

type deepen_report = {
  depth_reached : int;   (** deepest completed iteration *)
  complete : bool;       (** exploration finished without hitting the bound *)
  last : stats;          (** stats of the deepest iteration *)
  total_configs : int;   (** configurations visited across all iterations *)
  total_elapsed : float; (** wall-clock seconds across all iterations *)
}

val deepen :
  ?probe:probe_policy ->
  ?solo_fuel:int ->
  ?engine:engine ->
  ?budget:float ->
  ?shrink:bool ->
  Consensus.Proto.t ->
  inputs:int array ->
  max_depth:int ->
  (deepen_report, failure) result
(** Iterative deepening: run depth 1, 2, … until the exploration completes
    (no branch truncated), [max_depth] is reached, or the wall-clock
    [budget] (default 1.0 s, checked between iterations) runs out.  The
    default [engine] is [`Memo], which makes each re-iteration cheap.
    [Error f] if any iteration finds a violation. *)
