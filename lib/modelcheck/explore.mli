(** The exploration engines behind {!Modelcheck.explore}.

    All engines decide the same property — they walk the schedule tree of a
    protocol to a depth bound, checking agreement/validity at every visited
    configuration and optionally probing obstruction-freedom (or, with
    [?observers], whatever property the supplied {!Observer} set monitors) —
    but differ in how much of the tree they actually touch:

    - [`Naive] walks every schedule (the original engine).
    - [`Memo] keeps a transposition table ({!Transposition}) keyed on the
      two-word {!Model.Machine.Make.fingerprint_words}: schedules that
      permute independent (commuting) steps converge to the same
      configuration, whose subtree is then explored once.  Entries are
      claim lists remembering the remaining depths (and sleep sets)
      already covered, so pruning never loses reachable configurations —
      and a revisit whose depth is covered from an incomparable sleep set
      re-explores only the transitions no prior pass stepped.
    - [`Parallel k] expands a sequential BFS prefix and hands the frontier
      to [k] domains ([Domain.spawn]) that drain a shared work queue in
      batches, all updating one shared sharded transposition table — work
      one domain claims is never repeated by another.

    Engines agree on the verdict: [Ok _] vs [Error _], and the violation
    {!violation_kind}, match across engines on the same protocol/depth (the
    exact counter-example may differ for [`Parallel]).  Stats differ by
    design — [`Memo] visits fewer configurations.

    Every engine additionally threads the schedule leading to each
    configuration, so a violation is reported as a structured {!witness}:
    the adversarial interleaving as data, in the spirit of the paper's
    lower-bound proofs ("here is the execution that breaks you").  Witnesses
    replay deterministically ({!replay}) and are shrunk to a minimal
    interleaving by delta debugging before being reported. *)

type engine = [ `Naive | `Memo | `Parallel of int ]
type probe_policy = [ `Leaves | `Everywhere | `Never ]

type fingerprint_mode = [ `Flat | `Fold ]
(** Which fingerprint implementation keys the transposition tables:
    [`Flat] (the default) reads the machine's incrementally maintained
    two-lane digest in O(1) per configuration; [`Fold] recomputes the
    original from-scratch fold ({!Model.Machine.Make.slow_fingerprint})
    every time — the debug/differential-testing reference.  Verdicts,
    witness schedules and decidable-value sets are identical in both modes
    (modulo hash collisions); only speed differs. *)

val default_fingerprint_mode : fingerprint_mode
(** [`Fold] when the environment variable [SPACE_HIERARCHY_FP] is set to
    ["fold"] at load time, else [`Flat]. *)

type reduction = {
  commute : bool;
      (** Commutativity reduction via sleep sets: when two enabled processes
          are poised at independent accesses — disjoint locations, or the
          same location with instructions declared independent by
          [I.commutes] — only one order of the pair is explored.  Sleep sets
          prune redundant transitions but still visit every reachable
          configuration at its shallowest depth, so verdicts, probes and
          decidable-value sets are preserved for {e every} protocol.
          Composes with any engine; under [`Memo]/[`Parallel] the
          transposition-table entries carry the sleep set they were explored
          from and a revisit is only pruned when covered. *)
  symmetric : bool;
      (** Process-symmetry reduction: key the transposition table on
          {!Model.Machine.Make.canonical_fingerprint}, conflating
          configurations that differ only by permuting the full states of
          equal-input processes.  {b Only sound for pid-symmetric protocols}
          — those whose code ignores the process id except through its input
          ([proc ~n ~pid ~input] must not read [pid] other than to thread it
          to accesses' bookkeeping).  For pid-dependent protocols this can
          conflate genuinely different configurations and miss violations;
          it is therefore opt-in and has no effect on [`Naive] (which keeps
          no table).

          Soundness is {e enforced}: every [symmetric = true] entry point
          first certifies the protocol pid-oblivious for this run's
          equal-input pid pairs, to the exploration depth, by lockstep
          symbolic unfolding ({!Analysis.Symmetry.certify_for_run}).  An
          uncertified protocol raises {!Uncertified_symmetry}; pass
          [~force:true] to run the reduction anyway (unsound — for
          experiments only). *)
}
(** Which state-space reductions to layer over an engine.  Both default to
    off ({!no_reduction}), preserving historical behaviour exactly. *)

val no_reduction : reduction
val full_reduction : reduction
(** [full_reduction] enables both; only use it on pid-symmetric protocols. *)

exception
  Uncertified_symmetry of { protocol : string; verdict : Analysis.Symmetry.verdict }
(** Raised (before any exploration) by {!run}, {!decidable_values} and
    {!deepen} when [reduce.symmetric = true] but
    {!Analysis.Symmetry.certify_for_run} could not certify the protocol
    pid-symmetric for the run's inputs — the [verdict] carries the
    divergence witness ([Asymmetric]) or the budget failure ([Unknown]).
    Suppressed by [~force:true]. *)

exception Observer_unsafe_reduction of { observer : string; reduction : string }
(** Raised (before any exploration) by {!run}, {!decidable_values} and
    {!deepen} when the requested [reduce] enables a reduction some supplied
    observer declares unsound for itself ({!Observer.S.commute_safe},
    {!Observer.S.symmetric_safe}) — e.g. {!Observer.lockout} under either
    reduction.  Suppressed by [~force:true] (unsound — for experiments). *)

type violation_kind =
  [ `Agreement | `Validity | `Obstruction_freedom | `Termination | `Observer of string ]
(** [`Observer name] is a violation reported by a custom observer whose
    verdict kind matches none of the legacy names; the built-in
    agreement/validity/solo-termination observers report the legacy
    constructors, so observer-driven runs and the hard-coded checker yield
    comparable witnesses. *)

val kind_name : violation_kind -> string
(** ["agreement"], ["validity"], ["obstruction-freedom"], ["termination"],
    or the observer's verdict kind — also the prefix of every violation
    message. *)

val kind_of_name : string -> violation_kind
(** Inverse of {!kind_name}: the four legacy names map to the legacy
    constructors, anything else to [`Observer name]. *)

type witness = {
  kind : violation_kind;
  message : string;    (** human-readable description of the violation *)
  schedule : int list;
      (** pids stepped from the root, in execution order; a negative entry
          [{!crash_code} pid] is a crash–recover of [pid] (only present in
          runs with a nonzero crash budget) *)
  probe : int option;
      (** the pid whose solo probe (followed by one bounded solo run of each
          remaining process) exposed the violation, if it was found by a
          probe rather than at the scheduled configuration itself *)
}
(** A counterexample: replaying [schedule] from the initial configuration —
    then the solo probe of [probe], if any — reproduces the violation. *)

val crash_code : int -> int
(** [crash_code pid = -(pid + 1)]: the schedule encoding of a crash–recover
    of [pid].  Ordinary pids are non-negative, so the encoding is
    unambiguous and survives JSON round-trips as a plain int. *)

val is_crash : int -> bool
(** Whether a schedule entry encodes a crash–recover event. *)

val crash_pid : int -> int
(** The victim of a crash entry: [crash_pid (crash_code pid) = pid]. *)

val pp_schedule_entry : int -> string
(** ["p3"] for an ordinary step of pid 3, ["†p3"] for its crash–recover. *)

val pp_witness : Format.formatter -> witness -> unit

type stats = {
  configs : int;      (** configurations visited (dedup'd ones not counted) *)
  probes : int;       (** solo/termination probes run *)
  truncated : bool;   (** some branch hit the depth bound *)
  dedup_hits : int;   (** revisits pruned by the transposition table *)
  sleep_pruned : int; (** transitions pruned by the commutativity reduction *)
  elapsed : float;    (** wall-clock seconds of the engine proper (excludes
                          witness replay/shrink on the failure path) *)
}

type failure = {
  witness : witness;       (** the shrunk witness (equal to [original] when
                               shrinking is disabled or replay failed) *)
  original : witness;      (** the witness exactly as the engine found it *)
  reproduced : bool;       (** replaying [original] raised the same kind *)
  shrink_attempts : int;   (** candidate replays tried while shrinking *)
  trace : string option;   (** pretty-printed event trace of the shrunk
                               witness's replay ({!Model.Machine.Make.pp_trace}) *)
  stats : stats;           (** the engine's counters up to the violation —
                               failing runs report their exploration effort
                               too, not just successful ones *)
  diagnosis_elapsed : float;
      (** wall-clock seconds spent replaying, shrinking and re-tracing the
          witness, kept separate from [stats.elapsed] so engine timings
          compare like with like *)
}
(** Everything known about one violation.  [witness.message] is the
    string earlier releases reported; {!failure_message} recovers it. *)

val failure_message : failure -> string
(** The violation message of the (shrunk) witness — string-compatible with
    the pre-witness API. *)

type timeout = {
  partial : stats;  (** the engine's counters up to the moment it stopped *)
  deadline : float; (** the wall-clock budget (seconds) that expired *)
}

type 'a verdict =
  | Completed of 'a       (** exploration ran to its depth bound *)
  | Falsified of failure  (** a violation was found, with its witness *)
  | Timed_out of timeout  (** the wall-clock deadline expired first *)
(** The three-way outcome of a deadline-aware exploration.  [Completed]
    carries the engine stats ({!run}) or the decidable-value set
    ({!decidable_values}); [Timed_out] is a structured partial result, not
    an error — the campaign executor records it per task and moves on. *)

val run :
  ?probe:probe_policy ->
  ?solo_fuel:int ->
  ?engine:engine ->
  ?shrink:bool ->
  ?reduce:reduction ->
  ?crashes:int ->
  ?force:bool ->
  ?notify_symmetry:(Analysis.Symmetry.verdict -> unit) ->
  ?deadline:float ->
  ?fingerprint_mode:fingerprint_mode ->
  ?observers:Observer.t list ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  stats verdict
(** [run proto ~inputs ~depth] explores the schedule tree to [depth] steps
    with the chosen [engine] (default [`Naive]).  Probing (default
    [`Leaves]) is as in {!Modelcheck.explore}.  [reduce] (default
    {!no_reduction}) layers commutativity and/or symmetry reduction over the
    engine — see {!reduction} for the soundness contract.  With
    [reduce.symmetric] the protocol is first certified pid-symmetric for
    these inputs; an uncertified protocol raises {!Uncertified_symmetry}
    unless [force] (default [false]) is set, and [notify_symmetry] (if
    given) receives the verdict either way.  On a violation the witness is
    replayed for confirmation and, unless [shrink:false], minimized by
    greedy schedule-segment deletion (each candidate kept iff its replay
    still raises the same violation kind).

    [observers] (default [[]]) replaces the hard-coded agreement/validity
    checks and probe judgments with the supplied {!Observer} set: the
    monitors are advanced inline over every scheduled step, their verdict is
    checked at every visited configuration, and solo probes run iff the
    probe policy allows them {e and} some observer wants them
    ({!Observer.S.wants_probes}), feeding each probe's outcome to the set.
    [Observer.defaults] reproduces the legacy checker.  Under [`Memo] and
    [`Parallel] the observer digest is folded into the transposition key (a
    product construction), so memoization remains exact; a reduction an
    observer declares unsafe for itself raises
    {!Observer_unsafe_reduction} unless [force] is set.  The empty set
    keeps the engines on the legacy checker, byte for byte.

    [crashes] (default [0]) is the crash budget of Golab's crash–recovery
    model: at every visited configuration with budget remaining, each
    process that has stepped since its last start or recovery additionally
    branches into a {!Model.Machine.Make.crash_recover} transition — its
    program state is lost, shared memory survives, and it restarts from the
    protocol root.  Crash-point enumeration is exhaustive: a [Completed]
    verdict certifies the property under {e every} placement of at most
    [crashes] crashes within the depth bound, including crashes of
    already-decided processes (the re-decision scenario).  Crash events
    appear in witness schedules as negative entries ({!crash_code}) and
    replay and shrink like ordinary steps.  Crash branches bypass the
    sleep-set reduction (a crash commutes with nothing its victim does) and
    remain sound under the transposition table because recovery epochs are
    part of the machine fingerprint.  With [crashes = 0] every engine is
    bit-identical to a build without the crash subsystem — same verdicts,
    fingerprints, counters.

    [deadline] (wall-clock seconds; default unbounded) bounds the engine
    proper: every engine — including each parallel worker — checks it at
    each visited configuration and returns [Timed_out] with the counters
    accumulated so far instead of running unbounded.  The deadline clock
    starts after the symmetry gate, and a configuration's probes are not
    interrupted mid-probe (solo runs are already bounded by [solo_fuel]),
    so expiry is detected within one configuration's worth of work. *)

type replay_report = {
  violation : (violation_kind * string) option;
      (** the violation the replay ran into ([None]: it completed cleanly —
          the witness does not reproduce) *)
  events : string;  (** the full event trace of the replayed execution *)
}

val replay :
  ?solo_fuel:int ->
  ?observers:Observer.t list ->
  Consensus.Proto.t ->
  inputs:int array ->
  witness ->
  (replay_report, string) result
(** Deterministically re-execute a witness from the initial configuration:
    step its schedule pid by pid, then re-run its solo probe, then re-check
    agreement/validity — or, with [observers], advance the observer set over
    every step (checking its verdict after each one, stopping at the first
    violation) and feed it the probe's outcome.  [Error _] if the schedule
    names a process that cannot step, or if the witness's [probe] names a
    process that is not running once the schedule has been executed — a
    decided or finished process cannot be probed (only possible for
    hand-edited witnesses; engine-reported witnesses always replay). *)

val decidable_values :
  ?solo_fuel:int ->
  ?memo:bool ->
  ?shrink:bool ->
  ?reduce:reduction ->
  ?crashes:int ->
  ?force:bool ->
  ?notify_symmetry:(Analysis.Symmetry.verdict -> unit) ->
  ?deadline:float ->
  ?fingerprint_mode:fingerprint_mode ->
  ?observers:Observer.t list ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  int list verdict
(** The set of values some solo continuation decides from some configuration
    reachable within [depth] steps — ≥ 2 values demonstrate bivalence
    (Lemma 6.4).  Runs on the same fingerprint transposition table as the
    [`Memo] engine (disable with [memo:false] to get the naive walk) and
    honours [reduce], [crashes], [deadline] and [observers] like {!run} — reductions
    preserve the decidable-value set because every reachable configuration
    is still probed; a process that fails to decide solo is reported
    ([Falsified]) as an obstruction-freedom failure with a witness.  The
    bivalence walk's own solo probes (which collect the decided values)
    always run regardless of the observer set; supplied observers are
    checked at every visited configuration on top. *)

type deepen_report = {
  depth_reached : int;   (** deepest completed iteration *)
  complete : bool;       (** exploration finished without hitting the bound *)
  last : stats;          (** stats of the deepest iteration *)
  total_configs : int;   (** configurations visited across all iterations *)
  total_elapsed : float; (** wall-clock seconds across all iterations *)
}

val deepen :
  ?probe:probe_policy ->
  ?solo_fuel:int ->
  ?engine:engine ->
  ?budget:float ->
  ?shrink:bool ->
  ?reduce:reduction ->
  ?crashes:int ->
  ?force:bool ->
  ?notify_symmetry:(Analysis.Symmetry.verdict -> unit) ->
  ?fingerprint_mode:fingerprint_mode ->
  ?observers:Observer.t list ->
  Consensus.Proto.t ->
  inputs:int array ->
  max_depth:int ->
  deepen_report verdict
(** Iterative deepening: run depth 1, 2, … until the exploration completes
    (no branch truncated), [max_depth] is reached, or the wall-clock
    [budget] (default 1.0 s) runs out.  The default [engine] is [`Memo],
    which makes each re-iteration cheap.  The remaining budget is passed to
    each iteration as its [deadline], so a single oversized iteration can no
    longer blow past the budget: an iteration that times out returns the
    deepest previously completed report ([Completed], with
    [complete = false]), or [Timed_out] if even depth 1 did not finish.
    [Falsified f] if any iteration finds a violation.  The symmetry gate
    ([reduce.symmetric], [force], [notify_symmetry] — see {!run}) fires
    once, against [max_depth]. *)
