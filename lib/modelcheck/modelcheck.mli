(** Bounded exhaustive verification of consensus protocols.

    Explores {e every} schedule of a protocol up to a step bound — possible
    because processes are pure step machines, so a configuration can be
    stepped along all branches.  At each explored configuration the checker
    can probe obstruction-freedom and agreement: run each undecided process
    solo (it must decide), then drive the rest sequentially and demand a
    consistent, valid decision set.

    This is the executable counterpart of the paper's proof obligations:
    agreement and validity in all executions, solo termination from every
    reachable configuration.  A violation is reported as a structured
    {!Explore.failure} carrying a replayable, shrunk schedule witness — the
    adversarial interleaving as data. *)

type stats = {
  configs : int;        (** configurations visited *)
  probes : int;         (** solo/termination probes run *)
  truncated : bool;     (** some branch hit the depth bound *)
}

val failure_message : Explore.failure -> string
(** The violation message — string-compatible with the pre-witness API
    (re-export of {!Explore.failure_message}). *)

val explore :
  ?probe:[ `Leaves | `Everywhere | `Never ] ->
  ?solo_fuel:int ->
  ?engine:[ `Naive | `Memo | `Parallel of int ] ->
  ?shrink:bool ->
  ?reduce:Explore.reduction ->
  ?crashes:int ->
  ?force:bool ->
  ?notify_symmetry:(Analysis.Symmetry.verdict -> unit) ->
  ?deadline:float ->
  ?observers:Observer.t list ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  stats Explore.verdict
(** [explore proto ~inputs ~depth] walks the full schedule tree to [depth]
    steps.  Probing (default [`Leaves]: only where the depth bound cuts the
    tree off, or [`Everywhere]: at every configuration) checks that each
    undecided process decides within [solo_fuel] solo steps and that the
    resulting decisions agree and are valid.

    [engine] selects the exploration strategy (default [`Naive]): [`Memo]
    dedups configurations reached by commuting independent steps via a
    transposition table on {!Model.Machine.Make.fingerprint}; [`Parallel k]
    additionally splits the schedule tree across [k] domains.  All engines
    return the same verdict; [`Memo]/[`Parallel] visit fewer configurations
    and may report [truncated] differently at the same bound.  On a
    violation the reported witness has been replayed for confirmation and
    (unless [shrink:false]) minimized by delta debugging.  [reduce] layers
    commutativity/symmetry reduction over the engine (default off — see
    {!Explore.reduction} for when each half is sound).  Symmetric reduction
    is gated on the pid-symmetry certifier: an uncertified protocol raises
    {!Explore.Uncertified_symmetry} unless [force] is set, and
    [notify_symmetry] receives the certification verdict.  [deadline]
    bounds the wall-clock budget: an expired run returns
    [Explore.Timed_out] with the partial counters instead of running
    unbounded.  [crashes] (default 0) is the crash–recovery budget —
    exhaustive crash-point enumeration under Golab's model; see
    {!Explore.run}.  [observers] swaps the hard-coded agreement/validity/probe
    checks for a pluggable {!Observer} set — see {!Explore.run}.  This is a
    thin wrapper over {!Explore.run}, which also exposes dedup/timing
    stats, witness replay ({!Explore.replay}) and iterative deepening
    ({!Explore.deepen}). *)

val decidable_values :
  ?solo_fuel:int ->
  ?reduce:Explore.reduction ->
  ?crashes:int ->
  ?force:bool ->
  ?notify_symmetry:(Analysis.Symmetry.verdict -> unit) ->
  ?deadline:float ->
  ?observers:Observer.t list ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  (int list, string) result
(** The set of values some solo continuation decides from some configuration
    reachable within [depth] steps — ≥ 2 values demonstrate bivalence
    (Lemma 6.4).  Runs on the [`Memo] engine's fingerprint transposition
    table ({!Explore.decidable_values}), so commuting schedules are walked
    once; [reduce] as in {!explore}.  [deadline] as in {!explore}, but
    flattened to [Error _]: a partial value set would not witness anything,
    so a timeout here is just a failure to answer. *)

val decidable_values_naive :
  ?solo_fuel:int ->
  Consensus.Proto.t ->
  inputs:int array ->
  depth:int ->
  (int list, string) result
(** The original unmemoized walk of every schedule — kept as the reference
    implementation that {!decidable_values} is differentially tested
    against.  Prefer {!decidable_values}. *)
