(** Sharded transposition table over two-word configuration fingerprints.

    Shared by the [`Memo] engine (one unlocked shard) and the parallel
    engine (many locked shards, selected by the fingerprint's low bits, so
    domains looking up distinct states almost never contend on a lock).

    Entries are {e claim lists}: a claim [(d, S)] records one exploration
    pass — every enabled transition outside the sleep set [S] explored to
    remaining depth [d].  Claims are inserted optimistically, before the
    subtree is walked; see [transposition.ml] for why that is sound for
    both engines. *)

type t

type plan =
  | Hit  (** some prior pass covers this revisit — skip it entirely *)
  | Visit
      (** no prior pass reached this depth — explore in full (a claim for
          this pass has been recorded) *)
  | Partial of int
      (** prior passes cover the depth but left some transitions asleep;
          the payload is the {e intersection} of their sleep sets.  Explore
          only transitions in it (minus the current sleep set), and skip
          the per-configuration work — the state itself was checked when
          first visited.  A claim for this pass has been recorded. *)

val create : ?shards:int -> concurrent:bool -> unit -> t
(** [create ~concurrent ()] makes an empty table.  [shards] (rounded up to
    a power of two) defaults to 64 when [concurrent], else 1.  With
    [concurrent:false] all locking is skipped — the sequential engines'
    configuration. *)

val shard_count : t -> int

val plan : t -> int -> int -> depth:int -> sleep:int -> plan
(** [plan t a b ~depth ~sleep] consults and updates the table for the
    configuration fingerprinted [(a, b)], reached with [depth] remaining
    steps and the pid bitmask [sleep] asleep.  Atomic per shard. *)

val stats : t -> int
(** Total number of distinct fingerprints claimed across all shards. *)
