(** The space hierarchy (Table 1) as an executable object.

    Each row pairs an instruction set with the paper's lower/upper bounds
    and this library's implementation of the upper-bound algorithm.
    [measure] runs the algorithm and reports the locations it actually
    touched; [render] regenerates Table 1 with measured columns — the
    repository's headline experiment (see EXPERIMENTS.md, T1). *)

type row = {
  id : string;                         (** short stable identifier *)
  iset : string;                       (** instruction set, paper notation *)
  paper_lower : string;                (** lower bound as printed in Table 1 *)
  paper_upper : string;                (** upper bound as printed in Table 1 *)
  upper : n:int -> int option;         (** upper-bound formula; [None] = ∞ *)
  protocol : Consensus.Proto.t;        (** the algorithm achieving it *)
  binary_only : bool;                  (** protocol solves binary consensus only *)
}

val rows : ?ells:int list -> ?recovery:bool -> unit -> row list
(** All Table 1 rows; ℓ-buffer rows (with and without multiple assignment)
    instantiated at each ℓ in [ells] (default [[1; 2; 3]]).  Includes the
    introduction's two collapse examples as extra rows.  With
    [recovery:true] (default [false]) the crash–recovery rows ([rc-]
    prefix, {!Recovery}) are appended; they are opt-in so every consumer
    keyed on the default registry — campaign grids, bench baselines — is
    unchanged by the crash subsystem. *)

val find : ?ells:int list -> string -> row option
(** Look up a row by [id] (recovery rows included). *)

type measurement = {
  n : int;
  allocated : int option;  (** the formula's value, [None] for ∞ *)
  measured : int;          (** locations touched in the run *)
  steps : int;
  decision : int;
}

val measure :
  ?seed:int -> ?prefix:int -> ?fuel:int -> row -> n:int -> (measurement, string) result
(** Run the row's protocol with [n] processes (inputs spread over the value
    domain, adversarial random prefix then sequential finish), check
    agreement and validity, and report the space it used. *)

val render : ?ells:int list -> ?ns:int list -> unit -> string
(** The Table 1 reproduction: one line per row with paper bounds and
    measured locations for each n in [ns] (default [[2; 3; 5; 8; 12]]). *)

val render_csv : ?ells:int list -> ?ns:int list -> unit -> string
(** The same data in machine-readable CSV:
    [id,iset,paper_lower,paper_upper,n,measured,allocated,steps] — one line
    per (row, n). *)
