type row = {
  id : string;
  iset : string;
  paper_lower : string;
  paper_upper : string;
  upper : n:int -> int option;
  protocol : Consensus.Proto.t;
  binary_only : bool;
}

let ceil_div a b = (a + b - 1) / b

let log2_ceil n =
  let rec go k pow = if pow >= n then k else go (k + 1) (pow * 2) in
  Stdlib.max 1 (go 0 1)

let buffer_rows ell =
  let cap = string_of_int ell in
  [
    {
      id = Printf.sprintf "buffer-%d" ell;
      iset = Printf.sprintf "{%s-buffer-read(), %s-buffer-write(x)}" cap cap;
      paper_lower = Printf.sprintf "ceil((n-1)/%d)" ell;
      paper_upper = Printf.sprintf "ceil(n/%d)" ell;
      upper = (fun ~n -> Some (ceil_div n ell));
      protocol = Consensus.Buffers_protocol.protocol ~capacity:ell;
      binary_only = false;
    };
    {
      id = Printf.sprintf "multi-%d" ell;
      iset = Printf.sprintf "%d-buffers + multiple assignment" ell;
      paper_lower = Printf.sprintf "ceil((n-1)/%d)" (2 * ell);
      paper_upper = Printf.sprintf "ceil(n/%d)" ell;
      upper = (fun ~n -> Some (ceil_div n ell));
      protocol = Consensus.Buffers_protocol.multi_assignment_protocol ~capacity:ell;
      binary_only = false;
    };
  ]

(* Crash–recovery rows (Golab, arXiv 1804.10597).  Not part of Table 1 —
   they exist to be run under a crash budget ([modelcheck --crashes]), so
   they are appended only on request ([~recovery:true]): the default
   registry, and everything keyed on it (campaign grids, bench baselines),
   is unchanged.  The "rc-" prefix is the naming convention the analysis
   lint keys crash-awareness on. *)
let recovery_rows =
  [
    {
      id = "rc-tas-naive";
      iset = "{read(), write(x), test-and-set()} + crash-recovery";
      paper_lower = "-";
      paper_upper = "-";
      upper = (fun ~n -> Some (n + 1));
      protocol = Recovery.tas_naive;
      binary_only = false;
    };
    {
      id = "rc-cas";
      iset = "{compare-and-swap(x,y)} + crash-recovery";
      paper_lower = "-";
      paper_upper = "-";
      upper = (fun ~n -> Some (n + 1));
      protocol = Recovery.cas_durable;
      binary_only = false;
    };
  ]

let rows ?(ells = [ 1; 2; 3 ]) ?(recovery = false) () =
  [
    {
      id = "tas";
      iset = "{read(), test-and-set()}";
      paper_lower = "infinity";
      paper_upper = "infinity";
      upper = (fun ~n:_ -> None);
      protocol = Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only;
      binary_only = false;
    };
    {
      id = "write1";
      iset = "{read(), write(1)}";
      paper_lower = "infinity";
      paper_upper = "infinity";
      upper = (fun ~n:_ -> None);
      protocol = Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Write1_only;
      binary_only = false;
    };
    {
      id = "write01";
      iset = "{read(), write(1), write(0)}";
      paper_lower = "n";
      paper_upper = "O(n log n)";
      upper =
        (fun ~n ->
          let (module P : Consensus.Proto.S) =
            Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Write01
          in
          P.locations ~n);
      protocol = Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Write01;
      binary_only = false;
    };
    {
      id = "rw";
      iset = "{read(), write(x)}";
      paper_lower = "n";
      paper_upper = "n";
      upper = (fun ~n -> Some n);
      protocol = Consensus.Rw_protocol.protocol;
      binary_only = false;
    };
    {
      id = "tas-reset";
      iset = "{read(), test-and-set(), reset()}";
      paper_lower = "Omega(sqrt n)";
      paper_upper = "O(n log n)";
      upper =
        (fun ~n ->
          let (module P : Consensus.Proto.S) =
            Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Tas_reset
          in
          P.locations ~n);
      protocol = Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Tas_reset;
      binary_only = false;
    };
    {
      id = "swap";
      iset = "{read(), swap(x)}";
      paper_lower = "Omega(sqrt n)";
      paper_upper = "n-1";
      upper = (fun ~n -> Some (Stdlib.max 1 (n - 1)));
      protocol = Consensus.Swap_protocol.protocol;
      binary_only = false;
    };
  ]
  @ List.concat_map buffer_rows ells
  @ [
      {
        id = "increment";
        iset = "{read(), write(x), increment()}";
        paper_lower = "2";
        paper_upper = "O(log n)";
        upper = (fun ~n -> Some ((4 * log2_ceil n) - 2));
        protocol = Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only;
        binary_only = false;
      };
      {
        id = "fetch-incr";
        iset = "{read(), write(x), fetch-and-increment()}";
        paper_lower = "2";
        paper_upper = "O(log n)";
        upper = (fun ~n -> Some ((4 * log2_ceil n) - 2));
        protocol = Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Fetch_increment;
        binary_only = false;
      };
      {
        id = "max-register";
        iset = "{read-max(), write-max(x)}";
        paper_lower = "2";
        paper_upper = "2";
        upper = (fun ~n:_ -> Some 2);
        protocol = Consensus.Maxreg_protocol.protocol;
        binary_only = false;
      };
      {
        id = "cas";
        iset = "{compare-and-swap(x,y)}";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Cas_protocol.protocol;
        binary_only = false;
      };
      {
        id = "set-bit";
        iset = "{read(), set-bit(x)}";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Arith_protocols.set_bit;
        binary_only = false;
      };
      {
        id = "add";
        iset = "{read(), add(x)}";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Arith_protocols.add;
        binary_only = false;
      };
      {
        id = "multiply";
        iset = "{read(), multiply(x)}";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Arith_protocols.mul;
        binary_only = false;
      };
      {
        id = "fetch-add";
        iset = "{fetch-and-add(x)}";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Arith_protocols.faa;
        binary_only = false;
      };
      {
        id = "fetch-multiply";
        iset = "{fetch-and-multiply(x)}";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Arith_protocols.fam;
        binary_only = false;
      };
      {
        id = "inc-dec";
        iset = "{read(), write(x), inc(), dec()} (Sec. 10)";
        paper_lower = "1";
        paper_upper = "O(log n)";
        upper =
          (fun ~n ->
            let (module P : Consensus.Proto.S) = Consensus.Tugofwar_protocol.protocol in
            P.locations ~n);
        protocol = Consensus.Tugofwar_protocol.protocol;
        binary_only = false;
      };
      {
        id = "intro-faa2-tas";
        iset = "{fetch-and-add(2), test-and-set()} (Sec. 1)";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Intro_protocols.faa2_tas;
        binary_only = true;
      };
      {
        id = "intro-dec-mul";
        iset = "{read(), decrement(), multiply(x)} (Sec. 1)";
        paper_lower = "1";
        paper_upper = "1";
        upper = (fun ~n:_ -> Some 1);
        protocol = Consensus.Intro_protocols.decmul;
        binary_only = true;
      };
    ]
  @ (if recovery then recovery_rows else [])

let find ?ells id = List.find_opt (fun r -> r.id = id) (rows ?ells ~recovery:true ())

type measurement = {
  n : int;
  allocated : int option;
  measured : int;
  steps : int;
  decision : int;
}

let measure ?(seed = 7) ?(prefix = 200) ?(fuel = 20_000_000) row ~n =
  let inputs =
    if row.binary_only then Array.init n (fun i -> (i + seed) land 1)
    else Array.init n (fun i -> (i + seed) mod n)
  in
  let sched = Model.Sched.random_then_sequential ~seed ~prefix in
  let report = Consensus.Driver.run ~fuel row.protocol ~inputs ~sched in
  match Consensus.Driver.check report ~inputs with
  | Error e -> Error e
  | Ok () ->
    (match report.outcome, report.decisions with
     | `All_decided, (_, decision) :: _ ->
       Ok
         {
           n;
           allocated = row.upper ~n;
           measured = report.locations_used;
           steps = report.steps;
           decision;
         }
     | `All_decided, [] -> Error "no decisions recorded"
     | `Out_of_fuel, _ -> Error "out of fuel"
     | `Sched_stopped, _ -> Error "scheduler stopped early")

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv ?ells ?(ns = [ 2; 3; 5; 8; 12 ]) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "id,iset,paper_lower,paper_upper,n,measured,allocated,steps\n";
  List.iter
    (fun row ->
      List.iter
        (fun n ->
          match measure row ~n with
          | Error e ->
            Buffer.add_string buf
              (Printf.sprintf "%s,%s,%s,%s,%d,error,%s,\n" row.id (csv_escape row.iset)
                 (csv_escape row.paper_lower) (csv_escape row.paper_upper) n
                 (csv_escape e))
          | Ok m ->
            Buffer.add_string buf
              (Printf.sprintf "%s,%s,%s,%s,%d,%d,%s,%d\n" row.id (csv_escape row.iset)
                 (csv_escape row.paper_lower) (csv_escape row.paper_upper) n m.measured
                 (match m.allocated with None -> "inf" | Some a -> string_of_int a)
                 m.steps))
        ns)
    (rows ?ells ());
  Buffer.contents buf

let render ?ells ?(ns = [ 2; 3; 5; 8; 12 ]) () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let header =
    Printf.sprintf "%-44s | %-16s | %-12s | %s" "instruction set I" "SP lower (paper)"
      "SP upper"
      (String.concat "  "
         (List.map (fun n -> Printf.sprintf "n=%-2d meas/alloc" n) ns))
  in
  add "%s\n%s\n" header (String.make (String.length header + 8) '-');
  List.iter
    (fun row ->
      let cells =
        List.map
          (fun n ->
            match measure row ~n with
            | Error e -> Printf.sprintf "ERR(%s)" e
            | Ok m ->
              let alloc =
                match m.allocated with None -> "inf" | Some a -> string_of_int a
              in
              Printf.sprintf "%4d/%-9s" m.measured alloc)
          ns
      in
      add "%-44s | %-16s | %-12s | %s\n" row.iset row.paper_lower row.paper_upper
        (String.concat "  " cells))
    (rows ?ells ());
  Buffer.contents buf
