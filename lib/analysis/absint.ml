(* Abstract interpretation over protocol CFGs ({!Cfg}).

   The analysis couples two fixpoints:

   - {b Value closure} — per location, the set of cell values reachable by
     applying the ops the protocol issues at that location, starting from
     [I.init] and closed under [I.apply] (any interleaving of issued ops is
     covered because closure ignores ordering).  A set that outgrows
     [value_cap] goes to Top.
   - {b Graph rebuild} — the CFG is built under the {e candidate} alphabet
     (sampled results ∪ closure results), each edge marked feasible iff its
     results are producible from the closure.  A rebuild can issue new ops
     (a branch only candidate results reach), which can grow the closure,
     which can add candidates — so build and closure iterate to a joint
     fixpoint (or [rounds_cap]).

   When the joint fixpoint is reached with no truncation and no Top
   location, the analysis is [complete]: the feasible subgraph
   over-approximates every concrete execution (every concretely reachable
   cell value is in the closure, by induction over steps, hence every
   concretely taken branch is a feasible edge).  Completeness is what
   upgrades the passes from evidence to certificates:

   - {b Footprint}: locations named by feasibly-reachable nodes bound the
     whole-program space use — the certified counterpart of Table 1's
     declared upper bounds ([space-claim-cfg] / [space-claim-certified] /
     [space-claim-loose]).
   - {b Dead branches}: nodes only infeasible edges reach are continuations
     no concrete schedule can enter ([dead-branch]).
   - {b Decision reachability}: a feasible node with no feasible path to any
     [Decide] node is a static solo-termination red flag
     ([decision-unreachable]) — the CFG shadow of the §2 obstruction-freedom
     observer.
   - {b Issued-op summary}: the ops a protocol actually issues, typed
     ({!Issued}), feed the sleep-set filter's per-run commutation matrix so
     it consults a protocol-restricted table instead of interning lazily
     mid-exploration.

   An incomplete analysis (truncated graph, Top location, or no fixpoint
   within [rounds_cap]) still yields the graph and footprints as evidence,
   and the lint pass says so out loud ([analysis-truncated]). *)

type t = {
  name : string;
  n : int;
  inputs : int list;
  nodes : int;
  edges : int;
  retro_edges : int;  (** edges closing a cycle: retry loops made finite *)
  sig_depth : int;
  work : int;
  truncated : string option;
  converged : bool;  (** build/closure fixpoint reached within [rounds_cap] *)
  tops : int list;  (** locations whose value closure overflowed to Top *)
  complete : bool;  (** no truncation, converged, no Top: certificates hold *)
  footprint_all : int list;
  footprint_feasible : int list;
  dead_nodes : int;
  dead_example : string option;
  undecided_nodes : int;
  undecided_example : string option;
  decisions : int list;  (** values decided at feasibly-reachable nodes *)
  ops : string list;  (** printed forms of every issued op *)
  roots : ((int * int) * int) list;  (** (pid, input) to root node id *)
}

let default_inputs = [ 0; 1 ]
let value_cap = 64
let rounds_cap = 6

let term_string = function
  | Cfg.Decide v -> Printf.sprintf "decide %d" v
  | Cfg.Blocked -> "blocked"
  | Cfg.Access accs ->
    String.concat "; "
      (List.map (fun (loc, op) -> Printf.sprintf "%d:%s" loc op) accs)

(* Forward reachability over feasible edges from the roots. *)
let feasible_reach (cfg : Cfg.t) =
  let n = Array.length cfg.nodes in
  let seen = Array.make n false in
  let stack = ref (List.map snd cfg.roots) in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      if id < n && not (seen.(id)) then begin
        seen.(id) <- true;
        Array.iter
          (fun (e : Cfg.edge) ->
            match e.target with
            | Cfg.To d when e.feasible -> stack := d :: !stack
            | _ -> ())
          cfg.nodes.(id).edges
      end
  done;
  seen

(* Backward reachability to a Decide node over feasible edges, restricted to
   the feasibly-reachable subgraph. *)
let reaches_decision (cfg : Cfg.t) feasible =
  let n = Array.length cfg.nodes in
  let rev = Array.make n [] in
  Array.iter
    (fun (node : Cfg.node) ->
      if feasible.(node.id) then
        Array.iter
          (fun (e : Cfg.edge) ->
            match e.target with
            | Cfg.To d when e.feasible && d < n && feasible.(d) ->
              rev.(d) <- node.id :: rev.(d)
            | _ -> ())
          node.edges)
    cfg.nodes;
  let ok = Array.make n false in
  let stack = ref [] in
  Array.iter
    (fun (node : Cfg.node) ->
      match node.term with
      | Cfg.Decide _ when feasible.(node.id) ->
        ok.(node.id) <- true;
        stack := node.id :: !stack
      | _ -> ())
    cfg.nodes;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      stack := rest;
      List.iter
        (fun p ->
          if not ok.(p) then begin
            ok.(p) <- true;
            stack := p :: !stack
          end)
        rev.(id)
  done;
  ok

let analyze_uncached ?sig_depth ?max_sig_depth ?max_nodes ?width_cap ?work_budget
    ~inputs (module P : Consensus.Proto.S) ~n =
  let module C = Cfg.Make (P) in
  let module I = P.I in
  let res_str r = Format.asprintf "%a" I.pp_result r in
  let cell_str c = Format.asprintf "%a" I.pp_cell c in
  let sampled = C.sampled_alphabet () in
  (* per-location abstract value sets, keyed on printed cell *)
  let cells : (int, (string, I.cell) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let tops : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let cells_of loc =
    match Hashtbl.find_opt cells loc with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.add tbl (cell_str I.init) I.init;
      Hashtbl.add cells loc tbl;
      tbl
  in
  let results loc op =
    let sampled = sampled loc op in
    if Hashtbl.mem tops loc then sampled
    else begin
      let feas : (string, I.result) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ c ->
          match I.apply op c with
          | _, r -> Hashtbl.replace feas (res_str r) r
          | exception _ -> ())
        (cells_of loc);
      let feasible =
        Hashtbl.fold (fun k r acc -> (k, r) :: acc) feas []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (_, r) -> (r, true))
      in
      feasible
      @ List.filter_map
          (fun (r, _) -> if Hashtbl.mem feas (res_str r) then None else Some (r, false))
          sampled
    end
  in
  (* one inner closure fixpoint over the ops the last build issued *)
  let close issued_at =
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (loc, op) ->
          if not (Hashtbl.mem tops loc) then begin
            let tbl = cells_of loc in
            let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) tbl [] in
            List.iter
              (fun c ->
                match I.apply op c with
                | c', _ ->
                  let key = cell_str c' in
                  if not (Hashtbl.mem tbl key) then begin
                    Hashtbl.add tbl key c';
                    changed := true;
                    if Hashtbl.length tbl > value_cap then begin
                      Hashtbl.replace tops loc ();
                      Hashtbl.remove cells loc
                    end
                  end
                | exception _ -> ())
              snapshot
          end)
        issued_at
    done
  in
  let state_key issued_at =
    let b = Buffer.create 256 in
    Hashtbl.iter
      (fun loc tbl ->
        Buffer.add_string b (string_of_int loc);
        Buffer.add_char b '=';
        Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
        |> List.sort compare
        |> List.iter (fun k ->
               Buffer.add_string b k;
               Buffer.add_char b ','))
      cells;
    Hashtbl.iter (fun loc () -> Buffer.add_string b (Printf.sprintf "T%d" loc)) tops;
    List.sort compare
      (List.map (fun (loc, op) -> Printf.sprintf "%d:%s" loc (C.op_str op)) issued_at)
    |> List.iter (fun s ->
           Buffer.add_string b s;
           Buffer.add_char b '|');
    Buffer.contents b
  in
  let rec iterate round prev_key =
    let g =
      C.build ?sig_depth ?max_sig_depth ?max_nodes ?width_cap ?work_budget ~results ~n
        ~inputs ()
    in
    close g.C.issued_at;
    let key = state_key g.C.issued_at in
    if key = prev_key then (g, true)
    else if round >= rounds_cap then (g, false)
    else iterate (round + 1) key
  in
  let g, converged = iterate 1 "" in
  let cfg = g.C.cfg in
  let feasible = feasible_reach cfg in
  let decided = reaches_decision cfg feasible in
  let locs_of pred =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun (node : Cfg.node) ->
        if pred node.Cfg.id then
          match node.term with
          | Cfg.Access accs -> List.iter (fun (loc, _) -> Hashtbl.replace tbl loc ()) accs
          | _ -> ())
      cfg.nodes;
    Hashtbl.fold (fun loc () acc -> loc :: acc) tbl [] |> List.sort compare
  in
  let dead = ref 0 and dead_example = ref None in
  let undecided = ref 0 and undecided_example = ref None in
  let decisions = Hashtbl.create 4 in
  Array.iter
    (fun (node : Cfg.node) ->
      if not feasible.(node.id) then begin
        incr dead;
        if !dead_example = None then dead_example := Some (term_string node.term)
      end
      else begin
        (match node.term with
         | Cfg.Decide v -> Hashtbl.replace decisions v ()
         | _ -> ());
        if not decided.(node.id) then begin
          incr undecided;
          if !undecided_example = None then
            undecided_example := Some (term_string node.term)
        end
      end)
    cfg.nodes;
  let tops = Hashtbl.fold (fun loc () acc -> loc :: acc) tops [] |> List.sort compare in
  {
    name = P.name;
    n;
    inputs;
    nodes = Cfg.node_count cfg;
    edges = Cfg.edge_count cfg;
    retro_edges = Cfg.retro_edge_count cfg;
    sig_depth = cfg.Cfg.sig_depth;
    work = cfg.Cfg.work;
    truncated = cfg.Cfg.truncated;
    converged;
    tops;
    complete = cfg.Cfg.truncated = None && converged && tops = [];
    footprint_all = locs_of (fun _ -> true);
    footprint_feasible = locs_of (fun id -> feasible.(id));
    dead_nodes = !dead;
    dead_example = !dead_example;
    undecided_nodes = !undecided;
    undecided_example = !undecided_example;
    decisions = Hashtbl.fold (fun v () acc -> v :: acc) decisions [] |> List.sort compare;
    ops = List.sort compare (List.map C.op_str g.C.issued);
    roots = cfg.Cfg.roots;
  }

(* Analyses are deterministic and protocol-keyed; memoize across the many
   callers (lint, the symmetry certifier, the analyze CLI, tests).  Shared
   across domains: computed outside the lock, first insert wins. *)
let cache : (string, t) Hashtbl.t = Hashtbl.create 32
let cache_mu = Mutex.create ()

let with_cache_mu f =
  Mutex.lock cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mu) f

let reset_cache () = with_cache_mu (fun () -> Hashtbl.reset cache)

let analyze ?(inputs = default_inputs) (module P : Consensus.Proto.S) ~n =
  let inputs = List.sort_uniq compare inputs in
  let key =
    Printf.sprintf "%s|%d|%s" P.name n
      (String.concat "," (List.map string_of_int inputs))
  in
  match with_cache_mu (fun () -> Hashtbl.find_opt cache key) with
  | Some a -> a
  | None ->
    let a = analyze_uncached ~inputs (module P : Consensus.Proto.S) ~n in
    with_cache_mu (fun () ->
        match Hashtbl.find_opt cache key with
        | Some a -> a
        | None ->
          Hashtbl.add cache key a;
          a)

(* ----------------------------------------------------------- findings -- *)

let pp_locs locs = String.concat "," (List.map string_of_int locs)

(* The CFG-backed findings the [--cfg] lint layer adds on top of
   {!Space.lint}'s three evidence tiers. *)
let lint_findings ?declared (a : t) =
  let open Report in
  let acc = ref [] in
  let out f = acc := f :: !acc in
  let subject = a.name in
  (match a.truncated with
   | Some reason ->
     out
       (finding Info ~rule:"analysis-truncated" ~subject
          "cfg analysis truncated at n=%d (%s; %d nodes built): findings are evidence, \
           not certificates"
          a.n reason a.nodes)
   | None ->
     if not a.converged then
       out
         (finding Info ~rule:"analysis-truncated" ~subject
            "cfg/value-closure iteration did not reach a fixpoint within %d rounds at \
             n=%d: footprint certificate withheld"
            rounds_cap a.n)
     else if a.tops <> [] then
       out
         (finding Info ~rule:"analysis-truncated" ~subject
            "value closure unbounded at n=%d (locations %s exceed %d values): footprint \
             certificate withheld"
            a.n (pp_locs a.tops) value_cap));
  (match declared with
   | None -> ()
   | Some declared ->
     let bound = List.length a.footprint_feasible in
     if a.complete then begin
       if bound > declared then
         out
           (finding Error ~rule:"space-claim-cfg" ~subject
              "certified whole-program footprint at n=%d is %d locations (%s) but \
               locations ~n:%d declares %d"
              a.n bound (pp_locs a.footprint_feasible) a.n declared)
       else begin
         out
           (finding Info ~rule:"space-claim-certified" ~subject
              "whole-program certificate at n=%d: touches at most %d locations (%s); \
               declaration %d holds on every execution, not just the budgeted ones"
              a.n bound (pp_locs a.footprint_feasible) declared);
         if bound < declared then
           out
             (finding Info ~rule:"space-claim-loose" ~subject
                "certified footprint at n=%d is only %d locations but locations ~n:%d \
                 declares %d: the Table-1 declaration is loose"
                a.n bound a.n declared)
       end
     end);
  if a.complete && a.dead_nodes > 0 then
    out
      (finding Warning ~rule:"dead-branch" ~subject
         "%d unreachable continuation%s at n=%d (e.g. %s): no feasible result vector \
          enters them"
         a.dead_nodes
         (if a.dead_nodes = 1 then "" else "s")
         a.n
         (Option.value a.dead_example ~default:"?"));
  if a.complete && a.undecided_nodes > 0 then
    out
      (finding Info ~rule:"decision-unreachable" ~subject
         "%d feasible node%s at n=%d cannot reach any decision via feasible edges (e.g. \
          %s): static solo-termination hint"
         a.undecided_nodes
         (if a.undecided_nodes = 1 then "" else "s")
         a.n
         (Option.value a.undecided_example ~default:"?"));
  List.rev !acc

(* ------------------------------------------------ typed issued-op view -- *)

(* The typed issued-op summary for {!Explore}'s sleep-set matrices: built
   under the sampled alphabet only (feasibility does not matter — the matrix
   is consulted per op pair, and missing ops fall back to lazy interning),
   with small budgets so it never rivals the exploration it accelerates. *)
module Issued (P : Consensus.Proto.S) = struct
  module C = Cfg.Make (P)

  let ops ~n ~inputs : P.I.op list =
    match
      C.build ~sig_depth:1 ~max_sig_depth:2 ~max_nodes:2_048 ~work_budget:200_000
        ~results:(C.sampled_alphabet ()) ~n ~inputs ()
    with
    | g -> g.C.issued
    | exception _ -> []
end
