(* Finite control-flow graphs for protocol processes.

   A {!Model.Proc.t} is a tree of closures: symbolic unfolding (feeding every
   candidate result into every continuation) diverges on retry loops, which
   is why the lockstep symmetry certifier is depth-bounded and the space
   lint's symbolic pass is Warning-only.  This module folds that infinite
   tree into a finite step graph by hashing symbolic states: a state is
   identified by its depth-[k] {e observation signature} — the accesses it
   issues, the decisions it reaches and the exceptions it raises through the
   next [k] steps, under a caller-supplied result alphabet — and two states
   with equal signatures become one node.  A revisited state is a back-edge,
   so a tug-of-war retry loop is an ordinary cycle instead of divergence.

   Soundness of the merge.  Signature equality at depth [k] alone could
   conflate states that differ deeper.  Every merge is therefore {e
   verified}: when a freshly reached state collapses onto an existing node,
   its signature is recomputed at depth [k+1] and compared against the
   representative's — the classical one-step stability condition of
   partition refinement.  If any merge fails, the whole build restarts with
   a deeper signature ([k+1]), up to [max_sig_depth]; a build in which every
   merge is stable is a quotient in which distinct nodes are observably
   distinct and merged states agree one step past the distinguishing
   horizon.  For the protocols in this registry — whose residual behaviour
   is a function of bounded local control plus the results just observed —
   the stable quotient is exact; the registry-wide differential tests
   (footprint domination, CFG-vs-lockstep symmetry agreement) pin this
   empirically on every row.

   Budgets never lie: exhausting the node budget, the work (feed) budget or
   the vector width cap — or meeting an instruction for which the alphabet
   offers no result at all — marks the graph [truncated] with the reason,
   and every downstream pass treats a truncated graph as evidence, not
   certificate.  Termination is unconditional: node count and feed count
   are both budgeted. *)

type term =
  | Decide of int  (** [Done v]: the process decides [v]. *)
  | Access of (int * string) list
      (** A [Step]: the (location, printed op) pairs of one atomic access. *)
  | Blocked  (** [Step ([], _)]: a process that never steps again. *)

type target =
  | To of int  (** Successor node id. *)
  | Raises of string
      (** The continuation rejected this result vector (guarded branch). *)

type edge = {
  labels : string list;  (** printed results, one per access of the source *)
  target : target;
  feasible : bool;
      (** every component result is producible from the location's abstract
          value set (always [true] under an all-feasible alphabet) *)
}

type node = {
  id : int;
  term : term;
  edges : edge array;  (** empty for [Decide]/[Blocked] — and for nodes left
                           unexpanded by a truncated build *)
}

type t = {
  nodes : node array;  (** indexed by [id], in discovery order *)
  roots : ((int * int) * int) list;  (** [(pid, input)] to root node id *)
  truncated : string option;
      (** [Some reason] when any budget fired, a merge could not be
          stabilized, or the alphabet had a gap: no pass may certify *)
  sig_depth : int;  (** the signature depth the final build used *)
  work : int;  (** continuation feeds spent (build + verification) *)
}

let default_sig_depth = 1
let default_max_sig_depth = 4
let default_max_nodes = 4_000
let default_width_cap = 256
let default_work_budget = 1_000_000

let node_count t = Array.length t.nodes

let edge_count t =
  Array.fold_left (fun acc n -> acc + Array.length n.edges) 0 t.nodes

(* Edges whose target was discovered no later than their source: every cycle
   contains one, so a positive count is the "retry loops became cycles"
   signal the analyze CLI reports. *)
let retro_edge_count t =
  Array.fold_left
    (fun acc n ->
      Array.fold_left
        (fun acc e -> match e.target with To d when d <= n.id -> acc + 1 | _ -> acc)
        acc n.edges)
    0 t.nodes

module Make (P : Consensus.Proto.S) = struct
  module I = P.I

  type proc = (I.op, I.result, int) Model.Proc.t

  type graph = {
    cfg : t;
    issued : I.op list;  (** every op named in any node, dedup'd on print *)
    issued_at : (int * I.op) list;  (** (location, op) pairs, dedup'd *)
  }

  exception Unstable
  exception Stop_build of string

  let op_str o = Format.asprintf "%a" I.pp_op o
  let res_str r = Format.asprintf "%a" I.pp_result r

  let build ?(sig_depth = default_sig_depth) ?(max_sig_depth = default_max_sig_depth)
      ?(max_nodes = default_max_nodes) ?(width_cap = default_width_cap)
      ?(work_budget = default_work_budget) ~results ~n ~inputs () =
    let work = ref 0 in
    let spend () =
      incr work;
      if !work > work_budget then
        raise (Stop_build (Printf.sprintf "work budget exceeded at %d feeds" work_budget))
    in
    (* Candidate result vectors for one access list: the cartesian product of
       each op's alphabet, each component tagged feasible/infeasible.  [None]
       when some op has no candidate result at all (an alphabet gap: the
       continuation is unreachable to this analysis, so nothing downstream
       may be certified). *)
    let vectors accs =
      let per = List.map (fun (loc, op) -> (results loc op : (I.result * bool) list)) accs in
      if List.exists (fun l -> l = []) per then None
      else
        Some
          (List.fold_left
             (fun acc l ->
               let acc' =
                 List.concat_map (fun pre -> List.map (fun x -> pre @ [ x ]) l) acc
               in
               if List.length acc' > width_cap then
                 raise (Stop_build "result branching exceeds width cap");
               acc')
             [ [] ] per)
    in
    let feed k rs =
      spend ();
      try Ok (k rs) with e -> Error (Printexc.to_string e)
    in
    (* The depth-[d] observation signature, as a canonical string (printed
       forms print injectively in this codebase; strings are compared in
       full, so there are no hash collisions to worry about). *)
    let rec signature d (t : proc) (b : Buffer.t) =
      match t with
      | Model.Proc.Done v ->
        Buffer.add_char b 'D';
        Buffer.add_string b (string_of_int v)
      | Step ([], _) -> Buffer.add_char b 'B'
      | Step (accs, k) ->
        Buffer.add_string b "S[";
        List.iter
          (fun (loc, op) ->
            Buffer.add_string b (string_of_int loc);
            Buffer.add_char b ':';
            Buffer.add_string b (op_str op);
            Buffer.add_char b ';')
          accs;
        Buffer.add_char b ']';
        if d > 0 then begin
          match vectors accs with
          | None -> Buffer.add_string b "?gap"
          | Some vecs ->
            Buffer.add_char b '{';
            List.iter
              (fun rv ->
                let rs = List.map fst rv in
                List.iter
                  (fun r ->
                    Buffer.add_string b (res_str r);
                    Buffer.add_char b ',')
                  rs;
                Buffer.add_string b "->";
                (match feed k rs with
                 | Ok t' -> signature (d - 1) t' b
                 | Error e ->
                   Buffer.add_char b '!';
                   Buffer.add_string b e);
                Buffer.add_char b '|')
              vecs;
            Buffer.add_char b '}'
        end
    in
    let sig_of d t =
      let b = Buffer.create 64 in
      signature d t b;
      Buffer.contents b
    in
    (* One build attempt at signature depth [k].  [verify = false] is the
       last-resort mode after every depth up to [max_sig_depth] proved
       unstable: merges go unchecked and the graph is marked truncated, so
       it can still drive best-effort passes but certifies nothing. *)
    let attempt ~verify k =
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 128 in
      let reps : (int, proc) Hashtbl.t = Hashtbl.create 128 in
      let terms : (int, term) Hashtbl.t = Hashtbl.create 128 in
      let edges : (int, edge array) Hashtbl.t = Hashtbl.create 128 in
      let deep_sigs : (int, string) Hashtbl.t = Hashtbl.create 128 in
      let issued : (string, I.op) Hashtbl.t = Hashtbl.create 32 in
      let issued_at : (int * string, int * I.op) Hashtbl.t = Hashtbl.create 32 in
      let truncated = ref None in
      let trunc reason = if !truncated = None then truncated := Some reason in
      let next_id = ref 0 in
      let queue = Queue.create () in
      let term_of (t : proc) =
        match t with
        | Model.Proc.Done v -> Decide v
        | Step ([], _) -> Blocked
        | Step (accs, _) ->
          List.iter
            (fun (loc, op) ->
              let key = op_str op in
              if not (Hashtbl.mem issued key) then Hashtbl.add issued key op;
              if not (Hashtbl.mem issued_at (loc, key)) then
                Hashtbl.add issued_at (loc, key) (loc, op))
            accs;
          Access (List.map (fun (loc, op) -> (loc, op_str op)) accs)
      in
      let deep_sig_of id =
        match Hashtbl.find_opt deep_sigs id with
        | Some s -> s
        | None ->
          let s = sig_of (k + 1) (Hashtbl.find reps id) in
          Hashtbl.add deep_sigs id s;
          s
      in
      let intern t =
        let s = sig_of k t in
        match Hashtbl.find_opt tbl s with
        | Some id ->
          (* merge: verify one-step stability against the representative *)
          if verify && !truncated = None && sig_of (k + 1) t <> deep_sig_of id then
            raise Unstable;
          id
        | None ->
          let id = !next_id in
          incr next_id;
          Hashtbl.add tbl s id;
          Hashtbl.add reps id t;
          Hashtbl.add terms id (term_of t);
          if id + 1 >= max_nodes then
            trunc (Printf.sprintf "node budget exhausted at %d nodes" max_nodes);
          Queue.add id queue;
          id
      in
      let roots =
        List.concat_map
          (fun input ->
            List.filter_map
              (fun pid ->
                match P.proc ~n ~pid ~input with
                | t -> Some ((pid, input), intern t)
                | exception e ->
                  trunc
                    (Printf.sprintf "proc ~pid:%d ~input:%d raised %s" pid input
                       (Printexc.to_string e));
                  None)
              (List.init n Fun.id))
          inputs
      in
      (try
         while not (Queue.is_empty queue) do
           let id = Queue.pop queue in
           if !truncated = None then begin
             match Hashtbl.find reps id with
             | Model.Proc.Done _ | Step ([], _) -> ()
             | Step (accs, kc) -> (
               match vectors accs with
               | None -> trunc "alphabet gap: an op admits no candidate result"
               | Some vecs ->
                 let es =
                   List.map
                     (fun rv ->
                       let rs = List.map fst rv in
                       let feasible = List.for_all snd rv in
                       let labels = List.map res_str rs in
                       match feed kc rs with
                       | Error e -> { labels; target = Raises e; feasible }
                       | Ok t' -> { labels; target = To (intern t'); feasible })
                     vecs
                 in
                 Hashtbl.replace edges id (Array.of_list es))
           end
         done
       with Stop_build reason -> trunc reason);
      if not verify then
        trunc
          (Printf.sprintf "no stable quotient up to signature depth %d" max_sig_depth);
      let nodes =
        Array.init !next_id (fun id ->
            {
              id;
              term = Hashtbl.find terms id;
              edges = Option.value (Hashtbl.find_opt edges id) ~default:[||];
            })
      in
      {
        cfg = { nodes; roots; truncated = !truncated; sig_depth = k; work = !work };
        issued = Hashtbl.fold (fun _ op acc -> op :: acc) issued [];
        issued_at = Hashtbl.fold (fun _ lo acc -> lo :: acc) issued_at [];
      }
    in
    let rec deepen k =
      if k > max_sig_depth then attempt ~verify:false max_sig_depth
      else match attempt ~verify:true k with g -> g | exception Unstable -> deepen (k + 1)
    in
    try deepen sig_depth
    with Stop_build reason ->
      (* the work budget died mid-(re)build: deliver a minimal truncated
         graph rather than an exception — passes degrade, callers don't *)
      {
        cfg =
          { nodes = [||]; roots = []; truncated = Some reason; sig_depth; work = !work };
        issued = [];
        issued_at = [];
      }

  (* The all-feasible alphabet: every result an op yields on some sampled
     cell, deduplicated on printed form — the same alphabet the lockstep
     certifier and the symbolic footprint use.  Memoized per op. *)
  let sampled_alphabet () =
    let tbl : (string, (I.result * bool) list) Hashtbl.t = Hashtbl.create 16 in
    fun (_loc : int) op ->
      let key = op_str op in
      match Hashtbl.find_opt tbl key with
      | Some rs -> rs
      | None ->
        let rs =
          List.filter_map
            (fun c -> try Some (snd (I.apply op c)) with _ -> None)
            (I.sample_cells ())
          |> List.fold_left
               (fun acc r ->
                 if List.exists (fun (r', _) -> res_str r = res_str r') acc then acc
                 else (r, true) :: acc)
               []
          |> List.rev
        in
        Hashtbl.add tbl key rs;
        rs
end

(* Erased convenience entry point: the step graph of a protocol under the
   sampled alphabet, every result feasible.  This is the [Cfg.of_proto] the
   analyze CLI exposes; the value-set-refined build lives in {!Absint}. *)
let of_proto ?sig_depth ?max_sig_depth ?max_nodes ?width_cap ?work_budget
    ?(inputs = [ 0; 1 ]) (module P : Consensus.Proto.S) ~n =
  let module C = Make (P) in
  let g =
    C.build ?sig_depth ?max_sig_depth ?max_nodes ?width_cap ?work_budget
      ~results:(C.sampled_alphabet ()) ~n ~inputs ()
  in
  g.C.cfg
