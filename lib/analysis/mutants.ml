(* Regression corpus for the linter: deliberately broken instruction sets and
   protocols, each tagged with the rule it must trip.  [Lint.selftest] runs
   the linter over this corpus and fails if any mutant escapes — so a future
   refactor that quietly blinds a check shows up as a test failure, not as a
   model checker silently trusting a broken contract.

   The mutants are built around [Sound_register], a deliberately boring
   read/write register (writes return a unit-like [0], so equal-value writes
   genuinely commute) that the linter passes clean; each mutant overrides
   exactly one declaration. *)

open Model

module Sound_register = struct
  type cell = int
  type op = Read | Write of int
  type result = int

  let name = "mutant-base {read(), write(x)}"
  let init = 0
  let apply op c = match op with Read -> (c, c) | Write x -> (x, 0)
  let trivial = function Read -> true | Write _ -> false

  let commutes a b =
    match (a, b) with
    | Read, Read -> true
    | Write x, Write y -> x = y
    | _ -> false

  let multi_assignment = false
  let equal_cell = Int.equal
  let hash_cell c = c
  let hash_result r = r
  let observe_result r = Some r
  let pp_cell = Format.pp_print_int
  let pp_result = Format.pp_print_int

  let pp_op ppf = function
    | Read -> Format.fprintf ppf "read()"
    | Write x -> Format.fprintf ppf "write(%d)" x

  let sample_cells = Iset.memo (fun () -> [ 0; 1; 2 ])
  let sample_ops = Iset.memo (fun () -> [ Read; Write 0; Write 1; Write 2 ])
end

module Commutes_unsound = struct
  include Sound_register

  let name = "mutant: order-sensitive writes declared commuting"
  let commutes a b = match (a, b) with Write _, Write _ -> true | _ -> commutes a b
end

module Commutes_asymmetric = struct
  include Sound_register

  let name = "mutant: commutes not symmetric"
  let commutes a b = match (a, b) with Read, Write _ -> true | _ -> commutes a b
end

module Trivial_unsound = struct
  include Sound_register

  let name = "mutant: writes declared trivial"
  let trivial = function Read | Write _ -> true
end

module Trivial_pair_noncommuting = struct
  include Sound_register

  let name = "mutant: trivial pair declared non-commuting"
  let commutes a b = match (a, b) with Read, Read -> false | _ -> commutes a b
end

module Hash_cell_incoherent = struct
  include Sound_register

  let name = "mutant: equal_cell coarser than hash_cell"

  (* cells 0 and 2 are now "equal" but still hash to 0 and 2 *)
  let equal_cell a b = a mod 2 = b mod 2
end

module Equal_cell_irreflexive = struct
  include Sound_register

  let name = "mutant: equal_cell is irreflexive"
  let equal_cell a b = a <> b
end

module Hash_result_incoherent = struct
  type cell = int
  type op = Read | Write of int

  (* the [tag] is invisible to [pp_result] but visible to [hash_result]:
     read-of-0 and any write print identically yet hash apart *)
  type result = { v : int; tag : int }

  let name = "mutant: hash_result distinguishes equal-printing results"
  let init = 0

  let apply op c =
    match op with
    | Read -> (c, { v = c; tag = 0 })
    | Write x -> (x, { v = 0; tag = 1 })

  let trivial = function Read -> true | Write _ -> false

  let commutes a b =
    match (a, b) with
    | Read, Read -> true
    | Write x, Write y -> x = y
    | _ -> false

  let multi_assignment = false
  let equal_cell = Int.equal
  let hash_cell c = c
  let hash_result r = (r.v * 31) + r.tag
  let observe_result r = Some r.v
  let pp_cell = Format.pp_print_int
  let pp_result ppf r = Format.pp_print_int ppf r.v

  let pp_op ppf = function
    | Read -> Format.fprintf ppf "read()"
    | Write x -> Format.fprintf ppf "write(%d)" x

  let sample_cells = Iset.memo (fun () -> [ 0; 1; 2 ])
  let sample_ops = Iset.memo (fun () -> [ Read; Write 0; Write 1; Write 2 ])
end

type iset_mutant = {
  label : string;
  expected_rule : string;  (** an [Error] finding with this rule must fire *)
  iset : (module Iset.S);
}

let iset_mutants =
  [
    { label = "commutes-unsound"; expected_rule = "commutes-unsound";
      iset = (module Commutes_unsound : Iset.S) };
    { label = "commutes-asymmetric"; expected_rule = "commutes-asymmetric";
      iset = (module Commutes_asymmetric : Iset.S) };
    { label = "trivial-unsound"; expected_rule = "trivial-unsound";
      iset = (module Trivial_unsound : Iset.S) };
    { label = "trivial-pair-noncommuting"; expected_rule = "trivial-pair-noncommuting";
      iset = (module Trivial_pair_noncommuting : Iset.S) };
    { label = "hash-cell-incoherent"; expected_rule = "hash-cell-incoherent";
      iset = (module Hash_cell_incoherent : Iset.S) };
    { label = "equal-cell-irreflexive"; expected_rule = "equal-cell-irreflexive";
      iset = (module Equal_cell_irreflexive : Iset.S) };
    { label = "hash-result-incoherent"; expected_rule = "hash-result-incoherent";
      iset = (module Hash_result_incoherent : Iset.S) };
  ]

(* --- protocol mutants --------------------------------------------------- *)

(* Declares one location, concretely touches two: the concrete space check
   must flag it as an Error. *)
module Space_overrun = struct
  module I = Sound_register

  let name = "mutant: declares 1 location, touches 2"
  let locations ~n:_ = Some 1

  let proc ~n:_ ~pid:_ ~input =
    let open Proc.Syntax in
    let* _ = Proc.access 0 (I.Write input) in
    let* _ = Proc.access 1 (I.Write input) in
    Proc.return input
end

(* Touches the extra location only behind a read result (2) that no concrete
   execution produces (nothing ever writes 2): concrete runs stay within the
   claim, but the symbolic unfolding — which feeds all sampled results —
   names the extra location and must Warn. *)
module Space_symbolic_overrun = struct
  module I = Sound_register

  let name = "mutant: touches location 5 on an unreachable branch"
  let locations ~n:_ = Some 1

  let proc ~n:_ ~pid:_ ~input =
    let open Proc.Syntax in
    let* v = Proc.access 0 I.Read in
    if v = 2 then
      let* _ = Proc.access 5 (I.Write input) in
      Proc.return input
    else Proc.return input
end

(* Pid-asymmetric in its memory accesses: each process writes to its own
   location.  The symmetry certifier must return [Asymmetric]. *)
module Pid_dependent_access = struct
  module I = Sound_register

  let name = "mutant: writes to location pid"
  let locations ~n = Some n

  let proc ~n:_ ~pid ~input =
    let open Proc.Syntax in
    let* _ = Proc.access pid (I.Write input) in
    Proc.return input
end

(* Pid-asymmetric in its decision: accesses are uniform but the decision
   leaks the pid. *)
module Pid_dependent_decision = struct
  module I = Sound_register

  let name = "mutant: decides pid"
  let locations ~n:_ = Some 1

  let proc ~n:_ ~pid ~input:_ =
    let open Proc.Syntax in
    let* _ = Proc.access 0 I.Read in
    Proc.return pid
end

(* Positive control: pid plays no part at all, so the certifier must return
   [Certified_symmetric] — if it cannot certify even this, it is broken. *)
module Uniform = struct
  module I = Sound_register

  let name = "mutant-control: uniform reader"
  let locations ~n:_ = Some 1

  let proc ~n:_ ~pid:_ ~input =
    let open Proc.Syntax in
    let* _ = Proc.access 0 I.Read in
    Proc.return input
end

(* Writes one location above its declaration, with the second location's
   address flowing through a read result: the CFG footprint pass must certify
   a 2-location whole-program bound and flag the 1-location declaration as an
   [Error] ([space-claim-cfg]). *)
module Footprint_overrun = struct
  module I = Sound_register

  let name = "mutant: certified footprint exceeds declaration"
  let locations ~n:_ = Some 1

  let proc ~n:_ ~pid:_ ~input =
    let open Proc.Syntax in
    let* v = Proc.access 0 I.Read in
    let* _ = Proc.access 1 (I.Write v) in
    Proc.return input
end

(* A continuation no feasible result can enter: the branch is guarded by
   reading 2 from a location nothing ever writes ([2] is a sampled cell, so
   the branch {e exists} in the graph), and — unlike [Space_symbolic_overrun]
   — it stays within the declared footprint, so only the dead-branch pass
   can see it. *)
module Dead_branch = struct
  module I = Sound_register

  let name = "mutant: continuation unreachable under any feasible result"
  let locations ~n:_ = Some 2

  let proc ~n:_ ~pid:_ ~input =
    let open Proc.Syntax in
    let* v = Proc.access 0 I.Read in
    if v = 2 then
      let* _ = Proc.access 1 (I.Write input) in
      Proc.return input
    else Proc.return input
end

(* A retry loop whose body leaks the pid through a write argument: bounded
   lockstep unfolding and the CFG certifier must both return [Asymmetric] —
   and the loop itself must become a back-edge, not divergence, in the CFG
   ([Cfg.of_proto] terminates on it). *)
module Asymmetric_retry_loop = struct
  module I = Sound_register

  let name = "mutant: retry loop writes pid-dependent value"
  let locations ~n:_ = Some 1

  let proc ~n:_ ~pid ~input:_ =
    Proc.rec_loop () (fun () ->
        let open Proc.Syntax in
        let* v = Proc.access 0 I.Read in
        if v >= 1 then Proc.return (Either.Right v)
        else
          let* _ = Proc.access 0 (I.Write (pid + 1)) in
          Proc.return (Either.Left ()))
end

type proto_mutant = {
  label : string;
  expected_rule : string;
  expected_severity : Report.severity;
  proto : (module Consensus.Proto.S);
}

let proto_mutants =
  [
    { label = "space-overrun-concrete"; expected_rule = "space-claim-violated";
      expected_severity = Report.Error;
      proto = (module Space_overrun : Consensus.Proto.S) };
    { label = "space-overrun-symbolic"; expected_rule = "space-claim-symbolic";
      expected_severity = Report.Warning;
      proto = (module Space_symbolic_overrun : Consensus.Proto.S) };
    { label = "footprint-overrun-cfg"; expected_rule = "space-claim-cfg";
      expected_severity = Report.Error;
      proto = (module Footprint_overrun : Consensus.Proto.S) };
    { label = "dead-branch"; expected_rule = "dead-branch";
      expected_severity = Report.Warning;
      proto = (module Dead_branch : Consensus.Proto.S) };
  ]

let asymmetric_retry_loop = (module Asymmetric_retry_loop : Consensus.Proto.S)
let asymmetric_access = (module Pid_dependent_access : Consensus.Proto.S)
let asymmetric_decision = (module Pid_dependent_decision : Consensus.Proto.S)
let symmetric_control = (module Uniform : Consensus.Proto.S)
let sound_iset = (module Sound_register : Iset.S)
