(* Space-claim lint: check each protocol's declared [locations ~n] (its
   contribution to Table 1's upper bounds) against the locations it actually
   touches.

   Three evidence sources, in decreasing order of conviction:

   - {b Concrete runs} ([Driver.run] under a portfolio of schedules, plus the
     solo runs of [Driver.run_solo_each]): every location touched is touched
     on a real execution, so an overrun is an [Error].
   - {b Bounded exhaustive exploration}: a depth-limited BFS over all
     interleavings ({!Model.Machine.Make} directly, deduplicated on
     fingerprint × footprint so the dedup never hides a larger footprint).
     Also concretely reachable, so an overrun is an [Error].
   - {b Symbolic unfolding} of the process code, collecting every location
     named in any [Step] when continuations are fed all sampled results.
     Branches may be infeasible (no concrete schedule produces that result
     vector), so an overrun here is only a [Warning].

   When the symbolic unfolding terminates {e completely} within budget yet
   names fewer locations than declared, the declared bound is loose and an
   [Info] diagnostic says so. *)

let default_unfold_depth = 6
let default_explore_depth = 6
let default_fuel = 20_000
let node_budget = 60_000
let width_cap = 256

(* All 0/1 input vectors of length n: every protocol in the registry accepts
   binary inputs, and Table 1 is stated for (binary) consensus. *)
let binary_inputs n =
  let rec go k =
    if k = 0 then [ [] ] else List.concat_map (fun v -> [ 0 :: v; 1 :: v ]) (go (k - 1))
  in
  List.map Array.of_list (go n)

let finding sev ~rule ~subject fmt = Report.finding sev ~rule ~subject fmt

let concrete_check out (module P : Consensus.Proto.S) ~n ~declared ~fuel =
  let scheds =
    [ ("sequential", Model.Sched.sequential); ("round-robin", Model.Sched.round_robin) ]
    @ List.map
        (fun seed -> (Printf.sprintf "random(seed=%d)" seed, Model.Sched.random ~seed))
        [ 1; 2; 3 ]
    @ List.map
        (fun seed ->
          ( Printf.sprintf "random-then-sequential(seed=%d)" seed,
            Model.Sched.random_then_sequential ~seed ~prefix:(4 * n) ))
        [ 11; 12 ]
  in
  List.iter
    (fun inputs ->
      let describe_inputs =
        String.concat "," (List.map string_of_int (Array.to_list inputs))
      in
      let check_report sname (r : Consensus.Driver.report) =
        if r.locations_used > declared then
          out
            (finding Error ~rule:"space-claim-violated" ~subject:P.name
               "run (%s, inputs %s) touched %d locations but locations ~n:%d declares %d"
               sname describe_inputs r.locations_used n declared)
      in
      List.iter
        (fun (sname, sched) ->
          match Consensus.Driver.run ~fuel (module P) ~inputs ~sched with
          | r -> check_report sname r
          | exception e ->
            out
              (finding Warning ~rule:"space-run-raised" ~subject:P.name
                 "run (%s, inputs %s) raised %s" sname describe_inputs
                 (Printexc.to_string e)))
        scheds;
      match Consensus.Driver.run_solo_each ~fuel (module P) ~inputs with
      | reports ->
        List.iteri
          (fun pid r -> check_report (Printf.sprintf "solo pid %d" pid) r)
          reports
      | exception e ->
        out
          (finding Warning ~rule:"space-run-raised" ~subject:P.name
             "solo runs (inputs %s) raised %s" describe_inputs (Printexc.to_string e)))
    (binary_inputs n)

let explore_check out (module P : Consensus.Proto.S) ~n ~declared ~depth =
  let module M = Model.Machine.Make (P.I) in
  List.iter
    (fun inputs ->
      let worst = ref 0 in
      let seen = Hashtbl.create 1024 in
      let rec go d cfg =
        let used = M.locations_used cfg in
        if used > !worst then worst := used;
        if d > 0 then
          List.iter
            (fun pid ->
              let cfg' = M.step cfg pid in
              (* key on fingerprint × footprint: two configurations can share
                 a fingerprint (a cell rewritten to init fingerprints as
                 untouched) while differing in how many locations they have
                 touched, and this walk exists to maximize the footprint *)
              let key = (M.fingerprint cfg', M.locations_used cfg') in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                go (d - 1) cfg'
              end)
            (M.running cfg)
      in
      (match
         M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
       with
       | cfg0 -> (try go depth cfg0 with
         | e ->
           out
             (finding Warning ~rule:"space-run-raised" ~subject:P.name
                "bounded exploration raised %s" (Printexc.to_string e)))
       | exception e ->
         out
           (finding Warning ~rule:"space-run-raised" ~subject:P.name
              "machine construction raised %s" (Printexc.to_string e)));
      if !worst > declared then
        out
          (finding Error ~rule:"space-claim-violated" ~subject:P.name
             "exhaustive exploration to depth %d (inputs %s) touched %d locations but \
              locations ~n:%d declares %d"
             depth
             (String.concat "," (List.map string_of_int (Array.to_list inputs)))
             !worst n declared))
    (binary_inputs n)

(* Symbolically unfold one process, feeding continuations every sampled
   result, and collect the set of locations named.  Returns the set and
   whether the unfolding was complete (no branch cut off by a budget and no
   continuation raised). *)
let symbolic_footprint (module P : Consensus.Proto.S) ~n ~depth =
  let module I = P.I in
  let op_str o = Format.asprintf "%a" I.pp_op o in
  let res_str r = Format.asprintf "%a" I.pp_result r in
  let results_tbl : (string, I.result list) Hashtbl.t = Hashtbl.create 16 in
  let results_of op =
    let key = op_str op in
    match Hashtbl.find_opt results_tbl key with
    | Some rs -> rs
    | None ->
      let rs =
        List.filter_map
          (fun c -> try Some (snd (I.apply op c)) with _ -> None)
          (I.sample_cells ())
        |> List.fold_left
             (fun acc r ->
               if List.exists (fun r' -> res_str r = res_str r') acc then acc
               else r :: acc)
             []
        |> List.rev
      in
      Hashtbl.add results_tbl key rs;
      rs
  in
  let locs = Hashtbl.create 16 in
  (* [None] while complete; the first budget cap to fire records why the
     unfolding is partial — a clean report must not mean "gave up quietly" *)
  let truncated = ref None in
  let trunc fmt = Printf.ksprintf (fun r -> if !truncated = None then truncated := Some r) fmt in
  let nodes = ref 0 in
  let rec go d (t : (I.op, I.result, int) Model.Proc.t) =
    incr nodes;
    if !nodes > node_budget then trunc "node budget exhausted at %d nodes" node_budget
    else
      match t with
      | Model.Proc.Done _ -> ()
      | Step ([], _) -> ()
      | Step (accesses, k) ->
        List.iter (fun (loc, _) -> Hashtbl.replace locs loc ()) accesses;
        if d = 0 then trunc "unfold depth cap reached"
        else begin
          let vectors =
            List.fold_left
              (fun acc l ->
                match acc with
                | None -> None
                | Some acc ->
                  let acc' =
                    List.concat_map (fun pre -> List.map (fun x -> pre @ [ x ]) l) acc
                  in
                  if List.length acc' > width_cap then None else Some acc')
              (Some [ [] ])
              (List.map (fun (_, op) -> results_of op) accesses)
          in
          match vectors with
          | None -> trunc "result branching exceeds width cap %d" width_cap
          | Some vectors ->
            (* an op none of the sampled cells accepts leaves no vectors *)
            if vectors = [] then trunc "an op admits no sampled result";
            List.iter
              (fun rs ->
                match k rs with
                | t' -> go (d - 1) t'
                | exception _ ->
                  (* guarded infeasible branch: nothing beyond it to collect *)
                  ())
              vectors
        end
  in
  List.iter
    (fun input ->
      for pid = 0 to n - 1 do
        match P.proc ~n ~pid ~input with
        | t -> go depth t
        | exception e -> trunc "proc construction raised %s" (Printexc.to_string e)
      done)
    [ 0; 1 ];
  ( Hashtbl.fold (fun loc () acc -> loc :: acc) locs [] |> List.sort compare,
    !truncated )

let symbolic_check out (module P : Consensus.Proto.S) ~n ~declared ~depth =
  let footprint, truncated = symbolic_footprint (module P) ~n ~depth in
  let used = List.length footprint in
  if used > declared then
    out
      (finding Warning ~rule:"space-claim-symbolic" ~subject:P.name
         "symbolic unfolding to depth %d names %d locations but locations ~n:%d declares \
          %d (some branches may be infeasible)"
         depth used n declared)
  else if truncated = None && used < declared then
    out
      (finding Info ~rule:"space-claim-loose" ~subject:P.name
         "complete symbolic unfolding names only %d locations but locations ~n:%d \
          declares %d"
         used n declared);
  match truncated with
  | Some reason ->
    out
      (finding Info ~rule:"analysis-truncated" ~subject:P.name
         "symbolic unfolding at n=%d is partial (%s): its evidence covers only the \
          explored prefix"
         n reason)
  | None -> ()

(* [cfg] layers the {!Absint} passes on top of the three evidence tiers:
   the certified whole-program footprint bound, dead-branch detection and
   the decision-reachability hint.  Off by default — the CFG build is a
   heavier analysis than the classic tiers and has its own CLI surface
   ([lint --cfg], [analyze]). *)
let lint ?(unfold_depth = default_unfold_depth) ?(explore_depth = default_explore_depth)
    ?(fuel = default_fuel) ?(cfg = false) (module P : Consensus.Proto.S) ~n =
  let acc = ref [] in
  let out f = acc := f :: !acc in
  (match P.locations ~n with
   | None ->
     out
       (finding Info ~rule:"space-unbounded" ~subject:P.name
          "locations ~n:%d is declared unbounded; space claims not checked" n)
   | Some declared ->
     if declared < 0 then
       out
         (finding Error ~rule:"space-claim-negative" ~subject:P.name
            "locations ~n:%d declares %d" n declared)
     else begin
       concrete_check out (module P) ~n ~declared ~fuel;
       explore_check out (module P) ~n ~declared ~depth:explore_depth;
       symbolic_check out (module P) ~n ~declared ~depth:unfold_depth;
       if cfg then
         match Absint.analyze (module P : Consensus.Proto.S) ~n with
         | a -> List.iter out (Absint.lint_findings ~declared a)
         | exception e ->
           out
             (finding Warning ~rule:"space-run-raised" ~subject:P.name
                "cfg analysis raised %s" (Printexc.to_string e))
     end);
  List.rev !acc
