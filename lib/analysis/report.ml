(* Findings and reports emitted by the lint passes.  A finding is one
   diagnostic: a severity, a stable rule identifier (machine-matchable), the
   subject it is about (an instruction set or protocol name), and prose
   detail.  Reports render as aligned text for humans and as JSON for CI. *)

type severity = Error | Warning | Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

type finding = {
  severity : severity;
  rule : string;
  subject : string;
  detail : string;
}

let finding severity ~rule ~subject fmt =
  Format.kasprintf (fun detail -> { severity; rule; subject; detail }) fmt

let count sev findings =
  List.length (List.filter (fun f -> f.severity = sev) findings)

let errors = count Error
let warnings = count Warning

let pp_finding ppf f =
  Format.fprintf ppf "%-7s %-26s %s: %s" (severity_name f.severity) f.rule f.subject
    f.detail

(* --- JSON rendering (no external dependency) --------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_finding f =
  Printf.sprintf
    "{\"severity\": \"%s\", \"rule\": \"%s\", \"subject\": \"%s\", \"detail\": \"%s\"}"
    (severity_name f.severity) (json_escape f.rule) (json_escape f.subject)
    (json_escape f.detail)

let json_of_findings fs =
  "[" ^ String.concat ", " (List.map json_of_finding fs) ^ "]"
