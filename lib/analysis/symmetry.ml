(* Pid-symmetry certification: CFG quotients first, lockstep unfolding as
   the fallback.

   [Machine.canonical_fingerprint] (and hence [Explore]'s [symmetric]
   reduction) treats processes with equal inputs as interchangeable.  That is
   sound only when the protocol's code is oblivious to [pid] given equal
   inputs: both processes must issue the same accesses to the same locations
   and decide the same values whenever they have observed the same results.

   The primary certifier is the CFG route ({!Cfg}): both pids'
   unfoldings are interned into {e one} node table, so the pair is symmetric
   iff their roots land on the same node — signature equality plus the
   build's merge-stability verification stand in for an explicit lockstep
   walk, and retry loops that defeat bounded unfolding (node-budget
   explosions at depth 10+) are ordinary back-edges there.  Distinct roots
   mean the unfoldings differ observably within the signature depth, i.e. a
   genuine asymmetry; a truncated build certifies nothing and falls back.

   The fallback unfolds the {!Model.Proc.t} free monad of
   [proc ~pid:a ~input] and [proc ~pid:b ~input] in lockstep: at each [Step]
   the two access lists must agree location-by-location and op-by-op
   (compared on printed form — ops print injectively in this codebase); then
   every enumerable result vector — results obtained by applying each op to
   the instruction set's sampled cells — is fed to both continuations and
   the comparison recurses.  Continuations that raise are compared on the
   printed exception: protocols guard infeasible branches with
   [invalid_arg], and two processes rejecting a branch identically is
   symmetric behaviour.

   The lockstep certificate is {e depth-bounded}: [Certified_symmetric
   { depth; _ }] means the two processes are indistinguishable through
   [depth] steps each.  That is exactly what a bounded exploration needs — a
   run that gives no process more than [depth] steps never observes
   behaviour beyond the certified prefix — so reaching the depth limit with
   every branch matched is a successful (bounded) certification, not a
   failure.  The CFG route certifies through any requested depth at once
   (its claim does not weaken with depth), and is reported at the depth the
   caller asked for.

   Exhausting a node, width or work budget is different: branches were left
   {e unexplored} before the depth was covered, so nothing can be claimed
   and the verdict is [Unknown] — never a certificate. *)

type witness = { pid_a : int; pid_b : int; input : int; detail : string }

type verdict =
  | Certified_symmetric of { depth : int; pairs : int }
      (** Every compared pair of unfoldings matched through [depth] steps
          per process; [pairs] (pid-pair × input) combinations were
          compared.  Sound for any exploration that gives no process more
          than [depth] steps. *)
  | Asymmetric of witness
  | Unknown of string
      (** Node or width budget exhausted before the depth was covered:
          branches were left unexplored, so no claim is made. *)

let pp_witness ppf w =
  Format.fprintf ppf "pids %d/%d with input %d: %s" w.pid_a w.pid_b w.input w.detail

let pp_verdict ppf = function
  | Certified_symmetric { depth; pairs } ->
    Format.fprintf ppf "certified pid-symmetric (depth %d, %d pair runs)" depth pairs
  | Asymmetric w -> Format.fprintf ppf "ASYMMETRIC: %a" pp_witness w
  | Unknown reason -> Format.fprintf ppf "unknown (%s)" reason

let certified = function Certified_symmetric _ -> true | _ -> false

let default_depth = 5
let default_budget = 500_000
let width_cap = 256

exception Diverged of string
exception Out_of_budget of string

(* Compare the unfoldings of one pid pair at one shared input.  [Ok ()] when
   all explored branches match. *)
let certify_pair (module P : Consensus.Proto.S) ~n ~pid_a ~pid_b ~input ~depth
    ~budget =
  let module I = P.I in
  let op_str o = Format.asprintf "%a" I.pp_op o in
  let res_str r = Format.asprintf "%a" I.pp_result r in
  (* Results an op can return, over the sampled cells, deduplicated on
     printed form; memoized per op. *)
  let results_tbl : (string, I.result list) Hashtbl.t = Hashtbl.create 16 in
  let results_of op =
    let key = op_str op in
    match Hashtbl.find_opt results_tbl key with
    | Some rs -> rs
    | None ->
      let all =
        List.filter_map
          (fun c -> try Some (snd (I.apply op c)) with _ -> None)
          (I.sample_cells ())
      in
      let rs =
        List.fold_left
          (fun acc r ->
            if List.exists (fun r' -> res_str r = res_str r') acc then acc else r :: acc)
          [] all
        |> List.rev
      in
      if rs = [] then
        raise (Out_of_budget (Printf.sprintf "no sampled cell accepts %s" key));
      Hashtbl.add results_tbl key rs;
      rs
  in
  let cartesian lists =
    List.fold_left
      (fun acc l ->
        let acc' =
          List.concat_map (fun pre -> List.map (fun x -> pre @ [ x ]) l) acc
        in
        if List.length acc' > width_cap then
          raise (Out_of_budget "result branching exceeds width cap");
        acc')
      [ [] ] lists
  in
  let feed k rs = try Ok (k rs) with e -> Error (Printexc.to_string e) in
  let nodes = ref 0 in
  let rec go d (ta : (I.op, I.result, int) Model.Proc.t) tb =
    incr nodes;
    if !nodes > budget then raise (Out_of_budget "node budget exceeded");
    match (ta, tb) with
    | Model.Proc.Done a, Model.Proc.Done b ->
      if a <> b then
        raise (Diverged (Printf.sprintf "decisions differ: %d vs %d" a b))
    | Done a, Step _ ->
      raise
        (Diverged (Printf.sprintf "pid %d decides %d while pid %d accesses memory" pid_a a pid_b))
    | Step _, Done b ->
      raise
        (Diverged (Printf.sprintf "pid %d decides %d while pid %d accesses memory" pid_b b pid_a))
    | Step (aa, ka), Step (ab, kb) ->
      let signature acc = List.map (fun (loc, op) -> (loc, op_str op)) acc in
      let sa = signature aa and sb = signature ab in
      if sa <> sb then
        raise
          (Diverged
             (Printf.sprintf "access lists differ: [%s] vs [%s]"
                (String.concat "; " (List.map (fun (l, o) -> Printf.sprintf "%d:%s" l o) sa))
                (String.concat "; " (List.map (fun (l, o) -> Printf.sprintf "%d:%s" l o) sb))));
      if aa = [] then () (* both blocked (loop_forever): symmetric *)
      else if d = 0 then () (* matched through the whole certified depth *)
      else
        let vectors = cartesian (List.map (fun (_, op) -> results_of op) aa) in
        List.iter
          (fun rs ->
            match (feed ka rs, feed kb rs) with
            | Ok ta', Ok tb' -> go (d - 1) ta' tb'
            | Error ea, Error eb ->
              (* identical rejections of an infeasible branch are symmetric *)
              if ea <> eb then
                raise
                  (Diverged
                     (Printf.sprintf "continuations raise differently: %s vs %s" ea eb))
            | Ok _, Error e ->
              raise
                (Diverged
                   (Printf.sprintf "pid %d raises (%s) where pid %d continues" pid_b e pid_a))
            | Error e, Ok _ ->
              raise
                (Diverged
                   (Printf.sprintf "pid %d raises (%s) where pid %d continues" pid_a e pid_b)))
          vectors
  in
  match go depth (P.proc ~n ~pid:pid_a ~input) (P.proc ~n ~pid:pid_b ~input) with
  | () -> Ok ()
  | exception Diverged detail -> Error (`Asymmetric { pid_a; pid_b; input; detail })
  | exception Out_of_budget reason -> Error (`Unknown reason)
  | exception e ->
    Error (`Unknown (Printf.sprintf "unfolding raised %s" (Printexc.to_string e)))

let certify_pairs (module P : Consensus.Proto.S) ~n ~depth ~budget pair_inputs =
  let exception Stop of verdict in
  try
    let pairs = ref 0 in
    List.iter
      (fun (pid_a, pid_b, input) ->
        incr pairs;
        match certify_pair (module P) ~n ~pid_a ~pid_b ~input ~depth ~budget with
        | Ok () -> ()
        | Error (`Asymmetric w) -> raise (Stop (Asymmetric w))
        | Error (`Unknown reason) -> raise (Stop (Unknown reason)))
      pair_inputs;
    Certified_symmetric { depth; pairs = !pairs }
  with Stop v -> v

let all_pair_inputs ~n inputs =
  List.concat_map
    (fun input ->
      List.concat
        (List.init n (fun a -> List.init (n - a - 1) (fun d -> (a, a + d + 1, input)))))
    inputs

(* The CFG route: intern every (pid, input) unfolding into one node table
   ({!Cfg.of_proto} under the sampled alphabet — the same alphabet the
   lockstep certifier feeds) and compare root node ids per pair.  Equal
   roots are a certificate through any depth — node identity is signature
   equality verified stable by the build.  Distinct roots are a genuine
   divergence within the signature horizon; the lockstep certifier is then
   replayed briefly to phrase the witness (it sees the same alphabet), with
   a generic witness when it cannot.  A truncated build returns [Unknown]
   so the caller can fall back to lockstep unfolding. *)
let certify_cfg_pairs (module P : Consensus.Proto.S) ~n ~depth pair_inputs =
  let inputs = List.sort_uniq compare (List.map (fun (_, _, i) -> i) pair_inputs) in
  match Cfg.of_proto ~inputs (module P : Consensus.Proto.S) ~n with
  | exception e ->
    Unknown (Printf.sprintf "cfg build raised %s" (Printexc.to_string e))
  | cfg -> (
    match cfg.Cfg.truncated with
    | Some reason -> Unknown (Printf.sprintf "cfg truncated: %s" reason)
    | None ->
      let root pid input = List.assoc_opt (pid, input) cfg.Cfg.roots in
      let exception Stop of verdict in
      (try
         let pairs = ref 0 in
         List.iter
           (fun (pid_a, pid_b, input) ->
             incr pairs;
             match (root pid_a input, root pid_b input) with
             | Some ra, Some rb when ra = rb -> ()
             | Some _, Some _ ->
               let w =
                 match
                   certify_pair (module P) ~n ~pid_a ~pid_b ~input
                     ~depth:(cfg.Cfg.sig_depth + 2) ~budget:50_000
                 with
                 | Error (`Asymmetric w) -> w
                 | Ok () | Error (`Unknown _) ->
                   {
                     pid_a;
                     pid_b;
                     input;
                     detail =
                       Printf.sprintf
                         "cfg roots differ: unfoldings diverge within %d steps"
                         cfg.Cfg.sig_depth;
                   }
               in
               raise (Stop (Asymmetric w))
             | None, _ | _, None ->
               raise (Stop (Unknown "cfg build misses a root unfolding")))
           pair_inputs;
         Certified_symmetric { depth; pairs = !pairs }
       with Stop v -> v))

(* Lockstep-only certification, kept as the differential-testing reference
   (and as the fallback engine). *)
let certify_lockstep ?(depth = default_depth) ?(budget = default_budget)
    ?(inputs = [ 0; 1 ]) (module P : Consensus.Proto.S) ~n =
  certify_pairs (module P) ~n ~depth ~budget (all_pair_inputs ~n inputs)

(* Certify all pid pairs at every sampled input: the unconditional claim the
   lint report makes about a protocol.  CFG first; bounded lockstep when the
   CFG is truncated. *)
let certify ?(depth = default_depth) ?(budget = default_budget) ?(inputs = [ 0; 1 ])
    (module P : Consensus.Proto.S) ~n =
  let pair_inputs = all_pair_inputs ~n inputs in
  match certify_cfg_pairs (module P) ~n ~depth pair_inputs with
  | (Certified_symmetric _ | Asymmetric _) as v -> v
  | Unknown _ -> certify_pairs (module P) ~n ~depth ~budget pair_inputs

(* Certify exactly what one exploration run relies on: processes are only
   conflated by [canonical_fingerprint] when their inputs are equal, so only
   equal-input pid pairs need certificates.  No such pair (all inputs
   distinct) certifies vacuously.  Memoized: the differential tests certify
   each (protocol, inputs, depth) once across engines and reductions. *)
(* The cache is shared across worker domains (the campaign executor certifies
   from a pool).  It is sharded by key hash: each shard is an independent
   mutex-protected Hashtbl, so domains certifying different rows never
   contend on one global lock.  Certification itself runs outside any lock —
   a lost race recomputes an identical immutable verdict, which is
   harmless. *)
let run_cache_shards = 16

type shard = { mu : Mutex.t; tbl : (string, verdict) Hashtbl.t }

let run_cache : shard array =
  Array.init run_cache_shards (fun _ ->
      { mu = Mutex.create (); tbl = Hashtbl.create 8 })

let shard_of key = run_cache.(Hashtbl.hash key land (run_cache_shards - 1))

let with_shard s f =
  Mutex.lock s.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

(* Empty every shard — benchmarks use this to measure cold certification. *)
let reset_run_cache () =
  Array.iter (fun s -> with_shard s (fun () -> Hashtbl.reset s.tbl)) run_cache

let run_key (module P : Consensus.Proto.S) ~inputs ~depth ~budget =
  Printf.sprintf "%s|%d|%s|%d|%d" P.name (Array.length inputs)
    (String.concat "," (List.map string_of_int (Array.to_list inputs)))
    depth budget

(* Certifications actually computed (cache misses) in this process — lets
   the campaign tests assert that a store-preloaded fleet recomputes
   nothing. *)
let computed_count = Atomic.make 0

(* Read the run cache without computing: the campaign executor consults the
   store's certificate records on a miss before paying for certification. *)
let peek_for_run ?(depth = default_depth) ?(budget = default_budget)
    (module P : Consensus.Proto.S) ~inputs =
  let key = run_key (module P : Consensus.Proto.S) ~inputs ~depth ~budget in
  let shard = shard_of key in
  with_shard shard (fun () -> Hashtbl.find_opt shard.tbl key)

(* Seed the run cache with an externally persisted verdict (a campaign
   store certificate): subsequent [certify_for_run] calls with the same
   parameters hit the cache instead of re-certifying. *)
let preload_for_run ?(depth = default_depth) ?(budget = default_budget)
    (module P : Consensus.Proto.S) ~inputs verdict =
  let key = run_key (module P : Consensus.Proto.S) ~inputs ~depth ~budget in
  let shard = shard_of key in
  with_shard shard (fun () ->
      if not (Hashtbl.mem shard.tbl key) then Hashtbl.add shard.tbl key verdict)

let certify_for_run ?(depth = default_depth) ?(budget = default_budget)
    (module P : Consensus.Proto.S) ~inputs =
  let n = Array.length inputs in
  let key = run_key (module P : Consensus.Proto.S) ~inputs ~depth ~budget in
  let shard = shard_of key in
  match with_shard shard (fun () -> Hashtbl.find_opt shard.tbl key) with
  | Some v -> v
  | None ->
    let pair_inputs = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if inputs.(a) = inputs.(b) then
          pair_inputs := (a, b, inputs.(a)) :: !pair_inputs
      done
    done;
    let pair_inputs = List.rev !pair_inputs in
    Atomic.incr computed_count;
    let v =
      match certify_cfg_pairs (module P) ~n ~depth pair_inputs with
      | (Certified_symmetric _ | Asymmetric _) as v -> v
      | Unknown _ -> certify_pairs (module P) ~n ~depth ~budget pair_inputs
    in
    with_shard shard (fun () ->
        match Hashtbl.find_opt shard.tbl key with
        | Some v -> v
        | None ->
          Hashtbl.add shard.tbl key v;
          v)
