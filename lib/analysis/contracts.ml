(* Exhaustive property-checking of one instruction set's declared contracts
   over its bounded enumerators ({!Model.Iset.S.sample_ops} ×
   {!Model.Iset.S.sample_cells}, closed once under [apply]).

   Checked obligations (each maps to a documented requirement in
   [Model.Iset.S]; Section 2's uniformity model makes these per-instruction-set
   properties, not per-protocol ones):

   - [commutes a b] must imply: applied to the same cell in either order,
     the final cells are equal and each invoker sees the same result.  An
     over-approximation silently unsounds the sleep-set reduction.
   - [commutes] must be symmetric.
   - [trivial op] must imply [apply op] preserves every cell.
   - [trivial a && trivial b] must imply [commutes a b].
   - [equal_cell] must be reflexive and [hash_cell] must respect it.
   - [hash_result] must respect result equality (two results that print
     identically must hash identically — results in this codebase print
     injectively).

   Conversely, pairs that agree on every sampled cell but are NOT declared
   commuting are reported as [Info]-severity lost-pruning diagnostics: the
   declaration must hold on {e all} cells, so the sample cannot prove it,
   but it marks pruning the reduction is leaving on the table.

   [apply] is allowed to reject an (op, cell) combination (heterogeneous
   buffers raise on capacity mismatches); such combinations are skipped. *)

module Check (I : Model.Iset.S) = struct
  let op_str o = Format.asprintf "%a" I.pp_op o
  let cell_str c = Format.asprintf "%a" I.pp_cell c
  let res_str r = Format.asprintf "%a" I.pp_result r

  let apply_opt op c = try Some (I.apply op c) with _ -> None

  let ops = I.sample_ops ()

  (* Corpus: the declared samples plus one closure round under [apply],
     deduplicated with [equal_cell] — the closure surfaces distinct
     representations of equal cells (the hash-coherence check needs them). *)
  let cells =
    let seeds = I.sample_cells () in
    let derived =
      List.concat_map
        (fun c ->
          List.filter_map (fun op -> Option.map fst (apply_opt op c)) ops)
        seeds
    in
    List.fold_left
      (fun acc c -> if List.exists (fun d -> I.equal_cell c d && cell_str c = cell_str d) acc then acc else c :: acc)
      [] (seeds @ derived)
    |> List.rev

  let finding sev ~rule fmt = Report.finding sev ~rule ~subject:I.name fmt

  (* Equality proxy for results: the signature requires [hash_result] to
     agree with structural equality but exposes no equality, so we compare
     printed forms and separately flag print-equal/hash-unequal pairs. *)
  let res_eq a b = res_str a = res_str b

  let check_cell_coherence out =
    List.iter
      (fun c ->
        if not (I.equal_cell c c) then
          out (finding Error ~rule:"equal-cell-irreflexive" "equal_cell %s %s is false"
                 (cell_str c) (cell_str c)))
      cells;
    List.iter
      (fun c ->
        List.iter
          (fun d ->
            if I.equal_cell c d && I.hash_cell c <> I.hash_cell d then
              out
                (finding Error ~rule:"hash-cell-incoherent"
                   "cells %s and %s are equal_cell but hash to %d and %d" (cell_str c)
                   (cell_str d) (I.hash_cell c) (I.hash_cell d)))
          cells)
      cells

  let check_result_coherence out =
    let results =
      List.concat_map
        (fun op -> List.filter_map (fun c -> Option.map snd (apply_opt op c)) cells)
        ops
    in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let k = res_str r in
        let h = I.hash_result r in
        match Hashtbl.find_opt seen k with
        | Some h' when h' <> h ->
          out
            (finding Error ~rule:"hash-result-incoherent"
               "result %s hashes to both %d and %d" k h h')
        | Some _ -> ()
        | None -> Hashtbl.add seen k h)
      results

  let check_trivial out =
    List.iter
      (fun op ->
        let applicable = List.filter_map (fun c -> Option.map (fun x -> (c, x)) (apply_opt op c)) cells in
        let preserves = List.for_all (fun (c, (c', _)) -> I.equal_cell c c') applicable in
        if I.trivial op then begin
          match List.find_opt (fun (c, (c', _)) -> not (I.equal_cell c c')) applicable with
          | Some (c, (c', _)) ->
            out
              (finding Error ~rule:"trivial-unsound"
                 "%s is declared trivial but rewrites cell %s to %s" (op_str op)
                 (cell_str c) (cell_str c'))
          | None -> ()
        end
        else if preserves && applicable <> [] then
          out
            (finding Info ~rule:"trivial-missing"
               "%s preserves every sampled cell but is not declared trivial (lost pruning)"
               (op_str op)))
      ops

  (* Run [a] then [b] on [c]; [Some (final, result_of_a, result_of_b)] when
     both applications are accepted. *)
  let seq a b c =
    match apply_opt a c with
    | None -> None
    | Some (c1, ra) ->
      (match apply_opt b c1 with
       | None -> None
       | Some (c2, rb) -> Some (c2, ra, rb))

  (* Outcome of the commutation experiment for (a, b) on cell c:
     [`Agree] both orders applicable and indistinguishable, [`Disagree why]
     applicable but distinguishable, [`Skip] not applicable both ways. *)
  let commute_on a b c =
    match (seq a b c, seq b a c) with
    | Some (cab, ra, rb), Some (cba, rb', ra') ->
      if not (I.equal_cell cab cba) then
        `Disagree
          (Printf.sprintf "final cells differ on %s: %s vs %s" (cell_str c)
             (cell_str cab) (cell_str cba))
      else if not (res_eq ra ra') then
        `Disagree
          (Printf.sprintf "%s sees %s or %s depending on order (cell %s)" (op_str a)
             (res_str ra) (res_str ra') (cell_str c))
      else if not (res_eq rb rb') then
        `Disagree
          (Printf.sprintf "%s sees %s or %s depending on order (cell %s)" (op_str b)
             (res_str rb) (res_str rb') (cell_str c))
      else `Agree
    | _ -> `Skip

  let check_commutes out =
    let arr = Array.of_list ops in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let a = arr.(i) and b = arr.(j) in
        if I.commutes a b <> I.commutes b a then
          out
            (finding Error ~rule:"commutes-asymmetric"
               "commutes %s %s = %b but commutes %s %s = %b" (op_str a) (op_str b)
               (I.commutes a b) (op_str b) (op_str a) (I.commutes b a));
        let declared = I.commutes a b in
        if I.trivial a && I.trivial b && not declared then
          out
            (finding Error ~rule:"trivial-pair-noncommuting"
               "%s and %s are both trivial but not declared commuting" (op_str a)
               (op_str b));
        let outcomes = List.map (commute_on a b) cells in
        let disagreement =
          List.find_map (function `Disagree why -> Some why | _ -> None) outcomes
        in
        let agreements = List.length (List.filter (( = ) `Agree) outcomes) in
        match (declared, disagreement) with
        | true, Some why ->
          out
            (finding Error ~rule:"commutes-unsound"
               "%s and %s are declared commuting but are order-sensitive: %s" (op_str a)
               (op_str b) why)
        | false, None when agreements > 0 && not (I.trivial a && I.trivial b) ->
          out
            (finding Info ~rule:"commutes-missing"
               "%s and %s agree on all %d sampled cells but are not declared commuting \
                (lost pruning)"
               (op_str a) (op_str b) agreements)
        | _ -> ()
      done
    done

  let run () =
    let acc = ref [] in
    let out f = acc := f :: !acc in
    if ops = [] then out (finding Warning ~rule:"empty-enumeration" "sample_ops is empty");
    if cells = [] then
      out (finding Warning ~rule:"empty-enumeration" "sample_cells is empty");
    check_cell_coherence out;
    check_result_coherence out;
    check_trivial out;
    check_commutes out;
    List.rev !acc
end

let lint_iset (module I : Model.Iset.S) =
  let module C = Check (I) in
  C.run ()
