(* Lint orchestration: run every analysis over the registered hierarchy rows
   (or a selection) and over the mutant corpus ([selftest]).

   A protocol row yields three analysis passes:
   - [Contracts.lint_iset] over its instruction set (deduplicated across rows
     sharing an instruction set);
   - [Symmetry.certify] at each requested [n] — the verdict is reported as a
     finding ([Info] either way: being pid-dependent is a legitimate design,
     the verdict only gates the symmetric state-space reduction);
   - [Space.lint] at each requested [n] against the protocol's own
     [locations ~n] declaration. *)

let symmetry_finding (module P : Consensus.Proto.S) ~n verdict =
  let open Report in
  match (verdict : Symmetry.verdict) with
  | Symmetry.Certified_symmetric { depth; pairs } ->
    finding Info ~rule:"symmetry-certified" ~subject:P.name
      "pid-symmetric at n=%d (depth %d, %d pair runs); symmetric reduction admissible" n
      depth pairs
  | Asymmetric w ->
    finding Info ~rule:"symmetry-asymmetric" ~subject:P.name
      "pid-dependent at n=%d (%s); symmetric reduction will be refused" n
      (Format.asprintf "%a" Symmetry.pp_witness w)
  | Unknown reason ->
    finding Warning ~rule:"symmetry-unknown" ~subject:P.name
      "could not classify at n=%d: %s; symmetric reduction will be refused" n reason

let lint_iset = Contracts.lint_iset

let lint_protocol ?depth ?budget ?cfg ?(ns = [ 2; 3 ]) (module P : Consensus.Proto.S) =
  List.concat_map
    (fun n ->
      let verdict = Symmetry.certify ?depth ?budget (module P : Consensus.Proto.S) ~n in
      symmetry_finding (module P) ~n verdict :: Space.lint ?cfg (module P) ~n)
    ns

(* Crash–recovery rows (the [rc-] registry prefix): the symmetry certifier
   only ever unfolds crash-free executions, so its verdict says nothing
   about runs with crash–recover transitions — a crash resets one process
   to the protocol root while the others keep their program state, and a
   pid-swapped configuration need not have a pid-swapped crash successor
   unless the per-process recovery cells are laid out pid-uniformly.  The
   quotient is therefore unsound under a positive crash budget, whatever
   the crash-free certificate says; warn so crash campaigns never request
   the symmetric reduction on these rows. *)
let crash_symmetry_finding (row : Hierarchy.row) =
  let open Report in
  if String.length row.id >= 3 && String.sub row.id 0 3 = "rc-" then
    let (module P : Consensus.Proto.S) = row.protocol in
    [
      finding Warning ~rule:"crash-symmetry" ~subject:P.name
        "crash-recovery row %s: symmetry certificates cover crash-free executions \
         only; the pid-symmetric quotient is unsound under a positive crash budget \
         unless the recovery-cell layout is pid-uniform — use reduce none/commute \
         with --crashes"
        row.id;
    ]
  else []

(* Rows sharing an instruction set (the two ∞ rows both use flavours of
   [Bits], say) produce one contract pass per distinct [I.name]. *)
let lint_rows ?depth ?budget ?cfg ?ns rows =
  let seen_isets = Hashtbl.create 16 in
  List.concat_map
    (fun (row : Hierarchy.row) ->
      let (module P : Consensus.Proto.S) = row.protocol in
      let iset_findings =
        if Hashtbl.mem seen_isets P.I.name then []
        else begin
          Hashtbl.add seen_isets P.I.name ();
          lint_iset (module P.I)
        end
      in
      iset_findings
      @ crash_symmetry_finding row
      @ lint_protocol ?depth ?budget ?cfg ?ns row.protocol)
    rows

let run ?ells ?(recovery = false) ?depth ?budget ?cfg ?ns ?(ids = []) () =
  let rows = Hierarchy.rows ?ells ~recovery () in
  let rows =
    if ids = [] then rows
    else begin
      List.iter
        (fun id ->
          if not (List.exists (fun (r : Hierarchy.row) -> r.id = id) rows) then
            Format.kasprintf invalid_arg "lint: unknown row id %S" id)
        ids;
      List.filter (fun (r : Hierarchy.row) -> List.mem r.id ids) rows
    end
  in
  lint_rows ?depth ?budget ?cfg ?ns rows

(* --- selftest over the mutant corpus ----------------------------------- *)

let selftest () =
  let open Report in
  let acc = ref [] in
  let out f = acc := f :: !acc in
  (* the clean base iset must lint without errors… *)
  let (module Clean : Model.Iset.S) = Mutants.sound_iset in
  let base = lint_iset (module Clean) in
  if errors base > 0 then
    List.iter
      (fun f ->
        if f.severity = Error then
          out
            (finding Error ~rule:"selftest-clean-base-flagged" ~subject:Clean.name
               "sound base iset tripped %s: %s" f.rule f.detail))
      base
  else
    out
      (finding Info ~rule:"selftest-clean-base" ~subject:Clean.name
         "sound base iset lints clean");
  (* …and every mutant must trip its expected rule *)
  List.iter
    (fun (m : Mutants.iset_mutant) ->
      let (module I : Model.Iset.S) = m.iset in
      let fs = lint_iset (module I) in
      let hit = List.exists (fun f -> f.rule = m.expected_rule && f.severity = Error) fs in
      if hit then
        out
          (finding Info ~rule:"selftest-mutant-caught" ~subject:I.name
             "mutant %S tripped %s as expected" m.label m.expected_rule)
      else
        out
          (finding Error ~rule:"selftest-mutant-escaped" ~subject:I.name
             "mutant %S did NOT trip %s (fired: %s)" m.label m.expected_rule
             (String.concat ", " (List.map (fun f -> f.rule) fs))))
    Mutants.iset_mutants;
  List.iter
    (fun (m : Mutants.proto_mutant) ->
      let (module P : Consensus.Proto.S) = m.proto in
      let fs = Space.lint ~cfg:true (module P) ~n:2 in
      let hit =
        List.exists
          (fun f -> f.rule = m.expected_rule && f.severity = m.expected_severity)
          fs
      in
      if hit then
        out
          (finding Info ~rule:"selftest-mutant-caught" ~subject:P.name
             "mutant %S tripped %s as expected" m.label m.expected_rule)
      else
        out
          (finding Error ~rule:"selftest-mutant-escaped" ~subject:P.name
             "mutant %S did NOT trip %s (fired: %s)" m.label m.expected_rule
             (String.concat ", " (List.map (fun f -> f.rule) fs))))
    Mutants.proto_mutants;
  (* the certifier must reject both asymmetric mutants and accept the
     uniform control *)
  let expect_verdict label proto pred describe =
    let (module P : Consensus.Proto.S) = proto in
    let v = Symmetry.certify (module P : Consensus.Proto.S) ~n:2 in
    if pred v then
      out
        (finding Info ~rule:"selftest-mutant-caught" ~subject:P.name
           "certifier returned %s for %S as expected" describe label)
    else
      out
        (finding Error ~rule:"selftest-mutant-escaped" ~subject:P.name
           "certifier returned %s for %S, expected %s"
           (Format.asprintf "%a" Symmetry.pp_verdict v)
           label describe)
  in
  expect_verdict "pid-dependent access" Mutants.asymmetric_access
    (function Symmetry.Asymmetric _ -> true | _ -> false)
    "Asymmetric";
  expect_verdict "pid-dependent decision" Mutants.asymmetric_decision
    (function Symmetry.Asymmetric _ -> true | _ -> false)
    "Asymmetric";
  expect_verdict "uniform control" Mutants.symmetric_control Symmetry.certified
    "Certified_symmetric";
  expect_verdict "asymmetric retry loop" Mutants.asymmetric_retry_loop
    (function Symmetry.Asymmetric _ -> true | _ -> false)
    "Asymmetric";
  List.rev !acc
