(** Universal memory values.

    The paper's memory locations hold arbitrary (unbounded) values; several
    protocols store structured data — the swap algorithm of Section 8 writes
    lap vectors tagged with a process id and sequence number, and the
    ℓ-buffer history simulation of Section 6 writes (history, value) pairs.
    This single value type lets every instruction set share one machine. *)

type t =
  | Bot                (** the distinguished "unwritten" value, ⊥ *)
  | Unit
  | Int of int
  | Big of Bignum.t
  | Pair of t * t
  | Vec of t array
  | Tag of int * int * t
      (** [Tag (pid, seq, payload)]: a payload made unique by the writer's
          id and a per-writer sequence number, as Sections 6 and 8 require. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not [Int _]. *)

val to_big_exn : t -> Bignum.t
(** Accepts [Big _] and [Int _].
    @raise Invalid_argument otherwise. *)

val untag : t -> t
(** Strips an outer [Tag] if present. *)

val observe_int : t -> int option
(** The integer view of a value, for property observers: [Int i] is [Some i],
    [Big b] is [Some] its int when it fits, a [Tag] is observed through to
    its payload; structured values ([Bot], [Unit], [Pair], [Vec]) observe as
    [None].  The standard implementation of {!Iset.S.observe_result} for
    instruction sets whose results are {!t}. *)

module Intern : Intern.S with type key = t
(** Hash-consing of values to dense integer ids on {e semantic} equality —
    [Int i] and [Big (Bignum.of_int i)] intern to the same id.  See
    {!Intern} for the id contract; like every intern table, instances are
    per-domain (not thread-safe). *)
