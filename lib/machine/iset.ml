(** The uniformity requirement (Section 2): every memory location of a
    machine supports the same set of instructions.  A module of type {!S}
    describes one such instruction set; a machine is the functor
    {!Machine.Make} applied to it. *)

module type S = sig
  type cell
  (** Contents of one memory location. *)

  type op
  (** An instruction invocation (instruction name plus its arguments). *)

  type result
  (** The value an instruction returns to the invoking process. *)

  val name : string
  (** Display name of the instruction set, e.g. ["{read(), swap(x)}"]. *)

  val init : cell
  (** Initial contents of every location. *)

  val apply : op -> cell -> cell * result
  (** Atomic semantics of one instruction on one location. *)

  val trivial : op -> bool
  (** A trivial instruction never changes the cell (e.g. [read]). *)

  val commutes : op -> op -> bool
  (** Whether two instructions applied to the {e same} location are
      independent: executed in either order they leave the cell in the same
      state {e and} return the same result to each invoker.  Must be
      over-approximation-free — declaring a non-independent pair commuting
      makes the model checker's commutativity reduction unsound, while
      missing pairs only costs pruning.  [trivial a && trivial b] must
      imply [commutes a b] (two cell-preserving instructions reorder
      freely); richer sets can declare more, e.g. two [add(x)] invocations
      commute (same final sum, both return unit) while two
      [fetch-and-add(x)] invocations do not (each returns the old value).
      Instructions on {e distinct} locations always commute and are not
      routed through this predicate. *)

  val multi_assignment : bool
  (** Whether a process may atomically apply one instruction to several
      locations in a single step (Section 7).  The machine rejects
      multi-location steps when this is [false]. *)

  val equal_cell : cell -> cell -> bool

  val hash_cell : cell -> int
  (** Must agree with [equal_cell]: equal cells hash equally.  Keys the
      memory part of {!Machine.Make.fingerprint}, which the model checker's
      transposition table dedups on. *)

  val hash_result : result -> int
  (** Must agree with structural equality of results.  A process is a
      deterministic function of the results it has seen, so the rolling
      per-process result-history hash identifies its continuation in
      {!Machine.Make.fingerprint}. *)

  val observe_result : result -> int option
  (** The integer view of a result, consumed by property observers
      ({!Observer.S.on_access}): what an instruction returned to the
      invoking process, as an [int] when one exists ([None] for structured
      or unit-like results).  Purely observational — the model checker
      never branches on it — so [None] is always safe, it just blinds
      value-level observers (e.g. max-register monotonicity) to this set.
      Sets whose [result] is {!Value.t} implement it as
      {!Value.observe_int}. *)

  val pp_cell : Format.formatter -> cell -> unit
  val pp_op : Format.formatter -> op -> unit
  val pp_result : Format.formatter -> result -> unit

  (** {2 Bounded enumerators}

      Small, representative samples of the (usually infinite) cell and
      instruction spaces, used by the static analyses in [Analysis]: the
      contract linter exhaustively property-checks [commutes], [trivial] and
      the hash/equality coherences over these samples, and the symmetry
      certifier feeds their [apply] results into process continuations when
      unfolding a protocol symbolically.  Requirements:

      - [sample_cells ()] includes [init];
      - [sample_ops ()] covers every instruction of the set (each
        constructor, with a few argument values for parameterized ones), and
        contains only instructions [apply] accepts;
      - both are memoized: the list is computed once per module and repeated
        calls return the cached value, so lint passes and property tests do
        not regenerate them per op pair. *)

  val sample_cells : unit -> cell list
  val sample_ops : unit -> op list
end

(** Memoization helper for the enumerators: [memo (fun () -> ...)] computes
    the list on first call and returns the cached value afterwards. *)
let memo f =
  let l = lazy (f ()) in
  fun () -> Lazy.force l
