module Imap = Map.Make (Int)
module Iset_int = Set.Make (Int)

(* Multiplicative mix (64-bit FNV prime) with an avalanche shift, shared by
   the per-process history hashes and the configuration fingerprint. *)
let mix acc h =
  let x = (acc * 0x100000001b3) lxor h in
  x lxor (x lsr 29)

module Make (I : Iset.S) = struct
  type 'a proc = (I.op, I.result, 'a) Proc.t

  type event = {
    pid : int;
    accesses : (int * I.op * I.result) list;
  }

  type 'a config = {
    mem : I.cell Imap.t;
    procs : 'a proc array;
    steps : int;
    steps_per_process : int array;
    touched : Iset_int.t;
    trace : event list;  (* most recent first *)
    record_trace : bool;
    running_count : int;  (* cached |running|, kept exact by [step] *)
    hist : int array;  (* rolling hash of each process's observed results *)
  }

  exception Multi_assignment_not_supported

  let runnable = function Proc.Step (_ :: _, _) -> true | Proc.Step ([], _) | Proc.Done _ -> false

  let make ?(record_trace = true) ~n f =
    if n < 1 then invalid_arg "Machine.make: n < 1";
    let procs = Array.init n f in
    let running_count = Array.fold_left (fun k p -> if runnable p then k + 1 else k) 0 procs in
    {
      mem = Imap.empty;
      procs;
      steps = 0;
      steps_per_process = Array.make n 0;
      touched = Iset_int.empty;
      trace = [];
      record_trace;
      running_count;
      hist = Array.make n 0;
    }

  let n_processes cfg = Array.length cfg.procs

  let cell cfg loc =
    match Imap.find_opt loc cfg.mem with Some c -> c | None -> I.init

  let decision cfg pid =
    match cfg.procs.(pid) with Proc.Done v -> Some v | Proc.Step _ -> None

  let decisions cfg =
    let out = ref [] in
    Array.iteri
      (fun pid p -> match p with Proc.Done v -> out := (pid, v) :: !out | Proc.Step _ -> ())
      cfg.procs;
    List.rev !out

  let running cfg =
    let out = ref [] in
    for pid = Array.length cfg.procs - 1 downto 0 do
      if runnable cfg.procs.(pid) then out := pid :: !out
    done;
    !out

  let running_count cfg = cfg.running_count

  let poised cfg pid =
    match cfg.procs.(pid) with
    | Proc.Step (accesses, _) -> Some accesses
    | Proc.Done _ -> None

  let steps cfg = cfg.steps
  let steps_of cfg pid = cfg.steps_per_process.(pid)
  let locations_used cfg = Iset_int.cardinal cfg.touched
  let max_location cfg = Iset_int.max_elt_opt cfg.touched

  let fold_cells cfg ~init ~f =
    Imap.fold (fun loc c acc -> f acc loc c) cfg.mem init

  (* Canonical fingerprint: memory contents (location, cell hash, in
     ascending location order) plus each process's result-history hash.  A
     process is a deterministic function of the results it has observed, so
     two configurations of the same initial machine with equal fingerprints
     behave identically (modulo hash collisions) — in particular,
     configurations reached by commuting independent steps coincide.
     Cells equal to [I.init] are skipped: a location explicitly written
     back to the initial value is indistinguishable from an untouched one
     ([cell] returns [I.init] either way), so both must fingerprint
     identically or the model checker's dedup silently misses them. *)
  let mem_hash cfg =
    Imap.fold
      (fun loc c acc ->
        if I.equal_cell c I.init then acc else mix (mix acc loc) (I.hash_cell c))
      cfg.mem 0x517cc1b7

  let fingerprint cfg = Array.fold_left mix (mem_hash cfg) cfg.hist

  (* Quotient the fingerprint by process permutations: hash each process as a
     (input, history, decision) triple and fold the triples in sorted order,
     so two configurations that differ only by exchanging the full states of
     two same-input processes collide on purpose.  Baking the input into each
     triple makes the global sort equivalent to sorting within equal-input
     groups, which is the permutation actually allowed.  Decisions are hashed
     with the polymorphic [Hashtbl.hash] (decision values are small
     first-order data in practice).  Only sound when the protocol itself is
     pid-symmetric — see the [Explore] documentation. *)
  let canonical_fingerprint ~inputs cfg =
    let n = Array.length cfg.procs in
    if Array.length inputs <> n then
      invalid_arg "Machine.canonical_fingerprint: inputs length mismatch";
    let comp = Array.make n 0 in
    for pid = 0 to n - 1 do
      let d =
        match cfg.procs.(pid) with
        | Proc.Done v -> mix 0x51ded (Hashtbl.hash v)
        | Proc.Step _ -> 0x0b5e55
      in
      comp.(pid) <- mix (mix (mix 0x7f4a7c15 inputs.(pid)) cfg.hist.(pid)) d
    done;
    Array.sort compare comp;
    Array.fold_left mix (mem_hash cfg) comp

  let trace cfg = List.rev cfg.trace

  let pp_event ppf { pid; accesses } =
    match accesses with
    | [ (loc, op, r) ] ->
      Format.fprintf ppf "p%d: %a @@ %d -> %a" pid I.pp_op op loc I.pp_result r
    | accesses ->
      Format.fprintf ppf "p%d: atomically {@[%a@]}" pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf (loc, op, r) ->
             Format.fprintf ppf "%a @@ %d -> %a" I.pp_op op loc I.pp_result r))
        accesses

  let pp_trace ppf cfg =
    List.iteri
      (fun i e -> Format.fprintf ppf "%4d  %a@." i pp_event e)
      (trace cfg)

  let step cfg pid =
    match cfg.procs.(pid) with
    | Proc.Done _ -> invalid_arg "Machine.step: process has decided"
    | Proc.Step ([], _) -> invalid_arg "Machine.step: blocked process"
    | Proc.Step (accesses, k) ->
      if List.length accesses > 1 && not I.multi_assignment then
        raise Multi_assignment_not_supported;
      let apply_one (mem, rs, touched) (loc, op) =
        if loc < 0 then invalid_arg "Machine.step: negative location";
        let c = match Imap.find_opt loc mem with Some c -> c | None -> I.init in
        let c', r = I.apply op c in
        (Imap.add loc c' mem, r :: rs, Iset_int.add loc touched)
      in
      let mem, rev_results, touched =
        List.fold_left apply_one (cfg.mem, [], cfg.touched) accesses
      in
      let results = List.rev rev_results in
      let procs = Array.copy cfg.procs in
      let next = k results in
      procs.(pid) <- next;
      let steps_per_process = Array.copy cfg.steps_per_process in
      steps_per_process.(pid) <- steps_per_process.(pid) + 1;
      let hist = Array.copy cfg.hist in
      hist.(pid) <-
        List.fold_left (fun acc r -> mix acc (I.hash_result r)) (mix hist.(pid) 0x9e37) results;
      let trace =
        if cfg.record_trace then
          { pid; accesses = List.map2 (fun (loc, op) r -> (loc, op, r)) accesses results }
          :: cfg.trace
        else cfg.trace
      in
      {
        mem;
        procs;
        steps = cfg.steps + 1;
        steps_per_process;
        touched;
        trace;
        record_trace = cfg.record_trace;
        running_count = (cfg.running_count - if runnable next then 0 else 1);
        hist;
      }

  let run ?(fuel = 1_000_000) ~sched cfg =
    let rec go cfg sched remaining =
      if cfg.running_count = 0 then (cfg, `All_decided)
      else if remaining <= 0 then (cfg, `Out_of_fuel)
      else begin
        match Sched.next sched ~running:(running cfg) ~step:cfg.steps with
        | None -> (cfg, `Sched_stopped)
        | Some (pid, sched') -> go (step cfg pid) sched' (remaining - 1)
      end
    in
    go cfg sched fuel

  let run_solo ?(fuel = 1_000_000) ~pid cfg =
    let cfg', _ = run ~fuel ~sched:(Sched.solo pid) cfg in
    (cfg', decision cfg' pid)
end
