module Imap = Map.Make (Int)
module Iset_int = Set.Make (Int)

(* Multiplicative mix (64-bit FNV prime) with an avalanche shift, shared by
   the per-process history hashes and the slow-path fingerprints. *)
let mix acc h =
  let x = (acc * 0x100000001b3) lxor h in
  x lxor (x lsr 29)

(* Two-round multiply/shift avalanche for the flat fingerprint lanes.  The
   multipliers are odd and deliberately below 2^62 (OCaml int literals are
   63-bit); each lane uses its own pair so an input collision in one lane is
   independent of the other — together the two lanes are a 128-bit digest. *)
let ava m1 m2 k =
  let k = k * m1 in
  let k = k lxor (k lsr 29) in
  let k = k * m2 in
  k lxor (k lsr 32)

let am1 = 0x2545F4914F6CDD1D
let am2 = 0x27D4EB2F165667C5
let bm1 = 0x165667B19E3779F9
let bm2 = 0x1C69B3F74AC4AE35

(* Fold the two lanes into the single-word fingerprint the public API
   exposes. *)
let combine a b =
  let x = (a * am1) lxor b in
  x lxor (x lsr 31)

module Make (I : Iset.S) = struct
  type 'a proc = (I.op, I.result, 'a) Proc.t

  type event =
    | Step of {
        pid : int;
        accesses : (int * I.op * I.result) list;
      }
    | Crash of {
        pid : int;
        epoch : int;
      }

  let event_pid = function Step { pid; _ } -> pid | Crash { pid; _ } -> pid

  (* The flat fingerprint is maintained as four wrapping-int sums: each
     written cell and each process history slot contributes one
     pseudo-random word per lane, and native addition — an invertible,
     commutative group operation — lets [step] update the digest by
     subtracting the old contribution and adding the new one, in O(1) per
     transition instead of re-folding O(mem + n) state.  The memory map
     stores each cell's two lane contributions next to the cell, so
     [I.hash_cell] runs once per write and is a lookup ever after. *)
  type 'a config = {
    mem : (I.cell * int * int) Imap.t;
        (* loc -> (cell, lane-A contribution, lane-B contribution);
           contributions are (0, 0) for cells equal to [I.init], which keeps
           an explicit write of the initial value indistinguishable from an
           untouched location *)
    procs : 'a proc array;
    root : int -> 'a proc;
        (* the process builder [make] was given: a crash–recover transition
           restarts a process from [root pid] (program state is lost, the
           shared memory above survives — Golab's crash–recovery model) *)
    steps : int;
    steps_per_process : int array;
    touched : Iset_int.t;
    trace : event list;  (* most recent first *)
    record_trace : bool;
    running_count : int;  (* cached |running|, kept exact by [step] *)
    hist : int array;  (* rolling hash of each process's observed results *)
    epochs : int array;  (* recovery epoch per process: crashes survived *)
    esteps : int array;
        (* steps taken since the process's last start/recovery; a process
           with [esteps = 0] is at its root, so crashing it again changes
           nothing but the epoch counter — [crashable] excludes it *)
    crashes : int;  (* total crash–recover transitions so far *)
    mem_a : int;  (* sum of every cell's lane-A contribution *)
    mem_b : int;
    hist_a : int;  (* sum of every (pid, hist.(pid)) lane-A contribution *)
    hist_b : int;
    epoch_a : int;  (* sum of every nonzero (pid, epoch) lane-A contribution *)
    epoch_b : int;
  }

  exception Multi_assignment_not_supported

  (* One cell's (or history slot's) contribution to a digest lane: avalanche
     the content hash salted by the slot index, with lane-specific input
     mixing so the lanes fail independently. *)
  let cell_contrib_a loc hc = ava am1 am2 (hc + (((2 * loc) + 1) * am2))
  let cell_contrib_b loc hc = ava bm1 bm2 (hc + (((2 * loc) + 1) * bm2))
  let hist_contrib_a pid h = ava am1 am2 ((h lxor 0x9e37) + (((2 * pid) + 1) * am1))
  let hist_contrib_b pid h = ava bm1 bm2 ((h lxor 0x9e37) + (((2 * pid) + 1) * bm1))

  (* Recovery epochs are a third fingerprint ingredient: two configurations
     that agree on memory and histories but differ in how often a process
     crashed must not be conflated — the remaining crash budget differs.
     Epoch 0 contributes nothing, so crash-free runs produce bit-identical
     fingerprints to a machine without the crash extension.  The salt
     multipliers are xors of the lane pairs, distinct from both the cell and
     history salt families. *)
  let epoch_contrib_a pid e =
    if e = 0 then 0
    else ava am1 am2 ((e lxor 0xC3A5) + (((2 * pid) + 1) * (am1 lxor am2)))

  let epoch_contrib_b pid e =
    if e = 0 then 0
    else ava bm1 bm2 ((e lxor 0xC3A5) + (((2 * pid) + 1) * (bm1 lxor bm2)))

  let runnable = function Proc.Step (_ :: _, _) -> true | Proc.Step ([], _) | Proc.Done _ -> false

  let make ?(record_trace = true) ~n f =
    if n < 1 then invalid_arg "Machine.make: n < 1";
    let procs = Array.init n f in
    let running_count = Array.fold_left (fun k p -> if runnable p then k + 1 else k) 0 procs in
    let hist_a = ref 0 and hist_b = ref 0 in
    for pid = 0 to n - 1 do
      hist_a := !hist_a + hist_contrib_a pid 0;
      hist_b := !hist_b + hist_contrib_b pid 0
    done;
    {
      mem = Imap.empty;
      procs;
      root = f;
      steps = 0;
      steps_per_process = Array.make n 0;
      touched = Iset_int.empty;
      trace = [];
      record_trace;
      running_count;
      hist = Array.make n 0;
      epochs = Array.make n 0;
      esteps = Array.make n 0;
      crashes = 0;
      mem_a = 0;
      mem_b = 0;
      hist_a = !hist_a;
      hist_b = !hist_b;
      epoch_a = 0;
      epoch_b = 0;
    }

  let n_processes cfg = Array.length cfg.procs

  let cell cfg loc =
    match Imap.find_opt loc cfg.mem with Some (c, _, _) -> c | None -> I.init

  let decision cfg pid =
    match cfg.procs.(pid) with Proc.Done v -> Some v | Proc.Step _ -> None

  let decisions cfg =
    let out = ref [] in
    Array.iteri
      (fun pid p -> match p with Proc.Done v -> out := (pid, v) :: !out | Proc.Step _ -> ())
      cfg.procs;
    List.rev !out

  let running cfg =
    let out = ref [] in
    for pid = Array.length cfg.procs - 1 downto 0 do
      if runnable cfg.procs.(pid) then out := pid :: !out
    done;
    !out

  let running_count cfg = cfg.running_count

  let poised cfg pid =
    match cfg.procs.(pid) with
    | Proc.Step (accesses, _) -> Some accesses
    | Proc.Done _ -> None

  let steps cfg = cfg.steps
  let steps_of cfg pid = cfg.steps_per_process.(pid)
  let epoch cfg pid = cfg.epochs.(pid)
  let crashes cfg = cfg.crashes

  let crashable cfg =
    let out = ref [] in
    for pid = Array.length cfg.procs - 1 downto 0 do
      if cfg.esteps.(pid) > 0 then out := pid :: !out
    done;
    !out
  let locations_used cfg = Iset_int.cardinal cfg.touched
  let max_location cfg = Iset_int.max_elt_opt cfg.touched

  let fold_cells cfg ~init ~f =
    Imap.fold (fun loc (c, _, _) acc -> f acc loc c) cfg.mem init

  (* Fingerprint semantics: memory contents plus each process's
     result-history hash.  A process is a deterministic function of the
     results it has observed, so two configurations of the same initial
     machine with equal fingerprints behave identically (modulo hash
     collisions) — in particular, configurations reached by commuting
     independent steps coincide.  Cells equal to [I.init] are skipped: a
     location explicitly written back to the initial value is
     indistinguishable from an untouched one ([cell] returns [I.init]
     either way), so both must fingerprint identically or the model
     checker's dedup silently misses them.

     The maintained digest reads off in O(1); [slow_fingerprint] recomputes
     the original fold from scratch and is kept for differential testing
     (the [SPACE_HIERARCHY_FP=fold] debug path in [Explore]). *)
  let fingerprint_words cfg =
    (cfg.mem_a + cfg.hist_a + cfg.epoch_a, cfg.mem_b + cfg.hist_b + cfg.epoch_b)

  let fingerprint cfg =
    combine
      (cfg.mem_a + cfg.hist_a + cfg.epoch_a)
      (cfg.mem_b + cfg.hist_b + cfg.epoch_b)

  let mem_hash cfg =
    Imap.fold
      (fun loc (c, _, _) acc ->
        if I.equal_cell c I.init then acc else mix (mix acc loc) (I.hash_cell c))
      cfg.mem 0x517cc1b7

  (* Nonzero epochs fold in with a pid salt; all-zero epochs add nothing,
     so crash-free values equal the pre-crash-subsystem fold exactly. *)
  let epochs_hash cfg acc =
    let acc = ref acc in
    Array.iteri
      (fun pid e -> if e > 0 then acc := mix (mix !acc (pid lxor 0xC3A5)) e)
      cfg.epochs;
    !acc

  let slow_fingerprint cfg = epochs_hash cfg (Array.fold_left mix (mem_hash cfg) cfg.hist)

  (* Quotient the fingerprint by process permutations: hash each process as a
     (input, history, decision) triple and fold the triples in sorted order,
     so two configurations that differ only by exchanging the full states of
     two same-input processes collide on purpose.  Baking the input into each
     triple makes the global sort equivalent to sorting within equal-input
     groups, which is the permutation actually allowed.  Decisions are hashed
     with the polymorphic [Hashtbl.hash] (decision values are small
     first-order data in practice).  Only sound when the protocol itself is
     pid-symmetric — see the [Explore] documentation.

     The memory part reads off the maintained lane sums (themselves
     permutation-insensitive); only the per-process triples — O(n log n) for
     the handful of processes a run has — are rebuilt per call. *)
  let canonical_components ~inputs cfg =
    let n = Array.length cfg.procs in
    if Array.length inputs <> n then
      invalid_arg "Machine.canonical_fingerprint: inputs length mismatch";
    let comp = Array.make n 0 in
    for pid = 0 to n - 1 do
      let d =
        match cfg.procs.(pid) with
        | Proc.Done v -> mix 0x51ded (Hashtbl.hash v)
        | Proc.Step _ -> 0x0b5e55
      in
      let c = mix (mix (mix 0x7f4a7c15 inputs.(pid)) cfg.hist.(pid)) d in
      (* the recovery epoch travels with the process state it identifies:
         same-input processes swap roles only if their epochs swap too.
         Epoch 0 leaves the component untouched (crash-free bit-identity). *)
      comp.(pid) <-
        (if cfg.epochs.(pid) = 0 then c else mix c (cfg.epochs.(pid) lxor 0xC3A5))
    done;
    Array.sort compare comp;
    comp

  let canonical_fingerprint_words ~inputs cfg =
    let comp = canonical_components ~inputs cfg in
    let a = ref cfg.mem_a and b = ref cfg.mem_b in
    Array.iter
      (fun cmp ->
        a := ava am1 am2 (!a lxor cmp);
        b := ava bm1 bm2 (!b lxor cmp))
      comp;
    (!a, !b)

  let canonical_fingerprint ~inputs cfg =
    let a, b = canonical_fingerprint_words ~inputs cfg in
    combine a b

  let slow_canonical_fingerprint ~inputs cfg =
    let comp = canonical_components ~inputs cfg in
    Array.fold_left mix (mem_hash cfg) comp

  let trace cfg = List.rev cfg.trace

  let pp_event ppf = function
    | Crash { pid; epoch } ->
      Format.fprintf ppf "p%d: CRASH -> recovers at protocol root (epoch %d)" pid epoch
    | Step { pid; accesses = [ (loc, op, r) ] } ->
      Format.fprintf ppf "p%d: %a @@ %d -> %a" pid I.pp_op op loc I.pp_result r
    | Step { pid; accesses } ->
      Format.fprintf ppf "p%d: atomically {@[%a@]}" pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf (loc, op, r) ->
             Format.fprintf ppf "%a @@ %d -> %a" I.pp_op op loc I.pp_result r))
        accesses

  let pp_trace ppf cfg =
    List.iteri
      (fun i e -> Format.fprintf ppf "%4d  %a@." i pp_event e)
      (trace cfg)

  (* Assemble the successor configuration once a step's memory effects and
     results are known — shared by the singleton fast path and the
     multi-assignment branch of [step]. *)
  let finish_step cfg pid k accesses results mem touched mem_a mem_b =
    let procs = Array.copy cfg.procs in
    let next = k results in
    procs.(pid) <- next;
    let steps_per_process = Array.copy cfg.steps_per_process in
    steps_per_process.(pid) <- steps_per_process.(pid) + 1;
    let hist = Array.copy cfg.hist in
    let old_h = hist.(pid) in
    let new_h =
      List.fold_left (fun acc r -> mix acc (I.hash_result r)) (mix old_h 0x9e37) results
    in
    hist.(pid) <- new_h;
    let esteps = Array.copy cfg.esteps in
    esteps.(pid) <- esteps.(pid) + 1;
    let trace =
      if cfg.record_trace then
        Step
          { pid; accesses = List.map2 (fun (loc, op) r -> (loc, op, r)) accesses results }
        :: cfg.trace
      else cfg.trace
    in
    {
      cfg with
      mem;
      procs;
      steps = cfg.steps + 1;
      steps_per_process;
      touched;
      trace;
      running_count = (cfg.running_count - if runnable next then 0 else 1);
      hist;
      esteps;
      mem_a;
      mem_b;
      hist_a = cfg.hist_a - hist_contrib_a pid old_h + hist_contrib_a pid new_h;
      hist_b = cfg.hist_b - hist_contrib_b pid old_h + hist_contrib_b pid new_h;
    }

  let step cfg pid =
    match cfg.procs.(pid) with
    | Proc.Done _ -> invalid_arg "Machine.step: process has decided"
    | Proc.Step ([], _) -> invalid_arg "Machine.step: blocked process"
    | Proc.Step (([ (loc, op) ] as accesses), k) ->
      (* the overwhelmingly common shape: one instruction on one location *)
      if loc < 0 then invalid_arg "Machine.step: negative location";
      let c, pa, pb =
        match Imap.find_opt loc cfg.mem with
        | Some cell -> cell
        | None -> (I.init, 0, 0)
      in
      let c', r = I.apply op c in
      let na, nb =
        if I.equal_cell c' I.init then (0, 0)
        else begin
          let hc = I.hash_cell c' in
          (cell_contrib_a loc hc, cell_contrib_b loc hc)
        end
      in
      finish_step cfg pid k accesses [ r ]
        (Imap.add loc (c', na, nb) cfg.mem)
        (Iset_int.add loc cfg.touched)
        (cfg.mem_a + na - pa) (cfg.mem_b + nb - pb)
    | Proc.Step (accesses, k) ->
      if not I.multi_assignment then raise Multi_assignment_not_supported;
      let apply_one (mem, rs, touched, ma, mb) (loc, op) =
        if loc < 0 then invalid_arg "Machine.step: negative location";
        let c, pa, pb =
          match Imap.find_opt loc mem with
          | Some cell -> cell
          | None -> (I.init, 0, 0)
        in
        let c', r = I.apply op c in
        let na, nb =
          if I.equal_cell c' I.init then (0, 0)
          else begin
            let hc = I.hash_cell c' in
            (cell_contrib_a loc hc, cell_contrib_b loc hc)
          end
        in
        ( Imap.add loc (c', na, nb) mem,
          r :: rs,
          Iset_int.add loc touched,
          ma + na - pa,
          mb + nb - pb )
      in
      let mem, rev_results, touched, mem_a, mem_b =
        List.fold_left apply_one (cfg.mem, [], cfg.touched, cfg.mem_a, cfg.mem_b) accesses
      in
      finish_step cfg pid k accesses (List.rev rev_results) mem touched mem_a mem_b

  (* The crash–recover transition (Golab, arXiv 1804.10597): the process
     loses its program state — continuation, observed-result history, even a
     pending decision — and restarts from its protocol root; shared memory
     is untouched, which is what makes designated locations act as
     persistent recovery cells.  Total on every process state (running,
     blocked, decided): a decided process that crashes re-executes the
     protocol, which is exactly the re-decision scenario the recoverable
     observers police.  Not a computation step: [steps] does not advance. *)
  let crash_recover cfg pid =
    let old_p = cfg.procs.(pid) in
    let fresh = cfg.root pid in
    let procs = Array.copy cfg.procs in
    procs.(pid) <- fresh;
    let hist = Array.copy cfg.hist in
    let old_h = hist.(pid) in
    hist.(pid) <- 0;
    let epochs = Array.copy cfg.epochs in
    let old_e = epochs.(pid) in
    let new_e = old_e + 1 in
    epochs.(pid) <- new_e;
    let esteps = Array.copy cfg.esteps in
    esteps.(pid) <- 0;
    let trace =
      if cfg.record_trace then Crash { pid; epoch = new_e } :: cfg.trace else cfg.trace
    in
    {
      cfg with
      procs;
      trace;
      running_count =
        (cfg.running_count
        - (if runnable old_p then 1 else 0)
        + if runnable fresh then 1 else 0);
      hist;
      epochs;
      esteps;
      crashes = cfg.crashes + 1;
      hist_a = cfg.hist_a - hist_contrib_a pid old_h + hist_contrib_a pid 0;
      hist_b = cfg.hist_b - hist_contrib_b pid old_h + hist_contrib_b pid 0;
      epoch_a = cfg.epoch_a - epoch_contrib_a pid old_e + epoch_contrib_a pid new_e;
      epoch_b = cfg.epoch_b - epoch_contrib_b pid old_e + epoch_contrib_b pid new_e;
    }

  let run ?(fuel = 1_000_000) ~sched cfg =
    let rec go cfg sched remaining =
      if cfg.running_count = 0 then (cfg, `All_decided)
      else if remaining <= 0 then (cfg, `Out_of_fuel)
      else begin
        match Sched.next sched ~running:(running cfg) ~step:cfg.steps with
        | None -> (cfg, `Sched_stopped)
        | Some (pid, sched') -> go (step cfg pid) sched' (remaining - 1)
      end
    in
    go cfg sched fuel

  let run_solo ?(fuel = 1_000_000) ~pid cfg =
    let cfg', _ = run ~fuel ~sched:(Sched.solo pid) cfg in
    (cfg', decision cfg' pid)

  (* [run] against a crash-aware adversary: the scheduler sees both the
     running and the crashable process sets and may inject crash–recover
     transitions between computation steps.  A crash consumes fuel (it is a
     scheduling decision) so a crash-happy adversary cannot loop forever. *)
  let run_crashy ?(fuel = 1_000_000) ~sched cfg =
    let rec go cfg sched remaining =
      if cfg.running_count = 0 then (cfg, `All_decided)
      else if remaining <= 0 then (cfg, `Out_of_fuel)
      else begin
        match
          Sched.Crashy.next sched ~running:(running cfg) ~crashable:(crashable cfg)
            ~step:cfg.steps
        with
        | None -> (cfg, `Sched_stopped)
        | Some (Sched.Crashy.Run pid, sched') -> go (step cfg pid) sched' (remaining - 1)
        | Some (Sched.Crashy.Crash pid, sched') ->
          go (crash_recover cfg pid) sched' (remaining - 1)
      end
    in
    go cfg sched fuel

  (* A mutable throwaway copy of a configuration for solo probes.  The model
     checker runs orders of magnitude more probe steps than scheduled steps
     (every leaf probes every running process, and each probe chains solo
     runs of every survivor), and none of those intermediate configurations
     is ever fingerprinted, traced or branched from — so paying [step]'s
     persistent-structure costs (three array copies, map rebalancing, digest
     deltas, a 14-field record) per probe step is pure waste.  A scratch
     workspace mutates a hashtable and one process array in place; its
     [run_solo] agrees with the persistent one on decisions, runnability and
     results observed (differentially tested in [test_modelcheck]). *)
  module Scratch = struct
    (* Memory as a dense array indexed by location — protocols use small
       location indices, so a cell read/write is an array access instead of
       a hashtable probe.  Locations past [small_limit] (none of the
       in-tree instruction sets go anywhere near it) spill to a lazily
       created overflow hashtable so a pathological protocol stays correct
       without a pathological allocation. *)
    type 'a t = {
      mutable cells : I.cell array;
      mutable overflow : (int, I.cell) Hashtbl.t option;
      sprocs : 'a proc array;
    }

    let small_limit = 1 lsl 16

    let set t loc c =
      let len = Array.length t.cells in
      if loc < len then t.cells.(loc) <- c
      else if loc < small_limit then begin
        let grown = Array.make (Stdlib.max (2 * len) (loc + 1)) I.init in
        Array.blit t.cells 0 grown 0 len;
        t.cells <- grown;
        grown.(loc) <- c
      end
      else begin
        let h =
          match t.overflow with
          | Some h -> h
          | None ->
            let h = Hashtbl.create 8 in
            t.overflow <- Some h;
            h
        in
        Hashtbl.replace h loc c
      end

    let cell t loc =
      if loc < Array.length t.cells then t.cells.(loc)
      else
        match t.overflow with
        | None -> I.init
        | Some h -> ( match Hashtbl.find_opt h loc with Some c -> c | None -> I.init)

    let of_config cfg =
      let t =
        { cells = Array.make 16 I.init; overflow = None; sprocs = Array.copy cfg.procs }
      in
      Imap.iter (fun loc (c, _, _) -> set t loc c) cfg.mem;
      t

    let apply_one t (loc, op) =
      if loc < 0 then invalid_arg "Machine.step: negative location";
      let c', r = I.apply op (cell t loc) in
      set t loc c';
      r

    let step t pid =
      match t.sprocs.(pid) with
      | Proc.Done _ -> invalid_arg "Machine.step: process has decided"
      | Proc.Step ([], _) -> invalid_arg "Machine.step: blocked process"
      | Proc.Step ([ access ], k) -> t.sprocs.(pid) <- k [ apply_one t access ]
      | Proc.Step (accesses, k) ->
        if not I.multi_assignment then raise Multi_assignment_not_supported;
        let rev = List.fold_left (fun rs a -> apply_one t a :: rs) [] accesses in
        t.sprocs.(pid) <- k (List.rev rev)

    (* Mirrors [run ~sched:(Sched.solo pid)]: step [pid] while it is
       runnable, up to [fuel] steps, and report its decision.  The hot
       single-access case is inlined so each iteration is one match. *)
    let run_solo ?(fuel = 1_000_000) ~pid t =
      let rec go remaining =
        match t.sprocs.(pid) with
        | Proc.Done v -> Some v
        | Proc.Step ([], _) -> None
        | Proc.Step ([ (loc, op) ], k) ->
          if remaining <= 0 then None
          else begin
            if loc < 0 then invalid_arg "Machine.step: negative location";
            let c', r = I.apply op (cell t loc) in
            set t loc c';
            t.sprocs.(pid) <- k [ r ];
            go (remaining - 1)
          end
        | Proc.Step _ ->
          if remaining <= 0 then None
          else begin
            step t pid;
            go (remaining - 1)
          end
      in
      go fuel

    let running t =
      let out = ref [] in
      for pid = Array.length t.sprocs - 1 downto 0 do
        if runnable t.sprocs.(pid) then out := pid :: !out
      done;
      !out

    let decisions t =
      let out = ref [] in
      Array.iteri
        (fun pid p -> match p with Proc.Done v -> out := (pid, v) :: !out | Proc.Step _ -> ())
        t.sprocs;
      List.rev !out
  end
end
