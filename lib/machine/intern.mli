(** Hash-consing of structured keys to dense integer ids.

    Interning trades one hash + lookup at first sight of a key for O(1)
    equality and hashing ever after: the id {e is} the hash, and ids are
    dense ([0 .. size-1]) so they index flat side tables directly.  The
    exploration engines intern instruction-set ops this way and precompute
    commutation bit-matrices over the ids, turning the sleep-set
    independence test from a recursive structural walk into two array
    loads.

    Tables are {b not thread-safe} — intern tables live on per-domain hot
    paths where a lock per lookup would cost more than it saves.  Create
    one table per domain. *)

module type S = sig
  type key

  type t
  (** A mutable intern table. *)

  val create : ?size:int -> unit -> t
  (** [create ()] is an empty table; [size] (default 64) is the initial
      hash-table capacity. *)

  val id : t -> key -> int
  (** [id t k] is the unique id of [k] in [t], interning it on first
      sight.  Ids are assigned consecutively from 0 in insertion order. *)

  val value : t -> int -> key
  (** The key interned with this id.
      @raise Invalid_argument if the id was never assigned. *)

  val size : t -> int
  (** Number of distinct keys interned so far (= the smallest unassigned
      id). *)
end

module Make (K : Hashtbl.HashedType) : S with type key = K.t
(** Interning keyed on a hand-written equality/hash pair. *)

module Poly (T : sig
  type t
end) : S with type key = T.t
(** Interning on structural equality ([=]) and [Hashtbl.hash] — for plain
    algebraic data (instruction-set ops).  Keys whose semantic equality is
    coarser than structural equality (e.g. [Value.Int 1] vs [Value.Big 1])
    intern to distinct ids: wasteful, never unsound. *)
