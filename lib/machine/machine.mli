(** The asynchronous shared-memory machine of Section 2.

    A machine is built from one instruction set (the uniformity
    requirement).  Memory is an unbounded array of identical locations, all
    initialised to [I.init]; a configuration holds the memory contents and
    the state of every process.  Configurations are persistent values:
    [step] returns a new configuration, so adversaries and the model checker
    can branch from a common configuration — the essence of the paper's
    indistinguishability arguments. *)

module Make (I : Iset.S) : sig
  type 'a proc = (I.op, I.result, 'a) Proc.t

  type 'a config

  exception Multi_assignment_not_supported

  val make : ?record_trace:bool -> n:int -> (int -> 'a proc) -> 'a config
  (** [make ~n f] starts [n] processes, process [pid] running [f pid].
      [record_trace] (default [true]) controls whether [step] accumulates
      the event trace; the model checker turns it off so exploration does
      not allocate an event per step ([trace] is then empty). *)

  val n_processes : 'a config -> int

  val cell : 'a config -> int -> I.cell
  (** Contents of a location ([I.init] if never written). *)

  val decision : 'a config -> int -> 'a option
  (** The value process [pid] decided, if it has. *)

  val decisions : 'a config -> (int * 'a) list

  val running : 'a config -> int list
  (** Sorted ids of processes that have not decided (and are not blocked). *)

  val running_count : 'a config -> int
  (** [List.length (running cfg)], cached — O(1) in the exploration hot
      loop instead of rebuilding the list. *)

  val poised : 'a config -> int -> (int * I.op) list option
  (** The atomic accesses process [pid] is poised to perform, or [None] if
      it has decided. *)

  val steps : 'a config -> int
  (** Total steps taken so far. *)

  val steps_of : 'a config -> int -> int
  (** Steps taken by one process — the per-process step complexity the
      paper's conclusions call out as the next refinement of the
      hierarchy. *)

  val epoch : 'a config -> int -> int
  (** Recovery epoch of one process: how many crash–recover transitions it
      has survived (0 in a crash-free run). *)

  val crashes : 'a config -> int
  (** Total crash–recover transitions so far — what the model checker's
      crash budget is charged against. *)

  val crashable : 'a config -> int list
  (** Sorted ids of processes whose crash would change the configuration:
      those that have taken at least one step since their last start or
      recovery.  A process at its protocol root (including one that just
      recovered) is excluded — crashing it again only bumps the epoch
      counter — which is also what makes exhaustive crash-point enumeration
      finite.  Decided processes {e are} included: a decided process that
      crashes loses its decision and re-executes the protocol, the
      re-decision scenario recoverable consensus is about. *)

  val locations_used : 'a config -> int
  (** Number of distinct memory locations accessed so far: the measured
      space, i.e. this run's contribution to SP(I, n). *)

  val max_location : 'a config -> int option
  (** Largest location index accessed so far, if any. *)

  val fold_cells : 'a config -> init:'b -> f:('b -> int -> I.cell -> 'b) -> 'b
  (** Fold over every location that has been written (ascending). *)

  val fingerprint : 'a config -> int
  (** Canonical hash of the configuration: memory contents (via
      [I.hash_cell]) mixed with a rolling hash of every process's observed
      results (via [I.hash_result]).  Since a process is a deterministic
      function of the results it has seen, two configurations of the same
      initial machine with equal fingerprints behave identically modulo
      hash collisions; configurations reached by permuting independent
      (commuting) steps get equal fingerprints, which is what the model
      checker's transposition table dedups on.  Locations holding a value
      equal to [I.init] do not contribute, so writing the initial value
      back to an untouched location leaves the fingerprint unchanged —
      exactly as it leaves the configuration's behaviour unchanged.

      Recovery epochs are a third ingredient: configurations that agree on
      memory and histories but differ in crash counts must not be conflated
      (the remaining crash budget differs), so each process's nonzero epoch
      contributes a lane term.  Epoch 0 contributes nothing — crash-free
      fingerprints are bit-identical to a machine without the crash
      subsystem.

      The fingerprint is maintained incrementally: [step] delta-updates a
      two-lane digest on the written cell and the stepping process's
      history slot, so reading it here is O(1) — no per-call fold over
      memory.  [I.hash_cell] runs once per write; the per-cell
      contributions are cached alongside the cells. *)

  val fingerprint_words : 'a config -> int * int
  (** The two raw 63-bit digest lanes behind {!fingerprint}.  The lanes
      avalanche independently, so keying on the pair is a 126-bit digest —
      what the model checker's transposition tables use to make collisions
      negligible (and to pick a shard from the low bits). *)

  val slow_fingerprint : 'a config -> int
  (** The original from-scratch fingerprint fold (O(mem + n) per call).
      Its {e value} differs from {!fingerprint} — only the induced
      partition of configurations matters — and it is retained purely as
      the differential-testing reference for the incremental digest (the
      [SPACE_HIERARCHY_FP=fold] debug path in [Explore]). *)

  val canonical_fingerprint : inputs:int array -> 'a config -> int
  (** Like {!fingerprint}, but quotiented by process symmetry: each process
      contributes a hash of its (input, observed-result history, decision)
      triple and the triples are folded in sorted order, so configurations
      that differ only by permuting the complete states of processes with
      equal inputs collide deliberately.  [inputs.(pid)] must be the input
      handed to process [pid] (length must equal the number of processes);
      decisions are hashed with the polymorphic [Hashtbl.hash], so decision
      values should be first-order data (no closures).

      {b Soundness caveat}: deduplicating on this fingerprint is only valid
      for pid-symmetric protocols — those whose code ignores the process id
      except through its input (formally, [f pid] and [f pid'] are the same
      procedure whenever their inputs agree).  For pid-dependent protocols
      two configurations with equal canonical fingerprints can behave
      differently, and a model checker deduplicating on them may miss
      violations.

      The memory part reads off the maintained digest in O(1); only the
      per-process triples (O(n log n) for a run's handful of processes)
      are rebuilt per call. *)

  val canonical_fingerprint_words : inputs:int array -> 'a config -> int * int
  (** Two-lane variant of {!canonical_fingerprint}, mirroring
      {!fingerprint_words}. *)

  val slow_canonical_fingerprint : inputs:int array -> 'a config -> int
  (** From-scratch reference fold for {!canonical_fingerprint}, kept for
      differential testing like {!slow_fingerprint}. *)

  type event =
    | Step of {
        pid : int;
        accesses : (int * I.op * I.result) list;
            (** the locations and instructions of one atomic step, with
                results (a multiple assignment lists several) *)
      }
    | Crash of {
        pid : int;
        epoch : int;  (** the recovery epoch the process entered *)
      }

  val event_pid : event -> int
  (** The process an event concerns, uniformly over both constructors. *)

  val trace : 'a config -> event list
  (** Every step and crash–recover transition so far, in execution order —
      the executions the paper's proofs reason about, as data. *)

  val pp_event : Format.formatter -> event -> unit

  val pp_trace : Format.formatter -> 'a config -> unit

  val step : 'a config -> int -> 'a config
  (** Let process [pid] take its poised step.
      @raise Invalid_argument if [pid] has decided or is blocked.
      @raise Multi_assignment_not_supported if the step is a multi-location
      access and [I.multi_assignment] is [false]. *)

  val crash_recover : 'a config -> int -> 'a config
  (** Crash process [pid] and recover it (Golab's crash–recovery model,
      arXiv 1804.10597): its continuation, observed-result history and any
      pending decision are lost and it restarts from its protocol root;
      shared memory survives untouched — designated locations thereby act
      as per-process persistent recovery cells.  Total on every process
      state (running, blocked or decided); bumps the process's {!epoch} and
      the global {!crashes} count, leaves {!steps} unchanged, and records a
      [Crash] trace event.  The fingerprint distinguishes recovery epochs,
      so a recovered configuration never collides with the pre-crash one —
      while a crash-free run's fingerprints are bit-identical to a machine
      without this extension (epoch 0 contributes nothing). *)

  val run :
    ?fuel:int -> sched:Sched.t -> 'a config ->
    'a config * [ `All_decided | `Sched_stopped | `Out_of_fuel ]
  (** Drive the configuration with a scheduler.  [fuel] (default
      [1_000_000]) bounds the number of steps of this call. *)

  val run_crashy :
    ?fuel:int -> sched:Sched.Crashy.crashy -> 'a config ->
    'a config * [ `All_decided | `Sched_stopped | `Out_of_fuel ]
  (** Drive the configuration with a crash-aware adversary: the scheduler
      sees both the running and the {!crashable} sets and may interleave
      {!crash_recover} transitions with computation steps.  Crashes consume
      [fuel] like steps, so a crash-happy adversary terminates.
      [run_crashy ~sched:(Sched.Crashy.reliable s)] equals [run ~sched:s]. *)

  val run_solo : ?fuel:int -> pid:int -> 'a config -> 'a config * 'a option
  (** Run one process alone until it decides (the solo executions of the
      obstruction-freedom definition); returns its decision if it decided
      within [fuel] steps. *)

  (** A mutable throwaway copy of a configuration, for running solo probes
      without the persistent [step]'s copying and digest maintenance.  Probe
      steps dominate the model checker's wall clock (every leaf probes every
      running process) yet their intermediate configurations are never
      fingerprinted or branched from, so the scratch workspace executes them
      in place: memory in a hashtable, processes in one mutated array.
      Semantics match the persistent machine exactly — same results
      observed, same decisions, same blocked/undecided classification —
      which the differential probe tests assert.  A scratch value is
      single-use state: it shares nothing with the configuration it was
      built from, and is meant to be dropped after the probe. *)
  module Scratch : sig
    type 'a t

    val of_config : 'a config -> 'a t
    (** Snapshot a configuration into a mutable workspace (O(memory in use
        + n); the source configuration is not affected by later steps). *)

    val run_solo : ?fuel:int -> pid:int -> 'a t -> 'a option
    (** In-place equivalent of the machine's [run_solo]: step [pid] while
        it is runnable, up to [fuel] steps, and return its decision if it
        decided.  Mutates the workspace. *)

    val running : 'a t -> int list
    (** Sorted ids of processes not decided and not blocked. *)

    val decisions : 'a t -> (int * 'a) list
    (** Decided processes in pid order — same order and contents as
        [decisions] on an equivalent configuration. *)
  end
end
