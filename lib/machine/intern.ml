(* Hash-consing to dense integer ids.

   An intern table maps structured keys (values, instruction-set ops) to
   small consecutive ids, after which equality and hashing of interned data
   are single machine-word operations — the ids double as indices into flat
   side tables (the exploration engines build commutation bit-matrices over
   op ids this way).  Tables are deliberately {e not} thread-safe: the hot
   loops that intern are per-domain, and a lock per lookup would cost more
   than the recursive hash it replaces.  Give each domain its own table. *)

module type S = sig
  type key
  type t

  val create : ?size:int -> unit -> t
  val id : t -> key -> int
  val value : t -> int -> key
  val size : t -> int
end

module Make (K : Hashtbl.HashedType) : S with type key = K.t = struct
  module H = Hashtbl.Make (K)

  type key = K.t

  type t = {
    ids : int H.t;
    mutable values : key array; (* values.(i) is the key with id [i] *)
    mutable n : int;
  }

  let create ?(size = 64) () = { ids = H.create size; values = [||]; n = 0 }

  let id t k =
    match H.find_opt t.ids k with
    | Some i -> i
    | None ->
      let i = t.n in
      let cap = Array.length t.values in
      if i >= cap then begin
        let values = Array.make (Stdlib.max 16 (2 * cap)) k in
        Array.blit t.values 0 values 0 cap;
        t.values <- values
      end;
      t.values.(i) <- k;
      t.n <- i + 1;
      H.replace t.ids k i;
      i

  let value t i =
    if i < 0 || i >= t.n then invalid_arg "Intern.value: unknown id";
    t.values.(i)

  let size t = t.n
end

(* Interning on structural equality and the polymorphic hash — for key types
   without a hand-written [HashedType] (instruction-set ops are plain data
   constructors over ints, bignums and values, on which structural equality
   is sound because [Bignum.t] is canonical).  Structural equality can be
   finer than the type's semantic equality (e.g. [Value.Int 1] vs
   [Value.Big 1]); such aliases get distinct ids, which costs a duplicate
   table slot but never conflates distinct keys. *)
module Poly (T : sig
  type t
end) : S with type key = T.t = Make (struct
  type t = T.t

  let equal = ( = )
  let hash = Hashtbl.hash
end)
