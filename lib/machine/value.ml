type t =
  | Bot
  | Unit
  | Int of int
  | Big of Bignum.t
  | Pair of t * t
  | Vec of t array
  | Tag of int * int * t

let rec compare a b =
  match a, b with
  | Bot, Bot -> 0
  | Bot, _ -> -1
  | _, Bot -> 1
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Int x, Int y -> Stdlib.compare x y
  (* Mixed representations of the same number must compare equal; the
     [compare_int] fast path avoids allocating a bignum per comparison. *)
  | Int x, Big y -> -Bignum.compare_int y x
  | Big x, Int y -> Bignum.compare_int x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Big x, Big y -> Bignum.compare x y
  | Big _, _ -> -1
  | _, Big _ -> 1
  | Pair (x1, x2), Pair (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | Vec x, Vec y ->
    let lx = Array.length x and ly = Array.length y in
    if lx <> ly then Stdlib.compare lx ly
    else begin
      let rec go i =
        if i >= lx then 0
        else begin
          let c = compare x.(i) y.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end
  | Vec _, _ -> -1
  | _, Vec _ -> 1
  | Tag (p1, s1, v1), Tag (p2, s2, v2) ->
    let c = Stdlib.compare (p1, s1) (p2, s2) in
    if c <> 0 then c else compare v1 v2

let equal a b = compare a b = 0

(* A multiplicative mix (64-bit FNV prime) with an avalanche shift:
   [h * 31 + x] loses high bits under composition, which matters now that
   hashes key the model checker's transposition table. *)
let mix acc h =
  let x = (acc * 0x100000001b3) lxor h in
  x lxor (x lsr 29)

let rec hash = function
  | Bot -> 3
  | Unit -> 5
  (* Int and Big compare equal on equal numbers, so they must hash alike;
     hash_of_int is the no-allocation fast path of the shared digit fold. *)
  | Int i -> Bignum.hash_of_int i
  | Big b -> Bignum.hash b
  | Pair (a, b) -> mix (mix 11 (hash a)) (hash b)
  | Vec v -> Array.fold_left (fun acc x -> mix acc (hash x)) 7 v
  | Tag (p, s, v) -> mix (mix (mix 13 p) s) (hash v)

let rec pp ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Unit -> Format.pp_print_string ppf "()"
  | Int i -> Format.pp_print_int ppf i
  | Big b -> Bignum.pp ppf b
  | Pair (a, b) -> Format.fprintf ppf "(%a,@ %a)" pp a pp b
  | Vec v ->
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp)
      (Array.to_seq v)
  | Tag (p, s, v) -> Format.fprintf ppf "%a@@%d.%d" pp v p s

let to_int_exn = function
  | Int i -> i
  | v -> Format.kasprintf invalid_arg "Value.to_int_exn: %a" pp v

let to_big_exn = function
  | Big b -> b
  | Int i -> Bignum.of_int i
  | v -> Format.kasprintf invalid_arg "Value.to_big_exn: %a" pp v

let untag = function
  | Tag (_, _, v) -> v
  | v -> v

let rec observe_int = function
  | Int i -> Some i
  | Big b -> Bignum.to_int b
  | Tag (_, _, v) -> observe_int v
  | Bot | Unit | Pair _ | Vec _ -> None

(* Hash-consing of values on semantic equality ([Int]/[Big] aliases of the
   same number share an id, unlike the structural [Intern.Poly]).  Analyses
   that repeatedly hash the same large values can intern once and work with
   word-sized ids thereafter. *)
module Intern = Intern.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
