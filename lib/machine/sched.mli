(** Adversarial schedulers.

    The scheduler is the adversary of Section 2: at each step it picks which
    undecided process takes its poised step.  Schedulers are pure values —
    [next] returns the chosen process id together with the scheduler's next
    state — so runs are reproducible and configurations can be explored
    along several schedules. *)

type t

val next : t -> running:int list -> step:int -> (int * t) option
(** [next sched ~running ~step] picks one of [running] (a non-empty sorted
    list of undecided process ids), or [None] to stop the run. *)

val solo : int -> t
(** Always run one process: the solo executions obstruction-freedom is
    defined by. *)

val round_robin : t
(** Cycle through the running processes. *)

val random : seed:int -> t
(** Uniformly random choice at each step, deterministic in [seed]. *)

val random_bursts : seed:int -> max_burst:int -> t
(** A bursty adversary: pick a running process uniformly, run it for a
    uniform 1‥[max_burst] consecutive steps (cut short if it decides), then
    pick again.  Deterministic in [seed] — equal seeds replay identical
    schedules, which is what lets stress campaign tasks be content-addressed
    and replayed.  Bursts stress the solo-progress paths that a per-step
    uniform adversary rarely exercises.
    @raise Invalid_argument if [max_burst < 1]. *)

val script : int list -> t
(** Follow the given pids, skipping entries that are not running; stops at
    the end of the list. *)

val sequential : t
(** Run the lowest-id running process until it decides, then the next, and
    so on — the all-solo schedule ([random_then_sequential] with an empty
    random prefix). *)

val random_then_sequential : seed:int -> prefix:int -> t
(** Random adversary for [prefix] steps, then run the lowest-id running
    process solo until it decides, then the next, and so on.  Under an
    obstruction-free protocol this drives every process to a decision, which
    makes it the standard test harness schedule. *)

val alternate : int list -> t
(** Cycle through the given pids forever (skipping decided ones) — a
    lock-step adversary useful for starving progress. *)

val fair : bound:int -> seed:int -> t
(** Semi-synchronous fairness ([FLMS05]'s unknown-bound model): random
    choices, except that no running process goes more than [bound] steps
    of others without taking one itself — when several are overdue the
    most overdue goes first.  Deterministic in [seed]. *)

val phased : (int * t) list -> t -> t
(** [phased [(k1, s1); (k2, s2); …] last] follows [s1] for [k1] steps (or
    until it stops), then [s2] for [k2], …, then [last] forever.  Useful
    for mid-run regime changes such as crashing a process partway. *)

val excluding : int list -> t -> t
(** Crash faults: the listed processes are never scheduled again.  The
    model's crashes (Section 2: processes "may crash at any time") are
    exactly schedules that stop allocating steps, so this wrapper turns any
    scheduler into one with permanently crashed processes. *)

(** Crash–{e recover} adversaries (Golab, arXiv 1804.10597): beyond choosing
    who steps, the adversary may crash a process — it loses its program
    state, keeps shared memory, and restarts from its protocol root.  Driven
    by {!Machine.Make.run_crashy}, which passes both the running set and the
    crashable set (processes that have stepped since their last recovery —
    crashing anyone else changes nothing).  [excluding] composed under
    [phased] remains the crash-{e stop} baseline the recover adversary is
    differentially tested against. *)
module Crashy : sig
  type action =
    | Run of int    (** let this process take its poised step *)
    | Crash of int  (** crash–recover this process *)

  type crashy

  val next :
    crashy ->
    running:int list -> crashable:int list -> step:int -> (action * crashy) option
  (** Pick the next action: run one of [running], crash one of [crashable],
      or [None] to stop the run. *)

  val reliable : t -> crashy
  (** Lift a plain scheduler into one that never crashes anyone — the
      identity embedding; [run_crashy] under it equals [run]. *)

  val crashing : ?period:int -> seed:int -> budget:int -> t -> crashy
  (** Seeded random crash injection over the given scheduler: at each
      decision, with probability 1/[period] (default 8) while crash [budget]
      remains and some process is crashable, crash a uniformly chosen
      crashable process; otherwise delegate to the inner scheduler.
      Deterministic in [seed].
      @raise Invalid_argument if [period < 1] or [budget < 0]. *)

  val script : action list -> crashy
  (** Follow explicit actions, skipping inapplicable ones (a [Run] of a
      non-running pid, a [Crash] of a non-crashable pid); stops at the end
      of the list — the replay form of a crash witness. *)
end
