module Pid_map = Map.Make (Int)

type t = { next : running:int list -> step:int -> (int * t) option }

let next t ~running ~step = t.next ~running ~step

let rec solo pid =
  { next =
      (fun ~running ~step:_ ->
        if List.mem pid running then Some (pid, solo pid) else None)
  }

let round_robin =
  let rec from last =
    { next =
        (fun ~running ~step:_ ->
          match running with
          | [] -> None
          | _ ->
            let candidates = List.filter (fun p -> p > last) running in
            let pid = match candidates with p :: _ -> p | [] -> List.hd running in
            Some (pid, from pid))
    }
  in
  from (-1)

let random ~seed =
  let rec from st =
    { next =
        (fun ~running ~step:_ ->
          match running with
          | [] -> None
          | _ ->
            let st = Random.State.copy st in
            let i = Random.State.int st (List.length running) in
            Some (List.nth running i, from st))
    }
  in
  from (Random.State.make [| seed |])

let random_bursts ~seed ~max_burst =
  if max_burst < 1 then invalid_arg "Sched.random_bursts: max_burst < 1";
  (* like [random], state is copied before use so a retained scheduler value
     replays the same choices *)
  let rec fresh st =
    { next =
        (fun ~running ~step:_ ->
          match running with
          | [] -> None
          | _ ->
            let st = Random.State.copy st in
            let pid = List.nth running (Random.State.int st (List.length running)) in
            let burst = 1 + Random.State.int st max_burst in
            Some (pid, continue st pid (burst - 1)))
    }
  and continue st pid remaining =
    if remaining = 0 then fresh st
    else
      { next =
          (fun ~running ~step ->
            (* the burst owner decided (or was never running): re-roll *)
            if List.mem pid running then Some (pid, continue st pid (remaining - 1))
            else (fresh st).next ~running ~step)
      }
  in
  fresh (Random.State.make [| seed |])

let rec script pids =
  { next =
      (fun ~running ~step:_ ->
        let rec pick = function
          | [] -> None
          | p :: rest ->
            if List.mem p running then Some (p, script rest) else pick rest
        in
        pick pids)
  }

let sequential =
  let rec t =
    lazy
      { next =
          (fun ~running ~step:_ ->
            match running with
            | [] -> None
            | p :: _ -> Some (p, Lazy.force t))
      }
  in
  Lazy.force t

let random_then_sequential ~seed ~prefix =
  let rec from st remaining =
    if remaining <= 0 then sequential
    else
      { next =
          (fun ~running ~step:_ ->
            match running with
            | [] -> None
            | _ ->
              let st = Random.State.copy st in
              let i = Random.State.int st (List.length running) in
              Some (List.nth running i, from st (remaining - 1)))
      }
  in
  from (Random.State.make [| seed |]) prefix

let fair ~bound ~seed =
  if bound < 1 then invalid_arg "Sched.fair: bound < 1";
  let rec from st debts =
    { next =
        (fun ~running ~step:_ ->
          match running with
          | [] -> None
          | _ ->
            let st' = Random.State.copy st in
            let roll = Random.State.int st' (List.length running) in
            let debt p = Option.value ~default:0 (Pid_map.find_opt p debts) in
            let pid =
              (* an overdue process must go — the most overdue one, so ties
                 rotate instead of always favouring the lowest pid (at
                 bound = 1 every process is overdue every step, and picking
                 the first would starve the rest forever) *)
              match List.filter (fun p -> debt p >= bound - 1) running with
              | [] -> List.nth running roll
              | p :: ps ->
                List.fold_left (fun best q -> if debt q > debt best then q else best) p ps
            in
            (* the map keeps debt owed to processes absent from [running]
               this step (e.g. filtered by [excluding], or transiently
               blocked); rebuilding the ledger from [running] alone used to
               zero it *)
            let debts' =
              List.fold_left
                (fun m p -> Pid_map.add p (if p = pid then 0 else debt p + 1) m)
                debts running
            in
            Some (pid, from st' debts'))
    }
  in
  from (Random.State.make [| seed |]) Pid_map.empty

let phased phases last =
  let rec go phases last =
    match phases with
    | [] -> last
    | (budget, sched) :: rest ->
      if budget <= 0 then go rest last
      else
        { next =
            (fun ~running ~step ->
              match sched.next ~running ~step with
              | None -> (go rest last).next ~running ~step
              | Some (pid, sched') -> Some (pid, go ((budget - 1, sched') :: rest) last))
        }
  in
  go phases last

let rec excluding crashed inner =
  { next =
      (fun ~running ~step ->
        let alive = List.filter (fun p -> not (List.mem p crashed)) running in
        match alive with
        | [] -> None
        | _ ->
          Option.map
            (fun (pid, inner') -> (pid, excluding crashed inner'))
            (inner.next ~running:alive ~step))
  }

(* Crash-aware adversaries: at each scheduling decision the adversary either
   runs a process or crash–recovers one (Golab's crash–recovery model — the
   victim loses its program state, keeps shared memory, and restarts from its
   protocol root).  A separate type rather than an extension of [t] so every
   existing scheduler stays a total, crash-free adversary by construction. *)
module Crashy = struct
  type plain = t

  type action =
    | Run of int
    | Crash of int

  type crashy = {
    next :
      running:int list -> crashable:int list -> step:int -> (action * crashy) option;
  }

  let next t ~running ~crashable ~step = t.next ~running ~crashable ~step

  (* Any plain scheduler is a crashy scheduler that never crashes anyone. *)
  let rec reliable (inner : plain) =
    { next =
        (fun ~running ~crashable:_ ~step ->
          Option.map
            (fun (pid, inner') -> (Run pid, reliable inner'))
            (inner.next ~running ~step))
    }

  (* Seeded random crash injection under a crash budget: with probability
     1/[period] (and budget remaining, and someone crashable) crash a
     uniformly chosen crashable process, otherwise delegate the step to
     [inner].  Deterministic in [seed], so runs replay — the property the
     campaign stress tasks content-address on. *)
  let crashing ?(period = 8) ~seed ~budget inner =
    if period < 1 then invalid_arg "Sched.Crashy.crashing: period < 1";
    if budget < 0 then invalid_arg "Sched.Crashy.crashing: negative budget";
    let rec from st budget (inner : plain) =
      { next =
          (fun ~running ~crashable ~step ->
            let st = Random.State.copy st in
            if
              budget > 0 && crashable <> []
              && Random.State.int st period = 0
            then
              let pid = List.nth crashable (Random.State.int st (List.length crashable)) in
              Some (Crash pid, from st (budget - 1) inner)
            else
              Option.map
                (fun (pid, inner') -> (Run pid, from st budget inner'))
                (inner.next ~running ~step))
      }
    in
    from (Random.State.make [| seed; 0xC3A5 |]) budget inner

  (* Follow a script of explicit actions, skipping a Run of a non-running
     pid and a Crash of a non-crashable pid; stops at the end.  The replay
     form of a crash witness. *)
  let rec script actions =
    { next =
        (fun ~running ~crashable ~step:_ ->
          let rec pick = function
            | [] -> None
            | Run p :: rest ->
              if List.mem p running then Some (Run p, script rest) else pick rest
            | Crash p :: rest ->
              if List.mem p crashable then Some (Crash p, script rest) else pick rest
          in
          pick actions)
    }
end

let alternate pids =
  if pids = [] then invalid_arg "Sched.alternate: empty";
  let rec from i =
    { next =
        (fun ~running ~step:_ ->
          match running with
          | [] -> None
          | _ ->
            let k = List.length pids in
            let rec pick tries j =
              if tries >= k then None
              else begin
                let p = List.nth pids (j mod k) in
                if List.mem p running then Some (p, from (j + 1)) else pick (tries + 1) (j + 1)
              end
            in
            pick 0 i)
    }
  in
  from 0
