(** Buffers of per-location capacities (the heterogeneous setting of
    Section 6.2's closing remark).

    The paper notes its lower bound generalises: with locations of
    different capacities, any obstruction-free consensus needs total
    capacity at least n−1.  Dually, total capacity n suffices — this
    instruction set lets one machine mix, say, a 3-buffer and two
    2-buffers for 7 processes.

    Capacities are configured statically by the deployment (a property of
    the machine, like word width): each operation carries its target
    location's capacity, and a cell remembers the capacity of the first
    instruction applied to it, rejecting mismatches.  The {!reader} and
    {!writer} helpers take the capacity map so processes cannot
    mis-declare. *)

open Model

type op = Buf_read of int | Buf_write of int * Value.t
(** The [int] is the target location's capacity ℓ ≥ 1. *)

include
  Iset.S
    with type cell = int * Value.t list
     and type op := op
     and type result = Value.t
(** A cell is (capacity, newest-first retained writes); capacity [0] means
    "not yet accessed". *)

val read :
  capacities:(int -> int) -> int -> (op, result, Value.t array) Proc.t
(** [read ~capacities loc]: the ℓ most recent writes (ℓ = [capacities loc]),
    least recent first, ⊥-padded. *)

val write :
  capacities:(int -> int) -> int -> Value.t -> (op, result, unit) Proc.t
