lib/isets/swap.mli: Model
