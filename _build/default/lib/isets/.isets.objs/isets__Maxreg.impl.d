lib/isets/maxreg.ml: Bignum Format Model Proc Value
