lib/isets/swap.ml: Format Model Proc Value
