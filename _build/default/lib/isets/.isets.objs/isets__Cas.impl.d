lib/isets/cas.ml: Format Model Proc Value
