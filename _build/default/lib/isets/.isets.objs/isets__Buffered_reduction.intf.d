lib/isets/buffered_reduction.mli: Bits Buffer_set Model Proc Rw Value
