lib/isets/bits.mli: Model
