lib/isets/arith.mli: Bignum Iset Model Proc Value
