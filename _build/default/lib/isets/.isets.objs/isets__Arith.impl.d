lib/isets/arith.ml: Bignum Format Model Proc Value
