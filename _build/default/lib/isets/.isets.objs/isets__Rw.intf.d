lib/isets/rw.mli: Model
