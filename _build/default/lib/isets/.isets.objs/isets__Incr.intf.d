lib/isets/incr.mli: Bignum Model
