lib/isets/hetero_buffer.ml: Array Format List Model Proc Value
