lib/isets/incr.ml: Bignum Format Model Proc Value
