lib/isets/maxreg.mli: Bignum Model
