lib/isets/cas.mli: Model
