lib/isets/bits.ml: Bool Format Model Proc Value
