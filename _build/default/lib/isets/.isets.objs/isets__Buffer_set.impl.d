lib/isets/buffer_set.ml: Array Format List Model Printf Proc Value
