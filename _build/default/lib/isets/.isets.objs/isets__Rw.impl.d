lib/isets/rw.ml: Format Model Proc Value
