lib/isets/incdec.mli: Bignum Model
