lib/isets/buffered_reduction.ml: Array Bits Buffer_set Format List Model Proc Rw Value
