lib/isets/buffer_set.mli: Model
