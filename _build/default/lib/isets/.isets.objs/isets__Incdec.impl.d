lib/isets/incdec.ml: Bignum Format Model Proc Value
