lib/isets/hetero_buffer.mli: Iset Model Proc Value
