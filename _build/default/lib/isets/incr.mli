(** Increment instruction sets (Section 5).

    Two Table 1 rows share integer cells with read and write:
    - [{read(), write(x), increment()}]: increment returns nothing;
    - [{read(), write(x), fetch-and-increment()}]: the increment also
      returns the previous contents.

    Both have SP lower bound 2 (Theorem 5.1: one location is impossible)
    and upper bound O(log n) (Theorem 5.3).  The flavour only restricts
    which increment instruction is available. *)

type flavour = Increment_only | Fetch_increment

type op = Read | Write of Bignum.t | Increment | Fetch_incr

module Make (F : sig
  val flavour : flavour
end) : sig
  include Model.Iset.S with type cell = Bignum.t and type op = op and type result = Model.Value.t

  val read : int -> (op, result, Bignum.t) Model.Proc.t
  val write : int -> Bignum.t -> (op, result, unit) Model.Proc.t

  val increment : int -> (op, result, unit) Model.Proc.t
  (** Uses whichever increment instruction the flavour provides (the result
      of [fetch-and-increment] is discarded). *)

  val fetch_increment : int -> (op, result, Bignum.t) Model.Proc.t
  (** @raise Invalid_argument under [Increment_only]. *)
end

val flavour_name : flavour -> string
