(** Arithmetic instruction sets on integer cells (Sections 1 and 3).

    Each of these solves n-consensus with a {e single} memory location
    (Theorem 3.3 and the introduction's examples), which is what collapses
    Herlihy's object hierarchy once instructions apply to common memory. *)

open Model

(** [{read(), add(x)}].  One location suffices: the cell is a base-[3n]
    bounded counter (Lemma 3.2). *)
module Add : sig
  type op = Read | Add of Bignum.t

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val read : int -> (op, result, Bignum.t) Proc.t
  val add : int -> Bignum.t -> (op, result, unit) Proc.t
end

(** [{read(), multiply(x)}].  One location: the cell is a product of primes,
    component [v] living in the exponent of the [(v+1)]-st prime. *)
module Mul : sig
  type op = Read | Mul of Bignum.t

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val read : int -> (op, result, Bignum.t) Proc.t
  val mul : int -> Bignum.t -> (op, result, unit) Proc.t
end

(** [{read(), set-bit(x)}].  One location: blocks of n² bits record each
    process's increments of each component. *)
module Setbit : sig
  type op = Read | Set_bit of int

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val read : int -> (op, result, Bignum.t) Proc.t
  val set_bit : int -> int -> (op, result, unit) Proc.t
end

(** [{fetch-and-add(x)}] alone: [read()] is [fetch-and-add(0)]. *)
module Faa : sig
  type op = Fetch_add of Bignum.t

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val read : int -> (op, result, Bignum.t) Proc.t
  val fetch_add : int -> Bignum.t -> (op, result, Bignum.t) Proc.t
end

(** [{fetch-and-multiply(x)}] alone: [read()] is [fetch-and-multiply(1)]. *)
module Fam : sig
  type op = Fetch_mul of Bignum.t

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val read : int -> (op, result, Bignum.t) Proc.t
  val fetch_mul : int -> Bignum.t -> (op, result, Bignum.t) Proc.t
end

(** [{read(), decrement(), multiply(x)}]: the introduction's second example.
    Any two of the three have consensus number 1, yet together one location
    solves wait-free binary consensus for any number of processes. *)
module Decmul : sig
  type op = Read | Decrement | Multiply of int

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val read : int -> (op, result, Bignum.t) Proc.t
  val decrement : int -> (op, result, unit) Proc.t
  val multiply : int -> int -> (op, result, unit) Proc.t
end

(** [{fetch-and-add(2), test-and-set()}]: the introduction's first example.
    [test-and-set] here is the paper's slightly stronger variant: it sets
    the location to 1 only when it contained 0, and returns the previous
    number. *)
module Faa2_tas : sig
  type op = Fetch_add2 | Tas

  include Iset.S with type cell = Bignum.t and type op := op and type result = Value.t

  val fetch_add2 : int -> (op, result, Bignum.t) Proc.t
  val tas : int -> (op, result, Bignum.t) Proc.t
end
