open Model

module type SPEC = sig
  type op
  type result

  val name : string
  val ell : int
  val nontrivial : op -> bool
  val nontrivial_result : op -> result
  val trivial_result : op -> op list -> result
  val encode_op : op -> Value.t
  val decode_op : Value.t -> op
end

module Make (S : SPEC) = struct
  let apply ~loc op =
    if S.nontrivial op then
      Proc.map
        (fun _ -> S.nontrivial_result op)
        (Proc.access loc (Buffer_set.Buf_write (S.encode_op op)))
    else
      Proc.map
        (function
          | Value.Vec slots ->
            let recent =
              Array.to_list slots
              |> List.filter_map (function
                   | Value.Bot -> None
                   | v -> Some (S.decode_op v))
            in
            S.trivial_result op recent
          | v -> Format.kasprintf invalid_arg "%s: bad buffer read %a" S.name Value.pp v)
        (Proc.access loc Buffer_set.Buf_read)
end

module Rw_spec = struct
  type op = Rw.op
  type result = Value.t

  let name = "{read(), write(x)} via 1-buffers"
  let ell = 1
  let nontrivial = function Rw.Write _ -> true | Rw.Read -> false
  let nontrivial_result _ = Value.Unit

  let trivial_result _ = function
    | [] -> Value.Bot
    | recent -> (
      match List.nth recent (List.length recent - 1) with
      | Rw.Write v -> v
      | Rw.Read -> assert false)

  let encode_op = function
    | Rw.Write v -> v
    | Rw.Read -> invalid_arg "Rw_spec.encode_op: trivial instruction"

  let decode_op v = Rw.Write v
end

module W1_spec = struct
  type op = Bits.op
  type result = Value.t

  let name = "{read(), write(1)} via 1-buffers"
  let ell = 1

  let nontrivial = function
    | Bits.Write1 -> true
    | Bits.Read -> false
    | Bits.Write0 | Bits.Tas | Bits.Reset ->
      invalid_arg "W1_spec: instruction outside {read, write(1)}"

  let nontrivial_result _ = Value.Unit

  (* the location reads 1 iff the last (indeed, any) non-trivial
     instruction was a write(1) *)
  let trivial_result _ = function
    | [] -> Value.Int 0
    | _ :: _ -> Value.Int 1

  let encode_op = function
    | Bits.Write1 -> Value.Int 1
    | _ -> invalid_arg "W1_spec.encode_op"

  let decode_op _ = Bits.Write1
end
