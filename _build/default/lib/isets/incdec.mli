(** [{read(), write(x), increment(), decrement()}] — the conclusions'
    closing example (§10): with only read, write and {e one} of
    increment/decrement, more than one location is needed for binary
    consensus (Theorem 5.1's argument applies), but with {e both}, a single
    location suffices: the two camps play tug-of-war on the sign of one
    integer. *)

type op = Read | Write of Bignum.t | Increment | Decrement

include
  Model.Iset.S
    with type cell = Bignum.t
     and type op := op
     and type result = Model.Value.t

val read : int -> (op, result, Bignum.t) Model.Proc.t
val write : int -> Bignum.t -> (op, result, unit) Model.Proc.t
val increment : int -> (op, result, unit) Model.Proc.t
val decrement : int -> (op, result, unit) Model.Proc.t
