(** [{read(), swap(x)}] (Section 8).
    Table 1: Ω(√n) lower bound [FHS98], n−1 upper bound (Theorem 8.8). *)

type op = Read | Swap of Model.Value.t

include
  Model.Iset.S
    with type cell = Model.Value.t
     and type op := op
     and type result = Model.Value.t

val read : int -> (op, result, Model.Value.t) Model.Proc.t

val swap : int -> Model.Value.t -> (op, result, Model.Value.t) Model.Proc.t
(** Atomically stores the argument and returns the previous contents. *)
