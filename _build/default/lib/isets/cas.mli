(** [{compare-and-swap(x, y)}] (Table 1: SP = 1).

    [compare-and-swap(x, y)] atomically replaces the contents by [y] when
    they equal [x], and returns the previous contents either way.  Reading
    without interference is [compare-and-swap(v, v)] for any [v]. *)

type op = Cas of Model.Value.t * Model.Value.t

include
  Model.Iset.S
    with type cell = Model.Value.t
     and type op := op
     and type result = Model.Value.t

val cas :
  int -> expected:Model.Value.t -> desired:Model.Value.t ->
  (op, result, Model.Value.t) Model.Proc.t
(** Returns the previous contents. *)
