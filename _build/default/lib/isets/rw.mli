(** The instruction set [{read(), write(x)}]: ordinary registers.
    Table 1: SP = n ([Zhu15] upper bound, [EGZ18] lower bound). *)

type op = Read | Write of Model.Value.t

include
  Model.Iset.S
    with type cell = Model.Value.t
     and type op := op
     and type result = Model.Value.t

(** Typed process helpers. *)

val read : int -> (op, result, Model.Value.t) Model.Proc.t
val write : int -> Model.Value.t -> (op, result, unit) Model.Proc.t
