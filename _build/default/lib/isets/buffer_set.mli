(** ℓ-buffers: [{ℓ-buffer-read(), ℓ-buffer-write(x)}] (Section 6), and the
    same cells with atomic multiple assignment (Section 7).

    An ℓ-buffer retains the inputs of the ℓ most recent writes.
    [ℓ-buffer-read] returns them least-recent first, front-padded with ⊥
    when fewer than ℓ writes have occurred.  A 1-buffer is a register.

    Table 1: ⌈(n−1)/ℓ⌉ locations necessary (Theorem 6.8), ⌈n/ℓ⌉ sufficient
    (Theorem 6.3); with multiple assignment the lower bound becomes
    ⌈(n−1)/2ℓ⌉ (Theorem 7.5). *)

type op = Buf_read | Buf_write of Model.Value.t

module Make (C : sig
  val capacity : int
  (** ℓ ≥ 1. *)

  val multi_assignment : bool
  (** Allow one process step to write several buffers atomically
      (Section 7). *)
end) : sig
  include
    Model.Iset.S
      with type cell = Model.Value.t list
       and type op = op
       and type result = Model.Value.t

  val capacity : int

  val read : int -> (op, result, Model.Value.t array) Model.Proc.t
  (** The ℓ most recent writes, least recent first, ⊥-padded. *)

  val write : int -> Model.Value.t -> (op, result, unit) Model.Proc.t

  val write_many : (int * Model.Value.t) list -> (op, result, unit) Model.Proc.t
  (** Atomic multiple assignment: one ℓ-buffer-write per listed location in
      a single step.  Requires [C.multi_assignment]. *)
end
