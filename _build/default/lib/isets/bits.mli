(** Single-bit instruction sets (Section 9).

    Four Table 1 rows share the same binary cells and differ only in which
    instructions are allowed:
    - [{read(), write(1)}] and [{read(), test-and-set()}]: SP = ∞ for n ≥ 3
      (Theorem 9.2 / 9.3);
    - [{read(), write(0), write(1)}] and [{read(), test-and-set(), reset()}]:
      SP between n (resp. Ω(√n)) and O(n log n) (Theorem 9.4).

    The machine enforces the restriction dynamically: applying an
    instruction outside the chosen [flavour] raises [Invalid_argument].
    [test-and-set] here is the paper's standard single-bit variant (it
    always sets the location to 1). *)

type flavour = Write1_only | Tas_only | Write01 | Tas_reset

type op = Read | Write0 | Write1 | Tas | Reset

module Make (F : sig
  val flavour : flavour
end) : sig
  include Model.Iset.S with type cell = bool and type op = op and type result = Model.Value.t

  val read : int -> (op, result, int) Model.Proc.t
  (** Returns 0 or 1. *)

  val write1 : int -> (op, result, unit) Model.Proc.t
  (** [write(1)], or [test-and-set()] with its result ignored, according to
      the flavour (Theorem 9.3 uses them interchangeably). *)

  val write0 : int -> (op, result, unit) Model.Proc.t
  (** [write(0)] or [reset()] according to the flavour.
      @raise Invalid_argument for flavours without a clearing instruction. *)

  val tas : int -> (op, result, int) Model.Proc.t
  (** [test-and-set()], returning the previous contents (0 or 1).
      @raise Invalid_argument for flavours without test-and-set. *)
end

val flavour_name : flavour -> string
