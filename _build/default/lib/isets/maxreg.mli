(** [{read-max(), write-max(x)}]: max-registers [AAC09] (Section 4).
    Table 1: SP = 2 — one max-register cannot solve binary consensus
    (Theorem 4.1), two solve n-consensus (Theorem 4.2). *)

type op = Read_max | Write_max of Bignum.t

include
  Model.Iset.S
    with type cell = Bignum.t
     and type op := op
     and type result = Model.Value.t

val read_max : int -> (op, result, Bignum.t) Model.Proc.t

val write_max : int -> Bignum.t -> (op, result, unit) Model.Proc.t
(** Stores the argument iff it exceeds the current contents. *)
