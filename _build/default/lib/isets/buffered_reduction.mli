(** The reduction closing Section 6.2: the ⌈(n−1)/ℓ⌉ lower bound "also
    applies to systems in which the return value of every non-trivial
    instruction does not depend on the value of that location and the
    return value of any trivial instruction is a function of the sequence
    of the preceding ℓ non-trivial instructions".

    Such instruction sets embed into ℓ-buffers step for step: a non-trivial
    instruction is recorded with one ℓ-buffer-write (its result is computed
    locally — it is value-independent by hypothesis), and a trivial
    instruction is answered from one ℓ-buffer-read of the last ℓ recorded
    instructions.  One source step = one buffer step, so both the semantics
    and the space usage transfer exactly — which is what lets the buffer
    lower bound speak about these sets.

    Instantiated below for [{read(), write(x)}] (ℓ = 1) and
    [{read(), write(1)}] (ℓ = 1); the tests bisimulate the reductions
    against the native machines.  Note what does {e not} fit: swap and
    test-and-set return the current value from a non-trivial instruction,
    and increment's read depends on the whole past, not the last ℓ — the
    hypothesis is exactly what separates them. *)

open Model

module type SPEC = sig
  type op
  type result

  val name : string

  val ell : int
  (** how many recent non-trivial instructions a trivial result needs *)

  val nontrivial : op -> bool

  val nontrivial_result : op -> result
  (** result of a non-trivial instruction — value-independent by
      hypothesis *)

  val trivial_result : op -> op list -> result
  (** result of a trivial instruction given the last ≤ ℓ non-trivial
      instructions, oldest first *)

  val encode_op : op -> Value.t
  val decode_op : Value.t -> op
end

module Make (S : SPEC) : sig
  val apply :
    loc:int -> S.op -> (Buffer_set.op, Value.t, S.result) Proc.t
  (** Execute one source instruction on [loc] of a machine whose buffers
      have capacity [S.ell]; exactly one machine step. *)
end

(** [{read(), write(x)}] via 1-buffers. *)
module Rw_spec :
  SPEC with type op = Rw.op and type result = Value.t

(** [{read(), write(1)}] on bits via 1-buffers. *)
module W1_spec :
  SPEC with type op = Bits.op and type result = Value.t
