open Model
open Proc.Syntax

let k_stable_collect ~k ~equal collect =
  if k < 2 then invalid_arg "Snapshot.k_stable_collect: k < 2";
  let* first = collect in
  Proc.rec_loop (first, 1) (fun (view, stable) ->
    let* next = collect in
    if equal next view then
      if stable + 1 >= k then Proc.return (Either.Right view)
      else Proc.return (Either.Left (view, stable + 1))
    else Proc.return (Either.Left (next, 1)))

let double_collect ~equal collect = k_stable_collect ~k:2 ~equal collect
