(** Obstruction-free atomic scans by double collect [AAD+93].

    When the collected view can only "grow" (max-registers, counters,
    append-only histories, tagged swap values), two identical consecutive
    collects prove the view was present in memory at some instant between
    them, so the scan linearizes there.  The paper uses this construction in
    Theorems 4.2, 5.3, 6.3 and Section 8. *)

val double_collect :
  equal:('v -> 'v -> bool) ->
  ('op, 'res, 'v) Model.Proc.t ->
  ('op, 'res, 'v) Model.Proc.t
(** [double_collect ~equal collect] repeats [collect] until two consecutive
    results are [equal], and returns that stable view.  Terminates in any
    solo execution provided a solo [collect] is idempotent; may run forever
    under contention (the scan is only obstruction-free). *)

val k_stable_collect :
  k:int ->
  equal:('v -> 'v -> bool) ->
  ('op, 'res, 'v) Model.Proc.t ->
  ('op, 'res, 'v) Model.Proc.t
(** Like {!double_collect} but demands [k] identical consecutive collects
    ([k >= 2]); used by constructions whose locations are not monotone and
    that want extra resilience against A-B-A between collects. *)
