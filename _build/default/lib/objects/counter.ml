module type S = sig
  type op
  type res
  type state

  val components : int
  val init : state
  val increment : state -> int -> (op, res, state) Model.Proc.t
  val decrement : (state -> int -> (op, res, state) Model.Proc.t) option
  val scan : state -> (op, res, state * Bignum.t array) Model.Proc.t
end

type ('op, 'res) t = (module S with type op = 'op and type res = 'res)

let argmax ?excluding counts =
  let best = ref (-1) in
  Array.iteri
    (fun i c ->
      if excluding <> Some i && (!best < 0 || Bignum.compare c counts.(!best) > 0) then
        best := i)
    counts;
  if !best < 0 then invalid_arg "Counter.argmax: no eligible component";
  !best
