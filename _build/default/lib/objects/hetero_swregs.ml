open Model
open Proc.Syntax

type t = {
  n : int;
  capacities : int array;
  owner_buffer : int array;  (* register -> hosting buffer *)
}

let create ~capacities ~n =
  let capacities = Array.of_list capacities in
  if Array.exists (fun c -> c < 1) capacities then
    invalid_arg "Hetero_swregs.create: capacity < 1";
  let total = Array.fold_left ( + ) 0 capacities in
  if total < n then
    invalid_arg
      (Printf.sprintf "Hetero_swregs.create: total capacity %d < %d processes" total n);
  (* Fill buffers in order: buffer j hosts the next c_j registers. *)
  let owner_buffer = Array.make n 0 in
  let reg = ref 0 in
  Array.iteri
    (fun j c ->
      for _ = 1 to c do
        if !reg < n then begin
          owner_buffer.(!reg) <- j;
          incr reg
        end
      done)
    capacities;
  { n; capacities; owner_buffer }

let buffers t = Array.length t.capacities
let capacity_at t j = t.capacities.(j)
let buffer_of t reg = t.owner_buffer.(reg)

let capacities_fn t loc = t.capacities.(loc)

let get t ~loc =
  let+ slots = Isets.Hetero_buffer.read ~capacities:(capacities_fn t) loc in
  History.reconstruct slots

let append t ~loc ~elt =
  let* h = get t ~loc in
  Isets.Hetero_buffer.write ~capacities:(capacities_fn t) loc
    (Value.Pair (Value.Vec (Array.of_list h), elt))

let write t ~pid ~seq v =
  append t ~loc:(buffer_of t pid) ~elt:(History.tag ~pid ~seq v)

let latest_of_reg reg history =
  List.fold_left
    (fun acc elt ->
      match elt with Value.Tag (p, _, v) when p = reg -> Some v | _ -> acc)
    None history

let read t ~reg =
  let+ history = get t ~loc:(buffer_of t reg) in
  match latest_of_reg reg history with Some v -> v | None -> Value.Bot

let collect t =
  let rec go j total histories =
    if j >= buffers t then begin
      let values = Array.make t.n Value.Bot in
      List.iter
        (List.iter (fun elt ->
             match elt with
             | Value.Tag (p, _, v) when p >= 0 && p < t.n -> values.(p) <- v
             | _ -> ()))
        (List.rev histories);
      Proc.return (values, total)
    end
    else
      let* history = get t ~loc:j in
      go (j + 1) (total + List.length history) (history :: histories)
  in
  go 0 0 []
