(** n single-writer registers over buffers of mixed capacities (the
    heterogeneous setting of Section 6.2's closing remark).

    Buffer [j] (of capacity [c_j]) hosts the registers of [c_j] distinct
    owners — the appender bound of Lemma 6.1 per buffer — so any capacity
    profile with total at least n supports n processes. *)

open Model

type t

val create : capacities:int list -> n:int -> t
(** @raise Invalid_argument if the capacities sum to less than [n] or any
    capacity is below 1. *)

val buffers : t -> int

val capacity_at : t -> int -> int
(** Capacity of buffer [j]. *)

val buffer_of : t -> int -> int
(** The buffer hosting a register. *)

val write :
  t -> pid:int -> seq:int -> Value.t -> (Isets.Hetero_buffer.op, Value.t, unit) Proc.t

val read : t -> reg:int -> (Isets.Hetero_buffer.op, Value.t, Value.t) Proc.t

val collect : t -> (Isets.Hetero_buffer.op, Value.t, Value.t array * int) Proc.t
