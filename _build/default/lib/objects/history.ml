open Model
open Proc.Syntax

let tag ~pid ~seq payload = Value.Tag (pid, seq, payload)

let entry_exn = function
  | Value.Pair (Value.Vec h, x) -> (h, x)
  | v -> Format.kasprintf invalid_arg "History: malformed buffer entry %a" Value.pp v

(* Reconstruct the full history from one ℓ-buffer-read result (the proof of
   Lemma 6.1).  [slots] is oldest-to-newest with ⊥ padding in front. *)
let reconstruct slots =
  let entries =
    Array.to_list slots
    |> List.filter_map (function Value.Bot -> None | v -> Some (entry_exn v))
  in
  match entries with
  | [] -> []
  | (_, x1) :: _ ->
    let tail = List.map snd entries in
    if List.length entries < Array.length slots then
      (* Fewer than ℓ writes ever: the buffer holds the whole history. *)
      tail
    else begin
      (* Buffer full: splice the longest recorded history with the last ℓ
         elements.  If it contains x1 we cut it just before x1; otherwise
         (ℓ concurrent appends, Figure 1) it already ends where x1 starts. *)
      let longest =
        List.fold_left
          (fun best (h, _) -> if Array.length h > Array.length best then h else best)
          [||] entries
      in
      let prefix =
        match Array.to_list longest with
        | l when List.exists (Value.equal x1) l ->
          let rec before = function
            | [] -> []
            | y :: _ when Value.equal y x1 -> []
            | y :: rest -> y :: before rest
          in
          before l
        | l -> l
      in
      prefix @ tail
    end

let get ~loc =
  let+ slots = Isets.Buffer_set.(Proc.access loc Buf_read) in
  match slots with
  | Value.Vec v -> reconstruct v
  | v -> Format.kasprintf invalid_arg "History.get: buffer read returned %a" Value.pp v

let append ~loc ~elt =
  let* h = get ~loc in
  Proc.map ignore
    (Proc.access loc (Isets.Buffer_set.Buf_write (Value.Pair (Value.Vec (Array.of_list h), elt))))
