lib/objects/bit_tracks.mli: Counter Isets Model Value
