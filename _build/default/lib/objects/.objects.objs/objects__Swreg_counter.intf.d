lib/objects/swreg_counter.mli: Counter Isets Model Swregs Value
