lib/objects/swregs.mli: Isets Model Proc Value
