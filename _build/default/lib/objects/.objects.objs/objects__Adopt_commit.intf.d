lib/objects/adopt_commit.mli: Isets Model Proc Value
