lib/objects/hetero_swregs.ml: Array History Isets List Model Printf Proc Value
