lib/objects/reg_counter.ml: Array Bignum Counter Format Model Proc Snapshot Value
