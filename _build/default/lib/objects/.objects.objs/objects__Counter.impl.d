lib/objects/counter.ml: Array Bignum Model
