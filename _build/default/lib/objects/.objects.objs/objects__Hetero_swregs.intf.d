lib/objects/hetero_swregs.mli: Isets Model Proc Value
