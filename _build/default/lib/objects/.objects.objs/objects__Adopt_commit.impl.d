lib/objects/adopt_commit.ml: Isets Model Proc Value
