lib/objects/universal.mli: Isets Model Proc Value
