lib/objects/reg_counter.mli: Counter Model Proc Value
