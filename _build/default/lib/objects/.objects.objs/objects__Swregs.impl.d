lib/objects/swregs.ml: Array History List Model Proc Value
