lib/objects/arith_counters.mli: Counter Isets Model Value
