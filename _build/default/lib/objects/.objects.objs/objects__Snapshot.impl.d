lib/objects/snapshot.ml: Either Model Proc
