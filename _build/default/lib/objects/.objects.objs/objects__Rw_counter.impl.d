lib/objects/rw_counter.ml: Array Bignum Counter Format Isets List Model Proc Snapshot Value
