lib/objects/history.mli: Isets Model Proc Value
