lib/objects/counter.mli: Bignum Model
