lib/objects/bit_tracks.ml: Array Bignum Counter Isets List Model Proc Snapshot Stdlib Value
