lib/objects/rw_counter.mli: Counter Isets Model Value
