lib/objects/universal.ml: History List Model Proc Value
