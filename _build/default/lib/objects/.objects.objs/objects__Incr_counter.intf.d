lib/objects/incr_counter.mli: Counter Isets Model Value
