lib/objects/incr_counter.ml: Array Bignum Counter Isets List Model Proc Snapshot Value
