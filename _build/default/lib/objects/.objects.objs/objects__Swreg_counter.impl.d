lib/objects/swreg_counter.ml: Counter Isets Model Reg_counter Swregs
