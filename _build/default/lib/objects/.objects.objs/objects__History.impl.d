lib/objects/history.ml: Array Format Isets List Model Proc Value
