lib/objects/arith_counters.ml: Array Bignum Counter Isets List Model Primes Proc Value
