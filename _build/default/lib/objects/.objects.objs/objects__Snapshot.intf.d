lib/objects/snapshot.mli: Model
