open Model
open Proc.Syntax

type ('state, 'op_, 'ret) spec = {
  initial : 'state;
  apply : 'state -> 'op_ -> 'state * 'ret;
  encode : 'op_ -> Value.t;
  decode : Value.t -> 'op_;
}

type ('state, 'op_, 'ret) t = {
  loc : int;
  spec : ('state, 'op_, 'ret) spec;
}

let create ~loc spec = { loc; spec }

let replay t history =
  List.fold_left
    (fun (state, _last) elt ->
      let op = t.spec.decode (Value.untag elt) in
      let state, ret = t.spec.apply state op in
      (state, Some ret))
    (t.spec.initial, None) history

let invoke t ~pid ~seq op =
  let elt = History.tag ~pid ~seq (t.spec.encode op) in
  let* () = History.append ~loc:t.loc ~elt in
  (* Replay up to our own append to learn this operation's return value.
     Our element is guaranteed to appear: get-history returns every append
     linearized before this read, and ours already was. *)
  let+ history = History.get ~loc:t.loc in
  let rec upto acc = function
    | [] -> None
    | e :: rest ->
      if Value.equal e elt then Some (List.rev (e :: acc)) else upto (e :: acc) rest
  in
  match upto [] history with
  | None -> invalid_arg "Universal.invoke: own operation missing from history"
  | Some prefix ->
    (match replay t prefix with
     | _, Some ret -> ret
     | _, None -> assert false (* prefix ends with our own operation *))

let observe t =
  let+ history = History.get ~loc:t.loc in
  fst (replay t history)
