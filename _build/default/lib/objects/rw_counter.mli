(** m-component counter from n single-writer registers over plain
    [{read(), write(x)}] memory ([AH90]-style, the n-location upper bound of
    Table 1's register row).

    Process [pid] publishes its per-component increment counts in location
    [base + pid], tagged with a sequence number so the double-collect scan
    compares writes, not just values. *)

open Model

val make :
  components:int -> n:int -> base:int -> pid:int -> (Isets.Rw.op, Value.t) Counter.t
