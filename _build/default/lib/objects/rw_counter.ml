open Model
open Proc.Syntax

let counts_of_value ~components v =
  match Value.untag v with
  | Value.Bot -> Array.make components 0
  | Value.Vec a -> Array.map Value.to_int_exn a
  | v -> Format.kasprintf invalid_arg "Rw_counter: malformed register %a" Value.pp v

let make ~components ~n ~base ~pid : (Isets.Rw.op, Value.t) Counter.t =
  (module struct
    type op = Isets.Rw.op
    type res = Value.t

    type state = { own : int array; seq : int }

    let components = components
    let init = { own = Array.make components 0; seq = 0 }

    let increment st v =
      let own = Array.copy st.own in
      own.(v) <- own.(v) + 1;
      let value = Value.Tag (pid, st.seq, Value.Vec (Array.map (fun c -> Value.Int c) own)) in
      let* () = Isets.Rw.write (base + pid) value in
      Proc.return { own; seq = st.seq + 1 }

    let decrement = None

    let collect =
      let rec go i acc =
        if i >= n then Proc.return (Array.of_list (List.rev acc))
        else
          let* v = Isets.Rw.read (base + i) in
          go (i + 1) (v :: acc)
      in
      go 0 []

    let scan st =
      let* values =
        Snapshot.double_collect ~equal:(fun a b -> Array.for_all2 Value.equal a b) collect
      in
      let totals = Array.make components 0 in
      Array.iter
        (fun v ->
          Array.iteri
            (fun i c -> if i < components then totals.(i) <- totals.(i) + c)
            (counts_of_value ~components v))
        values;
      Proc.return (st, Array.map Bignum.of_int totals)
  end)
