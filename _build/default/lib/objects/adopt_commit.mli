(** m-valued adopt-commit objects ([AE14], cited in the conclusions).

    An adopt-commit object weakens consensus just enough to be solvable
    from registers: [propose v] returns [(Commit, w)] or [(Adopt, w)] with
    - validity: [w] was proposed;
    - coherence: if anyone commits [w], every output carries [w];
    - convergence: if all proposals are equal, everyone commits.

    Construction (the classic announcement/proposal one) over
    [{read(), write(x)}]: per-value announcement bits at
    [base .. base+m−1] and a proposal register at [base+m]; a proposer
    announces, installs the first proposal, and commits only if the
    proposal is its own value and no other value is announced.
    m+1 locations; every operation is wait-free (4 + m steps). *)

open Model

type grade = Commit | Adopt

val locations : m:int -> int
(** m + 1. *)

val propose :
  m:int -> base:int -> value:int -> (Isets.Rw.op, Value.t, grade * int) Proc.t
