(** Single-location counter encodings (Theorem 3.3).

    Each function builds an m-component counter living entirely in one
    memory location [loc] of the corresponding arithmetic machine:

    - [mul]: component [v] is the exponent of the [(v+1)]-st prime in the
      location's prime factorisation (unbounded counter);
    - [add]: component [i] is the [i]-th base-[3n] digit (bounded counter
      with decrement, Lemma 3.2 — a plain add encoding would be ambiguous,
      as the paper's [ab]-collision example shows);
    - [set_bit]: the location is a bit string of [n²]-bit blocks; process
      [pid] records its [b]-th increment of component [v] at bit
      [b·n² + v·n + pid] (unbounded counter);
    - [faa] / [fam]: as [add] / [mul] where [read()] is the identity
      read-modify-write ([fetch-and-add(0)] / [fetch-and-multiply(1)]). *)

open Model

val mul : components:int -> loc:int -> (Isets.Arith.Mul.op, Value.t) Counter.t

val add : components:int -> n:int -> loc:int -> (Isets.Arith.Add.op, Value.t) Counter.t
(** [n] is the number of processes; digits live in [{0, …, 3n−1}]. *)

val set_bit :
  components:int -> n:int -> pid:int -> loc:int -> (Isets.Arith.Setbit.op, Value.t) Counter.t
(** [pid] is the calling process's id (the encoding needs it); [components]
    must be ≤ [n]. *)

val faa : components:int -> n:int -> loc:int -> (Isets.Arith.Faa.op, Value.t) Counter.t

val fam : components:int -> loc:int -> (Isets.Arith.Fam.op, Value.t) Counter.t
