open Model
open Proc.Syntax

type t = { n : int; capacity : int }

let create ~n ~capacity =
  if n < 1 || capacity < 1 then invalid_arg "Swregs.create";
  { n; capacity }

let buffers t = (t.n + t.capacity - 1) / t.capacity

let buffer_of t reg = reg / t.capacity

let write t ~pid ~seq v =
  History.append ~loc:(buffer_of t pid) ~elt:(History.tag ~pid ~seq v)

let latest_of_reg reg history =
  List.fold_left
    (fun acc elt ->
      match elt with
      | Value.Tag (p, _, v) when p = reg -> Some v
      | _ -> acc)
    None history

let read t ~reg =
  let+ history = History.get ~loc:(buffer_of t reg) in
  match latest_of_reg reg history with Some v -> v | None -> Value.Bot

(* The result array is allocated only once all reads are done: a Proc value
   may be re-executed along several schedules, so no mutable state may be
   shared across executions. *)
let collect t =
  let rec go b total histories =
    if b >= buffers t then begin
      let values = Array.make t.n Value.Bot in
      List.iter
        (List.iter (fun elt ->
             match elt with
             | Value.Tag (p, _, v) when p >= 0 && p < t.n -> values.(p) <- v
             | _ -> ()))
        (List.rev histories);
      Proc.return (values, total)
    end
    else
      let* history = History.get ~loc:b in
      go (b + 1) (total + List.length history) (history :: histories)
  in
  go 0 0 []
