(** m-component unbounded counter from m increment locations (Section 5).

    Location [base + i] holds component [i]; counts only grow, so the
    double-collect scan is linearizable.  Theorem 5.3 uses the 2-component
    instance as the binary-consensus core of its O(log n) algorithm. *)

open Model

val make :
  components:int ->
  base:int ->
  flavour:Isets.Incr.flavour ->
  (Isets.Incr.op, Value.t) Counter.t
