(** m-component counters (Section 3).

    An m-component counter supports [increment] (and, for the bounded
    variant of Lemma 3.2, [decrement]) on each component and an atomic
    [scan] of all components.  The racing-counters consensus algorithm
    (Lemmas 3.1/3.2) is generic in this interface, so every Table 1 row
    whose upper bound goes through counters shares one consensus core.

    Implementations carry pure per-process [state] (cached positions, own
    write counts, sequence numbers): processes must stay pure so that
    configurations can be branched during model checking. *)

module type S = sig
  type op
  type res
  type state

  val components : int

  val init : state

  val increment : state -> int -> (op, res, state) Model.Proc.t
  (** [increment st v] bumps component [v].  Implementations over weak
      instructions (e.g. write(1) tracks) may lose an increment to a
      concurrent one, but never increase any other component, and a solo
      increment always takes effect — which is what Lemma 3.1 needs. *)

  val decrement : (state -> int -> (op, res, state) Model.Proc.t) option
  (** Present only for bounded counters (Lemma 3.2). *)

  val scan : state -> (op, res, state * Bignum.t array) Model.Proc.t
  (** An atomic (or, for non-monotone encodings, best-effort stable) view of
      all [components] counts. *)
end

type ('op, 'res) t = (module S with type op = 'op and type res = 'res)

val argmax : ?excluding:int -> Bignum.t array -> int
(** Index of the largest count, smallest index on ties.
    @raise Invalid_argument if no eligible component exists. *)
