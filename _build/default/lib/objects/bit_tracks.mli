(** Counters built from single-bit locations (Section 9).

    {!unbounded} is the [GR05]-style track counter behind Theorem 9.3: each
    component is an infinite track of bits, its count the length of the
    track's 1-prefix.  Increment writes 1 at the frontier; counts only grow,
    so double-collect scans are linearizable.  Space grows without bound —
    this is the Table 1 ∞ row made executable.

    {!bounded} replaces the cited [Bow11] construction (see DESIGN.md): each
    component is a fixed-length track, its count the number of 1s; increment
    sets the first 0, decrement clears the last 1.  Scans are only
    heuristically atomic (bits are not monotone), so they demand
    [stability] identical consecutive collects and callers use widened
    racing thresholds; the tests and the bounded model checker probe this
    construction specifically. *)

open Model

val unbounded :
  components:int -> flavour:Isets.Bits.flavour -> (Isets.Bits.op, Value.t) Counter.t
(** Track [t] occupies locations [{t + k·components : k ≥ 0}]. *)

val bounded :
  components:int ->
  length:int ->
  base:int ->
  stability:int ->
  flavour:Isets.Bits.flavour ->
  (Isets.Bits.op, Value.t) Counter.t
(** Track [t] occupies locations
    [base + t·length .. base + (t+1)·length − 1].  The flavour must provide
    a clearing instruction ([Write01] or [Tas_reset]).  A saturated
    increment (track full) and an empty decrement are no-ops. *)
