(** History objects from a single ℓ-buffer (Lemma 6.1).

    A history object supports [append x] and [get] (the paper's
    [get-history()]), which returns every appended value in order.  One
    ℓ-buffer simulates a history object on which at most ℓ {e distinct}
    processes append and any number read: each write stores the pair
    (history the appender last observed, new element), and a reader stitches
    the longest recorded history together with the last ℓ elements.  With
    more than ℓ appenders the reconstruction may drop elements — that is
    exactly the boundary Figure 1 illustrates, and tests exercise both
    sides of it.

    Elements must be pairwise distinct; [tag] wraps a payload with the
    appender's id and a per-appender sequence number to guarantee it. *)

open Model

val tag : pid:int -> seq:int -> Value.t -> Value.t

val reconstruct : Value.t array -> Value.t list
(** The pure core of Lemma 6.1: rebuild the full append history from one
    buffer-read result ([slots] oldest-to-newest, ⊥-padded in front, each
    non-⊥ slot a [Pair (Vec recorded_history, element)]).  Exposed for the
    heterogeneous-buffer variant and for direct testing. *)

val get : loc:int -> (Isets.Buffer_set.op, Value.t, Value.t list) Proc.t
(** All appended elements, least recent first.  Linearizes at its single
    ℓ-buffer-read. *)

val append : loc:int -> elt:Value.t -> (Isets.Buffer_set.op, Value.t, unit) Proc.t
(** Linearizes at its single ℓ-buffer-write.  [elt] must be unique across
    the object's lifetime (use {!tag}). *)
