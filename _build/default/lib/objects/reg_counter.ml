open Model
open Proc.Syntax

type ('op, 'res) regs = {
  write : pid:int -> seq:int -> Value.t -> ('op, 'res, unit) Proc.t;
  collect : ('op, 'res, Value.t array * int) Proc.t;
}

let counts_value counts = Value.Vec (Array.map (fun c -> Value.Int c) counts)

let counts_of_value = function
  | Value.Bot -> None
  | Value.Vec v -> Some (Array.map Value.to_int_exn v)
  | v -> Format.kasprintf invalid_arg "Reg_counter: malformed register %a" Value.pp v

let make (type op res) ~components ~(regs : (op, res) regs) ~pid : (op, res) Counter.t =
  (module struct
    type nonrec op = op
    type nonrec res = res

    type state = { own : int array; seq : int }

    let components = components
    let init = { own = Array.make components 0; seq = 0 }

    let increment st v =
      let own = Array.copy st.own in
      own.(v) <- own.(v) + 1;
      let* () = regs.write ~pid ~seq:st.seq (counts_value own) in
      Proc.return { own; seq = st.seq + 1 }

    let decrement = None

    let scan st =
      let* values, _version =
        Snapshot.double_collect
          ~equal:(fun (a, va) (b, vb) -> va = vb && Array.for_all2 Value.equal a b)
          regs.collect
      in
      let totals = Array.make components 0 in
      Array.iter
        (fun v ->
          match counts_of_value v with
          | None -> ()
          | Some counts ->
            Array.iteri (fun i c -> if i < components then totals.(i) <- totals.(i) + c) counts)
        values;
      Proc.return (st, Array.map Bignum.of_int totals)
  end)
