(** n single-writer registers from ⌈n/ℓ⌉ ℓ-buffers (Lemma 6.2).

    Register [p] is owned by process [p] and lives in the history object
    simulated by buffer [p / ℓ] — each buffer hosts the ℓ registers of ℓ
    distinct owners, which is exactly the appender bound of Lemma 6.1. *)

open Model

type t

val create : n:int -> capacity:int -> t
(** [n] registers over ℓ-buffers of the given [capacity]. *)

val buffers : t -> int
(** ⌈n/ℓ⌉. *)

val write :
  t -> pid:int -> seq:int -> Value.t -> (Isets.Buffer_set.op, Value.t, unit) Proc.t
(** Process [pid] writes its own register; [seq] must strictly increase
    across its writes. *)

val read : t -> reg:int -> (Isets.Buffer_set.op, Value.t, Value.t) Proc.t
(** Latest value written to register [reg], or [Bot]. *)

val collect :
  t -> (Isets.Buffer_set.op, Value.t, Value.t array * int) Proc.t
(** One pass over all buffers: the latest value of every register plus the
    total number of writes observed (a monotone version usable for
    double-collect stability). *)
