open Model
open Proc.Syntax

let write1_op ~flavour =
  match flavour with
  | Isets.Bits.Tas_only | Isets.Bits.Tas_reset -> Isets.Bits.Tas
  | Isets.Bits.Write1_only | Isets.Bits.Write01 -> Isets.Bits.Write1

let write0_op ~flavour =
  match flavour with
  | Isets.Bits.Tas_reset -> Isets.Bits.Reset
  | Isets.Bits.Write01 -> Isets.Bits.Write0
  | Isets.Bits.Tas_only | Isets.Bits.Write1_only ->
    invalid_arg "Bit_tracks: flavour cannot clear bits"

let read_bit loc = Proc.map Value.to_int_exn (Proc.access loc Isets.Bits.Read)

let unbounded ~components ~flavour : (Isets.Bits.op, Value.t) Counter.t =
  (module struct
    type op = Isets.Bits.op
    type res = Value.t

    type state = int array
    (* per-track frontier: every position below it is known to be 1 *)

    let components = components
    let init = Array.make components 0
    let loc ~track pos = track + (pos * components)

    (* 1s on a write1-only track form a prefix (a process writes position k
       only after reading k as 0, and bits never fall back to 0), so the
       count is the position of the first 0. *)
    let count_from start ~track =
      let rec go pos =
        let* b = read_bit (loc ~track pos) in
        if b = 1 then go (pos + 1) else Proc.return pos
      in
      go start

    let increment st track =
      let* frontier = count_from st.(track) ~track in
      let* _ = Proc.access (loc ~track frontier) (write1_op ~flavour) in
      let st' = Array.copy st in
      st'.(track) <- frontier;
      Proc.return st'

    let decrement = None

    let scan st =
      let collect =
        let rec go track acc =
          if track >= components then Proc.return (List.rev acc)
          else
            let* c = count_from st.(track) ~track in
            go (track + 1) (c :: acc)
        in
        Proc.map Array.of_list (go 0 [])
      in
      let* counts = Snapshot.double_collect ~equal:(fun a b -> a = b) collect in
      let st' = Array.mapi (fun t f -> Stdlib.max f counts.(t)) st in
      Proc.return (st', Array.map Bignum.of_int counts)
  end)

let bounded ~components ~length ~base ~stability ~flavour :
    (Isets.Bits.op, Value.t) Counter.t =
  let set_op = write1_op ~flavour and clear_op = write0_op ~flavour in
  (module struct
    type op = Isets.Bits.op
    type res = Value.t
    type state = unit

    let components = components
    let init = ()
    let loc ~track pos = base + (track * length) + pos

    let read_track track =
      let rec go pos acc =
        if pos >= length then Proc.return (Array.of_list (List.rev acc))
        else
          let* b = read_bit (loc ~track pos) in
          go (pos + 1) (b :: acc)
      in
      go 0 []

    let increment () track =
      let* bits = read_track track in
      match Array.find_index (fun b -> b = 0) bits with
      | None -> Proc.return ()  (* saturated: lose the increment *)
      | Some pos -> Proc.map ignore (Proc.access (loc ~track pos) set_op)

    let decrement =
      Some
        (fun () track ->
          let* bits = read_track track in
          let last_one = ref None in
          Array.iteri (fun i b -> if b = 1 then last_one := Some i) bits;
          match !last_one with
          | None -> Proc.return ()  (* empty: nothing to decrement *)
          | Some pos -> Proc.map ignore (Proc.access (loc ~track pos) clear_op))

    let scan () =
      let collect =
        let rec go track acc =
          if track >= components then Proc.return (List.rev acc)
          else
            let* bits = read_track track in
            go (track + 1) (bits :: acc)
        in
        Proc.map Array.of_list (go 0 [])
      in
      let* image =
        Snapshot.k_stable_collect ~k:stability ~equal:(fun a b -> a = b) collect
      in
      let counts =
        Array.map
          (fun bits -> Bignum.of_int (Array.fold_left ( + ) 0 bits))
          image
      in
      Proc.return ((), counts)
  end)
