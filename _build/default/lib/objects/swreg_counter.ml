let make ~components ~regs ~pid : (Isets.Buffer_set.op, Model.Value.t) Counter.t =
  Reg_counter.make ~components ~pid
    ~regs:
      {
        Reg_counter.write = (fun ~pid ~seq v -> Swregs.write regs ~pid ~seq v);
        collect = Swregs.collect regs;
      }
