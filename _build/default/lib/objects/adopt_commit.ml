open Model
open Proc.Syntax

type grade = Commit | Adopt

let locations ~m = m + 1

let propose ~m ~base ~value =
  if value < 0 || value >= m then invalid_arg "Adopt_commit.propose: bad value";
  let announce v = base + v in
  let proposal = base + m in
  (* 1. announce our value *)
  let* () = Isets.Rw.write (announce value) (Value.Int 1) in
  (* 2. install the first proposal *)
  let* p = Isets.Rw.read proposal in
  let* () =
    match p with
    | Value.Bot -> Isets.Rw.write proposal (Value.Int value)
    | _ -> Proc.return ()
  in
  (* 3. re-read the proposal; it is some announced value by now *)
  let* p = Isets.Rw.read proposal in
  let u = Value.to_int_exn p in
  if u <> value then Proc.return (Adopt, u)
  else begin
    (* 4. commit only if no rival announcement is visible *)
    let rec rivals v =
      if v >= m then Proc.return false
      else if v = value then rivals (v + 1)
      else
        let* a = Isets.Rw.read (announce v) in
        if Value.equal a Value.Bot then rivals (v + 1) else Proc.return true
    in
    let* conflict = rivals 0 in
    Proc.return ((if conflict then Adopt else Commit), value)
  end
