(** m-component counter over any family of n single-writer registers.

    Generic core shared by the homogeneous ℓ-buffer counter (Theorem 6.3),
    the plain-register counter, and the heterogeneous-buffer counter: each
    process publishes its per-component increment counts through [write];
    [scan] double-collects [collect] (append-only registers make the
    version monotone) and sums. *)

open Model

type ('op, 'res) regs = {
  write : pid:int -> seq:int -> Value.t -> ('op, 'res, unit) Proc.t;
  collect : ('op, 'res, Value.t array * int) Proc.t;
      (** latest value per register plus a monotone version (e.g. total
          writes observed) *)
}

val make : components:int -> regs:('op, 'res) regs -> pid:int -> ('op, 'res) Counter.t
