(** A universal construction from one history object (Conclusions, §10).

    "One history object can be used to implement any sequentially defined
    object": every process appends the operation it wants to perform; the
    object's current state — and each operation's return value — is obtained
    deterministically by replaying the history against the sequential
    specification.  Linearizability is inherited from the history object's
    append order (Lemma 6.1 linearizes appends at their ℓ-buffer-writes), so
    over one ℓ-buffer this yields a linearizable object for up to ℓ mutating
    processes and any number of readers.

    The sequential specification is a fold: a state type, an initial state,
    and a transition consuming one operation. *)

open Model

type ('state, 'op_, 'ret) spec = {
  initial : 'state;
  apply : 'state -> 'op_ -> 'state * 'ret;
  encode : 'op_ -> Value.t;  (** embed an operation into a memory value *)
  decode : Value.t -> 'op_;
}

type ('state, 'op_, 'ret) t

val create : loc:int -> ('state, 'op_, 'ret) spec -> ('state, 'op_, 'ret) t
(** The object lives in the single ℓ-buffer at [loc]. *)

val invoke :
  ('state, 'op_, 'ret) t ->
  pid:int ->
  seq:int ->
  'op_ ->
  (Isets.Buffer_set.op, Value.t, 'ret) Proc.t
(** Perform a mutating operation: append it, then replay the history up to
    and including it.  [seq] must strictly increase per process.
    Linearizes at the append's ℓ-buffer-write. *)

val observe :
  ('state, 'op_, 'ret) t -> (Isets.Buffer_set.op, Value.t, 'state) Proc.t
(** Read-only snapshot of the current state (replay of the whole history);
    linearizes at its single ℓ-buffer-read. *)
