open Model
open Proc.Syntax

(* Counts of component v = exponent of the (v+1)-st prime. *)
let prime_scan ~components x =
  Array.init components (fun v -> Bignum.of_int (fst (Bignum.valuation x (Primes.nth v))))

let mul ~components ~loc : (Isets.Arith.Mul.op, Value.t) Counter.t =
  (module struct
    module M = Isets.Arith.Mul

    type op = M.op
    type res = Value.t
    type state = unit

    let components = components
    let init = ()

    let increment () v =
      let* () = M.mul loc (Bignum.of_int (Primes.nth v)) in
      Proc.return ()

    let decrement = None

    let scan () =
      let* x = M.read loc in
      Proc.return ((), prime_scan ~components x)
  end)

let fam ~components ~loc : (Isets.Arith.Fam.op, Value.t) Counter.t =
  (module struct
    module M = Isets.Arith.Fam

    type op = M.op
    type res = Value.t
    type state = unit

    let components = components
    let init = ()

    let increment () v =
      let* _old = M.fetch_mul loc (Bignum.of_int (Primes.nth v)) in
      Proc.return ()

    let decrement = None

    let scan () =
      let* x = M.read loc in
      Proc.return ((), prime_scan ~components x)
  end)

let digit_scan ~components ~radix x =
  let counts = Array.make components Bignum.zero in
  let digits = Bignum.digits x radix in
  List.iteri (fun i d -> if i < components then counts.(i) <- Bignum.of_int d) digits;
  counts

let add ~components ~n ~loc : (Isets.Arith.Add.op, Value.t) Counter.t =
  (module struct
    module M = Isets.Arith.Add

    type op = M.op
    type res = Value.t
    type state = unit

    let components = components
    let radix = 3 * n
    let init = ()

    let increment () i =
      let* () = M.add loc (Bignum.pow (Bignum.of_int radix) i) in
      Proc.return ()

    let decrement =
      Some
        (fun () i ->
          let* () = M.add loc (Bignum.neg (Bignum.pow (Bignum.of_int radix) i)) in
          Proc.return ())

    let scan () =
      let* x = M.read loc in
      Proc.return ((), digit_scan ~components ~radix x)
  end)

let faa ~components ~n ~loc : (Isets.Arith.Faa.op, Value.t) Counter.t =
  (module struct
    module M = Isets.Arith.Faa

    type op = M.op
    type res = Value.t
    type state = unit

    let components = components
    let radix = 3 * n
    let init = ()

    let increment () i =
      let* _old = M.fetch_add loc (Bignum.pow (Bignum.of_int radix) i) in
      Proc.return ()

    let decrement =
      Some
        (fun () i ->
          let* _old = M.fetch_add loc (Bignum.neg (Bignum.pow (Bignum.of_int radix) i)) in
          Proc.return ())

    let scan () =
      let* x = M.read loc in
      Proc.return ((), digit_scan ~components ~radix x)
  end)

(* Bit b·n² + v·n + i is set iff process i has incremented component v at
   least b+1 times.  A process's bits in consecutive blocks form a prefix,
   so its contribution is the length of that prefix. *)
let set_bit ~components ~n ~pid ~loc : (Isets.Arith.Setbit.op, Value.t) Counter.t =
  if components > n then invalid_arg "Arith_counters.set_bit: components > n";
  (module struct
    module M = Isets.Arith.Setbit

    type op = M.op
    type res = Value.t
    type state = int array
    (* own increment count per component *)

    let components = components
    let block = n * n
    let init = Array.make components 0

    let increment st v =
      let b = st.(v) in
      let* () = M.set_bit loc ((b * block) + (v * n) + pid) in
      let st' = Array.copy st in
      st'.(v) <- b + 1;
      Proc.return st'

    let decrement = None

    let scan st =
      let* x = M.read loc in
      let counts = Array.make components Bignum.zero in
      for v = 0 to components - 1 do
        let total = ref 0 in
        for i = 0 to n - 1 do
          let rec contribution b =
            if Bignum.bit x ((b * block) + (v * n) + i) then contribution (b + 1) else b
          in
          total := !total + contribution 0
        done;
        counts.(v) <- Bignum.of_int !total
      done;
      Proc.return (st, counts)
  end)
