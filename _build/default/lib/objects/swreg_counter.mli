(** m-component counter from single-writer registers (Sections 6 and 8).

    Each process records in its own register how many times it has
    incremented every component; a scan double-collects all registers and
    sums.  Over ℓ-buffers this yields the ⌈n/ℓ⌉-location counter behind
    Theorem 6.3. *)

open Model

val make :
  components:int ->
  regs:Swregs.t ->
  pid:int ->
  (Isets.Buffer_set.op, Value.t) Counter.t
