open Model
open Proc.Syntax

let make ~components ~base ~flavour : (Isets.Incr.op, Value.t) Counter.t =
  (module struct
    type op = Isets.Incr.op
    type res = Value.t
    type state = unit

    let components = components
    let init = ()

    let incr_op =
      match flavour with
      | Isets.Incr.Increment_only -> Isets.Incr.Increment
      | Isets.Incr.Fetch_increment -> Isets.Incr.Fetch_incr

    let increment () i =
      let* _ = Proc.access (base + i) incr_op in
      Proc.return ()

    let decrement = None

    let collect =
      let rec go i acc =
        if i >= components then Proc.return (Array.of_list (List.rev acc))
        else
          let* v = Proc.access (base + i) Isets.Incr.Read in
          go (i + 1) (Value.to_big_exn v :: acc)
      in
      go 0 []

    let scan () =
      let* counts =
        Snapshot.double_collect
          ~equal:(fun a b -> Array.for_all2 Bignum.equal a b)
          collect
      in
      Proc.return ((), counts)
  end)
