open Model

type verdict =
  | Agreement_violated of {
      p_decision : int;
      q_decision : int;
      transcript : string list;
    }
  | Protocol_error of string

exception Bad of string

let badf fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

(* Single-location {read, write, increment, fetch-and-increment}
   semantics. *)
let apply op value =
  match op with
  | Isets.Incr.Read -> (value, Value.Big value)
  | Isets.Incr.Write x -> (x, Value.Unit)
  | Isets.Incr.Increment -> (Bignum.succ value, Value.Unit)
  | Isets.Incr.Fetch_incr -> (Bignum.succ value, Value.Big value)

let pp_op ppf = function
  | Isets.Incr.Read -> Format.pp_print_string ppf "read()"
  | Isets.Incr.Write x -> Format.fprintf ppf "write(%a)" Bignum.pp x
  | Isets.Incr.Increment -> Format.pp_print_string ppf "increment()"
  | Isets.Incr.Fetch_incr -> Format.pp_print_string ppf "fetch-and-increment()"

let is_increment = function
  | Isets.Incr.Increment | Isets.Incr.Fetch_incr -> true
  | Isets.Incr.Read | Isets.Incr.Write _ -> false

let check_access = function
  | Proc.Done _ -> ()
  | Proc.Step ([ (0, _) ], _) -> ()
  | Proc.Step ([ (loc, _) ], _) ->
    badf "protocol accessed location %d: Theorem 5.1 assumes a single location" loc
  | Proc.Step (_, _) -> badf "protocol used multiple assignment"

(* Run [proc] solo from [value] to its decision. *)
let run_solo ~fuel ~log ~who value proc =
  let rec go value proc =
    if !fuel <= 0 then badf "process did not terminate (fuel exhausted)";
    decr fuel;
    check_access proc;
    match proc with
    | Proc.Done v ->
      log (Printf.sprintf "%s decides %d" who v);
      (value, v)
    | Proc.Step ([ (_, op) ], k) ->
      let value', result = apply op value in
      log
        (Format.asprintf "%s: %a  [location: %a -> %a]" who pp_op op Bignum.pp value
           Bignum.pp value');
      go value' (k [ result ])
    | Proc.Step _ -> assert false
  in
  go value proc

(* Run [proc] from the initial location (0) until it is poised to write or
   decides; returns the increment count of that write-free prefix and the
   stopping point. *)
let write_free_prefix ~fuel proc =
  let rec go value incrs proc =
    if !fuel <= 0 then badf "process did not terminate (fuel exhausted)";
    decr fuel;
    check_access proc;
    match proc with
    | Proc.Done v -> (incrs, `Decided v)
    | Proc.Step ([ (_, (Isets.Incr.Write _ as op)) ], k) -> (incrs, `Poised_write (op, k))
    | Proc.Step ([ (_, op) ], k) ->
      let value, result = apply op value in
      go value (incrs + (if is_increment op then 1 else 0)) (k [ result ])
    | Proc.Step _ -> assert false
  in
  go Bignum.zero 0 proc

let run ?(fuel = 1_000_000) (module P : Consensus.Proto.S
        with type I.op = Isets.Incr.op
         and type I.result = Model.Value.t) ~n =
  let fuel = ref fuel in
  let transcript = ref [] in
  let log line = transcript := line :: !transcript in
  try
    let c0, _ = write_free_prefix ~fuel (P.proc ~n ~pid:0 ~input:0) in
    let c1, _ = write_free_prefix ~fuel (P.proc ~n ~pid:0 ~input:1) in
    (* p runs the write-free prefix with the fewer increments; the location
       then holds exactly that count. *)
    let p_input = if c0 <= c1 then 0 else 1 in
    let q_input = 1 - p_input in
    log
      (Printf.sprintf
         "write-free prefixes: input 0 has %d increments, input 1 has %d; p takes \
          input %d"
         c0 c1 p_input);
    let c_small, p_stop = write_free_prefix ~fuel (P.proc ~n ~pid:0 ~input:p_input) in
    log
      (Printf.sprintf "p runs its write-free prefix: location now holds %d" c_small);
    let location = Bignum.of_int c_small in
    let location, q_decision =
      run_solo ~fuel ~log ~who:"q" location (P.proc ~n ~pid:1 ~input:q_input)
    in
    let p_decision =
      match p_stop with
      | `Decided v ->
        log (Printf.sprintf "p had already decided %d at the end of its prefix" v);
        v
      | `Poised_write (op, k) ->
        (* The write clobbers the only location, hiding q's entire
           execution from p. *)
        let location', result = apply op location in
        log
          (Format.asprintf "p resumes: %a overwrites everything q did  [%a -> %a]"
             pp_op op Bignum.pp location Bignum.pp location');
        snd (run_solo ~fuel ~log ~who:"p" location' (k [ result ]))
    in
    Agreement_violated { p_decision; q_decision; transcript = List.rev !transcript }
  with Bad msg -> Protocol_error msg
