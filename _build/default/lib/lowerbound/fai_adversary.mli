(** The Theorem 5.1 adversary: one [{read(), write(x),
    fetch-and-increment()}] location cannot solve binary consensus.

    Strategy (the proof's computational content): compare the two
    write-free solo prefixes of a proposer — with input 0 and with input 1.
    Run the proposer through the prefix with {e fewer} increments; the
    location now holds only an increment count, a state equally reachable
    in an all-other-input world, so the second process's solo run decides
    the other value.  If the first proposer had already decided, agreement
    is violated; otherwise its pending write overwrites the single location
    and erases everything the second process did, so it finishes exactly as
    in its solo run and decides its own value — violating agreement
    anyway. *)

type verdict =
  | Agreement_violated of {
      p_decision : int;
      q_decision : int;
      transcript : string list;
          (** the violating execution, one human-readable line per event *)
    }
  | Protocol_error of string
      (** the protocol used a second location, multiple assignment, or
          failed to terminate solo *)

val run :
  ?fuel:int ->
  (module Consensus.Proto.S
     with type I.op = Isets.Incr.op
      and type I.result = Model.Value.t) ->
  n:int ->
  verdict
