(** An operational witness for Lemma 6.5 (the covering step of the
    Section 6.2 space lower bound).

    Lemma 6.5 says: if Q is bivalent from C and the remaining processes R
    cover a set of locations L (each at most ℓ times), then there is a
    Q-only execution ξ such that after the block write β to L, R ∪ Q is
    still bivalent — and crucially, in Cξ some process of Q covers a
    location {e outside} L.  That fresh covered location is what the
    induction of Lemma 6.7 counts, one per round, to force ⌈(n−1)/ℓ⌉
    locations.

    [witness] finds all of this {e concretely} on a supplied protocol by
    bounded search: a bivalent configuration, the covering structure, the
    execution ξ, the block write, and the fresh location.  It is the
    executable content of the lemma instantiated on a real algorithm (run
    it on the register or ℓ-buffer protocols; see the `lowerbound` tests
    and `bench/main.exe`'s T1-LB section). *)

type report = {
  setup_steps : int;       (** steps from the initial configuration to C *)
  bivalent_pair : int * int;   (** the set Q *)
  coverers : int list;         (** the set R *)
  covered : int list;          (** L: locations R covers in C *)
  xi_steps : int;              (** length of the Q-only execution ξ *)
  fresh_location : int;        (** location ∉ L covered by Q in Cξ *)
  still_bivalent_after_block_write : bool;
}

val witness :
  ?search_depth:int ->
  ?solo_fuel:int ->
  Consensus.Proto.t ->
  inputs:int array ->
  (report, string) result
(** [inputs] needs at least 3 processes and at least two distinct values. *)
