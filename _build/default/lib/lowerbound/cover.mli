(** Covering vocabulary (Sections 6 and 7).

    A process {e covers} a location when it is poised to perform a
    non-trivial instruction there; a location is k-covered by a set of
    processes when exactly k of them cover it.  These pure helpers compute
    cover structure from poised-access data (as returned by
    [Machine.poised]), for use by lower-bound experiments and tests. *)

val covered : trivial:('op -> bool) -> (int * 'op) list -> int list
(** Locations covered by one process's poised atomic accesses. *)

val counts : int list list -> (int * int) list
(** Per-location cover counts given each process's covered locations;
    sorted by location. *)

val k_covered : int list list -> k:int -> int list
(** Locations covered by exactly [k] of the processes. *)

val at_most_k_covered : int list list -> k:int -> bool
(** True when every listed process covers something and no location is
    covered more than [k] times (the paper's "at most k-covered"). *)
