type progress = {
  round : int;
  ones : int;
  touched : int;
}

exception Stop of string

let stopf fmt = Format.kasprintf (fun s -> raise (Stop s)) fmt

let run ?(rounds = 5) ?(search_depth = 6) ?(solo_fuel = 200_000)
    (module P : Consensus.Proto.S
      with type I.op = Isets.Bits.op
       and type I.cell = bool
       and type I.result = Model.Value.t) ~inputs =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  if n < 3 then invalid_arg "Growth.run: need at least 3 processes";
  if not (Array.exists (( = ) 0) inputs && Array.exists (( = ) 1) inputs) then
    invalid_arg "Growth.run: inputs must contain both 0 and 1";
  let solo_dec cfg pid = snd (M.run_solo ~fuel:solo_fuel ~pid cfg) in
  let ones cfg =
    M.fold_cells cfg ~init:0 ~f:(fun acc _ c -> if c then acc + 1 else acc)
  in
  (* Two distinct processes deciding different values solo: a bivalence
     witness (Lemma 6.6 made operational). *)
  let witness cfg =
    let decs =
      List.filter_map
        (fun pid -> Option.map (fun v -> (pid, v)) (solo_dec cfg pid))
        (M.running cfg)
    in
    match decs with
    | (p, v) :: rest ->
      Option.map
        (fun (q, _w) -> (cfg, p, q, (if v = 1 then p else q)))
        (List.find_opt (fun (_, w) -> w <> v) rest)
    | [] -> None
  in
  (* Bounded breadth-first search over schedules for a bivalence witness. *)
  let find_bivalent cfg =
    let rec bfs frontier depth =
      match List.find_map witness frontier with
      | Some w -> Some w
      | None ->
        if depth >= search_depth then None
        else begin
          let next =
            List.concat_map (fun c -> List.map (M.step c) (M.running c)) frontier
          in
          if next = [] then None else bfs next (depth + 1)
        end
    in
    bfs [ cfg ] 0
  in
  (* Advance z solo until it is POISED to set a location that is currently 0
     (the proof's tas outside L_k) — z's earlier solo steps are reads or
     test-and-sets of already-set locations, which leave memory untouched.
     z is left covering the fresh location; the splice below releases its
     pending step.  A z that instead decides completes a genuine agreement
     violation, because some opposite solo decision is still available. *)
  let rec park_z cfg z fuel =
    if fuel <= 0 then stopf "z did not reach a fresh location within fuel";
    match M.poised cfg z with
    | None ->
      let v = Option.get (M.decision cfg z) in
      (match
         List.find_map
           (fun p ->
             match solo_dec cfg p with Some w when w <> v -> Some (p, w) | _ -> None)
           (M.running cfg)
       with
       | Some (p, w) ->
         stopf
           "agreement violation exhibited: z=%d decided %d via already-set \
            locations, then process %d decided %d solo"
           z v p w
       | None -> stopf "z decided %d read-only from a supposedly bivalent configuration" v)
    | Some [ (loc, op) ] ->
      let fresh =
        (match op with
         | Isets.Bits.Tas | Isets.Bits.Write1 -> true
         | Isets.Bits.Read | Isets.Bits.Write0 | Isets.Bits.Reset -> false)
        && not (M.cell cfg loc)
      in
      if fresh then cfg else park_z (M.step cfg z) z (fuel - 1)
    | Some _ -> stopf "multiple assignment is not covered by Lemma 9.1"
  in
  (* How many values {p, q} can decide on their own: bounded DFS over
     {p, q}-only schedules, collecting solo decisions. *)
  let pair_values cfg p q =
    let seen = Hashtbl.create 4 in
    let rec go cfg depth =
      List.iter
        (fun pid ->
          match solo_dec cfg pid with Some v -> Hashtbl.replace seen v () | None -> ())
        [ p; q ];
      if depth < search_depth && Hashtbl.length seen < 2 then
        List.iter
          (fun pid ->
            if List.mem pid (M.running cfg) then go (M.step cfg pid) (depth + 1))
          [ p; q ]
    in
    go cfg 0;
    Hashtbl.length seen
  in
  (* The proof's ψ-splice: advance the 1-decider through its solo run one
     step at a time (z stays parked, covering its fresh location); after
     each prefix release z's pending step and test whether the pair {p, q}
     is bivalent again. *)
  let splice parked ~p ~q ~one_decider ~z =
    let rec try_prefix cfg fuel =
      if fuel <= 0 then stopf "ψ-splice did not restore bivalence within fuel";
      let released = M.step cfg z in
      if pair_values released p q >= 2 then released
      else begin
        match M.poised cfg one_decider with
        | None -> stopf "ψ-splice exhausted the 1-decider's solo run"
        | Some _ -> try_prefix (M.step cfg one_decider) (fuel - 1)
      end
    in
    try_prefix parked solo_fuel
  in
  try
    let cfg0 = M.make ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
    let rec round cfg k acc =
      if k > rounds then List.rev acc
      else begin
        match find_bivalent cfg with
        | None -> stopf "no bivalent configuration within search depth (round %d)" k
        | Some (cfg, p, q, one_decider) ->
          let z =
            match List.find_opt (fun r -> r <> p && r <> q) (M.running cfg) with
            | Some z -> z
            | None -> stopf "no third process left running (round %d)" k
          in
          let parked = park_z cfg z solo_fuel in
          let cfg' = splice parked ~p ~q ~one_decider ~z in
          round cfg' (k + 1)
            ({ round = k; ones = ones cfg'; touched = M.locations_used cfg' } :: acc)
      end
    in
    Ok (round cfg0 1 [])
  with Stop msg -> Error msg
