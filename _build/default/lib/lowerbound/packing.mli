(** k-packings and the Eulerian re-packing argument (Section 7).

    In a configuration where each process is poised to perform a multiple
    assignment, a {e k-packing} maps every process to one of the locations
    it covers, with at most [k] processes per location.  A location is
    {e fully k-packed} when every k-packing puts exactly [k] processes
    there; Lemma 7.2 rests on Lemma 7.1: if packing [g] puts more processes
    than packing [h] into [r₁], an Eulerian walk through the multigraph of
    disagreements yields a chain of re-assignments moving one process out
    of [r₁] without overloading anything.

    Processes are [0 .. Array.length covers − 1]; [covers.(p)] lists the
    locations process [p] covers (its poised multiple assignment's
    targets). *)

type covers = int list array

val is_packing : covers -> k:int -> int array -> bool
(** Does the assignment respect coverage and the per-location bound? *)

val max_packing : covers -> k:int -> int array option
(** Some k-packing of all processes, or [None] if none exists (computed by
    augmenting paths, i.e. bipartite b-matching). *)

val transfer :
  covers -> k:int -> g:int array -> h:int array -> from_loc:int ->
  (int array * int list * int list) option
(** Lemma 7.1.  If [g] packs more processes into [from_loc] than [h] does,
    returns [(g', path_locs, path_procs)] where [g'] is a k-packing with
    one process fewer in [from_loc], one more in the final location of
    [path_locs] (where [h] packs more than [g]), and identical counts
    elsewhere; [path_procs] are the re-packed processes [p₁ … p_{t−1}].
    Returns [None] when the hypothesis [|g⁻¹(from_loc)| > |h⁻¹(from_loc)|]
    fails. *)

val fully_packed : covers -> k:int -> int array -> int list
(** Given some k-packing, the locations that are fully k-packed (every
    k-packing puts exactly [k] processes there) — the proof's set [L]. *)

val load : int array -> loc:int -> int
(** Number of processes a packing assigns to [loc]. *)
