let covered ~trivial accesses =
  List.sort_uniq compare
    (List.filter_map (fun (loc, op) -> if trivial op then None else Some loc) accesses)

let counts per_process =
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun loc ->
         Hashtbl.replace tbl loc (1 + Option.value ~default:0 (Hashtbl.find_opt tbl loc))))
    per_process;
  List.sort compare (Hashtbl.fold (fun loc c acc -> (loc, c) :: acc) tbl [])

let k_covered per_process ~k =
  List.filter_map (fun (loc, c) -> if c = k then Some loc else None) (counts per_process)

let at_most_k_covered per_process ~k =
  List.for_all (fun locs -> locs <> []) per_process
  && List.for_all (fun (_, c) -> c <= k) (counts per_process)
