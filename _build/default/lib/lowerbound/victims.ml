open Model
open Proc.Syntax

let naive_maxreg :
    (module Consensus.Proto.S
       with type I.op = Isets.Maxreg.op
        and type I.result = Value.t) =
  (module struct
    module I = Isets.Maxreg

    let name = "victim-naive-maxreg"
    let locations ~n:_ = Some 1

    let proc ~n:_ ~pid:_ ~input =
      let* () = Isets.Maxreg.write_max 0 (Bignum.of_int (input + 1)) in
      let* v = Isets.Maxreg.read_max 0 in
      Proc.return (Bignum.to_int_exn v - 1)
  end)

let rounds_maxreg :
    (module Consensus.Proto.S
       with type I.op = Isets.Maxreg.op
        and type I.result = Value.t) =
  (module struct
    module I = Isets.Maxreg

    let name = "victim-rounds-maxreg"
    let locations ~n:_ = Some 1

    (* Value (round, x) encoded as (x+1)·y^round in one max-register; spin
       until the same (round, x) is observed twice in a row, bumping the
       round each iteration; decide after a fixed round horizon. *)
    let proc ~n ~pid:_ ~input =
      let y = Primes.next_above n in
      let encode round x = Bignum.mul_int (Bignum.pow (Bignum.of_int y) round) (x + 1) in
      let decode v =
        if Bignum.is_zero v then (0, 0)
        else begin
          let r, rest = Bignum.valuation v y in
          (r, Bignum.to_int_exn rest - 1)
        end
      in
      let* () = Isets.Maxreg.write_max 0 (encode 0 input) in
      Proc.rec_loop () (fun () ->
        let* v = Isets.Maxreg.read_max 0 in
        let r, x = decode v in
        if r >= 2 * n then Proc.return (Either.Right x)
        else
          let* () = Isets.Maxreg.write_max 0 (encode (r + 1) x) in
          Proc.return (Either.Left ()))
  end)

let digit = 1 lsl 20

let naive_fai :
    (module Consensus.Proto.S
       with type I.op = Isets.Incr.op
        and type I.result = Value.t) =
  (module struct
    module I = Isets.Incr.Make (struct
      let flavour = Isets.Incr.Fetch_increment
    end)

    let name = "victim-naive-fai"
    let locations ~n:_ = Some 1

    (* Two racing counters packed into one integer: count for 0 in the low
       digit, count for 1 in the high digit, bumped by read-then-write
       (lossy under contention, but obstruction-free). *)
    let proc ~n ~pid:_ ~input =
      Proc.rec_loop () (fun () ->
        let* v = Proc.access 0 Isets.Incr.Read in
        let r = Bignum.to_int_exn (Value.to_big_exn v) in
        let c0 = r mod digit and c1 = r / digit in
        if c0 >= c1 + n then Proc.return (Either.Right 0)
        else if c1 >= c0 + n then Proc.return (Either.Right 1)
        else
          let bump = if input = 0 then 1 else digit in
          let* _ = Proc.access 0 (Isets.Incr.Write (Bignum.of_int (r + bump))) in
          Proc.return (Either.Left ()))
  end)

let counting_fai :
    (module Consensus.Proto.S
       with type I.op = Isets.Incr.op
        and type I.result = Value.t) =
  (module struct
    module I = Isets.Incr.Make (struct
      let flavour = Isets.Incr.Fetch_increment
    end)

    let name = "victim-counting-fai"
    let locations ~n:_ = Some 1

    (* Claim tickets with fetch-and-increment; the first ticket's owner
       writes its input (offset into a high digit) for the rest to adopt. *)
    let proc ~n:_ ~pid:_ ~input =
      let* t = Proc.access 0 Isets.Incr.Fetch_incr in
      let ticket = Bignum.to_int_exn (Value.to_big_exn t) in
      if ticket = 0 then
        let* _ = Proc.access 0 (Isets.Incr.Write (Bignum.of_int (digit * (input + 1)))) in
        Proc.return input
      else
        Proc.rec_loop () (fun () ->
          let* v = Proc.access 0 Isets.Incr.Read in
          let r = Bignum.to_int_exn (Value.to_big_exn v) in
          if r >= digit then Proc.return (Either.Right ((r / digit) - 1))
          else Proc.return (Either.Left ()))
  end)
