(** Candidate protocols for the impossibility adversaries to break.

    Theorems 4.1 and 5.1 quantify over all protocols; their adversaries can
    only be {e run} against concrete candidates.  These are plausible
    single-location attempts — obstruction-free and correct in solo runs —
    that the adversaries demolish, demonstrating the proofs' strategies. *)

val naive_maxreg :
  (module Consensus.Proto.S
     with type I.op = Isets.Maxreg.op
      and type I.result = Model.Value.t)
(** One max-register: write-max your value (+1), read, decide the max seen.
    Solo-correct; the Theorem 4.1 interleaving decides both values. *)

val rounds_maxreg :
  (module Consensus.Proto.S
     with type I.op = Isets.Maxreg.op
      and type I.result = Model.Value.t)
(** A craftier single-max-register attempt that spins through rounds
    (Theorem 4.2's encoding squeezed into one register).  Still broken, as
    Theorem 4.1 promises. *)

val naive_fai :
  (module Consensus.Proto.S
     with type I.op = Isets.Incr.op
      and type I.result = Model.Value.t)
(** One {read, write, fetch-and-increment} location holding two racing
    counters in separate "digit" ranges, updated by read-then-write.
    Obstruction-free; the Theorem 5.1 surgery decides both values. *)

val counting_fai :
  (module Consensus.Proto.S
     with type I.op = Isets.Incr.op
      and type I.result = Model.Value.t)
(** A variant that really uses fetch-and-increment: ticket claiming with a
    write-back announcement.  It is not even obstruction-free — a waiter
    spins forever once the location moves off 0 — and the Theorem 5.1
    adversary reports exactly that non-termination. *)
