type covers = int list array

let load packing ~loc =
  Array.fold_left (fun acc r -> if r = loc then acc + 1 else acc) 0 packing

let is_packing covers ~k packing =
  Array.length packing = Array.length covers
  && Array.for_all (fun r -> r >= 0) packing
  && begin
    let ok = ref true in
    Array.iteri (fun p r -> if not (List.mem r covers.(p)) then ok := false) packing;
    !ok
  end
  && begin
    let loads = Hashtbl.create 16 in
    Array.iter
      (fun r -> Hashtbl.replace loads r (1 + Option.value ~default:0 (Hashtbl.find_opt loads r)))
      packing;
    Hashtbl.fold (fun _ l ok -> ok && l <= k) loads true
  end

(* Kuhn-style augmenting assignment with per-location capacity k. *)
let max_packing covers ~k =
  let n = Array.length covers in
  let packing = Array.make n (-1) in
  let loads = Hashtbl.create 16 in
  let load_of r = Option.value ~default:0 (Hashtbl.find_opt loads r) in
  let packed_at r =
    let out = ref [] in
    Array.iteri (fun p r' -> if r' = r then out := p :: !out) packing;
    !out
  in
  let rec assign p visited =
    List.exists
      (fun r ->
        if List.mem r !visited then false
        else begin
          visited := r :: !visited;
          if load_of r < k then begin
            Hashtbl.replace loads r (load_of r + 1);
            packing.(p) <- r;
            true
          end
          else begin
            (* Try to evict someone packed at r to another location. *)
            List.exists
              (fun q ->
                let old = packing.(q) in
                packing.(q) <- -1;
                Hashtbl.replace loads r (load_of r - 1);
                if assign q visited then begin
                  packing.(p) <- r;
                  Hashtbl.replace loads r (load_of r + 1);
                  true
                end
                else begin
                  packing.(q) <- old;
                  Hashtbl.replace loads r (load_of r + 1);
                  false
                end)
              (packed_at r)
          end
        end)
      covers.(p)
  in
  let ok = ref true in
  for p = 0 to n - 1 do
    if !ok && packing.(p) < 0 then
      if not (assign p (ref [])) then ok := false
  done;
  if !ok then Some packing else None

(* Lemma 7.1: maximal Eulerian trail from [from_loc] in the multigraph with
   an edge g(p) → h(p) per process p. *)
let transfer covers ~k ~g ~h ~from_loc =
  if not (is_packing covers ~k g && is_packing covers ~k h) then
    invalid_arg "Packing.transfer: not k-packings";
  if load g ~loc:from_loc <= load h ~loc:from_loc then None
  else begin
    let n = Array.length g in
    let used = Array.make n false in
    (* Unused out-edges of node r: processes p with g p = r. *)
    let out_edges r =
      let out = ref [] in
      for p = 0 to n - 1 do
        if (not used.(p)) && g.(p) = r then out := p :: !out
      done;
      !out
    in
    let rec walk node locs procs =
      match out_edges node with
      | [] -> (List.rev locs, List.rev procs)
      | p :: _ ->
        used.(p) <- true;
        walk h.(p) (h.(p) :: locs) (p :: procs)
    in
    let locs, procs = walk from_loc [ from_loc ] [] in
    let g' = Array.copy g in
    List.iter (fun p -> g'.(p) <- h.(p)) procs;
    assert (is_packing covers ~k g');
    Some (g', locs, procs)
  end

(* A location with full load is reducible iff an alternating chain reaches a
   location with spare capacity. *)
let can_reduce covers ~k packing r0 =
  let visited = Hashtbl.create 16 in
  Hashtbl.replace visited r0 ();
  let queue = Queue.create () in
  Array.iteri (fun p r -> if r = r0 then Queue.add p queue) packing;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    List.iter
      (fun r' ->
        if (not !found) && not (Hashtbl.mem visited r') then begin
          Hashtbl.replace visited r' ();
          if load packing ~loc:r' < k then found := true
          else Array.iteri (fun q r -> if r = r' then Queue.add q queue) packing
        end)
      covers.(p)
  done;
  !found

let fully_packed covers ~k packing =
  if not (is_packing covers ~k packing) then invalid_arg "Packing.fully_packed";
  let locs =
    List.sort_uniq compare (Array.to_list packing)
  in
  List.filter
    (fun r -> load packing ~loc:r = k && not (can_reduce covers ~k packing r))
    locs
