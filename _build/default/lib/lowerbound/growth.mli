(** The Lemma 9.1 adversary: with only [{read(), test-and-set()}] (or
    [{read(), write(1)}]), any obstruction-free binary consensus for n ≥ 3
    processes can be driven to touch ever more memory locations.

    Each round follows the proof: reach a configuration from which two
    processes decide differently solo (bivalence, found by bounded search);
    run a third process z solo until it is about to set a bit {e outside}
    the set of already-set locations — it must, or its decision together
    with the opposite solo decision would violate agreement — and let that
    step through; if the pair lost bivalence, splice in the prefix ψ of the
    1-decider's solo run after which the pair is bivalent again (the
    proof's longest-prefix argument).  The number of set locations grows
    every round, witnessing SP = ∞. *)

type progress = {
  round : int;
  ones : int;       (** locations set to 1 after this round *)
  touched : int;    (** locations ever accessed *)
}

val run :
  ?rounds:int ->
  ?search_depth:int ->
  ?solo_fuel:int ->
  (module Consensus.Proto.S
     with type I.op = Isets.Bits.op
      and type I.cell = bool
      and type I.result = Model.Value.t) ->
  inputs:int array ->
  (progress list, string) result
(** [inputs] must contain both 0 and 1 and have length ≥ 3.  Returns
    per-round growth; [Error] reports either an exhausted search bound or a
    protocol anomaly (e.g. an actual agreement violation found). *)
