(** The Theorem 4.1 adversary: one max-register cannot solve binary
    consensus.

    The proof interleaves the solo executions of a 0-proposer and a
    1-proposer so that every [read-max] returns exactly what it returned
    solo: whenever both are poised to [write-max], the smaller pending write
    goes first (a smaller write can never be observed by the other process's
    later reads).  Both processes therefore decide their solo decisions —
    0 and 1 — violating agreement.

    [run] executes that strategy against {e any} supplied 2-process
    protocol on a single max-register and reports the violation it
    produces.  It is the computational content of the impossibility
    proof. *)

type verdict =
  | Agreement_violated of {
      p_decision : int;
      q_decision : int;
      steps : int;  (** write-max steps performed *)
      transcript : string list;
          (** the violating execution, one human-readable line per event *)
    }  (** the interleaving made both solo decisions happen in one run *)
  | Protocol_error of string
      (** the protocol stepped outside the theorem's hypotheses (used a
          second location, multiple assignment, or failed to terminate
          solo) *)

val run :
  ?fuel:int ->
  (module Consensus.Proto.S
     with type I.op = Isets.Maxreg.op
      and type I.result = Model.Value.t) ->
  n:int ->
  verdict
(** Processes 0 and 1 propose 0 and 1 respectively ([n] is passed to the
    protocol, which may allocate for [n] processes but must stay within
    location 0). *)
