type report = {
  setup_steps : int;
  bivalent_pair : int * int;
  coverers : int list;
  covered : int list;
  xi_steps : int;
  fresh_location : int;
  still_bivalent_after_block_write : bool;
}

exception Stop of string

let stopf fmt = Format.kasprintf (fun s -> raise (Stop s)) fmt

let witness ?(search_depth = 6) ?(solo_fuel = 200_000) (module P : Consensus.Proto.S)
    ~inputs =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  if n < 3 then invalid_arg "Covering_witness.witness: need at least 3 processes";
  let solo_dec cfg pid = snd (M.run_solo ~fuel:solo_fuel ~pid cfg) in
  (* Locations a process covers: poised non-trivial accesses. *)
  let covered_by cfg pid =
    match M.poised cfg pid with
    | None -> []
    | Some accesses ->
      List.sort_uniq compare
        (List.filter_map
           (fun (loc, op) -> if P.I.trivial op then None else Some loc)
           accesses)
  in
  (* Bivalence witness search, as in Growth but instruction-set generic. *)
  let pair_witness cfg =
    let decs =
      List.filter_map
        (fun pid -> Option.map (fun v -> (pid, v)) (solo_dec cfg pid))
        (M.running cfg)
    in
    match decs with
    | (p, v) :: rest ->
      Option.map (fun (q, _) -> (p, q)) (List.find_opt (fun (_, w) -> w <> v) rest)
    | [] -> None
  in
  let find_bivalent cfg =
    let rec bfs frontier depth =
      match
        List.find_map (fun c -> Option.map (fun pq -> (c, pq)) (pair_witness c)) frontier
      with
      | Some w -> Some w
      | None ->
        if depth >= search_depth then None
        else begin
          let next =
            List.concat_map (fun c -> List.map (M.step c) (M.running c)) frontier
          in
          if next = [] then None else bfs next (depth + 1)
        end
    in
    bfs [ cfg ] 0
  in
  (* Can the whole set of processes still decide both values?  Bounded
     search over all schedules collecting solo decisions. *)
  let values_from cfg =
    let seen = Hashtbl.create 4 in
    let rec go cfg depth =
      List.iter
        (fun pid ->
          match solo_dec cfg pid with Some v -> Hashtbl.replace seen v () | None -> ())
        (M.running cfg);
      if depth < search_depth && Hashtbl.length seen < 2 then
        List.iter (fun pid -> go (M.step cfg pid) (depth + 1)) (M.running cfg)
    in
    go cfg 0;
    Hashtbl.length seen
  in
  try
    let cfg0 = M.make ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
    match find_bivalent cfg0 with
    | None -> stopf "no bivalent configuration within depth %d" search_depth
    | Some (c, (p, q)) ->
      (* Drive the remaining processes until each is poised non-trivially
         (they may start mid-read); their steps are part of the setup. *)
      let rec settle cfg fuel =
        if fuel <= 0 then stopf "coverers did not reach non-trivial steps";
        let rs = List.filter (fun r -> r <> p && r <> q) (M.running cfg) in
        match List.find_opt (fun r -> covered_by cfg r = []) rs with
        | None -> (cfg, rs)
        | Some r -> settle (M.step cfg r) (fuel - 1)
      in
      let c, coverers = settle c solo_fuel in
      if coverers = [] then stopf "no remaining processes to cover locations";
      (* Re-establish bivalence of the pair after the settling steps. *)
      let c, p, q =
        match pair_witness c with
        | Some (p, q) -> (c, p, q)
        | None -> (
          match find_bivalent c with
          | Some (c', (p, q)) -> (c', p, q)
          | None -> stopf "bivalence lost while settling coverers")
      in
      let coverers = List.filter (fun r -> r <> p && r <> q) coverers in
      let l = List.sort_uniq compare (List.concat_map (covered_by c) coverers) in
      if l = [] then stopf "coverers cover nothing";
      let block_write cfg =
        List.fold_left
          (fun cfg r -> if List.mem r (M.running cfg) then M.step cfg r else cfg)
          cfg coverers
      in
      (* Search for the Q-only execution ξ of Lemma 6.5: afterwards some
         process of Q covers a location outside L, and the block write
         does not kill bivalence. *)
      let fresh cfg =
        List.concat_map (covered_by cfg) [ p; q ]
        |> List.find_opt (fun loc -> not (List.mem loc l))
      in
      let rec bfs frontier depth =
        let ok =
          List.find_map
            (fun (cfg, steps) ->
              match fresh cfg with
              | Some loc ->
                let after = block_write cfg in
                if values_from after >= 2 then Some (cfg, steps, loc, after) else None
              | None -> None)
            frontier
        in
        match ok with
        | Some w -> Some w
        | None ->
          if depth >= search_depth then None
          else begin
            let next =
              List.concat_map
                (fun (cfg, steps) ->
                  List.filter_map
                    (fun pid ->
                      if pid = p || pid = q then Some (M.step cfg pid, steps + 1)
                      else None)
                    (M.running cfg))
                frontier
            in
            if next = [] then None else bfs next (depth + 1)
          end
      in
      (match bfs [ (c, 0) ] 0 with
       | None -> stopf "no Q-only execution reaching a fresh location within depth"
       | Some (_, xi_steps, fresh_location, after) ->
         Ok
           {
             setup_steps = M.steps c;
             bivalent_pair = (p, q);
             coverers;
             covered = l;
             xi_steps;
             fresh_location;
             still_bivalent_after_block_write = values_from after >= 2;
           })
  with Stop msg -> Error msg
