open Model

type verdict =
  | Agreement_violated of {
      p_decision : int;
      q_decision : int;
      steps : int;
      transcript : string list;
    }
  | Protocol_error of string

(* A process, advanced past all its reads, is either finished or pending a
   write-max. *)
type pos =
  | Finished of int
  | Pending_write of Bignum.t * (Value.t list -> (Isets.Maxreg.op, Value.t, int) Proc.t)

exception Bad of string

let badf fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

(* Feed read-max results from [value] until the process finishes or is
   poised to write-max; consumes fuel per step. *)
let rec advance ~fuel ~log ~who value proc =
  if !fuel <= 0 then badf "process did not terminate (fuel exhausted)";
  decr fuel;
  match proc with
  | Proc.Done v ->
    log (Printf.sprintf "%s decides %d" who v);
    Finished v
  | Proc.Step ([ (0, Isets.Maxreg.Read_max) ], k) ->
    log (Printf.sprintf "%s: read-max() -> %s" who (Bignum.to_string value));
    advance ~fuel ~log ~who value (k [ Value.Big value ])
  | Proc.Step ([ (0, Isets.Maxreg.Write_max x) ], k) -> Pending_write (x, k)
  | Proc.Step ([ (loc, _) ], _) ->
    badf "protocol accessed location %d: Theorem 4.1 assumes a single max-register" loc
  | Proc.Step (_, _) -> badf "protocol used multiple assignment"

let run ?(fuel = 1_000_000) (module P : Consensus.Proto.S
        with type I.op = Isets.Maxreg.op
         and type I.result = Model.Value.t) ~n =
  let fuel = ref fuel in
  let steps = ref 0 in
  let transcript = ref [] in
  let log line = transcript := line :: !transcript in
  try
    let value = ref Bignum.zero in
    let commit who x =
      incr steps;
      log
        (Printf.sprintf "%s: write-max(%s)  [location: %s -> %s]" who
           (Bignum.to_string x) (Bignum.to_string !value)
           (Bignum.to_string (Bignum.max !value x)));
      value := Bignum.max !value x
    in
    let finish ~who pos =
      (* Let one process run to the end alone (the other is done). *)
      let rec go = function
        | Finished v -> v
        | Pending_write (x, k) ->
          commit who x;
          go (advance ~fuel ~log ~who !value (k [ Value.Unit ]))
      in
      go pos
    in
    let rec race p q =
      match p, q with
      | Finished pv, _ -> (pv, finish ~who:"q" q)
      | _, Finished qv -> (finish ~who:"p" p, qv)
      | Pending_write (a, kp), Pending_write (b, _) when Bignum.compare a b <= 0 ->
        (* the smaller pending write goes first: it can never be observed
           by the other process's later reads *)
        commit "p" a;
        race (advance ~fuel ~log ~who:"p" !value (kp [ Value.Unit ])) q
      | Pending_write _, Pending_write (b, kq) ->
        commit "q" b;
        race p (advance ~fuel ~log ~who:"q" !value (kq [ Value.Unit ]))
    in
    let p0 = advance ~fuel ~log ~who:"p" !value (P.proc ~n ~pid:0 ~input:0) in
    let q0 = advance ~fuel ~log ~who:"q" !value (P.proc ~n ~pid:1 ~input:1) in
    let p_decision, q_decision = race p0 q0 in
    Agreement_violated
      { p_decision; q_decision; steps = !steps; transcript = List.rev !transcript }
  with Bad msg -> Protocol_error msg
