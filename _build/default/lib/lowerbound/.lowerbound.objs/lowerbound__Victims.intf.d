lib/lowerbound/victims.mli: Consensus Isets Model
