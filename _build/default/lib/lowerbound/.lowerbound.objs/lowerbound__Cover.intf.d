lib/lowerbound/cover.mli:
