lib/lowerbound/interleave.mli: Consensus Isets Model
