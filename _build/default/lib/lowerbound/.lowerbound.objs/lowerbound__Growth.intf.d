lib/lowerbound/growth.mli: Consensus Isets Model
