lib/lowerbound/packing.ml: Array Hashtbl List Option Queue
