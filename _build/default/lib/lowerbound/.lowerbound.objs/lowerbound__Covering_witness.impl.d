lib/lowerbound/covering_witness.ml: Array Consensus Format Hashtbl List Model Option
