lib/lowerbound/covering_witness.mli: Consensus
