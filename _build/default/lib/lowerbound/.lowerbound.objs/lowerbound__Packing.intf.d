lib/lowerbound/packing.mli:
