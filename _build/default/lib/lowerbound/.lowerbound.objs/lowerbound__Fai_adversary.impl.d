lib/lowerbound/fai_adversary.ml: Bignum Consensus Format Isets List Model Printf Proc Value
