lib/lowerbound/interleave.ml: Bignum Consensus Format Isets List Model Printf Proc Value
