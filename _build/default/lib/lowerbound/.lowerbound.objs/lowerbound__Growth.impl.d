lib/lowerbound/growth.ml: Array Consensus Format Hashtbl Isets List Model Option
