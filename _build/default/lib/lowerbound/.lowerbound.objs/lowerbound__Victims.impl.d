lib/lowerbound/victims.ml: Bignum Consensus Either Isets Model Primes Proc Value
