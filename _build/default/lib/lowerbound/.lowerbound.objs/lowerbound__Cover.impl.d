lib/lowerbound/cover.ml: Hashtbl List Option
