lib/lowerbound/fai_adversary.mli: Consensus Isets Model
