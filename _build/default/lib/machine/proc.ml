type ('op, 'res, 'a) t =
  | Done of 'a
  | Step of (int * 'op) list * ('res list -> ('op, 'res, 'a) t)

let return x = Done x

let rec bind m f =
  match m with
  | Done x -> f x
  | Step (accesses, k) -> Step (accesses, fun rs -> bind (k rs) f)

let map f m = bind m (fun x -> Done (f x))

let access loc op =
  Step
    ( [ (loc, op) ],
      function
      | [ r ] -> Done r
      | rs -> invalid_arg (Printf.sprintf "Proc.access: %d results" (List.length rs)) )

let multi_access accesses =
  if accesses = [] then invalid_arg "Proc.multi_access: empty";
  Step (accesses, fun rs -> Done rs)

let loop_forever () = Step ([], fun _ -> invalid_arg "Proc.loop_forever stepped")

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

let rec rec_loop st body =
  bind (body st) (function
    | Either.Left st' -> rec_loop st' body
    | Either.Right out -> Done out)
