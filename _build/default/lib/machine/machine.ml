module Imap = Map.Make (Int)
module Iset_int = Set.Make (Int)

module Make (I : Iset.S) = struct
  type 'a proc = (I.op, I.result, 'a) Proc.t

  type event = {
    pid : int;
    accesses : (int * I.op * I.result) list;
  }

  type 'a config = {
    mem : I.cell Imap.t;
    procs : 'a proc array;
    steps : int;
    steps_per_process : int array;
    touched : Iset_int.t;
    trace : event list;  (* most recent first *)
  }

  exception Multi_assignment_not_supported

  let make ~n f =
    if n < 1 then invalid_arg "Machine.make: n < 1";
    {
      mem = Imap.empty;
      procs = Array.init n f;
      steps = 0;
      steps_per_process = Array.make n 0;
      touched = Iset_int.empty;
      trace = [];
    }

  let n_processes cfg = Array.length cfg.procs

  let cell cfg loc =
    match Imap.find_opt loc cfg.mem with Some c -> c | None -> I.init

  let decision cfg pid =
    match cfg.procs.(pid) with Proc.Done v -> Some v | Proc.Step _ -> None

  let decisions cfg =
    let out = ref [] in
    Array.iteri
      (fun pid p -> match p with Proc.Done v -> out := (pid, v) :: !out | Proc.Step _ -> ())
      cfg.procs;
    List.rev !out

  let running cfg =
    let out = ref [] in
    for pid = Array.length cfg.procs - 1 downto 0 do
      match cfg.procs.(pid) with
      | Proc.Step (_ :: _, _) -> out := pid :: !out
      | Proc.Step ([], _) | Proc.Done _ -> ()
    done;
    !out

  let poised cfg pid =
    match cfg.procs.(pid) with
    | Proc.Step (accesses, _) -> Some accesses
    | Proc.Done _ -> None

  let steps cfg = cfg.steps
  let steps_of cfg pid = cfg.steps_per_process.(pid)
  let locations_used cfg = Iset_int.cardinal cfg.touched
  let max_location cfg = Iset_int.max_elt_opt cfg.touched

  let fold_cells cfg ~init ~f =
    Imap.fold (fun loc c acc -> f acc loc c) cfg.mem init

  let trace cfg = List.rev cfg.trace

  let pp_event ppf { pid; accesses } =
    match accesses with
    | [ (loc, op, r) ] ->
      Format.fprintf ppf "p%d: %a @@ %d -> %a" pid I.pp_op op loc I.pp_result r
    | accesses ->
      Format.fprintf ppf "p%d: atomically {@[%a@]}" pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf (loc, op, r) ->
             Format.fprintf ppf "%a @@ %d -> %a" I.pp_op op loc I.pp_result r))
        accesses

  let pp_trace ppf cfg =
    List.iteri
      (fun i e -> Format.fprintf ppf "%4d  %a@." i pp_event e)
      (trace cfg)

  let step cfg pid =
    match cfg.procs.(pid) with
    | Proc.Done _ -> invalid_arg "Machine.step: process has decided"
    | Proc.Step ([], _) -> invalid_arg "Machine.step: blocked process"
    | Proc.Step (accesses, k) ->
      if List.length accesses > 1 && not I.multi_assignment then
        raise Multi_assignment_not_supported;
      let apply_one (mem, rs, touched) (loc, op) =
        if loc < 0 then invalid_arg "Machine.step: negative location";
        let c = match Imap.find_opt loc mem with Some c -> c | None -> I.init in
        let c', r = I.apply op c in
        (Imap.add loc c' mem, r :: rs, Iset_int.add loc touched)
      in
      let mem, rev_results, touched =
        List.fold_left apply_one (cfg.mem, [], cfg.touched) accesses
      in
      let results = List.rev rev_results in
      let procs = Array.copy cfg.procs in
      procs.(pid) <- k results;
      let steps_per_process = Array.copy cfg.steps_per_process in
      steps_per_process.(pid) <- steps_per_process.(pid) + 1;
      let event =
        { pid; accesses = List.map2 (fun (loc, op) r -> (loc, op, r)) accesses results }
      in
      {
        mem;
        procs;
        steps = cfg.steps + 1;
        steps_per_process;
        touched;
        trace = event :: cfg.trace;
      }

  let run ?(fuel = 1_000_000) ~sched cfg =
    let rec go cfg sched remaining =
      match running cfg with
      | [] -> (cfg, `All_decided)
      | pids ->
        if remaining <= 0 then (cfg, `Out_of_fuel)
        else begin
          match Sched.next sched ~running:pids ~step:cfg.steps with
          | None -> (cfg, `Sched_stopped)
          | Some (pid, sched') -> go (step cfg pid) sched' (remaining - 1)
        end
    in
    go cfg sched fuel

  let run_solo ?(fuel = 1_000_000) ~pid cfg =
    let cfg', _ = run ~fuel ~sched:(Sched.solo pid) cfg in
    (cfg', decision cfg' pid)
end
