(** Processes as resumable step machines.

    A process is a free monad over "atomically apply these instructions to
    these memory locations".  Between two shared-memory accesses a process
    may perform arbitrary local computation (Section 2 of the paper); here
    that computation lives inside the continuation.

    The representation is pure and continuations are ordinary closures, so a
    configuration can be duplicated and explored along different schedules —
    exactly what the covering/bivalency adversaries of Sections 4–7 and the
    bounded model checker need.  (Effect handlers would give one-shot
    continuations and preclude branching.) *)

type ('op, 'res, 'a) t =
  | Done of 'a  (** the process has decided / returned *)
  | Step of (int * 'op) list * ('res list -> ('op, 'res, 'a) t)
      (** poised to atomically apply the listed instructions (Section 7's
          multiple assignment is a multi-element list; every ordinary
          instruction is a singleton) *)

val return : 'a -> ('op, 'res, 'a) t

val bind : ('op, 'res, 'a) t -> ('a -> ('op, 'res, 'b) t) -> ('op, 'res, 'b) t

val map : ('a -> 'b) -> ('op, 'res, 'a) t -> ('op, 'res, 'b) t

val access : int -> 'op -> ('op, 'res, 'res) t
(** [access loc op] performs one instruction on one location. *)

val multi_access : (int * 'op) list -> ('op, 'res, 'res list) t
(** Atomic multiple assignment (Section 7): one step applying one
    instruction to each listed location.  The machine rejects multi-element
    lists unless the instruction set allows them. *)

val loop_forever : unit -> ('op, 'res, 'a) t
(** A process that never decides and never accesses memory — useful to model
    a crashed or halted participant.  Stepping it is an error. *)

module Syntax : sig
  val ( let* ) : ('op, 'res, 'a) t -> ('a -> ('op, 'res, 'b) t) -> ('op, 'res, 'b) t
  val ( let+ ) : ('op, 'res, 'a) t -> ('a -> 'b) -> ('op, 'res, 'b) t
end

val rec_loop : 'st -> ('st -> ('op, 'res, ('st, 'a) Either.t) t) -> ('op, 'res, 'a) t
(** [rec_loop init body] iterates [body] from state [init] until it returns
    [Right result]. *)
