lib/machine/sched.mli:
