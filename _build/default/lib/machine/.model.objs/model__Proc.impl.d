lib/machine/proc.ml: Either List Printf
