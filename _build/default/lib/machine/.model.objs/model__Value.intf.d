lib/machine/value.mli: Bignum Format
