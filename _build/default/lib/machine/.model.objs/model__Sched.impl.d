lib/machine/sched.ml: Lazy List Option Random
