lib/machine/machine.mli: Format Iset Proc Sched
