lib/machine/value.ml: Array Bignum Format Stdlib
