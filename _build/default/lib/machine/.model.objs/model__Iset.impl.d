lib/machine/iset.ml: Format
