lib/machine/proc.mli: Either
