lib/machine/machine.ml: Array Format Int Iset List Map Proc Sched Set
