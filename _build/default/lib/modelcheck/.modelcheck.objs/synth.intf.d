lib/modelcheck/synth.mli: Format
