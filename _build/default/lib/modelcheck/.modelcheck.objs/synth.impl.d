lib/modelcheck/synth.ml: Array Bool Format Int List
