lib/modelcheck/modelcheck.mli: Consensus
