lib/modelcheck/modelcheck.ml: Array Consensus Format Hashtbl List Model Printf
