type stats = {
  configs : int;
  probes : int;
  truncated : bool;
}

type outcome = (stats, string) result

exception Violation of string

let violationf fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

let check_decisions ~inputs decisions =
  match decisions with
  | [] -> ()
  | (_, first) :: _ ->
    List.iter
      (fun (pid, v) ->
        if v <> first then
          violationf "agreement: process %d decided %d but %d was also decided" pid v first)
      decisions;
    if not (Array.exists (fun i -> i = first) inputs) then
      violationf "validity: %d decided but never proposed" first

let explore ?(probe = `Leaves) ?(solo_fuel = 100_000) (module P : Consensus.Proto.S)
    ~inputs ~depth =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let configs = ref 0 and probes = ref 0 and truncated = ref false in
  (* Run [pid] solo (it must decide — obstruction-freedom), then everyone
     else sequentially, and check the complete decision set. *)
  let probe_config cfg pid =
    incr probes;
    let cfg, dec = M.run_solo ~fuel:solo_fuel ~pid cfg in
    (match dec with
     | None ->
       violationf "obstruction-freedom: process %d did not decide solo within %d steps"
         pid solo_fuel
     | Some _ -> ());
    let rec finish cfg =
      match M.running cfg with
      | [] -> cfg
      | q :: _ -> finish (fst (M.run_solo ~fuel:solo_fuel ~pid:q cfg))
    in
    let cfg = finish cfg in
    (match M.running cfg with
     | [] -> ()
     | q :: _ -> violationf "termination: process %d still undecided after solo runs" q);
    check_decisions ~inputs (M.decisions cfg)
  in
  let rec go cfg d =
    incr configs;
    check_decisions ~inputs (M.decisions cfg);
    match M.running cfg with
    | [] -> ()
    | running ->
      let at_bound = d <= 0 in
      if at_bound then truncated := true;
      let should_probe =
        match probe with
        | `Never -> false
        | `Leaves -> at_bound
        | `Everywhere -> true
      in
      if should_probe then List.iter (probe_config cfg) running;
      if not at_bound then List.iter (fun pid -> go (M.step cfg pid) (d - 1)) running
  in
  let cfg = M.make ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
  match go cfg depth with
  | () -> Ok { configs = !configs; probes = !probes; truncated = !truncated }
  | exception Violation msg -> Error msg

let decidable_values ?(solo_fuel = 100_000) (module P : Consensus.Proto.S) ~inputs ~depth =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let seen = Hashtbl.create 7 in
  let rec go cfg d =
    List.iter (fun (_, v) -> Hashtbl.replace seen v ()) (M.decisions cfg);
    match M.running cfg with
    | [] -> ()
    | running ->
      List.iter
        (fun pid ->
          match M.run_solo ~fuel:solo_fuel ~pid cfg with
          | _, Some v -> Hashtbl.replace seen v ()
          | _, None ->
            raise
              (Violation
                 (Printf.sprintf "process %d did not decide solo within %d steps" pid
                    solo_fuel)))
        running;
      if d > 0 then List.iter (fun pid -> go (M.step cfg pid) (d - 1)) running
  in
  let cfg = M.make ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
  match go cfg depth with
  | () -> Ok (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen []))
  | exception Violation msg -> Error msg
