(** Bounded protocol synthesis and impossibility-by-search.

    For tiny machines — one memory location with a finite state space — the
    space of 2-process binary consensus protocols of bounded depth is
    finite: a protocol is four decision trees (one per process id and
    input), each node either deciding or invoking an instruction and
    branching on its result.  [search] enumerates them all, pruning
    branches no peer behaviour can reach, filters by solo validity, and
    checks every interleaving of every input pair.  The outcome is either a
    concrete wait-free protocol or a proof that none exists within the
    depth bound.

    Sanity anchors from the paper: compare-and-swap and swap both find
    one-instruction protocols (their single-location Table 1 rows), while
    the single-bit {read, test-and-set} machine is impossible even at
    depth 3 — quantifying the caveat on Section 9's two-process remark
    (with one binary location there is nowhere to write the winning
    value). *)

type 'cell machine = {
  name : string;
  init : 'cell;
  ops : (string * ('cell -> 'cell * int)) array;
      (** instruction name and semantics: new cell and branch index *)
  max_branch : int;  (** branch indices lie in [0, max_branch) *)
  equal : 'cell -> 'cell -> bool;
}

type tree =
  | Decide of int
  | Invoke of int * tree array  (** op index, one subtree per branch *)
  | Stuck  (** a branch no reachable cell state can select *)

type protocol = {
  t00 : tree;  (** process 0 with input 0 *)
  t01 : tree;  (** process 0 with input 1 *)
  t10 : tree;
  t11 : tree;
}

type result = Found of protocol | Impossible_within_depth

val search : 'cell machine -> depth:int -> result
(** Exhaustive over trees of at most [depth] instructions per process. *)

val check : 'cell machine -> protocol -> bool
(** Is the protocol a correct wait-free 2-process binary consensus: solo
    validity plus agreement and validity over all interleavings of all
    input pairs? *)

val candidates : 'cell machine -> depth:int -> input:int -> tree list
(** The solo-valid trees for one input (exposed for tests). *)

val pp_tree : ops:(string * _) array -> Format.formatter -> tree -> unit

(** {1 Three processes: consensus numbers by search}

    Herlihy's hierarchy (which Section 1 sets out to refine) assigns swap
    and test-and-set consensus number 2 and compare-and-swap ∞.  The
    3-process search connects the two hierarchies experimentally: on the
    one-location cas machine a 3-process protocol exists (and is found);
    on the swap machine none exists within the depth bound, matching
    consensus number 2.  Any pair of processes running alone is a valid
    3-process execution, so 2-process impossibility short-circuits. *)

type result3 =
  | Found3 of tree array array  (** [trees.(pid).(input)], 3×2 *)
  | Impossible3_within_depth

val search3 : ?mode:[ `Full | `Symmetric ] -> 'cell machine -> depth:int -> result3
(** [`Full] (default) searches all role assignments; [`Symmetric] restricts
    to protocols where all processes run the same code (much faster; a
    [Found3] is still a real protocol, an impossibility is only over
    symmetric protocols). *)

val check3 : 'cell machine -> tree array array -> bool
(** Wait-free 3-process binary consensus: solo validity plus agreement and
    validity over all interleavings of every subset of processes and every
    input vector. *)

(** {1 Ready-made machines} *)

val tas_bit : bool machine
(** One binary location with [{read(), test-and-set()}]. *)

val rw01_bit : bool machine
(** One binary location with [{read(), write(0), write(1)}]. *)

val cas_cell : int machine
(** One location over {⊥, 0, 1} with compare-and-swap (⊥→0, ⊥→1, and the
    trivial read). *)

val swap_cell : int machine
(** One location over {⊥, 0, 1} with [{read(), swap(0), swap(1)}]. *)
