let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let next_above n =
  let rec go c = if is_prime c then c else go (c + 1) in
  go (Stdlib.max 2 (n + 1))

let first n =
  if n < 0 then invalid_arg "Primes.first";
  let out = Array.make n 0 in
  let p = ref 1 in
  for i = 0 to n - 1 do
    p := next_above !p;
    out.(i) <- !p
  done;
  out

let nth v =
  if v < 0 then invalid_arg "Primes.nth";
  let a = first (v + 1) in
  a.(v)
