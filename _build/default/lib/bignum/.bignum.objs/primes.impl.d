lib/bignum/primes.ml: Array Stdlib
