lib/bignum/primes.mli:
