(** Small-prime helpers for the paper's arithmetic encodings.

    Theorem 3.3 associates the [(v+1)]-st prime with consensus value [v];
    Theorem 4.2 needs a fixed prime strictly larger than [n]. *)

val nth : int -> int
(** [nth v] is the [(v+1)]-st prime: [nth 0 = 2], [nth 1 = 3], ... *)

val first : int -> int array
(** The first [n] primes. *)

val next_above : int -> int
(** Smallest prime strictly greater than the argument. *)

val is_prime : int -> bool
(** Trial-division primality for small non-negative ints. *)
