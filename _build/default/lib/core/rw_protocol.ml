let protocol : Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "read-write-registers"
    let locations ~n = Some n

    let proc ~n ~pid ~input =
      Racing.consensus (Objects.Rw_counter.make ~components:n ~n ~base:0 ~pid) ~n ~input
  end)
