(** A consensus protocol packaged with its instruction set.

    [proc ~n ~pid ~input] is the code process [pid] runs to propose [input]
    among [n] processes; the returned value is its decision.  Protocols are
    obstruction-free: a solo run from any reachable configuration decides.

    [locations ~n] is the number of memory locations the protocol needs —
    the upper bound it contributes to Table 1 — or [None] when unbounded
    (the ∞ rows of Section 9). *)

module type S = sig
  module I : Model.Iset.S

  val name : string

  val locations : n:int -> int option

  val proc : n:int -> pid:int -> input:int -> (I.op, I.result, int) Model.Proc.t
end

type t = (module S)

let name (module P : S) = P.name
let locations (module P : S) ~n = P.locations ~n
