open Model
open Proc.Syntax

let binary_at ~flavour ~n ~base ~input =
  Racing.consensus (Objects.Incr_counter.make ~components:2 ~base ~flavour) ~n ~input

let ops ~flavour ~n : (Isets.Incr.op, Value.t) Bit_by_bit.ops =
  {
    designated_cells = 1;
    (* Cells start at 0; a recorded value v is stored as v+1. *)
    write_value =
      (fun ~loc ~value ->
        Proc.map ignore (Proc.access loc (Isets.Incr.Write (Bignum.of_int (value + 1)))));
    read_value =
      (fun ~loc ->
        let+ v = Proc.access loc Isets.Incr.Read in
        match Bignum.to_int_exn (Value.to_big_exn v) with
        | 0 -> None
        | recorded -> Some (recorded - 1));
    binary_locations = 2;
    binary = (fun ~base ~input -> binary_at ~flavour ~n ~base ~input);
  }

let protocol ~flavour : Proto.t =
  (module struct
    module I = Isets.Incr.Make (struct
      let flavour = flavour
    end)

    let name =
      match flavour with
      | Isets.Incr.Increment_only -> "increment-logn"
      | Isets.Incr.Fetch_increment -> "fetch-and-increment-logn"

    let locations ~n = Some (Bit_by_bit.locations ~n (ops ~flavour ~n))

    let proc ~n ~pid:_ ~input = Bit_by_bit.consensus (ops ~flavour ~n) ~n ~input
  end)

let binary ~flavour : Proto.t =
  (module struct
    module I = Isets.Incr.Make (struct
      let flavour = flavour
    end)

    let name =
      match flavour with
      | Isets.Incr.Increment_only -> "increment-binary"
      | Isets.Incr.Fetch_increment -> "fetch-and-increment-binary"

    let locations ~n:_ = Some 2

    let proc ~n ~pid:_ ~input =
      if input <> 0 && input <> 1 then invalid_arg "binary consensus: input not a bit";
      binary_at ~flavour ~n ~base:0 ~input
  end)
