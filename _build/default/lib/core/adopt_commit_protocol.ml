open Model
open Proc.Syntax

let protocol : Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "adopt-commit-ladder"
    let locations ~n:_ = None

    let proc ~n ~pid:_ ~input =
      let per_round = Objects.Adopt_commit.locations ~m:n in
      Proc.rec_loop (0, input) (fun (round, value) ->
          let* grade, value =
            Objects.Adopt_commit.propose ~m:n ~base:(round * per_round) ~value
          in
          match grade with
          | Objects.Adopt_commit.Commit -> Proc.return (Either.Right value)
          | Objects.Adopt_commit.Adopt -> Proc.return (Either.Left (round + 1, value)))
  end)
