(** Running and checking protocols (the test/bench harness core). *)

type report = {
  decisions : (int * int) list;  (** (pid, decided value), decided ones only *)
  locations_used : int;          (** distinct locations accessed: measured SP *)
  max_location : int option;
  steps : int;
  steps_per_process : int array; (** per-process step complexity *)
  outcome : [ `All_decided | `Sched_stopped | `Out_of_fuel ];
}

val run :
  ?fuel:int -> Proto.t -> inputs:int array -> sched:Model.Sched.t -> report
(** Run one execution: process [pid] proposes [inputs.(pid)]. *)

val run_solo_each : ?fuel:int -> Proto.t -> inputs:int array -> report list
(** One report per process, each running alone from the initial
    configuration (sanity of obstruction-freedom's base case). *)

val check : report -> inputs:int array -> (unit, string) result
(** Agreement (all decisions equal) and validity (the decision is some
    process's input) over the decided processes. *)

val check_exn : report -> inputs:int array -> unit
(** @raise Failure with a diagnostic when {!check} fails. *)
