(** Anonymous n-consensus from n−1 read/swap locations (Section 8,
    Algorithm 1 / Theorem 8.8).

    Values race to complete laps.  Every location stores a full lap vector
    (tagged with writer id and sequence number so the double-collect scan is
    sound); a process repeatedly merges every lap count it has seen —
    including those returned by its own swaps, which is where swap beats
    write — and either decides (leader two laps ahead, all locations
    agreeing), bumps the leader's lap, or propagates its vector to the first
    disagreeing location.

    Lemma 8.7: a solo run decides within 3n−2 scans; tests assert the
    corresponding step bound. *)

val protocol : Proto.t
