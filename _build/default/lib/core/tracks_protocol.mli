(** n-consensus from unboundedly many [{read(), write(1)}] or
    [{read(), test-and-set()}] locations (Theorem 9.3, after [GR05]).

    One unbounded 1-prefix track per value plus racing counters.  Theorem
    9.2 shows no bounded number of such locations suffices for n ≥ 3 — the
    measured location count of this protocol grows with contention, which
    {!Lowerbound.Tas_growth} turns into an experiment. *)

val protocol : flavour:Isets.Bits.flavour -> Proto.t
(** [flavour] must be [Write1_only] or [Tas_only]. *)

val protocol_typed :
  flavour:Isets.Bits.flavour ->
  (module Proto.S
     with type I.op = Isets.Bits.op
      and type I.cell = bool
      and type I.result = Model.Value.t)
(** The same protocol with its instruction-set types exposed, as the
    Lemma 9.1 growth adversary requires. *)

val binary : flavour:Isets.Bits.flavour -> Proto.t
(** The [GR05] algorithm exactly as Section 9 describes it: two unbounded
    tracks, one per preference; a process writes 1 to the next location of
    its preferred track, switches preference when behind, and decides once
    its track leads by 2.  (The n-valued {!protocol} generalises this with
    the racing-counters lead of n.) *)
