let mul : Proto.t =
  (module struct
    module I = Isets.Arith.Mul

    let name = "arith-mul"
    let locations ~n:_ = Some 1

    let proc ~n ~pid:_ ~input =
      Racing.consensus (Objects.Arith_counters.mul ~components:n ~loc:0) ~n ~input
  end)

let add : Proto.t =
  (module struct
    module I = Isets.Arith.Add

    let name = "arith-add"
    let locations ~n:_ = Some 1

    let proc ~n ~pid:_ ~input =
      Racing.consensus (Objects.Arith_counters.add ~components:n ~n ~loc:0) ~n ~input
  end)

let set_bit : Proto.t =
  (module struct
    module I = Isets.Arith.Setbit

    let name = "arith-set-bit"
    let locations ~n:_ = Some 1

    let proc ~n ~pid ~input =
      Racing.consensus (Objects.Arith_counters.set_bit ~components:n ~n ~pid ~loc:0) ~n ~input
  end)

let faa : Proto.t =
  (module struct
    module I = Isets.Arith.Faa

    let name = "fetch-and-add"
    let locations ~n:_ = Some 1

    let proc ~n ~pid:_ ~input =
      Racing.consensus (Objects.Arith_counters.faa ~components:n ~n ~loc:0) ~n ~input
  end)

let fam : Proto.t =
  (module struct
    module I = Isets.Arith.Fam

    let name = "fetch-and-multiply"
    let locations ~n:_ = Some 1

    let proc ~n ~pid:_ ~input =
      Racing.consensus (Objects.Arith_counters.fam ~components:n ~loc:0) ~n ~input
  end)
