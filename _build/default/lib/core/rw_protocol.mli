(** n-consensus from n read/write registers (Table 1's register row:
    upper bound n [AH90, BRS15, Zhu15]; tight by [EGZ18]).

    One single-writer register per process holding its increment counts,
    plus the racing-counters core. *)

val protocol : Proto.t
