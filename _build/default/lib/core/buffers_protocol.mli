(** n-consensus from ⌈n/ℓ⌉ ℓ-buffers (Theorem 6.3).

    One ℓ-buffer simulates a history object with ℓ appenders (Lemma 6.1),
    hence ℓ single-writer registers (Lemma 6.2); ⌈n/ℓ⌉ buffers give n
    single-writer registers, an n-component counter, and racing counters
    finish the job.  Theorem 6.8's ⌈(n−1)/ℓ⌉ lower bound makes this tight
    except when ℓ divides n−1. *)

val protocol : capacity:int -> Proto.t
(** The instruction set is [{ℓ-buffer-read(), ℓ-buffer-write(x)}] with
    ℓ = [capacity] ≥ 1. *)

val multi_assignment_protocol : capacity:int -> Proto.t
(** The same algorithm run on a machine that additionally allows atomic
    multiple assignment (Section 7) — the upper-bound side of the
    ⌈(n−1)/2ℓ⌉ lower bound of Theorem 7.5. *)
