open Model
open Proc.Syntax

let check_binary input =
  if input <> 0 && input <> 1 then invalid_arg "intro protocols are binary-only"

let faa2_tas : Proto.t =
  (module struct
    module I = Isets.Arith.Faa2_tas

    let name = "faa2+tas"
    let locations ~n:_ = Some 1

    (* The location starts even (0) and only test-and-set can make it odd,
       and only from 0: whoever moves first fixes the parity forever. *)
    let proc ~n:_ ~pid:_ ~input =
      check_binary input;
      if input = 0 then
        let* old = Isets.Arith.Faa2_tas.fetch_add2 0 in
        let odd = Bignum.to_int_exn old land 1 = 1 in
        Proc.return (if odd then 1 else 0)
      else
        let* old = Isets.Arith.Faa2_tas.tas 0 in
        let o = Bignum.to_int_exn old in
        Proc.return (if o = 0 || o land 1 = 1 then 1 else 0)
  end)

let decmul : Proto.t =
  (module struct
    module I = Isets.Arith.Decmul

    let name = "dec+mul"
    let locations ~n:_ = Some 1

    (* If a decrement comes first the value is ≤ 0 forever; if a multiply
       comes first it stays ≥ 1: the ≤ n−1 decrementers can never overcome
       a factor of n. *)
    let proc ~n ~pid:_ ~input =
      check_binary input;
      let* () =
        if input = 0 then Isets.Arith.Decmul.decrement 0
        else Isets.Arith.Decmul.multiply 0 (Stdlib.max n 2)
      in
      let* v = Isets.Arith.Decmul.read 0 in
      Proc.return (if Bignum.sign v > 0 then 1 else 0)
  end)
