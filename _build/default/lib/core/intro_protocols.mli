(** The introduction's two hierarchy-collapse examples: instruction sets
    whose members each have consensus number ≤ 2 as separate objects, yet
    solve wait-free binary consensus for any n on a single common location.

    Both are {e binary}: inputs must be 0 or 1. *)

val faa2_tas : Proto.t
(** [{fetch-and-add(2), test-and-set()}] on one location initialised to 0.
    Input 0 performs fetch-and-add(2); input 1 performs the paper's strong
    test-and-set.  The location's parity records which camp moved first. *)

val decmul : Proto.t
(** [{read(), decrement(), multiply(x)}] on one location initialised to 1.
    Input 0 decrements; input 1 multiplies by n; a subsequent read's sign
    gives the winner. *)
