(** O(log n) n-consensus for [{read(), write(x), increment()}] and
    [{read(), write(x), fetch-and-increment()}] (Theorem 5.3).

    Binary consensus costs two locations (a 2-component unbounded counter —
    the locations are only ever incremented and read, so double-collect
    scans are sound — plus racing, Lemma 3.1); Lemma 5.2 lifts it to
    n-consensus with 4·⌈log₂ n⌉ − 2 locations.  Theorem 5.1 shows a single
    location is impossible; see {!Lowerbound.Fai_adversary}. *)

val protocol : flavour:Isets.Incr.flavour -> Proto.t

val binary : flavour:Isets.Incr.flavour -> Proto.t
(** The two-location binary core alone (inputs in {0,1}). *)
