(** The racing-counters consensus core (Lemmas 3.1 and 3.2).

    m-valued consensus among n processes from any m-component counter: a
    process alternately promotes a value (increments its component) and
    scans; it decides once some component leads every other by at least n.
    When the counter provides [decrement], promotion follows Lemma 3.2's
    bounded discipline (decrement the largest rival at n instead of
    incrementing beyond 3n−1). *)

val consensus :
  ?decide_lead:int ->
  ?decrement_at:int ->
  ('op, 'res) Objects.Counter.t ->
  n:int ->
  input:int ->
  ('op, 'res, int) Model.Proc.t
(** [input] must lie in [0 .. components−1] of the counter.

    [decide_lead] (default [n]) is the lead at which a process decides;
    [decrement_at] (default [n]) is the rival count at which a bounded
    counter decrements instead of incrementing.  The defaults are the
    paper's; the bit-track substitute for [Bow11] widens them to absorb
    scan slop (see DESIGN.md). *)
