(** n-consensus from binary consensus, bit by bit (Lemma 5.2).

    Processes agree on the output in ⌈log₂ n⌉ asynchronous rounds, one bit
    per round (most significant first).  Each round uses two designated
    locations — where processes record their full current value before
    entering the round's binary consensus — plus the [binary_locations]
    cells of one binary-consensus instance.  A process whose bit loses
    adopts a recorded value with the winning bit, keeping validity.  The
    last round needs no designated locations: after it, the agreed bit
    string itself is the (valid) decision.  Total:
    (binary_locations + designated_cells·2)·⌈log₂ n⌉ − designated_cells·2
    locations ([(c+2)·⌈log₂ n⌉ − 2] in the paper, where one designated
    location is one cell). *)

open Model

type ('op, 'res) ops = {
  designated_cells : int;
      (** memory cells one designated location occupies (1 for value cells;
          n for the one-hot bit encoding of Theorem 9.4) *)
  write_value : loc:int -> value:int -> ('op, 'res, unit) Proc.t;
      (** record [value] at the designated location starting at cell [loc] *)
  read_value : loc:int -> ('op, 'res, int option) Proc.t;
      (** some recorded value, or [None] if none yet *)
  binary_locations : int;  (** cells per binary-consensus instance *)
  binary : base:int -> input:int -> ('op, 'res, int) Proc.t;
      (** obstruction-free binary consensus on cells
          [base .. base + binary_locations − 1] *)
}

val rounds : n:int -> int
(** ⌈log₂ n⌉, at least 1. *)

val locations : n:int -> ('op, 'res) ops -> int

val consensus : ('op, 'res) ops -> n:int -> input:int -> ('op, 'res, int) Proc.t
