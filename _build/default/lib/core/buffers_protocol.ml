let make ~capacity ~multi : Proto.t =
  (module struct
    module I = Isets.Buffer_set.Make (struct
      let capacity = capacity
      let multi_assignment = multi
    end)

    let name =
      if multi then Printf.sprintf "%d-buffers+multi-assignment" capacity
      else Printf.sprintf "%d-buffers" capacity

    let locations ~n = Some ((n + capacity - 1) / capacity)

    let proc ~n ~pid ~input =
      let regs = Objects.Swregs.create ~n ~capacity in
      Racing.consensus (Objects.Swreg_counter.make ~components:n ~regs ~pid) ~n ~input
  end)

let protocol ~capacity = make ~capacity ~multi:false
let multi_assignment_protocol ~capacity = make ~capacity ~multi:true
