(** Binary consensus on one [{read(), write(x), increment(), decrement()}]
    location — the conclusions' closing example (§10).

    The camps tug on the sign of a single integer: a 1-proposer increments,
    a 0-proposer decrements; after each pull a process reads, adopts the
    leading camp, and decides once the magnitude reaches n.  This is the
    racing-counters argument with the {e difference} of the two components
    stored instead of the components themselves — which is exactly what
    having both increment and decrement buys, and what either alone cannot
    do (Theorem 5.1's surgery applies to each alone).

    {!protocol} lifts it to n-consensus through Lemma 5.2
    (3·⌈log₂ n⌉ − 2 locations). *)

val binary : Proto.t
(** One location; inputs in {0, 1}. *)

val protocol : Proto.t
(** n-valued, 3⌈log₂ n⌉ − 2 locations. *)
