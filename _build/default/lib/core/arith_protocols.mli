(** One-location n-consensus for arithmetic instruction sets (Theorem 3.3
    and Table 1's single-location rows). *)

val mul : Proto.t
(** [{read(), multiply(x)}], prime-exponent counter + racing. *)

val add : Proto.t
(** [{read(), add(x)}], base-3n bounded counter + bounded racing. *)

val set_bit : Proto.t
(** [{read(), set-bit(x)}], bit-block counter + racing. *)

val faa : Proto.t
(** [{fetch-and-add(x)}] alone. *)

val fam : Proto.t
(** [{fetch-and-multiply(x)}] alone. *)
