open Model
open Proc.Syntax

let y ~n = Primes.next_above n

let encode ~n ~round ~value =
  if value < 0 || value >= n || round < 0 then invalid_arg "Maxreg_protocol.encode";
  Bignum.mul_int (Bignum.pow (Bignum.of_int (y ~n)) round) (value + 1)

let decode ~n v =
  if Bignum.is_zero v then (0, 0)
  else begin
    let round, rest = Bignum.valuation v (y ~n) in
    (round, Bignum.to_int_exn rest - 1)
  end

let m1 = 0
let m2 = 1

let scan =
  let collect =
    let* v1 = Isets.Maxreg.read_max m1 in
    let* v2 = Isets.Maxreg.read_max m2 in
    Proc.return (v1, v2)
  in
  Objects.Snapshot.double_collect
    ~equal:(fun (a1, a2) (b1, b2) -> Bignum.equal a1 b1 && Bignum.equal a2 b2)
    collect

module P = struct
    module I = Isets.Maxreg

    let name = "max-registers"
    let locations ~n:_ = Some 2

    let proc ~n ~pid:_ ~input =
      let* () = Isets.Maxreg.write_max m1 (encode ~n ~round:0 ~value:input) in
      Proc.rec_loop () (fun () ->
        let* v1, v2 = scan in
        let r1, x1 = decode ~n v1 and r2, x2 = decode ~n v2 in
        if x1 = x2 && r1 = r2 + 1 then Proc.return (Either.Right x1)
        else if x1 = x2 && r1 = r2 then
          let* () = Isets.Maxreg.write_max m1 (encode ~n ~round:(r1 + 1) ~value:x1) in
          Proc.return (Either.Left ())
        else
          let* () = Isets.Maxreg.write_max m2 v1 in
          Proc.return (Either.Left ()))
end

let protocol : Proto.t = (module P)

let protocol_typed :
    (module Proto.S with type I.op = Isets.Maxreg.op and type I.result = Value.t) =
  (module P)
