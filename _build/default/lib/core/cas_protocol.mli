(** Wait-free n-consensus from one compare-and-swap location (Table 1's
    SP = 1 row for [{compare-and-swap(x,y)}]).

    The first CAS to move the location off ⊥ installs its proposer's value;
    every CAS returns the previous contents, so even losers learn the
    winner in a single step — no read instruction needed. *)

val protocol : Proto.t
