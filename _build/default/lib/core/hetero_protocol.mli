(** n-consensus over buffers of mixed capacities (Section 6.2's closing
    remark, upper-bound side).

    With capacities c₀ … c_{k−1} summing to at least n, the k locations
    simulate n single-writer registers (cⱼ owners per buffer), hence a
    counter, hence racing consensus.  The paper's generalised lower bound
    says total capacity at least n−1 is necessary — so total ≈ n is within
    one unit of optimal for every capacity profile. *)

val protocol : capacities:int list -> Proto.t
(** @raise Invalid_argument when [capacities] cannot host [n] processes
    (checked at [proc] construction time). *)
