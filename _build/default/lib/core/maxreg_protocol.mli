(** n-consensus from two max-registers (Theorem 4.2).

    Pairs [(r, x)] — round, value — are ordered lexicographically and
    encoded as the integer [(x+1) · y^r] for a fixed prime [y > n], so a
    max-register over integers is a max-register over pairs.  A process
    scans both registers (double collect: max-registers are monotone) and
    either decides, bumps the round in [m₁], or copies [m₁] into [m₂].

    Theorem 4.1 shows one max-register is not enough; see
    {!Lowerbound.Interleave} for the executable adversary. *)

val protocol : Proto.t

val protocol_typed :
  (module Proto.S with type I.op = Isets.Maxreg.op and type I.result = Model.Value.t)
(** The same protocol with its instruction-set types exposed, as the
    Theorem 4.1 adversary requires (it rejects it: two locations). *)

(** Pair encoding, exposed for tests. *)

val encode : n:int -> round:int -> value:int -> Bignum.t
val decode : n:int -> Bignum.t -> int * int
(** [decode ~n v] is [(round, value)]; [v = 0] decodes to [(0, 0)]. *)
