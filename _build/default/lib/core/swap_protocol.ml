open Model
open Proc.Syntax

let laps_value laps = Value.Vec (Array.map (fun l -> Value.Int l) laps)

let laps_of_value ~n v =
  match Value.untag v with
  | Value.Bot -> Array.make n 0
  | Value.Vec a -> Array.map Value.to_int_exn a
  | v -> Format.kasprintf invalid_arg "Swap_protocol: malformed location %a" Value.pp v

(* Locations X_1 … X_{n−1} are indices 0 … n−2.  The scan compares raw
   (tagged) values, so two collects are equal only if no swap intervened. *)
let scan ~n =
  let collect =
    let rec go j acc =
      if j >= n - 1 then Proc.return (Array.of_list (List.rev acc))
      else
        let* v = Isets.Swap.read j in
        go (j + 1) (v :: acc)
    in
    go 0 []
  in
  Objects.Snapshot.double_collect ~equal:(fun a b -> Array.for_all2 Value.equal a b) collect

type state = {
  laps : int array;          (* ℓ_v: this process's view of v's lap *)
  last_swap : int array;     (* laps carried by the last swap's result *)
  seq : int;
}

let protocol : Proto.t =
  (module struct
    module I = Isets.Swap

    let name = "swap-read"
    let locations ~n = Some (Stdlib.max 1 (n - 1))

    let proc ~n ~pid ~input =
      let init_laps = Array.init n (fun v -> if v = input then 1 else 0) in
      let st = { laps = init_laps; last_swap = Array.make n 0; seq = 0 } in
      Proc.rec_loop st (fun st ->
        let* a = scan ~n in
        let views = Array.map (laps_of_value ~n) a in
        let laps =
          Array.init n (fun v ->
              Array.fold_left
                (fun acc view -> Stdlib.max acc view.(v))
                (Stdlib.max st.laps.(v) st.last_swap.(v))
                views)
        in
        let lstar = Array.fold_left Stdlib.max 0 laps in
        let vstar =
          let rec find v = if laps.(v) = lstar then v else find (v + 1) in
          find 0
        in
        let all_match laps = Array.for_all (fun view -> view = laps) views in
        if all_match laps then begin
          let two_ahead =
            let ok = ref true in
            Array.iteri (fun v l -> if v <> vstar && lstar < l + 2 then ok := false) laps;
            !ok
          in
          if two_ahead then Proc.return (Either.Right vstar)
          else begin
            (* v* completes lap ℓ*: move it to the next lap and publish. *)
            let laps = Array.copy laps in
            laps.(vstar) <- laps.(vstar) + 1;
            let* s = Isets.Swap.swap 0 (Value.Tag (pid, st.seq, laps_value laps)) in
            Proc.return
              (Either.Left { laps; last_swap = laps_of_value ~n s; seq = st.seq + 1 })
          end
        end
        else begin
          let j =
            let rec find j = if views.(j) <> laps then j else find (j + 1) in
            find 0
          in
          let* s = Isets.Swap.swap j (Value.Tag (pid, st.seq, laps_value laps)) in
          Proc.return (Either.Left { laps; last_swap = laps_of_value ~n s; seq = st.seq + 1 })
        end)
  end)
