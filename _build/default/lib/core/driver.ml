type report = {
  decisions : (int * int) list;
  locations_used : int;
  max_location : int option;
  steps : int;
  steps_per_process : int array;
  outcome : [ `All_decided | `Sched_stopped | `Out_of_fuel ];
}

let run ?(fuel = 1_000_000) (module P : Proto.S) ~inputs ~sched =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let cfg = M.make ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) in
  let cfg, outcome = M.run ~fuel ~sched cfg in
  {
    decisions = M.decisions cfg;
    locations_used = M.locations_used cfg;
    max_location = M.max_location cfg;
    steps = M.steps cfg;
    steps_per_process = Array.init n (fun pid -> M.steps_of cfg pid);
    outcome;
  }

let run_solo_each ?fuel (module P : Proto.S) ~inputs =
  List.init (Array.length inputs) (fun pid ->
      run ?fuel (module P) ~inputs ~sched:(Model.Sched.solo pid))

let check report ~inputs =
  match report.decisions with
  | [] -> Ok ()
  | (_, first) :: _ ->
    let disagreement =
      List.find_opt (fun (_, v) -> v <> first) report.decisions
    in
    (match disagreement with
     | Some (pid, v) ->
       Error (Printf.sprintf "agreement violated: process %d decided %d, another decided %d" pid v first)
     | None ->
       if Array.exists (fun i -> i = first) inputs then Ok ()
       else Error (Printf.sprintf "validity violated: decision %d is not an input" first))

let check_exn report ~inputs =
  match check report ~inputs with
  | Ok () -> ()
  | Error msg -> failwith msg
