open Model
open Proc.Syntax

let protocol : Proto.t =
  (module struct
    module I = Isets.Cas

    let name = "compare-and-swap"
    let locations ~n:_ = Some 1

    let proc ~n:_ ~pid:_ ~input =
      let* old = Isets.Cas.cas 0 ~expected:Value.Bot ~desired:(Value.Int input) in
      match old with
      | Value.Bot -> Proc.return input
      | v -> Proc.return (Value.to_int_exn v)
  end)
