open Model
open Proc.Syntax

(* Registers are 1-buffers with multiple assignment enabled: a register
   machine whose processes may atomically write several locations. *)
module R = Isets.Buffer_set.Make (struct
  let capacity = 1
  let multi_assignment = true
end)

let read loc =
  let+ slots = R.read loc in
  slots.(0)

let writer_of = function
  | Value.Tag (pid, _, _) -> pid
  | v -> Format.kasprintf invalid_arg "assignment protocol: untagged value %a" Value.pp v

let value_of v = Value.to_int_exn (Value.untag v)

let two_process : Proto.t =
  (module struct
    module I = R

    let name = "2-register-assignment"
    let locations ~n:_ = Some 3

    (* Locations 0 and 1 are the processes' own registers; 2 is shared.
       The later of the two atomic assignments leaves its tag in the
       shared register. *)
    let proc ~n ~pid ~input =
      if n <> 2 then invalid_arg "two_process: exactly two processes";
      if pid < 0 || pid > 1 then invalid_arg "two_process: pid";
      let mine = Value.Tag (pid, 0, Value.Int input) in
      let* () = R.write_many [ (pid, mine); (2, mine) ] in
      let* other = read (1 - pid) in
      match other with
      | Value.Bot -> Proc.return input  (* the other has not moved: I am first *)
      | other ->
        let* shared = read 2 in
        if writer_of shared = pid then
          (* my assignment came last, so the other was first *)
          Proc.return (value_of other)
        else Proc.return input
  end)

let earliest_writer : Proto.t =
  (module struct
    module I = R

    let name = "earliest-writer-assignment"

    let locations ~n = Some (n + (n * (n - 1) / 2))

    (* Layout: location p (p < n) is process p's own register; the register
       shared by i < j sits at n + index(i, j) in the triangular packing. *)
    let pair_loc ~n i j =
      let i, j = if i < j then (i, j) else (j, i) in
      n + (i * (2 * n - i - 1) / 2) + (j - i - 1)

    let proc ~n ~pid ~input =
      let mine = Value.Tag (pid, 0, Value.Int input) in
      let assignments =
        (pid, mine)
        :: List.filter_map
             (fun q -> if q = pid then None else Some (pair_loc ~n pid q, mine))
             (List.init n (fun q -> q))
      in
      let* () =
        Proc.map ignore
          (Proc.multi_access
             (List.map (fun (l, v) -> (l, Isets.Buffer_set.Buf_write v)) assignments))
      in
      (* Stable snapshot of every register, then decide the earliest
         writer: the writer w such that every pairwise register it shares
         with another writer says the other wrote later. *)
      let total = n + (n * (n - 1) / 2) in
      let collect =
        let rec go l acc =
          if l >= total then Proc.return (Array.of_list (List.rev acc))
          else
            let* v = read l in
            go (l + 1) (v :: acc)
        in
        go 0 []
      in
      let* snap =
        Objects.Snapshot.double_collect
          ~equal:(fun a b -> Array.for_all2 Value.equal a b)
          collect
      in
      let writers =
        List.filter (fun p -> not (Value.equal snap.(p) Value.Bot)) (List.init n (fun p -> p))
      in
      let earliest w =
        List.for_all
          (fun q ->
            q = w
            || Value.equal snap.(q) Value.Bot
            || writer_of snap.(pair_loc ~n w q) = q)
          (List.init n (fun q -> q))
      in
      match List.find_opt earliest writers with
      | Some w -> Proc.return (value_of snap.(w))
      | None -> invalid_arg "earliest_writer: no earliest writer in a stable snapshot"
  end)
