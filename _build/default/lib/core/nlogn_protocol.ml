open Model
open Proc.Syntax

let track_length ~n = 8 * n
let stability = 3
let decrement_at ~n = 2 * n

let check_flavour flavour =
  match flavour with
  | Isets.Bits.Write01 | Isets.Bits.Tas_reset -> ()
  | Isets.Bits.Write1_only | Isets.Bits.Tas_only ->
    invalid_arg "Nlogn_protocol: flavour cannot clear bits"

let binary_at ~flavour ~n ~base ~input =
  Racing.consensus
    ~decide_lead:n ~decrement_at:(decrement_at ~n)
    (Objects.Bit_tracks.bounded ~components:2 ~length:(track_length ~n) ~base ~stability
       ~flavour)
    ~n ~input

let binary_locations ~n = 2 * track_length ~n

let ops ~flavour ~n : (Isets.Bits.op, Value.t) Bit_by_bit.ops =
  let write1 loc =
    let op =
      match flavour with
      | Isets.Bits.Tas_reset -> Isets.Bits.Tas
      | _ -> Isets.Bits.Write1
    in
    Proc.map ignore (Proc.access loc op)
  in
  {
    designated_cells = n;
    (* One-hot: recording value x sets bit x of the block. *)
    write_value = (fun ~loc ~value -> write1 (loc + value));
    read_value =
      (fun ~loc ->
        let rec go x =
          if x >= n then Proc.return None
          else
            let* b = Proc.access (loc + x) Isets.Bits.Read in
            if Value.to_int_exn b = 1 then Proc.return (Some x) else go (x + 1)
        in
        go 0);
    binary_locations = binary_locations ~n;
    binary = (fun ~base ~input -> binary_at ~flavour ~n ~base ~input);
  }

let protocol ~flavour : Proto.t =
  check_flavour flavour;
  (module struct
    module I = Isets.Bits.Make (struct
      let flavour = flavour
    end)

    let name =
      match flavour with
      | Isets.Bits.Write01 -> "write01-nlogn"
      | _ -> "tas-reset-nlogn"

    let locations ~n = Some (Bit_by_bit.locations ~n (ops ~flavour ~n))

    let proc ~n ~pid:_ ~input = Bit_by_bit.consensus (ops ~flavour ~n) ~n ~input
  end)

let binary ~flavour : Proto.t =
  check_flavour flavour;
  (module struct
    module I = Isets.Bits.Make (struct
      let flavour = flavour
    end)

    let name =
      match flavour with
      | Isets.Bits.Write01 -> "write01-binary"
      | _ -> "tas-reset-binary"

    let locations ~n = Some (binary_locations ~n)

    let proc ~n ~pid:_ ~input =
      if input <> 0 && input <> 1 then invalid_arg "binary consensus: input not a bit";
      binary_at ~flavour ~n ~base:0 ~input
  end)
