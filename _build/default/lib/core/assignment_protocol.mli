(** Consensus from atomic multiple assignment (Section 7).

    Section 7 recalls Herlihy's result that m-register multiple assignment
    solves wait-free consensus for 2m−2 processes.  This module implements
    the two ends we exercise:

    - {!two_process}: the classic wait-free 2-process protocol from
      2-register assignment on three registers (own, own, shared): the
      shared register remembers who wrote {e last}, so both processes learn
      who was first and decide that value.  Verified exhaustively by the
      model checker.

    - {!earliest_writer}: for any n, each process atomically assigns its
      value to its own register and to one register shared with every other
      process (an n-register assignment over n + n(n−1)/2 locations).  The
      pairwise registers record who wrote later, so a stable double-collect
      snapshot reveals the globally earliest writer — whose value everyone
      decides.  Obstruction-free (the snapshot retries under contention),
      wait-free once writers quiesce. *)

val two_process : Proto.t
(** Exactly two processes; 3 locations; every process decides in ≤ 3 of its
    own steps (wait-free). *)

val earliest_writer : Proto.t
(** Any n; n + n(n−1)/2 locations. *)
