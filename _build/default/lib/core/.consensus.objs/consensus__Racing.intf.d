lib/core/racing.mli: Model Objects
