lib/core/hetero_protocol.mli: Proto
