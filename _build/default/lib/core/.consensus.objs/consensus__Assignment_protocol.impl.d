lib/core/assignment_protocol.ml: Array Format Isets List Model Objects Proc Proto Value
