lib/core/increment_protocol.mli: Isets Proto
