lib/core/intro_protocols.mli: Proto
