lib/core/maxreg_protocol.mli: Bignum Isets Model Proto
