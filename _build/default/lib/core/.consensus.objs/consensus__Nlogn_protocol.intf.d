lib/core/nlogn_protocol.mli: Isets Proto
