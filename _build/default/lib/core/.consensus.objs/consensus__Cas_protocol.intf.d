lib/core/cas_protocol.mli: Proto
