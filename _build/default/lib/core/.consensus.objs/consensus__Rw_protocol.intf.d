lib/core/rw_protocol.mli: Proto
