lib/core/bit_by_bit.ml: Model Proc Stdlib
