lib/core/bit_by_bit.mli: Model Proc
