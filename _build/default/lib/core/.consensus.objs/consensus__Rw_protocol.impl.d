lib/core/rw_protocol.ml: Isets Objects Proto Racing
