lib/core/driver.mli: Model Proto
