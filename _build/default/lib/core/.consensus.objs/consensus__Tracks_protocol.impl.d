lib/core/tracks_protocol.ml: Array Bignum Either Isets Model Objects Proto Racing
