lib/core/cas_protocol.ml: Isets Model Proc Proto Value
