lib/core/hetero_protocol.ml: Isets List Objects Printf Proto Racing String
