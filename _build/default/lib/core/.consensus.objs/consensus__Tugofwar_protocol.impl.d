lib/core/tugofwar_protocol.ml: Bignum Bit_by_bit Either Isets Model Proc Proto Value
