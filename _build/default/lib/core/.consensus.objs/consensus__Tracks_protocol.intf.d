lib/core/tracks_protocol.mli: Isets Model Proto
