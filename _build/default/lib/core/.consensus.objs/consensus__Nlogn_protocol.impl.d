lib/core/nlogn_protocol.ml: Bit_by_bit Isets Model Objects Proc Proto Racing Value
