lib/core/racing.ml: Array Bignum Either Model Objects Option Proc
