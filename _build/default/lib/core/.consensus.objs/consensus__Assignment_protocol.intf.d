lib/core/assignment_protocol.mli: Proto
