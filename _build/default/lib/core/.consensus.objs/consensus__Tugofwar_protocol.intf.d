lib/core/tugofwar_protocol.mli: Proto
