lib/core/swap_protocol.ml: Array Either Format Isets List Model Objects Proc Proto Stdlib Value
