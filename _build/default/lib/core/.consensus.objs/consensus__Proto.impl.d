lib/core/proto.ml: Model
