lib/core/intro_protocols.ml: Bignum Isets Model Proc Proto Stdlib
