lib/core/adopt_commit_protocol.ml: Either Isets Model Objects Proc Proto
