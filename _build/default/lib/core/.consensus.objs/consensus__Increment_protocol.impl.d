lib/core/increment_protocol.ml: Bignum Bit_by_bit Isets Model Objects Proc Proto Racing Value
