lib/core/maxreg_protocol.ml: Bignum Either Isets Model Objects Primes Proc Proto Value
