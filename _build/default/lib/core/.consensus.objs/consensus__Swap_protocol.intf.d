lib/core/swap_protocol.mli: Proto
