lib/core/buffers_protocol.ml: Isets Objects Printf Proto Racing
