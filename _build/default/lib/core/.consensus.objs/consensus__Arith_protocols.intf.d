lib/core/arith_protocols.mli: Proto
