lib/core/buffers_protocol.mli: Proto
