lib/core/driver.ml: Array List Model Printf Proto
