lib/core/adopt_commit_protocol.mli: Proto
