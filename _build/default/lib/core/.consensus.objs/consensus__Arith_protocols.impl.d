lib/core/arith_protocols.ml: Isets Objects Proto Racing
