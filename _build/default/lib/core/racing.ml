open Model
open Proc.Syntax

let consensus (type op res) ?decide_lead ?decrement_at
    ((module C) : (op, res) Objects.Counter.t) ~n ~input : (op, res, int) Proc.t =
  if input < 0 || input >= C.components then invalid_arg "Racing.consensus: bad input";
  let big_n = Bignum.of_int (Option.value decide_lead ~default:n) in
  let big_dec = Bignum.of_int (Option.value decrement_at ~default:n) in
  (* Promote [v]: increment c_v — except that a bounded counter (Lemma 3.2)
     instead decrements the largest rival when that rival has reached n,
     keeping every component within {0, …, 3n−1}. *)
  let promote st counts v =
    match C.decrement with
    | None -> C.increment st v
    | Some decrement ->
      if C.components = 1 then C.increment st v
      else begin
        let u = Objects.Counter.argmax ~excluding:v counts in
        if Bignum.compare counts.(u) big_dec < 0 then C.increment st v else decrement st u
      end
  in
  let decided counts leader =
    let ok = ref true in
    Array.iteri
      (fun v c ->
        if v <> leader && Bignum.compare (Bignum.sub counts.(leader) c) big_n < 0 then
          ok := false)
      counts;
    !ok
  in
  let* st = promote C.init (Array.make C.components Bignum.zero) input in
  Proc.rec_loop st (fun st ->
    let* st, counts = C.scan st in
    let leader = Objects.Counter.argmax counts in
    if decided counts leader then Proc.return (Either.Right leader)
    else
      let* st = promote st counts leader in
      Proc.return (Either.Left st))
