(** O(n log n) n-consensus from single-bit locations with a clearing
    instruction (Theorem 9.4): [{read(), write(0), write(1)}] or
    [{read(), test-and-set(), reset()}].

    The binary-consensus core uses two fixed-length bit tracks under the
    bounded-counter discipline of Lemma 3.2 — our stand-in for the cited
    [Bow11] 2n-bit algorithm (see DESIGN.md).  Lemma 5.2 lifts it to
    n-consensus; each designated location becomes n one-hot bits
    ([write(x)] = set bit x, read = first set bit), exactly as Section 9
    describes. *)

val protocol : flavour:Isets.Bits.flavour -> Proto.t
(** [flavour] must be [Write01] or [Tas_reset]. *)

val binary : flavour:Isets.Bits.flavour -> Proto.t
(** The O(n)-bit binary core alone (inputs in {0,1}). *)

val track_length : n:int -> int
val stability : int
val decrement_at : n:int -> int
(** Widened parameters absorbing non-monotone-scan slop (DESIGN.md,
    ablation ABL). *)
