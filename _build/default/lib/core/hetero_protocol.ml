let protocol ~capacities : Proto.t =
  (module struct
    module I = Isets.Hetero_buffer

    let name =
      Printf.sprintf "hetero-buffers[%s]"
        (String.concat ";" (List.map string_of_int capacities))

    let locations ~n:_ = Some (List.length capacities)

    let proc ~n ~pid ~input =
      let regs = Objects.Hetero_swregs.create ~capacities ~n in
      Racing.consensus
        (Objects.Reg_counter.make ~components:n ~pid
           ~regs:
             {
               Objects.Reg_counter.write =
                 (fun ~pid ~seq v -> Objects.Hetero_swregs.write regs ~pid ~seq v);
               collect = Objects.Hetero_swregs.collect regs;
             })
        ~n ~input
  end)
