open Model
open Proc.Syntax

(* One pull per read: a decider at value ±n survives the ≤ n−1 stale
   opposite pulls still in flight, so the sign never crosses back — the
   racing-counters argument on the difference of the two camps' counts. *)
let binary_at ~n ~loc ~input =
  if input <> 0 && input <> 1 then invalid_arg "binary consensus: input not a bit";
  let big_n = Bignum.of_int n in
  Proc.rec_loop () (fun () ->
      let* v = Isets.Incdec.read loc in
      if Bignum.compare v big_n >= 0 then Proc.return (Either.Right 1)
      else if Bignum.compare v (Bignum.neg big_n) <= 0 then Proc.return (Either.Right 0)
      else begin
        let camp =
          match Bignum.sign v with 0 -> input | s -> if s > 0 then 1 else 0
        in
        let* () =
          if camp = 1 then Isets.Incdec.increment loc else Isets.Incdec.decrement loc
        in
        Proc.return (Either.Left ())
      end)

let binary : Proto.t =
  (module struct
    module I = Isets.Incdec

    let name = "tug-of-war-binary"
    let locations ~n:_ = Some 1

    let proc ~n ~pid:_ ~input = binary_at ~n ~loc:0 ~input
  end)

let ops ~n : (Isets.Incdec.op, Value.t) Bit_by_bit.ops =
  {
    designated_cells = 1;
    write_value =
      (fun ~loc ~value ->
        Proc.map ignore (Proc.access loc (Isets.Incdec.Write (Bignum.of_int (value + 1)))));
    read_value =
      (fun ~loc ->
        let+ v = Proc.access loc Isets.Incdec.Read in
        match Bignum.to_int_exn (Value.to_big_exn v) with
        | 0 -> None
        | recorded -> Some (recorded - 1));
    binary_locations = 1;
    binary = (fun ~base ~input -> binary_at ~n ~loc:base ~input);
  }

let protocol : Proto.t =
  (module struct
    module I = Isets.Incdec

    let name = "tug-of-war"
    let locations ~n = Some (Bit_by_bit.locations ~n (ops ~n))

    let proc ~n ~pid:_ ~input = Bit_by_bit.consensus (ops ~n) ~n ~input
  end)
