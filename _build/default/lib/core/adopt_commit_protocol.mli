(** The commit-adopt ladder: obstruction-free n-consensus from an unbounded
    sequence of adopt-commit objects over plain registers.

    Round r holds one m-valued adopt-commit object.  A process proposes its
    current value in round r; on [Commit] it decides, on [Adopt] it carries
    the adopted value to round r+1.  Coherence makes any two commits in the
    same round equal and pins every later round's proposals; a solo runner
    commits in its next round, giving obstruction-freedom.  (This is the
    register-cost ladder the conclusions' [AE14] reference studies — it
    trades the n-location optimum of Table 1's register row for conceptual
    simplicity and unbounded space, a useful contrast in the benchmarks.) *)

val protocol : Proto.t
