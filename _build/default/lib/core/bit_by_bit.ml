open Model
open Proc.Syntax

type ('op, 'res) ops = {
  designated_cells : int;
  write_value : loc:int -> value:int -> ('op, 'res, unit) Proc.t;
  read_value : loc:int -> ('op, 'res, int option) Proc.t;
  binary_locations : int;
  binary : base:int -> input:int -> ('op, 'res, int) Proc.t;
}

let rounds ~n =
  let rec go k pow = if pow >= n then k else go (k + 1) (pow * 2) in
  Stdlib.max 1 (go 0 1)

(* Rounds 0 .. k−2 occupy (2·designated_cells + binary_locations) cells
   each: designated-0 block, designated-1 block, then the binary instance.
   The last round has no designated blocks. *)
let round_base ~ops i = i * ((2 * ops.designated_cells) + ops.binary_locations)

let locations ~n ops =
  let k = rounds ~n in
  ((k - 1) * ((2 * ops.designated_cells) + ops.binary_locations)) + ops.binary_locations

let consensus ops ~n ~input =
  if input < 0 || input >= n then invalid_arg "Bit_by_bit.consensus: bad input";
  let k = rounds ~n in
  let bit_of value i = (value lsr (k - 1 - i)) land 1 in
  let rec round i agreed value =
    if i >= k then Proc.return agreed
    else begin
      let b = bit_of value i in
      let last = i = k - 1 in
      let base = round_base ~ops i in
      let* () =
        if last then Proc.return ()
        else ops.write_value ~loc:(base + (b * ops.designated_cells)) ~value
      in
      let binary_base = if last then base else base + (2 * ops.designated_cells) in
      let* out = ops.binary ~base:binary_base ~input:b in
      let agreed = (agreed lsl 1) lor out in
      if out = b || last then round (i + 1) agreed value
      else
        let* adopted = ops.read_value ~loc:(base + (out * ops.designated_cells)) in
        match adopted with
        | Some value' -> round (i + 1) agreed value'
        | None ->
          (* Some process with bit [out] recorded its value before the
             binary consensus could output [out] (Lemma 5.2). *)
          invalid_arg "Bit_by_bit: designated location empty after losing round"
    end
  in
  round 0 0 input
