let protocol_typed ~flavour :
    (module Proto.S
       with type I.op = Isets.Bits.op
        and type I.cell = bool
        and type I.result = Model.Value.t) =
  (match flavour with
   | Isets.Bits.Write1_only | Isets.Bits.Tas_only -> ()
   | Isets.Bits.Write01 | Isets.Bits.Tas_reset ->
     invalid_arg "Tracks_protocol: use Nlogn_protocol for clearing flavours");
  (module struct
    module I = Isets.Bits.Make (struct
      let flavour = flavour
    end)

    let name =
      match flavour with
      | Isets.Bits.Write1_only -> "write1-tracks"
      | _ -> "tas-tracks"

    let locations ~n:_ = None

    let proc ~n ~pid:_ ~input =
      Racing.consensus (Objects.Bit_tracks.unbounded ~components:n ~flavour) ~n ~input
  end)

let protocol ~flavour : Proto.t =
  let (module P) = protocol_typed ~flavour in
  (module P)

let binary ~flavour : Proto.t =
  (match flavour with
   | Isets.Bits.Write1_only | Isets.Bits.Tas_only -> ()
   | Isets.Bits.Write01 | Isets.Bits.Tas_reset ->
     invalid_arg "Tracks_protocol.binary: use Nlogn_protocol for clearing flavours");
  (module struct
    module I = Isets.Bits.Make (struct
      let flavour = flavour
    end)

    let name =
      match flavour with
      | Isets.Bits.Write1_only -> "write1-tracks-binary"
      | _ -> "tas-tracks-binary"

    let locations ~n:_ = None

    (* The GR05 loop: scan both tracks, decide at a lead of 2, otherwise
       adopt the leading preference and push your track one location
       further.  The two-track counter supplies linearizable scans (counts
       are monotone).

       Why a lead of 2 suffices for any n (where abstract racing counters
       need a lead of n): a stale increment writes the first-0 position its
       walk found, and every walk that predates a deciding scan found a
       position within the loser track's count b at that scan — so all
       stale writes coalesce into at most one effective increment, and any
       later walk is preceded by a scan that already shows the winner
       ahead.  The track encoding, not the counter abstraction, carries the
       agreement argument. *)
    let proc ~n:_ ~pid:_ ~input =
      if input <> 0 && input <> 1 then invalid_arg "binary consensus: input not a bit";
      let (module C : Objects.Counter.S
            with type op = Isets.Bits.op
             and type res = Model.Value.t) =
        Objects.Bit_tracks.unbounded ~components:2 ~flavour
      in
      let open Model.Proc.Syntax in
      Model.Proc.rec_loop (C.init, input) (fun (st, pref) ->
        let* st, counts = C.scan st in
        let mine = Bignum.to_int_exn counts.(pref)
        and other = Bignum.to_int_exn counts.(1 - pref) in
        if mine >= other + 2 then Model.Proc.return (Either.Right pref)
        else begin
          let pref = if other > mine then 1 - pref else pref in
          let* st = C.increment st pref in
          Model.Proc.return (Either.Left (st, pref))
        end)
  end)
