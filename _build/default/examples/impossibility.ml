(* Running the impossibility proofs (Theorems 4.1, 5.1 and Lemma 9.1).

   Lower-bound proofs in this paper are adversary strategies.  This example
   executes them: each adversary takes a candidate protocol and produces a
   concrete schedule on which the protocol misbehaves.

   Run with: dune exec examples/impossibility.exe *)

let () =
  print_endline "== Theorem 4.1: one max-register is not enough ==";
  (match Lowerbound.Interleave.run Lowerbound.Victims.naive_maxreg ~n:2 with
   | Agreement_violated { p_decision; q_decision; steps; transcript } ->
     Printf.printf
       "naive victim: adversary interleaved the solo runs (%d writes);\n\
       \  process 0 decided %d, process 1 decided %d  -> agreement broken\n\
        the violating execution, step by step:\n"
       steps p_decision q_decision;
     List.iter (fun line -> Printf.printf "    %s\n" line) transcript
   | Protocol_error e -> Printf.printf "unexpected: %s\n" e);
  (match Lowerbound.Interleave.run Lowerbound.Victims.rounds_maxreg ~n:2 with
   | Agreement_violated { p_decision; q_decision; steps; _ } ->
     Printf.printf
       "round-based victim: broken too (%d writes): decisions %d vs %d\n" steps
       p_decision q_decision
   | Protocol_error e -> Printf.printf "unexpected: %s\n" e);
  (match Lowerbound.Interleave.run Consensus.Maxreg_protocol.protocol_typed ~n:2 with
   | Agreement_violated _ -> print_endline "?! the real two-register protocol broke"
   | Protocol_error e ->
     Printf.printf "the real protocol escapes the adversary: %s\n" e);

  print_endline "\n== Theorem 5.1: one read/write/fetch-and-increment location ==";
  (match Lowerbound.Fai_adversary.run Lowerbound.Victims.naive_fai ~n:2 with
   | Agreement_violated { p_decision; q_decision; transcript } ->
     Printf.printf
       "racing-digits victim: the write-prefix surgery yields decisions %d and %d\n"
       p_decision q_decision;
     List.iteri
       (fun i line -> if i < 8 then Printf.printf "    %s\n" line)
       transcript;
     if List.length transcript > 8 then
       Printf.printf "    … (%d more steps)\n" (List.length transcript - 8)
   | Protocol_error e -> Printf.printf "unexpected: %s\n" e);
  (match Lowerbound.Fai_adversary.run Lowerbound.Victims.counting_fai ~n:2 with
   | Agreement_violated { p_decision; q_decision; _ } ->
     Printf.printf "ticket victim: decisions %d and %d\n" p_decision q_decision
   | Protocol_error e -> Printf.printf "ticket victim rejected: %s\n" e);

  print_endline "\n== Lemma 9.1: read/test-and-set needs unbounded space ==";
  match
    Lowerbound.Growth.run
      (Consensus.Tracks_protocol.protocol_typed ~flavour:Isets.Bits.Tas_only)
      ~rounds:8 ~inputs:[| 0; 1; 0 |]
  with
  | Ok progress ->
    List.iter
      (fun (p : Lowerbound.Growth.progress) ->
        Printf.printf "  adversary round %d: %2d locations set to 1 (%2d touched)\n"
          p.round p.ones p.touched)
      progress;
    print_endline "  ... and so on without bound: SP({read, test-and-set}) = infinity."
  | Error e -> Printf.printf "growth adversary stopped: %s\n" e
