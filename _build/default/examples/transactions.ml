(* Multiple assignment as a "simple transaction" (Section 7).

   Hardware transactions give obstruction-free multi-word writes almost for
   free, so it is natural to hope they shrink consensus space.  Theorem 7.5
   caps the hope: with atomic ℓ-buffer multi-writes, at least ⌈(n−1)/2ℓ⌉
   locations are still needed — transactions buy at most a factor ~2.

   This example (a) uses the multi-assignment machine directly to commit a
   transactional update across three buffers atomically, and (b) runs the
   consensus protocol on both machines and prints the bound comparison.

   Run with: dune exec examples/transactions.exe *)

open Model

module B = Isets.Buffer_set.Make (struct
  let capacity = 2
  let multi_assignment = true
end)

module M = Model.Machine.Make (B)

(* A "bank transfer" that debits one account and credits two others in a
   single atomic step — no intermediate state is ever observable. *)
let transfer ~from_acct ~to1 ~to2 amount =
  let open Proc.Syntax in
  let* () =
    B.write_many
      [
        (from_acct, Value.Int (-amount));
        (to1, Value.Int (amount / 2));
        (to2, Value.Int (amount - (amount / 2)));
      ]
  in
  let* v0 = B.read from_acct in
  let* v1 = B.read to1 in
  let* v2 = B.read to2 in
  Proc.return (v0.(1), v1.(1), v2.(1))

let () =
  print_endline "-- atomic multi-location write --";
  let cfg = M.make ~n:1 (fun _ -> transfer ~from_acct:0 ~to1:1 ~to2:2 101) in
  let cfg, _ = M.run ~sched:(Sched.solo 0) cfg in
  (match M.decision cfg 0 with
   | Some (a, b, c) ->
     Format.printf "after one atomic step: acct0=%a acct1=%a acct2=%a (steps=%d)@."
       Value.pp a Value.pp b Value.pp c (M.steps cfg)
   | None -> assert false);

  print_endline "\n-- does multiple assignment shrink consensus space? --";
  let n = 9 and ell = 2 in
  let inputs = Array.init n (fun i -> (i * 5) mod n) in
  let sched = Model.Sched.random_then_sequential ~seed:3 ~prefix:500 in
  let run name proto =
    let report = Consensus.Driver.run proto ~inputs ~sched in
    Consensus.Driver.check_exn report ~inputs;
    Printf.printf "%-28s locations used = %d\n" name report.locations_used
  in
  run "2-buffers (no transactions)" (Consensus.Buffers_protocol.protocol ~capacity:ell);
  run "2-buffers + transactions"
    (Consensus.Buffers_protocol.multi_assignment_protocol ~capacity:ell);
  Printf.printf
    "\npaper bounds at n=%d, l=%d: plain lower ceil((n-1)/l) = %d;\n\
     with multiple assignment the lower bound (Thm 7.5) is ceil((n-1)/2l) = %d —\n\
     transactions cannot shrink space by more than ~2x.\n"
    n ell
    ((n - 1 + ell - 1) / ell)
    ((n - 1 + (2 * ell) - 1) / (2 * ell))
