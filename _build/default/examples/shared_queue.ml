(* A linearizable shared FIFO queue from ONE memory location.

   The paper's conclusions note that a single history object implements any
   sequentially defined object; Lemma 6.1 builds a history object for up to
   ℓ writers from one ℓ-buffer.  Composing the two (Objects.Universal), a
   single 3-buffer location carries a full multi-producer queue for three
   mutating processes — no locks, no compare-and-swap.

   Run with: dune exec examples/shared_queue.exe *)

open Model
open Proc.Syntax

type op = Enqueue of int | Dequeue

let queue_spec : (int list, op, int option) Objects.Universal.spec =
  {
    initial = [];
    apply =
      (fun q op ->
        match op with
        | Enqueue x -> (q @ [ x ], None)
        | Dequeue -> (match q with [] -> ([], None) | x :: rest -> (rest, Some x)));
    encode =
      (function
        | Enqueue x -> Value.Pair (Value.Int 0, Value.Int x)
        | Dequeue -> Value.Pair (Value.Int 1, Value.Unit));
    decode =
      (function
        | Value.Pair (Value.Int 0, Value.Int x) -> Enqueue x
        | _ -> Dequeue);
  }

module B = Isets.Buffer_set.Make (struct
  let capacity = 3  (* three mutating processes share the one location *)
  let multi_assignment = false
end)

module M = Model.Machine.Make (B)

let () =
  let q = Objects.Universal.create ~loc:0 queue_spec in
  (* Two producers each enqueue three jobs; one consumer drains five. *)
  let producer pid =
    let rec go seq jobs =
      match jobs with
      | [] -> Proc.return []
      | j :: rest ->
        let* _ = Objects.Universal.invoke q ~pid ~seq (Enqueue j) in
        go (seq + 1) rest
    in
    go 0 (List.init 3 (fun i -> (100 * (pid + 1)) + i))
  in
  let consumer pid =
    let rec go seq acc k =
      if k = 0 then Proc.return (List.rev acc)
      else
        let* item = Objects.Universal.invoke q ~pid ~seq Dequeue in
        go (seq + 1) (item :: acc) (k - 1)
    in
    go 0 [] 5
  in
  let cfg =
    M.make ~n:3 (fun pid -> if pid < 2 then producer pid else consumer 2)
  in
  let cfg, _ =
    M.run ~sched:(Sched.random_then_sequential ~seed:2016 ~prefix:40) cfg
  in
  (match M.decision cfg 2 with
   | Some got ->
     let show = function Some x -> string_of_int x | None -> "·" in
     Printf.printf "consumer drained: %s\n" (String.concat " " (List.map show got));
     let items = List.filter_map (fun x -> x) got in
     Printf.printf "items received in FIFO order per producer: %b\n"
       (List.filter (fun x -> x / 100 = 1) items
        = List.sort compare (List.filter (fun x -> x / 100 = 1) items)
       && List.filter (fun x -> x / 100 = 2) items
          = List.sort compare (List.filter (fun x -> x / 100 = 2) items))
   | None -> print_endline "consumer still running (unexpected)");
  Printf.printf "memory locations used by the whole queue: %d\n" (M.locations_used cfg);
  print_endline
    "\nOne 3-buffer = one history object = any shared object for 3 writers\n\
     (Lemma 6.1 + the conclusions' universality remark)."
