examples/quickstart.mli:
