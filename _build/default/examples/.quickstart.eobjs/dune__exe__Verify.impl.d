examples/verify.ml: Consensus Format Isets Modelcheck Objects Printf Synth
