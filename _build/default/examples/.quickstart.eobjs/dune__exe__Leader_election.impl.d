examples/leader_election.ml: Array Consensus Isets List Model Printf
