examples/transactions.mli:
