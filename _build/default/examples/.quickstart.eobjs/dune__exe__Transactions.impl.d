examples/transactions.ml: Array Consensus Format Isets Model Printf Proc Sched Value
