examples/quickstart.ml: Consensus Model Printf
