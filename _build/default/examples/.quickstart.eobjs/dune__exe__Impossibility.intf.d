examples/impossibility.mli:
