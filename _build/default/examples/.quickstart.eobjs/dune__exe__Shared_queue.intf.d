examples/shared_queue.mli:
