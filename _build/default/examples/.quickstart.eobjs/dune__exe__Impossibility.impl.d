examples/impossibility.ml: Consensus Isets List Lowerbound Printf
