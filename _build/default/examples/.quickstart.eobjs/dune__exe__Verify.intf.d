examples/verify.mli:
