examples/shared_queue.ml: Isets List Model Objects Printf Proc Sched String Value
