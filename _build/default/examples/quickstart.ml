(* Quickstart: solve consensus on machines from Table 1's extremes.

   A machine is an instruction set (module Isets) plus the shared-memory
   model (Model.Machine); a protocol (module Consensus) is the code each
   process runs.  The driver wires them together under an adversarial
   scheduler.

   Run with: dune exec examples/quickstart.exe *)

let describe name (report : Consensus.Driver.report) =
  let value = match report.decisions with (_, v) :: _ -> v | [] -> -1 in
  Printf.printf "%-24s decided %d using %d location(s) in %d steps\n" name value
    report.locations_used report.steps

let () =
  (* Five processes propose values from {0, …, 4} (n-valued consensus
     draws inputs from the process-count domain). *)
  let inputs = [| 3; 1; 4; 1; 2 |] in
  (* An adversary interleaves them randomly for a while, then lets each
     finish — the schedule shape obstruction-freedom is built for. *)
  let sched = Model.Sched.random_then_sequential ~seed:2016 ~prefix:300 in

  (* One compare-and-swap location: the strongest row of Table 1. *)
  let report = Consensus.Driver.run Consensus.Cas_protocol.protocol ~inputs ~sched in
  Consensus.Driver.check_exn report ~inputs;
  describe "compare-and-swap" report;

  (* Two max-registers (Theorem 4.2) — and one is provably impossible. *)
  let report = Consensus.Driver.run Consensus.Maxreg_protocol.protocol ~inputs ~sched in
  Consensus.Driver.check_exn report ~inputs;
  describe "max-registers" report;

  (* One location supporting read and multiply: counts live in prime
     exponents (Theorem 3.3). *)
  let report = Consensus.Driver.run Consensus.Arith_protocols.mul ~inputs ~sched in
  Consensus.Driver.check_exn report ~inputs;
  describe "read+multiply" report;

  (* Plain registers need n locations — the other end of the hierarchy. *)
  let report = Consensus.Driver.run Consensus.Rw_protocol.protocol ~inputs ~sched in
  Consensus.Driver.check_exn report ~inputs;
  describe "read/write registers" report;

  print_endline "\nEvery decision above is one of the proposed values (validity),";
  print_endline "and within each run all processes decided the same value (agreement)."
