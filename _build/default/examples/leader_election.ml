(* Leader election across the hierarchy.

   A batch of workers must agree on a coordinator id — exactly n-valued
   consensus.  The same election runs on machines with very different
   instruction sets; what changes is the memory footprint, which is the
   paper's whole point: the space cost, not computability, separates the
   instruction sets.

   Run with: dune exec examples/leader_election.exe *)

let elect name proto ~workers ~seed =
  (* Worker i nominates itself: input = its own id. *)
  let inputs = Array.init workers (fun i -> i) in
  let sched = Model.Sched.random_then_sequential ~seed ~prefix:400 in
  let report = Consensus.Driver.run proto ~inputs ~sched in
  Consensus.Driver.check_exn report ~inputs;
  (match report.decisions with
   | (_, leader) :: _ ->
     Printf.printf "%-28s elected worker %d | %3d locations | %6d steps\n" name leader
       report.locations_used report.steps
   | [] -> assert false);
  report.locations_used

let () =
  let workers = 6 in
  Printf.printf "Electing a leader among %d workers:\n\n" workers;
  let runs =
    [
      ("compare-and-swap", Consensus.Cas_protocol.protocol);
      ("fetch-and-add", Consensus.Arith_protocols.faa);
      ("max-registers", Consensus.Maxreg_protocol.protocol);
      ("read+swap", Consensus.Swap_protocol.protocol);
      ("2-buffers", Consensus.Buffers_protocol.protocol ~capacity:2);
      ("read/write registers", Consensus.Rw_protocol.protocol);
      ( "read+write+increment",
        Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only );
      ( "single-bit test-and-set",
        Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only );
    ]
  in
  let spaces = List.map (fun (name, proto) -> elect name proto ~workers ~seed:99) runs in
  print_newline ();
  Printf.printf
    "Same task, same workers: memory footprints ranged from %d to %d locations.\n"
    (List.fold_left min max_int spaces)
    (List.fold_left max 0 spaces);
  print_endline
    "Weaker instruction sets do not fail — they pay in space (and the single-bit\n\
     rows would pay unboundedly under a true adversary; see `space_hierarchy growth`)."
