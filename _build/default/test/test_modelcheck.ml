(* Tests for the bounded model checker: exhaustive verification of the
   cheap protocols, bivalence detection (Lemma 6.4), and the checker's
   ability to catch deliberately broken protocols. *)

let ok_stats = function
  | Ok (s : Modelcheck.stats) -> s
  | Error e -> Alcotest.fail ("unexpected violation: " ^ e)

(* 1. Exhaustive verification of one-shot protocols (complete tree). *)
let test_exhaustive_one_shot () =
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Cas_protocol.protocol
         ~inputs:[| 0; 1 |] ~depth:6)
  in
  Alcotest.(check bool) "cas n=2 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Cas_protocol.protocol
         ~inputs:[| 0; 1; 2 |] ~depth:8)
  in
  Alcotest.(check bool) "cas n=3 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Intro_protocols.faa2_tas
         ~inputs:[| 0; 1 |] ~depth:6)
  in
  Alcotest.(check bool) "faa2+tas n=2 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Intro_protocols.faa2_tas
         ~inputs:[| 1; 0; 1; 0 |] ~depth:10)
  in
  Alcotest.(check bool) "faa2+tas n=4 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Intro_protocols.decmul
         ~inputs:[| 0; 1; 1 |] ~depth:12)
  in
  Alcotest.(check bool) "dec+mul n=3 complete" false s.truncated;
  (* the 2-process multiple-assignment protocol, for all four input pairs *)
  List.iter
    (fun inputs ->
      let s =
        ok_stats
          (Modelcheck.explore ~probe:`Everywhere Consensus.Assignment_protocol.two_process
             ~inputs ~depth:8)
      in
      Alcotest.(check bool) "2-assignment complete" false s.truncated)
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]

(* 2. Deep bounded exploration of the loop-based protocols. *)
let test_bounded_loop_protocols () =
  let protos =
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol, 14);
      ("arith-mul", Consensus.Arith_protocols.mul, 14);
      ("arith-add", Consensus.Arith_protocols.add, 14);
      ("swap", Consensus.Swap_protocol.protocol, 14);
      ("rw", Consensus.Rw_protocol.protocol, 12);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2, 12);
      ( "increment-binary",
        Consensus.Increment_protocol.binary ~flavour:Isets.Incr.Increment_only,
        13 );
      ("tug-of-war-binary", Consensus.Tugofwar_protocol.binary, 14);
      ( "tracks-tas",
        Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only,
        12 );
    ]
  in
  List.iter
    (fun (name, proto, depth) ->
      let s = ok_stats (Modelcheck.explore ~probe:`Leaves proto ~inputs:[| 0; 1 |] ~depth) in
      Alcotest.(check bool) (name ^ ": explored some tree") true (s.configs > 100))
    protos

(* 3. Three processes, shallower. *)
let test_three_process_exploration () =
  List.iter
    (fun (name, proto) ->
      let s =
        ok_stats (Modelcheck.explore ~probe:`Leaves proto ~inputs:[| 2; 0; 1 |] ~depth:8)
      in
      Alcotest.(check bool) (name ^ " 3 procs") true (s.configs > 0))
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("arith-mul", Consensus.Arith_protocols.mul);
      ("buffers-3", Consensus.Buffers_protocol.protocol ~capacity:3);
    ]

(* 4. Lemma 6.4: from the initial configuration with mixed inputs, both
   values are decidable — bivalence. *)
let test_initial_bivalence () =
  List.iter
    (fun (name, proto) ->
      match Modelcheck.decidable_values proto ~inputs:[| 0; 1 |] ~depth:4 with
      | Ok vs ->
        Alcotest.(check (list int)) (name ^ ": initially bivalent") [ 0; 1 ] vs
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("cas", Consensus.Cas_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
      ("increment-binary", Consensus.Increment_protocol.binary ~flavour:Isets.Incr.Increment_only);
    ]

(* 5. With unanimous inputs only that value is decidable (validity). *)
let test_unanimous_univalence () =
  List.iter
    (fun v ->
      match
        Modelcheck.decidable_values Consensus.Maxreg_protocol.protocol
          ~inputs:[| v; v |] ~depth:5
      with
      | Ok vs -> Alcotest.(check (list int)) "only the unanimous value" [ v ] vs
      | Error e -> Alcotest.fail e)
    [ 0; 1 ]

(* 6. Broken protocols are caught. *)
let broken_disagree : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-disagree"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid ~input:_ = Model.Proc.return pid
  end)

let broken_invalid : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-invalid"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid:_ ~input:_ = Model.Proc.return 7
  end)

let broken_nonterminating : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-spin"
    let locations ~n:_ = Some 1

    (* Waits forever for another process's write: not obstruction-free. *)
    let proc ~n:_ ~pid ~input =
      let open Model.Proc.Syntax in
      if pid = 0 then
        Model.Proc.rec_loop () (fun () ->
            let* v = Isets.Rw.read 0 in
            match v with
            | Model.Value.Int w -> Model.Proc.return (Either.Right w)
            | _ -> Model.Proc.return (Either.Left ()))
      else
        let* () = Isets.Rw.write 0 (Model.Value.Int input) in
        Model.Proc.return input
  end)

let expect_violation name outcome =
  match outcome with
  | Error _ -> ()
  | Ok (_ : Modelcheck.stats) -> Alcotest.fail (name ^ ": violation not detected")

let test_catches_broken () =
  expect_violation "disagree"
    (Modelcheck.explore broken_disagree ~inputs:[| 0; 1 |] ~depth:3);
  expect_violation "invalid"
    (Modelcheck.explore broken_invalid ~inputs:[| 0; 1 |] ~depth:3);
  expect_violation "non-terminating (obstruction-freedom probe)"
    (Modelcheck.explore ~probe:`Everywhere ~solo_fuel:1_000 broken_nonterminating
       ~inputs:[| 0; 1 |] ~depth:2)

(* 7. An agreement bug only reachable through a specific interleaving: the
   naive single-max-register victim.  The checker must find the schedule. *)
let test_finds_interleaving_bug () =
  let victim : Consensus.Proto.t =
    let (module V) = Lowerbound.Victims.naive_maxreg in
    (module V)
  in
  expect_violation "naive maxreg victim"
    (Modelcheck.explore ~probe:`Everywhere victim ~inputs:[| 0; 1 |] ~depth:6)

(* 8. Stats are sane on a complete exploration: cas n=2 has a known tree. *)
let test_stats_shape () =
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Never Consensus.Cas_protocol.protocol
         ~inputs:[| 0; 1 |] ~depth:10)
  in
  (* Each process takes exactly one step: configs = 1 root + 2 + 2 = 5. *)
  Alcotest.(check int) "cas n=2 tree size" 5 s.configs;
  Alcotest.(check int) "no probes when `Never" 0 s.probes;
  Alcotest.(check bool) "complete" false s.truncated

let () =
  Alcotest.run "modelcheck"
    [
      ( "exploration",
        [
          Alcotest.test_case "exhaustive one-shot" `Quick test_exhaustive_one_shot;
          Alcotest.test_case "bounded loop protocols" `Quick test_bounded_loop_protocols;
          Alcotest.test_case "three processes" `Quick test_three_process_exploration;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
        ] );
      ( "bivalence",
        [
          Alcotest.test_case "initial bivalence (Lemma 6.4)" `Quick test_initial_bivalence;
          Alcotest.test_case "unanimous univalence" `Quick test_unanimous_univalence;
        ] );
      ( "violations",
        [
          Alcotest.test_case "catches broken protocols" `Quick test_catches_broken;
          Alcotest.test_case "finds interleaving bug" `Quick test_finds_interleaving_bug;
        ] );
    ]
