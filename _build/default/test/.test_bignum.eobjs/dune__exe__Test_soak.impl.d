test/test_soak.ml: Alcotest Array Consensus Isets List Model Printf
