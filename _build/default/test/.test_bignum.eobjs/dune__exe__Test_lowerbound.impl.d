test/test_lowerbound.ml: Alcotest Array Bignum Consensus Isets List Lowerbound Model Option QCheck2 QCheck_alcotest String
