test/test_isets.mli:
