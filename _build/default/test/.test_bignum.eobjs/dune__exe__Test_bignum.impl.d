test/test_bignum.ml: Alcotest Array Bignum List Primes Printf QCheck2 QCheck_alcotest String
