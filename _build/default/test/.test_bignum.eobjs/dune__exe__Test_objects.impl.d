test/test_objects.ml: Alcotest Array Bignum Iset Isets List Machine Model Objects Option Printf Proc Sched Value
