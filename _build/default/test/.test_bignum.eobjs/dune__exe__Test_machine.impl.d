test/test_machine.ml: Alcotest Array Either Format Int List Machine Model Proc QCheck2 QCheck_alcotest Sched String
