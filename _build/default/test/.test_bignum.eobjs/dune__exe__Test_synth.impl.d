test/test_synth.ml: Alcotest Format List Synth
