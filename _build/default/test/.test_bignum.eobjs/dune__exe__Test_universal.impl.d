test/test_universal.ml: Alcotest Array Format Isets List Machine Model Objects Option Printf Proc Sched Value
