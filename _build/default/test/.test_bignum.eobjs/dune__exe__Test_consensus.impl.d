test/test_consensus.ml: Alcotest Array Bignum Consensus Isets List Model Printf String
