test/test_value.ml: Alcotest Array Bignum Format List Model QCheck2 QCheck_alcotest String Value
