test/test_isets.ml: Add Alcotest Bignum Decmul Faa Faa2_tas Fam Isets List Machine Model Mul Option Proc QCheck2 QCheck_alcotest Sched Setbit Value
