test/test_modelcheck.ml: Alcotest Consensus Either Isets List Lowerbound Model Modelcheck
