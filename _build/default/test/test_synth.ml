(* Tests for bounded protocol synthesis: known-possible machines must yield
   protocols, known-impossible ones must be exhausted, and the checker must
   separate correct from broken protocols. *)

let test_cas_found () =
  match Synth.search Synth.cas_cell ~depth:1 with
  | Synth.Found p ->
    Alcotest.(check bool) "found protocol passes check" true
      (Synth.check Synth.cas_cell p)
  | Synth.Impossible_within_depth ->
    Alcotest.fail "compare-and-swap solves 2-consensus in one instruction"

let test_swap_found () =
  match Synth.search Synth.swap_cell ~depth:1 with
  | Synth.Found p ->
    Alcotest.(check bool) "found protocol passes check" true
      (Synth.check Synth.swap_cell p)
  | Synth.Impossible_within_depth ->
    Alcotest.fail "swap solves 2-consensus in one instruction"

let test_tas_impossible () =
  List.iter
    (fun depth ->
      match Synth.search Synth.tas_bit ~depth with
      | Synth.Impossible_within_depth -> ()
      | Synth.Found p ->
        Alcotest.fail
          (Format.asprintf
             "single tas bit cannot solve binary consensus, yet: %a"
             (Synth.pp_tree ~ops:Synth.tas_bit.ops)
             p.t00))
    [ 1; 2; 3 ]

let test_rw01_impossible () =
  List.iter
    (fun depth ->
      match Synth.search Synth.rw01_bit ~depth with
      | Synth.Impossible_within_depth -> ()
      | Synth.Found _ ->
        Alcotest.fail "a single read/write bit cannot solve binary consensus")
    [ 1; 2 ]

let test_candidates_solo_valid () =
  (* every enumerated candidate decides its input solo *)
  List.iter
    (fun input ->
      let cands = Synth.candidates Synth.tas_bit ~depth:2 ~input in
      Alcotest.(check bool) "non-empty" true (cands <> []);
      (* decide-immediately is always among them *)
      Alcotest.(check bool) "contains Decide input" true
        (List.mem (Synth.Decide input) cands))
    [ 0; 1 ]

let test_check_rejects_broken () =
  (* "everyone decides their own input" fails the mixed pairing *)
  let broken =
    {
      Synth.t00 = Synth.Decide 0;
      t01 = Synth.Decide 1;
      t10 = Synth.Decide 0;
      t11 = Synth.Decide 1;
    }
  in
  Alcotest.(check bool) "broken rejected" false (Synth.check Synth.cas_cell broken)

let test_check_accepts_handwritten_cas () =
  (* the canonical protocol: cas(⊥, own); decide the installed value *)
  let tree input =
    (* op 0 = cas(bot,0), op 1 = cas(bot,1); branch = old state: 0 = ⊥,
       1 = value 0, 2 = value 1 *)
    Synth.Invoke
      (input, [| Synth.Decide input; Synth.Decide 0; Synth.Decide 1 |])
  in
  let p = { Synth.t00 = tree 0; t01 = tree 1; t10 = tree 0; t11 = tree 1 } in
  Alcotest.(check bool) "handwritten cas protocol accepted" true
    (Synth.check Synth.cas_cell p)

let test_leader_election_tree_is_not_consensus () =
  (* tas leader election: winner decides own input, loser decides the
     opposite — fine when inputs differ, broken when they agree. *)
  let tree input =
    Synth.Invoke (1, [| Synth.Decide input; Synth.Decide (1 - input) |])
  in
  let p = { Synth.t00 = tree 0; t01 = tree 1; t10 = tree 0; t11 = tree 1 } in
  Alcotest.(check bool) "leader election is not value consensus" false
    (Synth.check Synth.tas_bit p)

(* --- three processes: consensus numbers --------------------------------- *)

let test_cas_three_processes () =
  match Synth.search3 ~mode:`Symmetric Synth.cas_cell ~depth:1 with
  | Synth.Found3 trees ->
    Alcotest.(check bool) "found3 passes check3" true (Synth.check3 Synth.cas_cell trees)
  | Synth.Impossible3_within_depth ->
    Alcotest.fail "cas has infinite consensus number; 3 processes must work"

let test_swap_three_processes_impossible () =
  (* swap has consensus number 2: no one-instruction 3-process protocol *)
  match Synth.search3 ~mode:`Full Synth.swap_cell ~depth:1 with
  | Synth.Impossible3_within_depth -> ()
  | Synth.Found3 _ -> Alcotest.fail "swap cannot solve 3-process consensus"

let test_tas_three_processes_impossible () =
  match Synth.search3 ~mode:`Full Synth.tas_bit ~depth:3 with
  | Synth.Impossible3_within_depth -> ()
  | Synth.Found3 _ -> Alcotest.fail "a tas bit cannot solve 3-process consensus"

let test_check3_rejects_pairwise_broken () =
  (* everyone decides own input: fails even pairwise *)
  let t v = Synth.Decide v in
  let trees = [| [| t 0; t 1 |]; [| t 0; t 1 |]; [| t 0; t 1 |] |] in
  Alcotest.(check bool) "rejected" false (Synth.check3 Synth.cas_cell trees)

let () =
  Alcotest.run "synth"
    [
      ( "synthesis",
        [
          Alcotest.test_case "cas found at depth 1" `Quick test_cas_found;
          Alcotest.test_case "swap found at depth 1" `Quick test_swap_found;
          Alcotest.test_case "tas bit impossible to depth 3" `Quick test_tas_impossible;
          Alcotest.test_case "rw01 bit impossible to depth 2" `Quick test_rw01_impossible;
          Alcotest.test_case "candidates are solo-valid" `Quick test_candidates_solo_valid;
          Alcotest.test_case "checker rejects broken" `Quick test_check_rejects_broken;
          Alcotest.test_case "checker accepts handwritten cas" `Quick
            test_check_accepts_handwritten_cas;
          Alcotest.test_case "leader election is not consensus" `Quick
            test_leader_election_tree_is_not_consensus;
        ] );
      ( "consensus numbers (3 processes)",
        [
          Alcotest.test_case "cas solves 3 processes" `Quick test_cas_three_processes;
          Alcotest.test_case "swap cannot (consensus number 2)" `Quick
            test_swap_three_processes_impossible;
          Alcotest.test_case "tas bit cannot" `Quick test_tas_three_processes_impossible;
          Alcotest.test_case "check3 rejects pairwise-broken" `Quick
            test_check3_rejects_pairwise_broken;
        ] );
    ]
