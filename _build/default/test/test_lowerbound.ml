(* Tests for the lower-bound machinery: the executable adversaries of
   Theorems 4.1 and 5.1, the Lemma 9.1 growth adversary, the covering
   vocabulary, and the k-packing combinatorics of Lemma 7.1 (with qcheck
   properties). *)

(* --- Theorem 4.1 -------------------------------------------------------- *)

let test_interleave_breaks_victims () =
  List.iter
    (fun (name, victim) ->
      match Lowerbound.Interleave.run victim ~n:2 with
      | Lowerbound.Interleave.Agreement_violated { p_decision; q_decision; steps; _ } ->
        Alcotest.(check int) (name ^ ": p decides its solo value") 0 p_decision;
        Alcotest.(check int) (name ^ ": q decides its solo value") 1 q_decision;
        Alcotest.(check bool) (name ^ ": some writes happened") true (steps > 0)
      | Protocol_error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("naive", Lowerbound.Victims.naive_maxreg);
      ("rounds", Lowerbound.Victims.rounds_maxreg);
    ]

let test_interleave_rejects_two_registers () =
  match Lowerbound.Interleave.run Consensus.Maxreg_protocol.protocol_typed ~n:2 with
  | Lowerbound.Interleave.Agreement_violated _ ->
    Alcotest.fail "the two-register protocol cannot be broken by Theorem 4.1"
  | Protocol_error e ->
    Alcotest.(check bool) "rejected for second location" true
      (String.length e > 0)

(* --- Theorem 5.1 -------------------------------------------------------- *)

let test_fai_adversary_breaks_victim () =
  match Lowerbound.Fai_adversary.run Lowerbound.Victims.naive_fai ~n:2 with
  | Lowerbound.Fai_adversary.Agreement_violated { p_decision; q_decision; _ } ->
    Alcotest.(check bool) "both values decided" true
      ((p_decision = 0 && q_decision = 1) || (p_decision = 1 && q_decision = 0))
  | Protocol_error e -> Alcotest.fail e

let test_fai_adversary_rejects_non_of () =
  match Lowerbound.Fai_adversary.run Lowerbound.Victims.counting_fai ~n:2 with
  | Lowerbound.Fai_adversary.Agreement_violated _ ->
    Alcotest.fail "ticket victim is not obstruction-free; expected a protocol error"
  | Protocol_error e ->
    Alcotest.(check bool) "reported non-termination" true
      (String.length e > 0)

(* The single-location adversary must reject multi-location protocols
   rather than claim a break. *)
let test_fai_adversary_rejects_second_location () =
  let two_locs :
      (module Consensus.Proto.S
         with type I.op = Isets.Incr.op
          and type I.result = Model.Value.t) =
    (module struct
      module I = Isets.Incr.Make (struct
        let flavour = Isets.Incr.Fetch_increment
      end)

      let name = "two-locations"
      let locations ~n:_ = Some 2

      let proc ~n:_ ~pid:_ ~input =
        let open Model.Proc.Syntax in
        let* _ = Model.Proc.access 1 (Isets.Incr.Write (Bignum.of_int input)) in
        Model.Proc.return input
    end)
  in
  match Lowerbound.Fai_adversary.run two_locs ~n:2 with
  | Lowerbound.Fai_adversary.Agreement_violated _ ->
    Alcotest.fail "expected rejection for the second location"
  | Protocol_error e ->
    Alcotest.(check bool) "mentions the location" true
      (String.length e > 0)

(* --- Lemma 9.1 ---------------------------------------------------------- *)

let test_growth_monotone () =
  List.iter
    (fun flavour ->
      match
        Lowerbound.Growth.run
          (Consensus.Tracks_protocol.protocol_typed ~flavour)
          ~rounds:6 ~inputs:[| 0; 1; 0 |]
      with
      | Ok progress ->
        Alcotest.(check int) "six rounds" 6 (List.length progress);
        let ones = List.map (fun (p : Lowerbound.Growth.progress) -> p.ones) progress in
        let rec strictly_increasing = function
          | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
          | _ -> true
        in
        Alcotest.(check bool) "set locations strictly grow" true
          (strictly_increasing ones);
        Alcotest.(check bool) "at least one per round" true
          (List.nth ones 5 >= 6)
      | Error e -> Alcotest.fail e)
    [ Isets.Bits.Tas_only; Isets.Bits.Write1_only ]

let test_growth_input_validation () =
  Alcotest.check_raises "needs 3 processes" (Invalid_argument "Growth.run: need at least 3 processes")
    (fun () ->
      ignore
        (Lowerbound.Growth.run
           (Consensus.Tracks_protocol.protocol_typed ~flavour:Isets.Bits.Tas_only)
           ~inputs:[| 0; 1 |]));
  Alcotest.check_raises "needs both values"
    (Invalid_argument "Growth.run: inputs must contain both 0 and 1") (fun () ->
      ignore
        (Lowerbound.Growth.run
           (Consensus.Tracks_protocol.protocol_typed ~flavour:Isets.Bits.Tas_only)
           ~inputs:[| 0; 0; 0 |]))

(* --- Lemma 6.5 witness --------------------------------------------------- *)

let test_covering_witness () =
  List.iter
    (fun (name, proto, inputs, depth) ->
      match Lowerbound.Covering_witness.witness ~search_depth:depth proto ~inputs with
      | Ok r ->
        Alcotest.(check bool) (name ^ ": coverers exist") true (r.coverers <> []);
        Alcotest.(check bool) (name ^ ": L non-empty") true (r.covered <> []);
        Alcotest.(check bool)
          (name ^ ": fresh location outside L")
          false
          (List.mem r.fresh_location r.covered);
        Alcotest.(check bool)
          (name ^ ": bivalent after block write")
          true r.still_bivalent_after_block_write
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("registers n=3", Consensus.Rw_protocol.protocol, [| 0; 1; 2 |], 6);
      ("buffers-1 n=3", Consensus.Buffers_protocol.protocol ~capacity:1, [| 0; 1; 2 |], 6);
      ("buffers-2 n=4", Consensus.Buffers_protocol.protocol ~capacity:2, [| 0; 1; 2; 3 |], 6);
      ("swap n=3", Consensus.Swap_protocol.protocol, [| 0; 1; 2 |], 10);
    ]

let test_covering_witness_validation () =
  Alcotest.check_raises "needs 3 processes"
    (Invalid_argument "Covering_witness.witness: need at least 3 processes") (fun () ->
      ignore
        (Lowerbound.Covering_witness.witness Consensus.Rw_protocol.protocol
           ~inputs:[| 0; 1 |]))

(* --- covering vocabulary ------------------------------------------------ *)

let test_cover () =
  let trivial = function Isets.Rw.Read -> true | Isets.Rw.Write _ -> false in
  Alcotest.(check (list int)) "read covers nothing" []
    (Lowerbound.Cover.covered ~trivial [ (3, Isets.Rw.Read) ]);
  Alcotest.(check (list int)) "write covers its location" [ 3 ]
    (Lowerbound.Cover.covered ~trivial [ (3, Isets.Rw.Write Model.Value.Unit) ]);
  let per_process = [ [ 0 ]; [ 0; 1 ]; [ 1 ]; [ 0 ] ] in
  Alcotest.(check (list (pair int int))) "counts" [ (0, 3); (1, 2) ]
    (Lowerbound.Cover.counts per_process);
  Alcotest.(check (list int)) "2-covered" [ 1 ]
    (Lowerbound.Cover.k_covered per_process ~k:2);
  Alcotest.(check bool) "at most 3-covered" true
    (Lowerbound.Cover.at_most_k_covered per_process ~k:3);
  Alcotest.(check bool) "not at most 2-covered" false
    (Lowerbound.Cover.at_most_k_covered per_process ~k:2);
  Alcotest.(check bool) "empty-cover process fails" false
    (Lowerbound.Cover.at_most_k_covered [ [ 0 ]; [] ] ~k:5)

(* Integration: covering structure read off real machine configurations —
   drive swap-machine processes past their reads so each is poised at
   (covers) a write location, then check the cover combinatorics. *)
let test_cover_on_machine_configs () =
  let module M = Model.Machine.Make (Isets.Swap) in
  let n = 4 in
  let cfg =
    M.make ~n (fun pid ->
        let open Model.Proc.Syntax in
        (* a miniature swap-ish process: read both locations, then swap *)
        let* _ = Isets.Swap.read 0 in
        let* _ = Isets.Swap.read 1 in
        let* _ = Isets.Swap.swap (pid mod 2) (Model.Value.Int pid) in
        Model.Proc.return pid)
  in
  (* step everyone past their two reads *)
  let cfg =
    List.fold_left
      (fun cfg pid -> M.step (M.step cfg pid) pid)
      cfg [ 0; 1; 2; 3 ]
  in
  let trivial = function Isets.Swap.Read -> true | Isets.Swap.Swap _ -> false in
  let per_process =
    List.map
      (fun pid -> Lowerbound.Cover.covered ~trivial (Option.get (M.poised cfg pid)))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "each process covers its parity location"
    [ [ 0 ]; [ 1 ]; [ 0 ]; [ 1 ] ]
    per_process;
  Alcotest.(check (list int)) "both locations 2-covered" [ 0; 1 ]
    (Lowerbound.Cover.k_covered per_process ~k:2);
  Alcotest.(check bool) "at most 2-covered" true
    (Lowerbound.Cover.at_most_k_covered per_process ~k:2)

(* --- k-packings (Lemma 7.1) --------------------------------------------- *)

let test_packing_basics () =
  let covers = [| [ 0; 1 ]; [ 0 ]; [ 1; 2 ] |] in
  Alcotest.(check bool) "valid packing" true
    (Lowerbound.Packing.is_packing covers ~k:1 [| 1; 0; 2 |]);
  Alcotest.(check bool) "capacity violated" false
    (Lowerbound.Packing.is_packing covers ~k:1 [| 0; 0; 2 |]);
  Alcotest.(check bool) "coverage violated" false
    (Lowerbound.Packing.is_packing covers ~k:2 [| 2; 0; 2 |]);
  Alcotest.(check int) "load" 2
    (Lowerbound.Packing.load [| 0; 0; 1 |] ~loc:0)

let test_max_packing () =
  let covers = [| [ 0; 1 ]; [ 0 ]; [ 1; 2 ] |] in
  (match Lowerbound.Packing.max_packing covers ~k:1 with
   | Some p ->
     Alcotest.(check bool) "returned packing is valid" true
       (Lowerbound.Packing.is_packing covers ~k:1 p)
   | None -> Alcotest.fail "a 1-packing exists");
  (* two processes forced into the same single location: no 1-packing *)
  let covers = [| [ 0 ]; [ 0 ] |] in
  Alcotest.(check bool) "no 1-packing" true
    (Lowerbound.Packing.max_packing covers ~k:1 = None);
  Alcotest.(check bool) "2-packing exists" true
    (Lowerbound.Packing.max_packing covers ~k:2 <> None)

let test_transfer_lemma () =
  (* g packs both processes into location 0; h packs them apart. *)
  let covers = [| [ 0; 1 ]; [ 0; 2 ] |] in
  let g = [| 0; 0 |] and h = [| 1; 2 |] in
  (match Lowerbound.Packing.transfer covers ~k:2 ~g ~h ~from_loc:0 with
   | Some (g', locs, procs) ->
     Alcotest.(check bool) "g' valid" true (Lowerbound.Packing.is_packing covers ~k:2 g');
     Alcotest.(check int) "one fewer in loc 0" 1 (Lowerbound.Packing.load g' ~loc:0);
     Alcotest.(check bool) "path starts at 0" true (List.hd locs = 0);
     Alcotest.(check bool) "at least one process moved" true (procs <> [])
   | None -> Alcotest.fail "hypothesis holds, transfer must exist");
  (* hypothesis fails: at location 0, h (as g) packs 0 while g (as h)
     packs 2 — no surplus, so no transfer *)
  Alcotest.(check bool) "no transfer without surplus" true
    (Lowerbound.Packing.transfer covers ~k:2 ~g:h ~h:g ~from_loc:0 = None)

let test_fully_packed () =
  (* Both processes can only sit in location 0: it is fully 2-packed. *)
  let covers = [| [ 0 ]; [ 0 ] |] in
  let p = Option.get (Lowerbound.Packing.max_packing covers ~k:2) in
  Alcotest.(check (list int)) "fully packed" [ 0 ]
    (Lowerbound.Packing.fully_packed covers ~k:2 p);
  (* One process has an escape route: location 0 is no longer fully
     packed. *)
  let covers = [| [ 0 ]; [ 0; 1 ] |] in
  let p = [| 0; 0 |] in
  Alcotest.(check (list int)) "escape empties L" []
    (Lowerbound.Packing.fully_packed covers ~k:2 p)

(* qcheck: random cover structures *)

let covers_gen =
  QCheck2.Gen.(
    let* n_procs = int_range 1 6 in
    let* n_locs = int_range 1 5 in
    let* covers =
      array_size (pure n_procs)
        (let* k = int_range 1 n_locs in
         let* locs = list_size (pure k) (int_range 0 (n_locs - 1)) in
         pure (List.sort_uniq compare locs))
    in
    pure covers)

let prop_max_packing_valid =
  QCheck2.Test.make ~name:"max_packing returns valid packings" ~count:300
    QCheck2.Gen.(pair covers_gen (int_range 1 3))
    (fun (covers, k) ->
      match Lowerbound.Packing.max_packing covers ~k with
      | Some p -> Lowerbound.Packing.is_packing covers ~k p
      | None ->
        (* no packing: at least pigeonhole must forbid it on some subset —
           weak sanity: total capacity of the union of some cover sets is
           exceeded.  We only check the trivial global bound here. *)
        true)

let prop_transfer_preserves_counts =
  QCheck2.Test.make ~name:"Lemma 7.1: transfer re-packs exactly one process" ~count:300
    QCheck2.Gen.(pair covers_gen (int_range 1 3))
    (fun (covers, k) ->
      match Lowerbound.Packing.max_packing covers ~k with
      | None -> true
      | Some g ->
        (* derive a second packing by re-running with rotated covers *)
        let covers' = Array.map (fun l -> List.rev l) covers in
        (match Lowerbound.Packing.max_packing covers' ~k with
         | None -> true
         | Some h ->
           (* find a location where g packs more than h *)
           let locs = Array.to_list g @ Array.to_list h in
           (match
              List.find_opt
                (fun r ->
                  Lowerbound.Packing.load g ~loc:r > Lowerbound.Packing.load h ~loc:r)
                locs
            with
            | None -> true
            | Some r1 ->
              (match Lowerbound.Packing.transfer covers ~k ~g ~h ~from_loc:r1 with
               | None -> false (* hypothesis held; lemma demands a transfer *)
               | Some (g', locs_path, _) ->
                 let rt = List.nth locs_path (List.length locs_path - 1) in
                 Lowerbound.Packing.is_packing covers ~k g'
                 && Lowerbound.Packing.load g' ~loc:r1
                    = Lowerbound.Packing.load g ~loc:r1 - 1
                 && Lowerbound.Packing.load g' ~loc:rt
                    = Lowerbound.Packing.load g ~loc:rt + 1
                 && Lowerbound.Packing.load h ~loc:rt > Lowerbound.Packing.load g ~loc:rt
                 && Array.for_all
                      (fun r ->
                        r = r1 || r = rt
                        || Lowerbound.Packing.load g' ~loc:r
                           = Lowerbound.Packing.load g ~loc:r)
                      g))))

let prop_fully_packed_sound =
  QCheck2.Test.make ~name:"fully packed locations carry k in every found packing"
    ~count:200
    QCheck2.Gen.(pair covers_gen (int_range 1 3))
    (fun (covers, k) ->
      match Lowerbound.Packing.max_packing covers ~k with
      | None -> true
      | Some p ->
        let l = Lowerbound.Packing.fully_packed covers ~k p in
        (* any other packing we can construct must also pack k there *)
        let covers' = Array.map List.rev covers in
        (match Lowerbound.Packing.max_packing covers' ~k with
         | None -> true
         | Some q ->
           List.for_all (fun r -> Lowerbound.Packing.load q ~loc:r = k) l))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lowerbound"
    [
      ( "theorem 4.1",
        [
          Alcotest.test_case "interleave breaks victims" `Quick
            test_interleave_breaks_victims;
          Alcotest.test_case "rejects two registers" `Quick
            test_interleave_rejects_two_registers;
        ] );
      ( "theorem 5.1",
        [
          Alcotest.test_case "fai adversary breaks victim" `Quick
            test_fai_adversary_breaks_victim;
          Alcotest.test_case "rejects non-obstruction-free" `Quick
            test_fai_adversary_rejects_non_of;
          Alcotest.test_case "rejects second location" `Quick
            test_fai_adversary_rejects_second_location;
        ] );
      ( "lemma 9.1",
        [
          Alcotest.test_case "growth is monotone" `Quick test_growth_monotone;
          Alcotest.test_case "input validation" `Quick test_growth_input_validation;
        ] );
      ( "covering",
        [
          Alcotest.test_case "cover vocabulary" `Quick test_cover;
          Alcotest.test_case "Lemma 6.5 witness" `Quick test_covering_witness;
          Alcotest.test_case "witness validation" `Quick test_covering_witness_validation;
          Alcotest.test_case "cover on machine configs" `Quick
            test_cover_on_machine_configs;
        ] );
      ( "packing (lemma 7.1)",
        [
          Alcotest.test_case "basics" `Quick test_packing_basics;
          Alcotest.test_case "max packing" `Quick test_max_packing;
          Alcotest.test_case "transfer lemma" `Quick test_transfer_lemma;
          Alcotest.test_case "fully packed" `Quick test_fully_packed;
        ]
        @ q [ prop_max_packing_valid; prop_transfer_preserves_counts; prop_fully_packed_sound ]
      );
    ]
