(* Soak suite: a broad seeded sweep of every protocol under adversarial and
   fair schedules.  Deterministic (all seeds fixed), heavier than the unit
   battery; the point is breadth of explored interleavings. *)

let check_run ?(must_finish = true) ?(fuel = 30_000_000) name proto ~inputs ~sched =
  let report = Consensus.Driver.run ~fuel proto ~inputs ~sched in
  (match Consensus.Driver.check report ~inputs with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e));
  if must_finish && report.outcome <> `All_decided then
    Alcotest.fail (Printf.sprintf "%s: run did not finish" name)

let sweep name proto ~binary ~ns ~seeds =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let inputs =
            if binary then Array.init n (fun i -> (i + seed) land 1)
            else Array.init n (fun i -> (i * 3 + seed) mod n)
          in
          (* the sequential finish guarantees termination *)
          check_run name proto ~inputs
            ~sched:(Model.Sched.random_then_sequential ~seed ~prefix:(100 + (17 * seed)));
          (* a fair schedule gives no solo time: obstruction-freedom does
             not promise termination, so only agreement/validity are
             asserted; the fuel is small because livelocked history-based
             protocols accumulate quadratically expensive histories *)
          check_run ~must_finish:false ~fuel:10_000 name proto ~inputs
            ~sched:(Model.Sched.fair ~bound:(2 + (seed mod 5)) ~seed))
        seeds)
    ns

let seeds k = List.init k (fun i -> i + 1)

let light =
  [
    ("cas", Consensus.Cas_protocol.protocol, false);
    ("arith-mul", Consensus.Arith_protocols.mul, false);
    ("arith-add", Consensus.Arith_protocols.add, false);
    ("arith-set-bit", Consensus.Arith_protocols.set_bit, false);
    ("fetch-and-add", Consensus.Arith_protocols.faa, false);
    ("fetch-and-multiply", Consensus.Arith_protocols.fam, false);
    ("max-registers", Consensus.Maxreg_protocol.protocol, false);
    ("intro-faa2-tas", Consensus.Intro_protocols.faa2_tas, true);
    ("intro-dec-mul", Consensus.Intro_protocols.decmul, true);
    ("adopt-commit-ladder", Consensus.Adopt_commit_protocol.protocol, false);
    ("gr05-binary", Consensus.Tracks_protocol.binary ~flavour:Isets.Bits.Write1_only, true);
    ("tug-of-war-binary", Consensus.Tugofwar_protocol.binary, true);
    ("tug-of-war", Consensus.Tugofwar_protocol.protocol, false);
  ]

let medium =
  [
    ("swap", Consensus.Swap_protocol.protocol, false);
    ("rw-registers", Consensus.Rw_protocol.protocol, false);
    ("buffers-1", Consensus.Buffers_protocol.protocol ~capacity:1, false);
    ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2, false);
    ("buffers-3", Consensus.Buffers_protocol.protocol ~capacity:3, false);
    ("buffers-2+multi", Consensus.Buffers_protocol.multi_assignment_protocol ~capacity:2, false);
    ("hetero-[3;3;2]", Consensus.Hetero_protocol.protocol ~capacities:[ 3; 3; 2 ], false);
    ("earliest-writer", Consensus.Assignment_protocol.earliest_writer, false);
    ( "increment-logn",
      Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only,
      false );
    ("tracks-tas", Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only, false);
  ]

let heavy =
  [
    ("write01-binary", Consensus.Nlogn_protocol.binary ~flavour:Isets.Bits.Write01, true);
    ("write01-nlogn", Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Write01, false);
    ("tas-reset-nlogn", Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Tas_reset, false);
  ]

let test_light () =
  List.iter (fun (n, p, b) -> sweep n p ~binary:b ~ns:[ 2; 3; 4; 6 ] ~seeds:(seeds 25)) light

let test_medium () =
  List.iter (fun (n, p, b) -> sweep n p ~binary:b ~ns:[ 2; 3; 5 ] ~seeds:(seeds 12)) medium

let test_heavy () =
  List.iter (fun (n, p, b) -> sweep n p ~binary:b ~ns:[ 2; 4 ] ~seeds:(seeds 4)) heavy

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          Alcotest.test_case "light protocols, 25 seeds" `Slow test_light;
          Alcotest.test_case "medium protocols, 12 seeds" `Slow test_medium;
          Alcotest.test_case "heavy protocols, 4 seeds" `Slow test_heavy;
        ] );
    ]
