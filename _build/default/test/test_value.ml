(* Tests for the universal memory value type. *)

open Model

let v_int i = Value.Int i
let v_big i = Value.Big (Bignum.of_int i)

let test_equal () =
  Alcotest.(check bool) "bot = bot" true (Value.equal Value.Bot Value.Bot);
  Alcotest.(check bool) "int = int" true (Value.equal (v_int 3) (v_int 3));
  Alcotest.(check bool) "int <> int" false (Value.equal (v_int 3) (v_int 4));
  Alcotest.(check bool) "int = big (numeric)" true (Value.equal (v_int 3) (v_big 3));
  Alcotest.(check bool)
    "pairs" true
    (Value.equal (Value.Pair (v_int 1, Value.Bot)) (Value.Pair (v_int 1, Value.Bot)));
  Alcotest.(check bool)
    "vectors" true
    (Value.equal (Value.Vec [| v_int 1; v_int 2 |]) (Value.Vec [| v_int 1; v_int 2 |]));
  Alcotest.(check bool)
    "vector length matters" false
    (Value.equal (Value.Vec [| v_int 1 |]) (Value.Vec [| v_int 1; v_int 2 |]));
  Alcotest.(check bool)
    "tags distinguish writers" false
    (Value.equal (Value.Tag (0, 1, v_int 5)) (Value.Tag (1, 1, v_int 5)));
  Alcotest.(check bool)
    "tags distinguish sequence numbers" false
    (Value.equal (Value.Tag (0, 1, v_int 5)) (Value.Tag (0, 2, v_int 5)))

let test_compare_total_order () =
  let samples =
    [
      Value.Bot;
      Value.Unit;
      v_int (-1);
      v_int 0;
      v_int 7;
      v_big 7;
      Value.Pair (v_int 1, v_int 2);
      Value.Vec [| v_int 1 |];
      Value.Vec [| v_int 1; v_int 2 |];
      Value.Tag (0, 0, v_int 1);
      Value.Tag (2, 5, Value.Bot);
    ]
  in
  (* reflexive, antisymmetric, transitive on the sample set *)
  List.iter
    (fun a ->
      Alcotest.(check int) "reflexive" 0 (Value.compare a a);
      List.iter
        (fun c_ ->
          let ab = Value.compare a c_ and ba = Value.compare c_ a in
          Alcotest.(check bool) "antisymmetric" true (compare ab 0 = compare 0 ba))
        samples)
    samples;
  List.iter
    (fun a ->
      List.iter
        (fun bv ->
          List.iter
            (fun c ->
              if Value.compare a bv <= 0 && Value.compare bv c <= 0 then
                Alcotest.(check bool) "transitive" true (Value.compare a c <= 0))
            samples)
        samples)
    samples

let test_accessors () =
  Alcotest.(check int) "to_int_exn" 9 (Value.to_int_exn (v_int 9));
  Alcotest.check_raises "to_int_exn on Bot" (Invalid_argument "Value.to_int_exn: ⊥")
    (fun () -> ignore (Value.to_int_exn Value.Bot));
  Alcotest.(check string)
    "to_big_exn on Int" "12"
    (Bignum.to_string (Value.to_big_exn (v_int 12)));
  Alcotest.(check string)
    "to_big_exn on Big" "-3"
    (Bignum.to_string (Value.to_big_exn (v_big (-3))));
  Alcotest.(check bool)
    "untag strips" true
    (Value.equal (v_int 4) (Value.untag (Value.Tag (1, 2, v_int 4))));
  Alcotest.(check bool) "untag id" true (Value.equal (v_int 4) (Value.untag (v_int 4)))

let test_pp () =
  let s v = Format.asprintf "%a" Value.pp v in
  Alcotest.(check string) "bot" "⊥" (s Value.Bot);
  Alcotest.(check string) "int" "42" (s (v_int 42));
  Alcotest.(check string) "tag" "5@1.2" (s (Value.Tag (1, 2, v_int 5)));
  Alcotest.(check bool) "vec printable" true (String.length (s (Value.Vec [| v_int 1 |])) > 0)

let test_hash () =
  let vals = [ Value.Bot; Value.Unit; v_int 5; Value.Tag (1, 2, v_int 5) ] in
  List.iter
    (fun v -> Alcotest.(check int) "hash self-consistent" (Value.hash v) (Value.hash v))
    vals;
  Alcotest.(check bool)
    "equal values, equal hashes" true
    (Value.hash (Value.Vec [| v_int 1; v_int 2 |])
    = Value.hash (Value.Vec [| v_int 1; v_int 2 |]))

(* --- qcheck: order laws on random value trees --------------------------- *)

let value_gen =
  let open QCheck2.Gen in
  sized_size (int_range 0 4) (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [
                pure Value.Bot;
                pure Value.Unit;
                map (fun i -> Value.Int i) (int_range (-5) 5);
                map (fun i -> Value.Big (Bignum.of_int i)) (int_range (-5) 5);
              ]
          else
            oneof
              [
                map (fun i -> Value.Int i) (int_range (-5) 5);
                map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
                map (fun l -> Value.Vec (Array.of_list l))
                  (list_size (int_range 0 3) (self (n / 2)));
                map3 (fun p s v -> Value.Tag (p, s, v)) (int_range 0 3) (int_range 0 3)
                  (self (n / 2));
              ])
        n)

let prop_compare_reflexive =
  QCheck2.Test.make ~name:"compare is reflexive" ~count:300 value_gen (fun v ->
      Value.compare v v = 0 && Value.equal v v)

let prop_compare_antisymmetric =
  QCheck2.Test.make ~name:"compare is antisymmetric" ~count:300
    (QCheck2.Gen.pair value_gen value_gen)
    (fun (a, b) -> compare (Value.compare a b) 0 = compare 0 (Value.compare b a))

let prop_compare_transitive =
  QCheck2.Test.make ~name:"compare is transitive" ~count:300
    (QCheck2.Gen.triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

(* Int and Big representations of the same number are equal, so they must
   hash identically (this property caught a real bug). *)
let prop_equal_hash =
  QCheck2.Test.make ~name:"equal values hash equally (Int vs Big)" ~count:300
    (QCheck2.Gen.int_range (-1000) 1000)
    (fun i ->
      Value.equal (Value.Int i) (Value.Big (Bignum.of_int i))
      && Value.hash (Value.Int i) = Value.hash (Value.Big (Bignum.of_int i)))

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "compare total order" `Quick test_compare_total_order;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "hash" `Quick test_hash;
        ] );
      ( "order laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compare_reflexive;
            prop_compare_antisymmetric;
            prop_compare_transitive;
            prop_equal_hash;
          ] );
    ]
