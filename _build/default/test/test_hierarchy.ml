(* Tests for the Table 1 driver: every row runs, measures within its
   formula, and the rendered table is complete. *)

let rows = Hierarchy.rows ()

let test_row_inventory () =
  let ids = List.map (fun (r : Hierarchy.row) -> r.id) rows in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("row " ^ id ^ " present") true (List.mem id ids))
    [
      "tas"; "write1"; "write01"; "rw"; "tas-reset"; "swap"; "buffer-1"; "buffer-2";
      "buffer-3"; "multi-1"; "multi-2"; "multi-3"; "increment"; "fetch-incr";
      "max-register"; "cas"; "set-bit"; "add"; "multiply"; "fetch-add";
      "fetch-multiply"; "intro-faa2-tas"; "intro-dec-mul";
    ];
  Alcotest.(check bool) "at least the 12 Table 1 rows plus extras" true
    (List.length rows >= 20);
  (* ids unique *)
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_find () =
  (match Hierarchy.find "swap" with
   | Some r -> Alcotest.(check string) "found swap" "{read(), swap(x)}" r.iset
   | None -> Alcotest.fail "swap row missing");
  Alcotest.(check bool) "unknown id" true (Hierarchy.find "no-such-row" = None);
  match Hierarchy.find ~ells:[ 7 ] "buffer-7" with
  | Some r ->
    Alcotest.(check (option int)) "ceil(20/7)" (Some 3) (r.upper ~n:20)
  | None -> Alcotest.fail "custom ell row missing"

let test_measure_all_rows () =
  List.iter
    (fun (row : Hierarchy.row) ->
      List.iter
        (fun n ->
          match Hierarchy.measure ~seed:2 ~prefix:120 row ~n with
          | Error e -> Alcotest.fail (Printf.sprintf "%s n=%d: %s" row.id n e)
          | Ok m ->
            Alcotest.(check bool)
              (Printf.sprintf "%s n=%d measured>0" row.id n)
              true (m.measured > 0);
            (match m.allocated with
             | Some a ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s n=%d: %d <= allocated %d" row.id n m.measured a)
                 true (m.measured <= a)
             | None -> ()))
        [ 2; 3; 6 ])
    rows

let test_upper_formulas () =
  let upper id n =
    match Hierarchy.find id with
    | Some r -> r.upper ~n
    | None -> Alcotest.fail ("missing row " ^ id)
  in
  Alcotest.(check (option int)) "rw is n" (Some 9) (upper "rw" 9);
  Alcotest.(check (option int)) "swap is n-1" (Some 8) (upper "swap" 9);
  Alcotest.(check (option int)) "buffer-2 is ceil(n/2)" (Some 5) (upper "buffer-2" 9);
  Alcotest.(check (option int)) "buffer-3 is ceil(n/3)" (Some 3) (upper "buffer-3" 9);
  Alcotest.(check (option int)) "maxreg is 2" (Some 2) (upper "max-register" 9);
  Alcotest.(check (option int)) "cas is 1" (Some 1) (upper "cas" 9);
  Alcotest.(check (option int)) "tas unbounded" None (upper "tas" 9);
  Alcotest.(check (option int)) "increment O(log n): n=9 -> 4 rounds -> 14"
    (Some 14) (upper "increment" 9)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render () =
  let table = Hierarchy.render ~ells:[ 2 ] ~ns:[ 2; 3 ] () in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "table mentions %S" fragment)
        true
        (contains ~needle:fragment table))
    [ "swap"; "max"; "compare-and-swap"; "2-buffer-read" ];
  Alcotest.(check bool) "no measurement errors in the table" false
    (contains ~needle:"ERR" table)

let test_render_csv () =
  let csv = Hierarchy.render_csv ~ells:[ 2 ] ~ns:[ 2; 4 ] () in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
   | header :: _ ->
     Alcotest.(check string) "header"
       "id,iset,paper_lower,paper_upper,n,measured,allocated,steps" header
   | [] -> Alcotest.fail "empty csv");
  let rows = Hierarchy.rows ~ells:[ 2 ] () in
  Alcotest.(check int) "one line per (row, n) plus header"
    ((List.length rows * 2) + 1)
    (List.length lines);
  Alcotest.(check bool) "mentions cas" true
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "cas,") lines);
  Alcotest.(check bool) "no errors" true
    (not (List.exists (fun l -> contains ~needle:",error," l) lines))

let () =
  Alcotest.run "hierarchy"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "row inventory" `Quick test_row_inventory;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "measure all rows" `Quick test_measure_all_rows;
          Alcotest.test_case "upper formulas" `Quick test_upper_formulas;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "render csv" `Quick test_render_csv;
        ] );
    ]
