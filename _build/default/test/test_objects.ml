(* Tests for the simulated objects: counters in all their encodings, the
   ℓ-buffer history object, single-writer registers, snapshots and bit
   tracks. *)

open Model
open Proc.Syntax

let big_list = Alcotest.(list string)
let counts_to_strings a = Array.to_list (Array.map Bignum.to_string a)
let ints_to_strings l = List.map string_of_int l

(* Run one process to completion on a fresh machine of iset [I]. *)
let run_solo (type c o r) (module I : Iset.S with type cell = c and type op = o and type result = r)
    proc =
  let module M = Machine.Make (I) in
  let cfg = M.make ~n:1 (fun _ -> proc) in
  let cfg, outcome = M.run ~sched:(Sched.solo 0) cfg in
  (match outcome with `All_decided -> () | _ -> Alcotest.fail "solo run did not finish");
  (Option.get (M.decision cfg 0), fun loc -> M.cell cfg loc)

(* Drive [n] counter-user processes to completion under a schedule. *)
let run_many (type c o r) (module I : Iset.S with type cell = c and type op = o and type result = r)
    ~n ~sched procs =
  let module M = Machine.Make (I) in
  let cfg = M.make ~n (fun pid -> procs pid) in
  let cfg, outcome = M.run ~sched cfg in
  (match outcome with `All_decided -> () | _ -> Alcotest.fail "run did not finish");
  List.map snd (M.decisions cfg)

(* A counter exercise: perform [incs] (component indices) then scan. *)
let exercise (type o r) ((module C) : (o, r) Objects.Counter.t) incs =
  let rec go st = function
    | [] ->
      let* _, counts = C.scan st in
      Proc.return counts
    | i :: rest ->
      let* st = C.increment st i in
      go st rest
  in
  go C.init incs

let expect_counts name counter incs expected iset =
  let counts, _ = run_solo iset (exercise counter incs) in
  Alcotest.(check big_list)
    name
    (ints_to_strings expected)
    (counts_to_strings counts)

(* --- arithmetic counters ---------------------------------------------- *)

let test_mul_counter () =
  expect_counts "prime-exponent counts"
    (Objects.Arith_counters.mul ~components:3 ~loc:0)
    [ 0; 1; 1; 2; 1; 1 ]
    [ 1; 4; 1 ]
    (module Isets.Arith.Mul);
  (* the raw cell is the corresponding prime product: 2^1 * 3^3 * 5^2 *)
  let _, cell =
    run_solo (module Isets.Arith.Mul)
      (exercise (Objects.Arith_counters.mul ~components:3 ~loc:0) [ 0; 1; 1; 2; 1; 2 ])
  in
  Alcotest.(check string)
    "raw prime product 2*27*25" "1350"
    (Bignum.to_string (cell 0))

let test_add_counter () =
  expect_counts "base-3n digit counts"
    (Objects.Arith_counters.add ~components:4 ~n:4 ~loc:0)
    [ 3; 0; 0; 2; 3; 3 ]
    [ 2; 0; 1; 3 ]
    (module Isets.Arith.Add)

let test_add_counter_decrement () =
  let counter = Objects.Arith_counters.add ~components:2 ~n:3 ~loc:0 in
  let (module C) = counter in
  let proc =
    let* st = C.increment C.init 0 in
    let* st = C.increment st 0 in
    let* st = C.increment st 1 in
    let dec = Option.get C.decrement in
    let* st = dec st 0 in
    let* _, counts = C.scan st in
    Proc.return counts
  in
  let counts, _ = run_solo (module Isets.Arith.Add) proc in
  Alcotest.(check big_list) "2 incs - 1 dec" [ "1"; "1" ] (counts_to_strings counts)

let test_faa_counter () =
  expect_counts "fetch-and-add counter"
    (Objects.Arith_counters.faa ~components:3 ~n:3 ~loc:0)
    [ 2; 2; 0 ]
    [ 1; 0; 2 ]
    (module Isets.Arith.Faa)

let test_fam_counter () =
  expect_counts "fetch-and-multiply counter"
    (Objects.Arith_counters.fam ~components:2 ~loc:0)
    [ 1; 1; 1; 0 ]
    [ 1; 3 ]
    (module Isets.Arith.Fam)

let test_setbit_counter () =
  expect_counts "set-bit block counts"
    (Objects.Arith_counters.set_bit ~components:3 ~n:3 ~pid:1 ~loc:0)
    [ 0; 0; 2; 2 ]
    [ 2; 0; 2 ]
    (module Isets.Arith.Setbit)

let test_setbit_counter_two_processes () =
  (* Two processes incrementing disjointly must sum in the scan. *)
  let mk pid = exercise (Objects.Arith_counters.set_bit ~components:2 ~n:2 ~pid ~loc:0) in
  let decisions =
    run_many (module Isets.Arith.Setbit) ~n:2 ~sched:Sched.round_robin (fun pid ->
        if pid = 0 then mk 0 [ 0; 0; 0 ] else mk 1 [ 0; 1 ])
  in
  (* Final scans both happen after all increments under round robin?  Not
     necessarily — instead check each reported count is between the own
     contribution and the total. *)
  List.iter
    (fun counts ->
      let c0 = Bignum.to_int_exn counts.(0) and c1 = Bignum.to_int_exn counts.(1) in
      Alcotest.(check bool) "component 0 within range" true (c0 >= 0 && c0 <= 4);
      Alcotest.(check bool) "component 1 within range" true (c1 >= 0 && c1 <= 1))
    decisions

(* --- increment-location counter --------------------------------------- *)

let test_incr_counter () =
  expect_counts "increment locations"
    (Objects.Incr_counter.make ~components:3 ~base:0 ~flavour:Isets.Incr.Increment_only)
    [ 0; 1; 1; 2; 1 ]
    [ 1; 3; 1 ]
    (module Isets.Incr.Make (struct
      let flavour = Isets.Incr.Increment_only
    end))

(* --- rw counter -------------------------------------------------------- *)

let test_rw_counter () =
  expect_counts "single-writer register counter"
    (Objects.Rw_counter.make ~components:3 ~n:1 ~base:0 ~pid:0)
    [ 2; 2; 1; 0 ]
    [ 1; 1; 2 ]
    (module Isets.Rw)

let test_rw_counter_concurrent_sum () =
  let sched = Sched.random_then_sequential ~seed:11 ~prefix:60 in
  let decisions =
    run_many (module Isets.Rw) ~n:3 ~sched (fun pid ->
        exercise
          (Objects.Rw_counter.make ~components:2 ~n:3 ~base:0 ~pid)
          (if pid = 0 then [ 0; 0 ] else [ 1 ]))
  in
  (* The last process to finish performed its scan after every increment
     completed, so some decision must see the full totals. *)
  let full =
    List.exists
      (fun counts ->
        Bignum.to_int_exn counts.(0) = 2 && Bignum.to_int_exn counts.(1) = 2)
      decisions
  in
  Alcotest.(check bool) "some scan sees all increments" true full;
  (* And no scan can ever exceed the totals. *)
  List.iter
    (fun counts ->
      Alcotest.(check bool) "bounded by totals" true
        (Bignum.to_int_exn counts.(0) <= 2 && Bignum.to_int_exn counts.(1) <= 2))
    decisions

(* --- history object (Lemma 6.1) ---------------------------------------- *)

module B2 = Isets.Buffer_set.Make (struct
  let capacity = 2
  let multi_assignment = false
end)

let history_iset = (module B2 : Iset.S
                     with type cell = B2.cell
                      and type op = B2.op
                      and type result = B2.result)

let append_seq ~pid xs =
  let rec go seq = function
    | [] -> Objects.History.get ~loc:0
    | x :: rest ->
      let* () =
        Objects.History.append ~loc:0 ~elt:(Objects.History.tag ~pid ~seq (Value.Int x))
      in
      go (seq + 1) rest
  in
  go 0 xs

let payloads history = List.map (fun e -> Value.to_int_exn (Value.untag e)) history

let test_history_single_appender () =
  let h, _ = run_solo history_iset (append_seq ~pid:0 [ 10; 20; 30; 40; 50 ]) in
  Alcotest.(check (list int)) "full history in order" [ 10; 20; 30; 40; 50 ] (payloads h)

let test_history_two_appenders () =
  (* Two appenders (= ℓ) interleaved arbitrarily: every element appended
     must appear in the final history exactly once, in an order consistent
     with each appender's sequence. *)
  List.iter
    (fun seed ->
      let sched = Sched.random_then_sequential ~seed ~prefix:40 in
      let decisions =
        run_many history_iset ~n:2 ~sched (fun pid ->
            if pid = 0 then append_seq ~pid:0 [ 1; 2; 3 ] else append_seq ~pid:1 [ 11; 12; 13 ])
      in
      (* the last get sees everything; take the longer history *)
      let longest =
        List.fold_left (fun acc h -> if List.length h > List.length acc then h else acc)
          [] decisions
      in
      let ps = payloads longest in
      Alcotest.(check int) (Printf.sprintf "all six appends present (seed %d)" seed) 6
        (List.length ps);
      let sub l = List.filter (fun x -> List.mem x l) ps in
      Alcotest.(check (list int)) "pid 0 order preserved" [ 1; 2; 3 ] (sub [ 1; 2; 3 ]);
      Alcotest.(check (list int)) "pid 1 order preserved" [ 11; 12; 13 ]
        (sub [ 11; 12; 13 ]))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_history_figure1_regime () =
  (* The Figure 1 schedule: both appenders (ℓ = 2) read the empty buffer,
     then write back-to-back — their histories do not contain each other's
     element, yet reconstruction must keep both. *)
  let module M = Machine.Make (B2) in
  let cfg =
    M.make ~n:2 (fun pid ->
        append_seq ~pid (if pid = 0 then [ 100; 101 ] else [ 200 ]))
  in
  (* p0 and p1 both perform their first get (one read each), then both
     write, then p0 continues alone. *)
  let cfg = M.step (M.step cfg 0) 1 in  (* both reads *)
  let cfg = M.step (M.step cfg 0) 1 in  (* both writes, concurrent appends *)
  let cfg, _ = M.run ~sched:(Sched.solo 0) cfg in
  let cfg, _ = M.run ~sched:(Sched.solo 1) cfg in
  let h0 = Option.get (M.decision cfg 0) and h1 = Option.get (M.decision cfg 1) in
  Alcotest.(check (list int)) "p0 sees all three" [ 100; 200; 101 ] (payloads h0);
  Alcotest.(check (list int)) "p1 sees all three too" [ 100; 200; 101 ] (payloads h1)

let test_history_too_many_appenders_can_drop () =
  (* With three concurrent appenders on a 2-buffer (> ℓ), the oldest
     concurrent append is evicted before anyone records it: Lemma 6.1's
     bound is tight. *)
  let module M = Machine.Make (B2) in
  let cfg = M.make ~n:3 (fun pid -> append_seq ~pid [ pid + 1 ]) in
  let cfg = M.step (M.step (M.step cfg 0) 1) 2 in  (* three reads of ⊥⊥ *)
  let cfg = M.step (M.step (M.step cfg 0) 1) 2 in  (* three concurrent writes *)
  let cfg, _ = M.run ~sched:(Sched.solo 0) cfg in
  let h = Option.get (M.decision cfg 0) in
  Alcotest.(check bool)
    "an append was lost (3 appenders > capacity 2)" true
    (List.length (payloads h) < 3)

(* --- single-writer registers (Lemma 6.2) ------------------------------- *)

let test_swregs () =
  let regs = Objects.Swregs.create ~n:5 ~capacity:2 in
  Alcotest.(check int) "ceil(5/2) buffers" 3 (Objects.Swregs.buffers regs);
  let proc =
    let* () = Objects.Swregs.write regs ~pid:0 ~seq:0 (Value.Int 7) in
    let* () = Objects.Swregs.write regs ~pid:0 ~seq:1 (Value.Int 8) in
    let* v0 = Objects.Swregs.read regs ~reg:0 in
    let* v3 = Objects.Swregs.read regs ~reg:3 in
    let* values, total = Objects.Swregs.collect regs in
    Proc.return (v0, v3, values, total)
  in
  let (v0, v3, values, total), _ = run_solo history_iset proc in
  Alcotest.(check bool) "own register reads latest" true (Value.equal v0 (Value.Int 8));
  Alcotest.(check bool) "unwritten register is ⊥" true (Value.equal v3 Value.Bot);
  Alcotest.(check bool) "collect agrees" true (Value.equal values.(0) (Value.Int 8));
  Alcotest.(check int) "two writes collected" 2 total

let test_swregs_distinct_owners () =
  let regs = Objects.Swregs.create ~n:4 ~capacity:2 in
  let sched = Sched.random_then_sequential ~seed:3 ~prefix:30 in
  let decisions =
    run_many history_iset ~n:4 ~sched (fun pid ->
        let* () = Objects.Swregs.write regs ~pid ~seq:0 (Value.Int (100 + pid)) in
        let* values, _ = Objects.Swregs.collect regs in
        Proc.return values)
  in
  (* the last collector sees every register *)
  let complete =
    List.exists
      (fun values ->
        List.for_all
          (fun pid -> Value.equal values.(pid) (Value.Int (100 + pid)))
          [ 0; 1; 2; 3 ])
      decisions
  in
  Alcotest.(check bool) "some collect sees all four registers" true complete

(* --- snapshot ----------------------------------------------------------- *)

let test_double_collect_requires_stability () =
  (* A collect that changes on every execution never stabilises within the
     machine's fuel; one that stabilises returns the stable view. *)
  let module M = Machine.Make (Isets.Rw) in
  let proc =
    let* () = Isets.Rw.write 0 (Value.Int 1) in
    let* v =
      Objects.Snapshot.double_collect ~equal:Value.equal (Isets.Rw.read 0)
    in
    Proc.return v
  in
  let cfg = M.make ~n:1 (fun _ -> proc) in
  let cfg, outcome = M.run ~sched:(Sched.solo 0) cfg in
  Alcotest.(check bool) "solo double collect terminates" true (outcome = `All_decided);
  Alcotest.(check bool) "stable view" true
    (Value.equal (Option.get (M.decision cfg 0)) (Value.Int 1))

let test_k_stable_validation () =
  Alcotest.check_raises "k < 2 rejected"
    (Invalid_argument "Snapshot.k_stable_collect: k < 2") (fun () ->
      ignore (Objects.Snapshot.k_stable_collect ~k:1 ~equal:Value.equal (Isets.Rw.read 0)))

let test_double_collect_interference () =
  (* A writer keeps moving location 0 for 3 writes; the scanner's double
     collect must restart until the writer stops, then return the final
     value. *)
  let module M = Machine.Make (Isets.Rw) in
  let writer =
    let rec go i =
      if i > 3 then Proc.return Value.Unit
      else
        let* () = Isets.Rw.write 0 (Value.Int i) in
        go (i + 1)
    in
    go 1
  in
  let scanner = Objects.Snapshot.double_collect ~equal:Value.equal (Isets.Rw.read 0) in
  let cfg = M.make ~n:2 (fun pid -> if pid = 0 then writer else scanner) in
  (* Interleave: read, write, read (mismatch), write, read, read... *)
  let cfg, _ = M.run ~sched:(Sched.script [ 1; 0; 1; 0; 1; 0; 1; 1 ]) cfg in
  let cfg, _ = M.run ~sched:(Sched.solo 1) cfg in
  Alcotest.(check bool) "scanner decided after writer quiesced" true
    (M.decision cfg 1 <> None);
  Alcotest.(check bool) "scanner saw the last write" true
    (Value.equal (Option.get (M.decision cfg 1)) (Value.Int 3))

(* --- bit tracks --------------------------------------------------------- *)

module Bits_tas = Isets.Bits.Make (struct
  let flavour = Isets.Bits.Tas_only
end)

module Bits_rw01 = Isets.Bits.Make (struct
  let flavour = Isets.Bits.Write01
end)

let test_unbounded_tracks_solo () =
  let counter = Objects.Bit_tracks.unbounded ~components:3 ~flavour:Isets.Bits.Tas_only in
  let counts, cell =
    run_solo
      (module Bits_tas)
      (exercise counter [ 0; 2; 2; 0; 0 ])
  in
  Alcotest.(check big_list) "track counts" [ "3"; "0"; "2" ] (counts_to_strings counts);
  (* Track 0 occupies locations 0, 3, 6, ...: its first three are set. *)
  Alcotest.(check bool) "track 0 prefix" true (cell 0 && cell 3 && cell 6);
  Alcotest.(check bool) "track 0 stops" true (not (cell 9));
  Alcotest.(check bool) "track 1 empty" true (not (cell 1))

let test_unbounded_tracks_monotone_prefix () =
  (* Under arbitrary interleaving, each track's 1s must form a prefix. *)
  let counter () = Objects.Bit_tracks.unbounded ~components:2 ~flavour:Isets.Bits.Tas_only in
  let module M = Machine.Make (Bits_tas) in
  List.iter
    (fun seed ->
      let cfg =
        M.make ~n:3 (fun pid -> exercise (counter ()) (List.init 4 (fun i -> (pid + i) mod 2)))
      in
      let cfg, _ = M.run ~sched:(Sched.random_then_sequential ~seed ~prefix:50) cfg in
      List.iter
        (fun track ->
          let bit k = M.cell cfg (track + (k * 2)) in
          let rec first_zero k = if bit k then first_zero (k + 1) else k in
          let z = first_zero 0 in
          (* nothing set beyond the first zero within a window *)
          List.iter
            (fun k -> Alcotest.(check bool) "prefix property" false (bit (z + 1 + k)))
            (List.init 10 (fun i -> i)))
        [ 0; 1 ])
    [ 1; 2; 3; 4; 5 ]

let test_bounded_tracks () =
  let counter =
    Objects.Bit_tracks.bounded ~components:2 ~length:8 ~base:0 ~stability:2
      ~flavour:Isets.Bits.Write01
  in
  let (module C) = counter in
  let proc =
    let* st = C.increment C.init 0 in
    let* st = C.increment st 0 in
    let* st = C.increment st 1 in
    let dec = Option.get C.decrement in
    let* st = dec st 0 in
    let* st = dec st 1 in
    let* st = dec st 1 in
    (* empty decrement: no-op *)
    let* _, counts = C.scan st in
    Proc.return counts
  in
  let counts, _ = run_solo (module Bits_rw01) proc in
  Alcotest.(check big_list) "inc/dec counts" [ "1"; "0" ] (counts_to_strings counts)

let test_bounded_tracks_saturation () =
  let counter =
    Objects.Bit_tracks.bounded ~components:1 ~length:2 ~base:0 ~stability:2
      ~flavour:Isets.Bits.Write01
  in
  let (module C) = counter in
  let proc =
    let* st = C.increment C.init 0 in
    let* st = C.increment st 0 in
    let* st = C.increment st 0 in
    (* saturated: lost *)
    let* _, counts = C.scan st in
    Proc.return counts
  in
  let counts, _ = run_solo (module Bits_rw01) proc in
  Alcotest.(check big_list) "saturates at track length" [ "2" ] (counts_to_strings counts)

let test_bounded_tracks_requires_clearing () =
  Alcotest.check_raises "write1-only cannot clear"
    (Invalid_argument "Bit_tracks: flavour cannot clear bits") (fun () ->
      ignore
        (Objects.Bit_tracks.bounded ~components:2 ~length:4 ~base:0 ~stability:2
           ~flavour:Isets.Bits.Write1_only))

(* --- adopt-commit (AE14, conclusions) ------------------------------------ *)

module MRW = Machine.Make (Isets.Rw)

let run_adopt_commit ~m ~inputs ~sched =
  let cfg =
    MRW.make ~n:(Array.length inputs) (fun pid ->
        Objects.Adopt_commit.propose ~m ~base:0 ~value:inputs.(pid))
  in
  let cfg, outcome = MRW.run ~sched cfg in
  (match outcome with `All_decided -> () | _ -> Alcotest.fail "adopt-commit stalled");
  List.map snd (MRW.decisions cfg)

let test_adopt_commit_solo_commits () =
  List.iter
    (fun v ->
      match run_adopt_commit ~m:3 ~inputs:[| v |] ~sched:(Sched.solo 0) with
      | [ (Objects.Adopt_commit.Commit, w) ] ->
        Alcotest.(check int) "solo commits own value" v w
      | _ -> Alcotest.fail "solo propose must commit")
    [ 0; 1; 2 ]

let test_adopt_commit_properties () =
  (* validity, coherence and convergence over many adversarial schedules *)
  List.iter
    (fun seed ->
      List.iter
        (fun inputs ->
          let outputs =
            run_adopt_commit ~m:3 ~inputs
              ~sched:(Sched.random_then_sequential ~seed ~prefix:40)
          in
          (* validity *)
          List.iter
            (fun (_, w) ->
              Alcotest.(check bool) "validity" true (Array.exists (( = ) w) inputs))
            outputs;
          (* coherence *)
          (match List.find_opt (fun (g, _) -> g = Objects.Adopt_commit.Commit) outputs with
           | Some (_, w) ->
             List.iter
               (fun (_, w') -> Alcotest.(check int) "coherence" w w')
               outputs
           | None -> ());
          (* convergence *)
          let first = inputs.(0) in
          if Array.for_all (( = ) first) inputs then
            List.iter
              (fun (g, w) ->
                Alcotest.(check bool) "convergence" true
                  (g = Objects.Adopt_commit.Commit && w = first))
              outputs)
        [ [| 0; 1 |]; [| 1; 1 |]; [| 0; 1; 2 |]; [| 2; 2; 2 |]; [| 0; 0; 1; 2 |] ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_adopt_commit_locations () =
  Alcotest.(check int) "m+1 locations" 4 (Objects.Adopt_commit.locations ~m:3)

(* --- counter argmax ----------------------------------------------------- *)

let test_argmax () =
  let a = Array.map Bignum.of_int [| 3; 7; 7; 1 |] in
  Alcotest.(check int) "smallest index wins ties" 1 (Objects.Counter.argmax a);
  Alcotest.(check int) "excluding the leader" 2 (Objects.Counter.argmax ~excluding:1 a);
  Alcotest.(check int) "single component" 0
    (Objects.Counter.argmax [| Bignum.zero |]);
  Alcotest.check_raises "no eligible component"
    (Invalid_argument "Counter.argmax: no eligible component") (fun () ->
      ignore (Objects.Counter.argmax ~excluding:0 [| Bignum.zero |]))

let () =
  Alcotest.run "objects"
    [
      ( "counters",
        [
          Alcotest.test_case "mul counter" `Quick test_mul_counter;
          Alcotest.test_case "add counter" `Quick test_add_counter;
          Alcotest.test_case "add counter decrement" `Quick test_add_counter_decrement;
          Alcotest.test_case "faa counter" `Quick test_faa_counter;
          Alcotest.test_case "fam counter" `Quick test_fam_counter;
          Alcotest.test_case "set-bit counter" `Quick test_setbit_counter;
          Alcotest.test_case "set-bit two processes" `Quick test_setbit_counter_two_processes;
          Alcotest.test_case "incr counter" `Quick test_incr_counter;
          Alcotest.test_case "rw counter" `Quick test_rw_counter;
          Alcotest.test_case "rw counter concurrent sum" `Quick test_rw_counter_concurrent_sum;
          Alcotest.test_case "argmax" `Quick test_argmax;
        ] );
      ( "history",
        [
          Alcotest.test_case "single appender" `Quick test_history_single_appender;
          Alcotest.test_case "two appenders" `Quick test_history_two_appenders;
          Alcotest.test_case "figure 1 regime" `Quick test_history_figure1_regime;
          Alcotest.test_case "too many appenders drop" `Quick
            test_history_too_many_appenders_can_drop;
        ] );
      ( "swregs",
        [
          Alcotest.test_case "read/write/collect" `Quick test_swregs;
          Alcotest.test_case "distinct owners" `Quick test_swregs_distinct_owners;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "double collect solo" `Quick test_double_collect_requires_stability;
          Alcotest.test_case "k-stable validation" `Quick test_k_stable_validation;
          Alcotest.test_case "double collect interference" `Quick
            test_double_collect_interference;
        ] );
      ( "adopt-commit",
        [
          Alcotest.test_case "solo commits" `Quick test_adopt_commit_solo_commits;
          Alcotest.test_case "validity/coherence/convergence" `Quick
            test_adopt_commit_properties;
          Alcotest.test_case "locations" `Quick test_adopt_commit_locations;
        ] );
      ( "bit tracks",
        [
          Alcotest.test_case "unbounded solo" `Quick test_unbounded_tracks_solo;
          Alcotest.test_case "unbounded prefix property" `Quick
            test_unbounded_tracks_monotone_prefix;
          Alcotest.test_case "bounded inc/dec" `Quick test_bounded_tracks;
          Alcotest.test_case "bounded saturation" `Quick test_bounded_tracks_saturation;
          Alcotest.test_case "bounded requires clearing" `Quick
            test_bounded_tracks_requires_clearing;
        ] );
    ]
