(* Tests for the arbitrary-precision integer substrate.

   Strategy: check exact agreement with native int arithmetic wherever the
   values fit, and algebraic identities (which need no oracle) on values
   far beyond the native range. *)

let b = Bignum.of_int

let check_big msg expected actual =
  Alcotest.(check string) msg (Bignum.to_string expected) (Bignum.to_string actual)

(* --- unit tests ------------------------------------------------------- *)

let test_constants () =
  Alcotest.(check string) "zero" "0" (Bignum.to_string Bignum.zero);
  Alcotest.(check string) "one" "1" (Bignum.to_string Bignum.one);
  Alcotest.(check string) "two" "2" (Bignum.to_string Bignum.two);
  Alcotest.(check string) "minus one" "-1" (Bignum.to_string Bignum.minus_one);
  Alcotest.(check bool) "zero is zero" true (Bignum.is_zero Bignum.zero);
  Alcotest.(check bool) "one is not zero" false (Bignum.is_zero Bignum.one)

let test_of_to_int () =
  List.iter
    (fun i ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" i)
        (Some i)
        (Bignum.to_int (b i)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; -(1 lsl 30); (1 lsl 62) - 1; max_int; min_int ]

let test_out_of_range () =
  let big = Bignum.mul (b max_int) (b 2) in
  Alcotest.(check (option int)) "2*max_int does not fit" None (Bignum.to_int big);
  Alcotest.check_raises "to_int_exn raises"
    (Invalid_argument "Bignum.to_int_exn: out of range") (fun () ->
      ignore (Bignum.to_int_exn big))

let test_to_string () =
  check_big "10^18" (b 1_000_000_000_000_000_000) (Bignum.pow (b 10) 18);
  Alcotest.(check string)
    "10^40"
    ("1" ^ String.make 40 '0')
    (Bignum.to_string (Bignum.pow (b 10) 40));
  Alcotest.(check string)
    "-(10^40)"
    ("-1" ^ String.make 40 '0')
    (Bignum.to_string (Bignum.neg (Bignum.pow (b 10) 40)))

let test_of_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Bignum.to_string (Bignum.of_string s)))
    [ "0"; "1"; "-1"; "123456789"; "-987654321"; "123456789012345678901234567890" ];
  Alcotest.(check string) "+7 parses" "7" (Bignum.to_string (Bignum.of_string "+7"));
  Alcotest.check_raises "empty" (Invalid_argument "Bignum.of_string: empty") (fun () ->
      ignore (Bignum.of_string ""));
  Alcotest.check_raises "garbage" (Invalid_argument "Bignum.of_string: bad digit")
    (fun () -> ignore (Bignum.of_string "12x3"))

let test_compare () =
  Alcotest.(check bool) "1 < 2" true (Bignum.compare (b 1) (b 2) < 0);
  Alcotest.(check bool) "-5 < 3" true (Bignum.compare (b (-5)) (b 3) < 0);
  Alcotest.(check bool) "-5 < -3" true (Bignum.compare (b (-5)) (b (-3)) < 0);
  Alcotest.(check bool) "equal" true (Bignum.equal (b 17) (b 17));
  let big = Bignum.pow (b 10) 30 in
  Alcotest.(check bool) "10^30 > max_int" true (Bignum.compare big (b max_int) > 0);
  Alcotest.(check bool)
    "min/max" true
    (Bignum.equal (Bignum.min (b 3) (b 5)) (b 3)
    && Bignum.equal (Bignum.max (b 3) (b 5)) (b 5));
  Alcotest.(check int) "sign pos" 1 (Bignum.sign (b 9));
  Alcotest.(check int) "sign neg" (-1) (Bignum.sign (b (-9)));
  Alcotest.(check int) "sign zero" 0 (Bignum.sign Bignum.zero)

let test_divmod_basic () =
  let q, r = Bignum.divmod (b 17) (b 5) in
  check_big "17/5 q" (b 3) q;
  check_big "17 mod 5" (b 2) r;
  let q, r = Bignum.divmod (b (-17)) (b 5) in
  check_big "-17/5 q (truncation)" (b (-3)) q;
  check_big "-17 mod 5 (sign of dividend)" (b (-2)) r;
  let q, r = Bignum.divmod (b 17) (b (-5)) in
  check_big "17/-5 q" (b (-3)) q;
  check_big "17 mod -5" (b 2) r;
  let q, r = Bignum.divmod (b 3) (b 10) in
  check_big "small/big q" Bignum.zero q;
  check_big "small/big r" (b 3) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod (b 1) Bignum.zero))

let test_divmod_small () =
  let q, r = Bignum.divmod_small (b 1_000_000_007) 97 in
  Alcotest.(check int) "rem" (1_000_000_007 mod 97) r;
  check_big "quot" (b (1_000_000_007 / 97)) q;
  let q, r = Bignum.divmod_small (b (-100)) 7 in
  Alcotest.(check int) "neg rem" (-2) r;
  check_big "neg quot" (b (-14)) q;
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Bignum.divmod_small: divisor out of range") (fun () ->
      ignore (Bignum.divmod_small (b 1) 0))

let test_pow () =
  check_big "2^61" (b (1 lsl 61)) (Bignum.pow (b 2) 61);
  Alcotest.(check string)
    "min_int = -(2^62)" (string_of_int min_int)
    (Bignum.to_string (Bignum.neg (Bignum.pow (b 2) 62)));
  check_big "3^0" Bignum.one (Bignum.pow (b 3) 0);
  check_big "0^0" Bignum.one (Bignum.pow Bignum.zero 0);
  check_big "(-2)^3" (b (-8)) (Bignum.pow (b (-2)) 3);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bignum.pow: negative exponent") (fun () ->
      ignore (Bignum.pow (b 2) (-1)))

let test_bits () =
  let x = b 0b1011_0100 in
  Alcotest.(check bool) "bit 2" true (Bignum.bit x 2);
  Alcotest.(check bool) "bit 0" false (Bignum.bit x 0);
  Alcotest.(check bool) "bit beyond" false (Bignum.bit x 1000);
  Alcotest.(check int) "num_bits" 8 (Bignum.num_bits x);
  Alcotest.(check int) "num_bits 0" 0 (Bignum.num_bits Bignum.zero);
  check_big "set bit 0" (b 0b1011_0101) (Bignum.set_bit x 0);
  check_big "set existing bit" x (Bignum.set_bit x 2);
  let far = Bignum.set_bit Bignum.zero 200 in
  Alcotest.(check bool) "far bit set" true (Bignum.bit far 200);
  Alcotest.(check int) "far num_bits" 201 (Bignum.num_bits far);
  check_big "2^200 roundtrip" (Bignum.pow (b 2) 200) far

let test_shifts () =
  check_big "13 << 40" (b (13 lsl 40)) (Bignum.shift_left (b 13) 40);
  check_big "13 << 0" (b 13) (Bignum.shift_left (b 13) 0);
  check_big "(13<<40) >> 40" (b 13) (Bignum.shift_right (b (13 lsl 40)) 40);
  check_big "shift right to zero" Bignum.zero (Bignum.shift_right (b 13) 10);
  check_big "big shift roundtrip" (b 9)
    (Bignum.shift_right (Bignum.shift_left (b 9) 500) 500)

let test_valuation () =
  let x = Bignum.mul (Bignum.pow (b 3) 7) (b 20) in
  let k, rest = Bignum.valuation x 3 in
  Alcotest.(check int) "3-valuation" 7 k;
  check_big "cofactor" (b 20) rest;
  let k, rest = Bignum.valuation (b 20) 3 in
  Alcotest.(check int) "0-valuation" 0 k;
  check_big "cofactor unchanged" (b 20) rest;
  let k, _ = Bignum.valuation (Bignum.pow (b 5) 31) 5 in
  Alcotest.(check int) "pure power" 31 k

let test_digits () =
  Alcotest.(check (list int)) "digits of 0" [] (Bignum.digits Bignum.zero 10);
  Alcotest.(check (list int)) "1234 base 10" [ 4; 3; 2; 1 ] (Bignum.digits (b 1234) 10);
  Alcotest.(check (list int)) "base 16" [ 15; 15 ] (Bignum.digits (b 255) 16);
  (* base-3n counter encoding: digit i of sum_i d_i (3n)^i *)
  let radix = 12 in
  let x =
    List.fold_left
      (fun acc (i, d) -> Bignum.add acc (Bignum.mul_int (Bignum.pow (b radix) i) d))
      Bignum.zero
      [ (0, 5); (1, 0); (2, 11); (3, 1) ]
  in
  Alcotest.(check (list int)) "counter digits" [ 5; 0; 11; 1 ] (Bignum.digits x radix)

let test_succ_pred () =
  check_big "succ -1" Bignum.zero (Bignum.succ Bignum.minus_one);
  check_big "pred 0" Bignum.minus_one (Bignum.pred Bignum.zero);
  let x = Bignum.pow (b 2) 100 in
  check_big "pred succ" x (Bignum.pred (Bignum.succ x))

let test_carry_boundaries () =
  (* Exercise digit-boundary carries around powers of the internal base. *)
  List.iter
    (fun e ->
      let p = Bignum.pow (b 2) e in
      check_big
        (Printf.sprintf "2^%d = (2^%d - 1) + 1" e e)
        p
        (Bignum.add (Bignum.sub p Bignum.one) Bignum.one);
      check_big
        (Printf.sprintf "2^%d * 2 / 2" e)
        p
        (fst (Bignum.divmod (Bignum.mul p (b 2)) (b 2))))
    [ 30; 31; 32; 61; 62; 63; 93; 124 ]

(* --- properties ------------------------------------------------------- *)

let small_int = QCheck2.Gen.int_range (-1_000_000) 1_000_000
let pair_gen = QCheck2.Gen.pair small_int small_int

let prop_add =
  QCheck2.Test.make ~name:"add agrees with int" ~count:500 pair_gen (fun (x, y) ->
      Bignum.to_int (Bignum.add (b x) (b y)) = Some (x + y))

let prop_sub =
  QCheck2.Test.make ~name:"sub agrees with int" ~count:500 pair_gen (fun (x, y) ->
      Bignum.to_int (Bignum.sub (b x) (b y)) = Some (x - y))

let prop_mul =
  QCheck2.Test.make ~name:"mul agrees with int" ~count:500 pair_gen (fun (x, y) ->
      Bignum.to_int (Bignum.mul (b x) (b y)) = Some (x * y))

let prop_divmod =
  QCheck2.Test.make ~name:"divmod agrees with int" ~count:500
    (QCheck2.Gen.pair small_int (QCheck2.Gen.int_range 1 100_000))
    (fun (x, y) ->
      let q, r = Bignum.divmod (b x) (b y) in
      (* OCaml's / and mod also truncate toward zero. *)
      Bignum.to_int q = Some (x / y) && Bignum.to_int r = Some (x mod y))

let prop_divmod_small =
  QCheck2.Test.make ~name:"divmod_small agrees with divmod" ~count:500
    (QCheck2.Gen.pair small_int (QCheck2.Gen.int_range 1 1_000_000))
    (fun (x, y) ->
      let q1, r1 = Bignum.divmod (b x) (b y) in
      let q2, r2 = Bignum.divmod_small (b x) y in
      Bignum.equal q1 q2 && Bignum.to_int r1 = Some r2)

let prop_compare =
  QCheck2.Test.make ~name:"compare agrees with int" ~count:500 pair_gen (fun (x, y) ->
      compare x y = Bignum.compare (b x) (b y))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string roundtrip" ~count:300
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 6) small_int)
    (fun xs ->
      (* build a big number as a polynomial in 10^9 *)
      let x =
        List.fold_left
          (fun acc d -> Bignum.add (Bignum.mul acc (b 1_000_000_000)) (b d))
          Bignum.zero xs
      in
      Bignum.equal x (Bignum.of_string (Bignum.to_string x)))

let prop_big_identities =
  QCheck2.Test.make ~name:"(x+y)^2 identity on huge values" ~count:100 pair_gen
    (fun (x, y) ->
      let x = Bignum.mul (b x) (Bignum.pow (b 2) 100)
      and y = Bignum.mul (b y) (Bignum.pow (b 3) 50) in
      let lhs = Bignum.mul (Bignum.add x y) (Bignum.add x y) in
      let rhs =
        Bignum.add
          (Bignum.add (Bignum.mul x x) (Bignum.mul (Bignum.mul (b 2) x) y))
          (Bignum.mul y y)
      in
      Bignum.equal lhs rhs)

let prop_divmod_reconstruction =
  QCheck2.Test.make ~name:"a = q*b + r with |r| < |b| on huge values" ~count:200
    (QCheck2.Gen.quad small_int small_int small_int (QCheck2.Gen.int_range 1 1000))
    (fun (x, y, z, w) ->
      let a = Bignum.add (Bignum.mul (b x) (Bignum.pow (b 7) 40)) (b y) in
      let d = Bignum.add (Bignum.mul (b z) (b 1_000_003)) (b w) in
      if Bignum.is_zero d then true
      else begin
        let q, r = Bignum.divmod a d in
        Bignum.equal a (Bignum.add (Bignum.mul q d) r)
        && Bignum.compare (Bignum.abs r) (Bignum.abs d) < 0
        && (Bignum.is_zero r || Bignum.sign r = Bignum.sign a)
      end)

let prop_hash_consistent =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:300 small_int (fun x ->
      Bignum.hash (b x) = Bignum.hash (Bignum.add (b x) Bignum.zero)
      && Bignum.hash (b x) = Bignum.hash (Bignum.sub (Bignum.add (b x) (b 17)) (b 17)))

let prop_valuation =
  QCheck2.Test.make ~name:"valuation reconstructs its input" ~count:200
    (QCheck2.Gen.triple (QCheck2.Gen.int_range 1 10_000) (QCheck2.Gen.int_range 0 20)
       (QCheck2.Gen.int_range 2 50))
    (fun (m, e, p) ->
      let x = Bignum.mul_int (Bignum.pow (b p) e) m in
      let k, rest = Bignum.valuation x p in
      k >= e && Bignum.equal x (Bignum.mul (Bignum.pow (b p) k) rest))

(* --- primes ----------------------------------------------------------- *)

let test_primes () =
  Alcotest.(check (list int))
    "first 10 primes"
    [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ]
    (Array.to_list (Primes.first 10));
  Alcotest.(check int) "nth 0" 2 (Primes.nth 0);
  Alcotest.(check int) "nth 5" 13 (Primes.nth 5);
  Alcotest.(check int) "next above 13" 17 (Primes.next_above 13);
  Alcotest.(check int) "next above 1" 2 (Primes.next_above 1);
  Alcotest.(check int) "next above 0" 2 (Primes.next_above 0);
  Alcotest.(check bool) "97 prime" true (Primes.is_prime 97);
  Alcotest.(check bool) "1 not prime" false (Primes.is_prime 1);
  Alcotest.(check bool) "91 not prime" false (Primes.is_prime 91)

let prop_primes =
  QCheck2.Test.make ~name:"next_above is prime and minimal" ~count:200
    (QCheck2.Gen.int_range 0 5000)
    (fun n ->
      let p = Primes.next_above n in
      Primes.is_prime p
      && p > n
      && not (List.exists Primes.is_prime (List.init (p - n - 1) (fun i -> n + 1 + i))))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bignum"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "divmod" `Quick test_divmod_basic;
          Alcotest.test_case "divmod_small" `Quick test_divmod_small;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "valuation" `Quick test_valuation;
          Alcotest.test_case "digits" `Quick test_digits;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "carry boundaries" `Quick test_carry_boundaries;
          Alcotest.test_case "primes" `Quick test_primes;
        ] );
      ( "properties",
        q
          [
            prop_add;
            prop_sub;
            prop_mul;
            prop_divmod;
            prop_divmod_small;
            prop_compare;
            prop_string_roundtrip;
            prop_big_identities;
            prop_divmod_reconstruction;
            prop_hash_consistent;
            prop_valuation;
            prop_primes;
          ] );
    ]
