(* Tests for the universal construction (one history object implements any
   sequential object) and the heterogeneous-buffer machinery. *)

open Model
open Proc.Syntax

(* --- a FIFO queue specification ---------------------------------------- *)

type queue_op = Enqueue of int | Dequeue

let queue_spec : (int list, queue_op, int option) Objects.Universal.spec =
  {
    initial = [];
    apply =
      (fun q op ->
        match op with
        | Enqueue x -> (q @ [ x ], None)
        | Dequeue -> (match q with [] -> ([], None) | x :: rest -> (rest, Some x)));
    encode =
      (function
        | Enqueue x -> Value.Pair (Value.Int 0, Value.Int x)
        | Dequeue -> Value.Pair (Value.Int 1, Value.Unit));
    decode =
      (function
        | Value.Pair (Value.Int 0, Value.Int x) -> Enqueue x
        | Value.Pair (Value.Int 1, Value.Unit) -> Dequeue
        | v -> Format.kasprintf invalid_arg "bad queue op %a" Value.pp v);
  }

module B3 = Isets.Buffer_set.Make (struct
  let capacity = 3
  let multi_assignment = false
end)

module M = Machine.Make (B3)

let run_procs ~n ~sched procs =
  let cfg = M.make ~n procs in
  let cfg, outcome = M.run ~sched cfg in
  (match outcome with `All_decided -> () | _ -> Alcotest.fail "run did not finish");
  cfg

let test_queue_sequential () =
  let q = Objects.Universal.create ~loc:0 queue_spec in
  let proc =
    let* r1 = Objects.Universal.invoke q ~pid:0 ~seq:0 (Enqueue 10) in
    let* r2 = Objects.Universal.invoke q ~pid:0 ~seq:1 (Enqueue 20) in
    let* r3 = Objects.Universal.invoke q ~pid:0 ~seq:2 Dequeue in
    let* r4 = Objects.Universal.invoke q ~pid:0 ~seq:3 Dequeue in
    let* r5 = Objects.Universal.invoke q ~pid:0 ~seq:4 Dequeue in
    let* state = Objects.Universal.observe q in
    Proc.return (r1, r2, r3, r4, r5, state)
  in
  let cfg = run_procs ~n:1 ~sched:(Sched.solo 0) (fun _ -> proc) in
  let r1, r2, r3, r4, r5, state = Option.get (M.decision cfg 0) in
  Alcotest.(check (option int)) "enqueue returns nothing" None r1;
  Alcotest.(check (option int)) "enqueue returns nothing" None r2;
  Alcotest.(check (option int)) "fifo first" (Some 10) r3;
  Alcotest.(check (option int)) "fifo second" (Some 20) r4;
  Alcotest.(check (option int)) "empty dequeue" None r5;
  Alcotest.(check (list int)) "final state empty" [] state

let test_queue_concurrent_linearizable () =
  (* Three producers (= ℓ appenders) each enqueue two items under random
     schedules; afterwards the queue must contain all six items, with each
     producer's items in its program order. *)
  List.iter
    (fun seed ->
      let q = Objects.Universal.create ~loc:0 queue_spec in
      let producer pid =
        let* _ = Objects.Universal.invoke q ~pid ~seq:0 (Enqueue (10 * (pid + 1))) in
        let* _ = Objects.Universal.invoke q ~pid ~seq:1 (Enqueue ((10 * (pid + 1)) + 1)) in
        Objects.Universal.observe q
      in
      let cfg =
        run_procs ~n:3
          ~sched:(Sched.random_then_sequential ~seed ~prefix:60)
          (fun pid -> producer pid)
      in
      (* the longest observed state is the full queue *)
      let final =
        List.fold_left
          (fun acc (_, st) -> if List.length st > List.length acc then st else acc)
          []
          (M.decisions cfg)
      in
      Alcotest.(check int)
        (Printf.sprintf "all six enqueues survive (seed %d)" seed)
        6 (List.length final);
      List.iter
        (fun pid ->
          let mine = List.filter (fun x -> x / 10 = pid + 1) final in
          Alcotest.(check (list int))
            (Printf.sprintf "producer %d order (seed %d)" pid seed)
            [ 10 * (pid + 1); (10 * (pid + 1)) + 1 ]
            mine)
        [ 0; 1; 2 ])
    [ 1; 2; 3; 4; 5; 6 ]

let test_invoke_returns_own_result () =
  (* Two processes race dequeues after a seeded queue: exactly one gets the
     item under every schedule explored. *)
  let q = Objects.Universal.create ~loc:0 queue_spec in
  let seeder =
    let* _ = Objects.Universal.invoke q ~pid:0 ~seq:0 (Enqueue 7) in
    Objects.Universal.invoke q ~pid:0 ~seq:1 Dequeue
  in
  let racer = Objects.Universal.invoke q ~pid:1 ~seq:0 Dequeue in
  List.iter
    (fun seed ->
      let cfg =
        run_procs ~n:2
          ~sched:(Sched.random_then_sequential ~seed ~prefix:20)
          (fun pid -> if pid = 0 then seeder else racer)
      in
      let r0 = Option.get (M.decision cfg 0) and r1 = Option.get (M.decision cfg 1) in
      let got = List.filter (fun r -> r = Some 7) [ r0; r1 ] in
      Alcotest.(check int)
        (Printf.sprintf "exactly one dequeue wins (seed %d)" seed)
        1 (List.length got))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- heterogeneous buffers --------------------------------------------- *)

module H = Isets.Hetero_buffer
module MH = Machine.Make (Isets.Hetero_buffer)

let caps = function 0 -> 3 | 1 -> 2 | _ -> 1

let test_hetero_cells () =
  let proc =
    let* () = H.write ~capacities:caps 0 (Value.Int 1) in
    let* () = H.write ~capacities:caps 0 (Value.Int 2) in
    let* () = H.write ~capacities:caps 0 (Value.Int 3) in
    let* () = H.write ~capacities:caps 0 (Value.Int 4) in
    let* v0 = H.read ~capacities:caps 0 in
    let* () = H.write ~capacities:caps 1 (Value.Int 9) in
    let* v1 = H.read ~capacities:caps 1 in
    Proc.return (v0, v1)
  in
  let cfg = MH.make ~n:1 (fun _ -> proc) in
  let cfg, _ = MH.run ~sched:(Sched.solo 0) cfg in
  let v0, v1 = Option.get (MH.decision cfg 0) in
  Alcotest.(check int) "capacity-3 location keeps 3" 3 (Array.length v0);
  Alcotest.(check bool) "oldest of the last three" true (Value.equal v0.(0) (Value.Int 2));
  Alcotest.(check int) "capacity-2 location keeps 2" 2 (Array.length v1);
  Alcotest.(check bool) "front ⊥-padded" true (Value.equal v1.(0) Value.Bot)

let test_hetero_capacity_mismatch () =
  let bad =
    let* () = H.write ~capacities:(fun _ -> 3) 0 (Value.Int 1) in
    let* () = H.write ~capacities:(fun _ -> 2) 0 (Value.Int 2) in
    Proc.return 0
  in
  let cfg = MH.make ~n:1 (fun _ -> bad) in
  (try
     ignore (MH.run ~sched:(Sched.solo 0) cfg);
     Alcotest.fail "capacity mismatch must be rejected"
   with Invalid_argument _ -> ())

let test_hetero_swregs_validation () =
  Alcotest.check_raises "sum below n rejected"
    (Invalid_argument "Hetero_swregs.create: total capacity 4 < 5 processes") (fun () ->
      ignore (Objects.Hetero_swregs.create ~capacities:[ 2; 2 ] ~n:5));
  let regs = Objects.Hetero_swregs.create ~capacities:[ 3; 2; 2 ] ~n:7 in
  Alcotest.(check int) "buffers" 3 (Objects.Hetero_swregs.buffers regs);
  Alcotest.(check int) "reg 0 in buffer 0" 0 (Objects.Hetero_swregs.buffer_of regs 0);
  Alcotest.(check int) "reg 2 in buffer 0" 0 (Objects.Hetero_swregs.buffer_of regs 2);
  Alcotest.(check int) "reg 3 in buffer 1" 1 (Objects.Hetero_swregs.buffer_of regs 3);
  Alcotest.(check int) "reg 6 in buffer 2" 2 (Objects.Hetero_swregs.buffer_of regs 6);
  Alcotest.(check int) "capacity of buffer 1" 2 (Objects.Hetero_swregs.capacity_at regs 1)

let test_hetero_register_roundtrip () =
  let regs = Objects.Hetero_swregs.create ~capacities:[ 2; 2 ] ~n:4 in
  let proc =
    let* () = Objects.Hetero_swregs.write regs ~pid:0 ~seq:0 (Value.Int 5) in
    let* () = Objects.Hetero_swregs.write regs ~pid:3 ~seq:0 (Value.Int 8) in
    let* v0 = Objects.Hetero_swregs.read regs ~reg:0 in
    let* v3 = Objects.Hetero_swregs.read regs ~reg:3 in
    let* v2 = Objects.Hetero_swregs.read regs ~reg:2 in
    let* values, total = Objects.Hetero_swregs.collect regs in
    Proc.return (v0, v3, v2, values, total)
  in
  let cfg = MH.make ~n:1 (fun _ -> proc) in
  let cfg, _ = MH.run ~sched:(Sched.solo 0) cfg in
  let v0, v3, v2, values, total = Option.get (MH.decision cfg 0) in
  Alcotest.(check bool) "reg 0" true (Value.equal v0 (Value.Int 5));
  Alcotest.(check bool) "reg 3" true (Value.equal v3 (Value.Int 8));
  Alcotest.(check bool) "unwritten reg" true (Value.equal v2 Value.Bot);
  Alcotest.(check bool) "collect agrees" true (Value.equal values.(3) (Value.Int 8));
  Alcotest.(check int) "two writes" 2 total

let () =
  Alcotest.run "universal"
    [
      ( "universal construction",
        [
          Alcotest.test_case "queue sequential" `Quick test_queue_sequential;
          Alcotest.test_case "queue concurrent linearizable" `Quick
            test_queue_concurrent_linearizable;
          Alcotest.test_case "invoke returns own result" `Quick
            test_invoke_returns_own_result;
        ] );
      ( "heterogeneous buffers",
        [
          Alcotest.test_case "cells" `Quick test_hetero_cells;
          Alcotest.test_case "capacity mismatch" `Quick test_hetero_capacity_mismatch;
          Alcotest.test_case "swregs validation" `Quick test_hetero_swregs_validation;
          Alcotest.test_case "register roundtrip" `Quick test_hetero_register_roundtrip;
        ] );
    ]
