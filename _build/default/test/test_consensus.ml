(* Correctness battery for every consensus protocol: agreement, validity
   and termination under solo, round-robin and seeded adversarial
   schedules; solo decisions; space accounting against the paper's
   formulas; and protocol-specific bounds (Lemma 8.7, Lemma 5.2). *)

let all_protocols : (string * Consensus.Proto.t * bool (* binary-only *)) list =
  [
    ("arith-mul", Consensus.Arith_protocols.mul, false);
    ("arith-add", Consensus.Arith_protocols.add, false);
    ("arith-set-bit", Consensus.Arith_protocols.set_bit, false);
    ("fetch-and-add", Consensus.Arith_protocols.faa, false);
    ("fetch-and-multiply", Consensus.Arith_protocols.fam, false);
    ("cas", Consensus.Cas_protocol.protocol, false);
    ("max-registers", Consensus.Maxreg_protocol.protocol, false);
    ("swap", Consensus.Swap_protocol.protocol, false);
    ("rw-registers", Consensus.Rw_protocol.protocol, false);
    ("buffers-1", Consensus.Buffers_protocol.protocol ~capacity:1, false);
    ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2, false);
    ("buffers-3", Consensus.Buffers_protocol.protocol ~capacity:3, false);
    ("buffers-2+multi", Consensus.Buffers_protocol.multi_assignment_protocol ~capacity:2, false);
    ( "increment-logn",
      Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only,
      false );
    ( "fetch-incr-logn",
      Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Fetch_increment,
      false );
    ( "increment-binary",
      Consensus.Increment_protocol.binary ~flavour:Isets.Incr.Increment_only,
      true );
    ("intro-faa2-tas", Consensus.Intro_protocols.faa2_tas, true);
    ("intro-dec-mul", Consensus.Intro_protocols.decmul, true);
    ("tracks-write1", Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Write1_only, false);
    ("tracks-tas", Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only, false);
    ("write01-binary", Consensus.Nlogn_protocol.binary ~flavour:Isets.Bits.Write01, true);
    ("tas-reset-binary", Consensus.Nlogn_protocol.binary ~flavour:Isets.Bits.Tas_reset, true);
    ("write01-nlogn", Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Write01, false);
    ("tas-reset-nlogn", Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Tas_reset, false);
    ("hetero-[3;3;2]", Consensus.Hetero_protocol.protocol ~capacities:[ 3; 3; 2 ], false);
    ("earliest-writer", Consensus.Assignment_protocol.earliest_writer, false);
    ("gr05-binary-w1", Consensus.Tracks_protocol.binary ~flavour:Isets.Bits.Write1_only, true);
    ("gr05-binary-tas", Consensus.Tracks_protocol.binary ~flavour:Isets.Bits.Tas_only, true);
    ("adopt-commit-ladder", Consensus.Adopt_commit_protocol.protocol, false);
    ("tug-of-war-binary", Consensus.Tugofwar_protocol.binary, true);
    ("tug-of-war", Consensus.Tugofwar_protocol.protocol, false);
  ]

let inputs_for ~binary ~n ~seed =
  if binary then Array.init n (fun i -> (i + seed) land 1)
  else Array.init n (fun i -> (i + seed) mod n)

let fuel = 30_000_000

let run_and_check name proto ~inputs ~sched =
  let report = Consensus.Driver.run ~fuel proto ~inputs ~sched in
  (match Consensus.Driver.check report ~inputs with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e));
  report

(* 1. Solo runs: the lone process must decide its own input (validity). *)
let test_solo_decides_own_input () =
  List.iter
    (fun (name, proto, binary) ->
      List.iter
        (fun n ->
          let inputs = inputs_for ~binary ~n ~seed:1 in
          List.iter
            (fun pid ->
              let report =
                run_and_check name proto ~inputs ~sched:(Model.Sched.solo pid)
              in
              match List.assoc_opt pid report.decisions with
              | Some v ->
                Alcotest.(check int)
                  (Printf.sprintf "%s: solo pid %d decides its input (n=%d)" name pid n)
                  inputs.(pid) v
              | None ->
                Alcotest.fail (Printf.sprintf "%s: solo pid %d did not decide" name pid))
            [ 0; n - 1 ])
        [ 2; 4 ])
    all_protocols

(* 1b. The driver's solo-each helper agrees with per-pid solo runs. *)
let test_run_solo_each () =
  let inputs = [| 2; 0; 1 |] in
  let reports =
    Consensus.Driver.run_solo_each Consensus.Maxreg_protocol.protocol ~inputs
  in
  Alcotest.(check int) "one report per process" 3 (List.length reports);
  List.iteri
    (fun pid (r : Consensus.Driver.report) ->
      Alcotest.(check (option int))
        (Printf.sprintf "pid %d decided its input" pid)
        (Some inputs.(pid))
        (List.assoc_opt pid r.decisions);
      Alcotest.(check int) "only that process stepped" r.steps r.steps_per_process.(pid))
    reports

(* 2. Full termination + agreement + validity under adversarial schedules. *)
let test_adversarial_schedules () =
  List.iter
    (fun (name, proto, binary) ->
      List.iter
        (fun n ->
          List.iter
            (fun seed ->
              let inputs = inputs_for ~binary ~n ~seed in
              let sched = Model.Sched.random_then_sequential ~seed ~prefix:300 in
              let report = run_and_check name proto ~inputs ~sched in
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d seed=%d all decided" name n seed)
                true
                (report.outcome = `All_decided
                && List.length report.decisions = n))
            [ 1; 2; 3 ])
        [ 2; 3; 5 ])
    all_protocols

(* 3. Round-robin lock-step (a classically nasty schedule).  Obstruction
   freedom does not promise termination without solo time — a perfectly
   symmetric seesaw may run forever (GR05's binary tracks do exactly that
   on a 2-vs-2 split) — but whatever decisions do happen must agree. *)
let test_round_robin () =
  List.iter
    (fun (name, proto, binary) ->
      let n = 4 in
      let inputs = inputs_for ~binary ~n ~seed:0 in
      let report =
        Consensus.Driver.run ~fuel:200_000 proto ~inputs ~sched:Model.Sched.round_robin
      in
      (match Consensus.Driver.check report ~inputs with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e));
      match report.outcome with
      | `All_decided ->
        Alcotest.(check int)
          (Printf.sprintf "%s round robin: everyone decides" name)
          n
          (List.length report.decisions)
      | `Out_of_fuel ->
        (* a lock-step livelock: legal for an obstruction-free protocol *)
        ()
      | `Sched_stopped -> Alcotest.fail (name ^ ": scheduler stopped unexpectedly"))
    all_protocols

(* 4. Space accounting: locations used never exceed the protocol's claim. *)
let test_space_within_bounds () =
  List.iter
    (fun (name, proto, binary) ->
      let (module P : Consensus.Proto.S) = proto in
      List.iter
        (fun n ->
          let inputs = inputs_for ~binary ~n ~seed:2 in
          let sched = Model.Sched.random_then_sequential ~seed:5 ~prefix:200 in
          let report = run_and_check name proto ~inputs ~sched in
          match P.locations ~n with
          | Some bound ->
            Alcotest.(check bool)
              (Printf.sprintf "%s n=%d: %d <= %d" name n report.locations_used bound)
              true
              (report.locations_used <= bound)
          | None -> () (* ∞ rows *))
        [ 2; 3; 5; 8 ])
    all_protocols

(* 5. Exact space for the tight rows. *)
let test_space_exact () =
  let expect name proto n expected =
    let inputs = inputs_for ~binary:false ~n ~seed:3 in
    let report =
      run_and_check name proto ~inputs
        ~sched:(Model.Sched.random_then_sequential ~seed:1 ~prefix:150)
    in
    Alcotest.(check int) (Printf.sprintf "%s n=%d locations" name n) expected
      report.locations_used
  in
  expect "cas" Consensus.Cas_protocol.protocol 5 1;
  expect "arith-mul" Consensus.Arith_protocols.mul 5 1;
  expect "arith-add" Consensus.Arith_protocols.add 5 1;
  expect "max-registers" Consensus.Maxreg_protocol.protocol 5 2;
  expect "swap" Consensus.Swap_protocol.protocol 5 4;
  expect "swap" Consensus.Swap_protocol.protocol 2 1;
  expect "rw" Consensus.Rw_protocol.protocol 5 5;
  expect "buffers-2" (Consensus.Buffers_protocol.protocol ~capacity:2) 5 3;
  expect "buffers-3" (Consensus.Buffers_protocol.protocol ~capacity:3) 7 3;
  (* a buffer wider than n: a single location suffices *)
  expect "buffers-8" (Consensus.Buffers_protocol.protocol ~capacity:8) 3 1

(* 6. Determinism: seeded runs are reproducible. *)
let test_deterministic_runs () =
  List.iter
    (fun (name, proto, binary) ->
      let n = 4 in
      let inputs = inputs_for ~binary ~n ~seed:4 in
      let r1 =
        Consensus.Driver.run ~fuel proto ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:9 ~prefix:100)
      in
      let r2 =
        Consensus.Driver.run ~fuel proto ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:9 ~prefix:100)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic" name)
        true
        (r1.decisions = r2.decisions && r1.steps = r2.steps
        && r1.locations_used = r2.locations_used))
    all_protocols

(* 7. Wait-free one-shot protocols take O(1) steps per process. *)
let test_wait_free_step_counts () =
  let steps_of proto inputs =
    let report =
      Consensus.Driver.run proto ~inputs ~sched:Model.Sched.round_robin
    in
    report.steps
  in
  Alcotest.(check int) "cas: one step each" 4
    (steps_of Consensus.Cas_protocol.protocol [| 0; 1; 2; 3 |]);
  Alcotest.(check int) "faa2+tas: one step each" 4
    (steps_of Consensus.Intro_protocols.faa2_tas [| 0; 1; 0; 1 |]);
  Alcotest.(check int) "dec+mul: two steps each" 8
    (steps_of Consensus.Intro_protocols.decmul [| 0; 1; 0; 1 |])

(* 8. Lemma 8.7: a solo swap run decides within 3n−2 scans. *)
let test_swap_solo_step_bound () =
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> i) in
      let report =
        Consensus.Driver.run Consensus.Swap_protocol.protocol ~inputs
          ~sched:(Model.Sched.solo 0)
      in
      (match List.assoc_opt 0 report.decisions with
       | Some v -> Alcotest.(check int) "solo decides own input" 0 v
       | None -> Alcotest.fail "solo swap did not decide");
      (* each of the ≤ 3n−2 scans costs 2(n−1) reads solo; plus ≤ 3(n−1)
         swaps *)
      let bound = ((3 * n) - 2) * 2 * (n - 1) + (3 * (n - 1)) in
      Alcotest.(check bool)
        (Printf.sprintf "solo steps %d within Lemma 8.7 bound %d (n=%d)" report.steps
           bound n)
        true (report.steps <= bound))
    [ 2; 3; 5; 8; 12 ]

(* 9. The intro protocols decide by parity/sign exactly as the paper says. *)
let test_intro_first_mover_wins () =
  (* If a 0-proposer moves first, everyone decides 0; symmetric for 1. *)
  let check_first proto first expected =
    let inputs = [| 0; 1; 0; 1 |] in
    let order = first :: List.filter (fun p -> p <> first) [ 0; 1; 2; 3 ] in
    (* schedule: one op each in order, then everyone finishes sequentially *)
    let script = order @ order @ order in
    let report = Consensus.Driver.run proto ~inputs ~sched:(Model.Sched.script script) in
    let report2 =
      if report.outcome = `All_decided then report
      else
        Consensus.Driver.run proto ~inputs
          ~sched:(Model.Sched.script (script @ [ 0; 1; 2; 3; 0; 1; 2; 3 ]))
    in
    List.iter
      (fun (_, v) -> Alcotest.(check int) "first mover's camp wins" expected v)
      report2.decisions
  in
  check_first Consensus.Intro_protocols.faa2_tas 0 0;
  check_first Consensus.Intro_protocols.faa2_tas 1 1;
  check_first Consensus.Intro_protocols.decmul 0 0;
  check_first Consensus.Intro_protocols.decmul 1 1

(* 9b. Two-process multiple assignment: wait-free in ≤ 3 steps each. *)
let test_two_process_assignment () =
  List.iter
    (fun inputs ->
      List.iter
        (fun seed ->
          let report =
            Consensus.Driver.run Consensus.Assignment_protocol.two_process ~inputs
              ~sched:(Model.Sched.random_then_sequential ~seed ~prefix:10)
          in
          Consensus.Driver.check_exn report ~inputs;
          Alcotest.(check int) "both decide" 2 (List.length report.decisions);
          Array.iter
            (fun s -> Alcotest.(check bool) "wait-free: ≤ 3 steps" true (s <= 3))
            report.steps_per_process)
        [ 1; 2; 3; 4; 5 ])
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ];
  let (module P : Consensus.Proto.S) = Consensus.Assignment_protocol.two_process in
  Alcotest.check_raises "exactly two processes"
    (Invalid_argument "two_process: exactly two processes") (fun () ->
      ignore (P.proc ~n:3 ~pid:0 ~input:0))

(* 10. Max-register pair encoding is an order isomorphism. *)
let test_maxreg_encoding () =
  let n = 6 in
  List.iter
    (fun (r, x) ->
      let e = Consensus.Maxreg_protocol.encode ~n ~round:r ~value:x in
      Alcotest.(check (pair int int))
        (Printf.sprintf "decode (encode (%d,%d))" r x)
        (r, x)
        (Consensus.Maxreg_protocol.decode ~n e))
    [ (0, 0); (0, 5); (3, 0); (3, 5); (17, 2) ];
  (* lexicographic order agrees with numeric order of encodings *)
  let pairs = [ (0, 0); (0, 1); (0, 5); (1, 0); (1, 4); (2, 0); (2, 5); (3, 3) ] in
  List.iter
    (fun (r1, x1) ->
      List.iter
        (fun (r2, x2) ->
          let e1 = Consensus.Maxreg_protocol.encode ~n ~round:r1 ~value:x1 in
          let e2 = Consensus.Maxreg_protocol.encode ~n ~round:r2 ~value:x2 in
          Alcotest.(check bool)
            (Printf.sprintf "(%d,%d) vs (%d,%d)" r1 x1 r2 x2)
            (compare (r1, x1) (r2, x2) < 0)
            (Bignum.compare e1 e2 < 0))
        pairs)
    pairs;
  Alcotest.(check (pair int int)) "0 decodes to (0,0)" (0, 0)
    (Consensus.Maxreg_protocol.decode ~n Bignum.zero)

(* 11. Lemma 5.2 accounting. *)
let test_bit_by_bit_accounting () =
  List.iter
    (fun (n, k) ->
      Alcotest.(check int) (Printf.sprintf "rounds for n=%d" n) k
        (Consensus.Bit_by_bit.rounds ~n))
    [ (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (16, 4); (17, 5) ];
  (* the (c+2)·ceil(log n) − 2 location count, with c = 2 for increment *)
  let (module P : Consensus.Proto.S) =
    Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only
  in
  List.iter
    (fun (n, expected) ->
      Alcotest.(check (option int))
        (Printf.sprintf "increment locations n=%d" n)
        (Some expected) (P.locations ~n))
    [ (2, 2); (3, 6); (4, 6); (5, 10); (16, 14); (17, 18) ]

(* 12. The driver's checker catches a broken protocol. *)
let test_checker_catches_disagreement () =
  let broken : Consensus.Proto.t =
    (module struct
      module I = Isets.Rw

      let name = "broken-decide-own-input"
      let locations ~n:_ = Some 0
      let proc ~n:_ ~pid:_ ~input = Model.Proc.return input
    end)
  in
  let inputs = [| 0; 1 |] in
  let report =
    Consensus.Driver.run broken ~inputs ~sched:Model.Sched.round_robin
  in
  (match Consensus.Driver.check report ~inputs with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "checker accepted disagreeing decisions");
  let invalid : Consensus.Proto.t =
    (module struct
      module I = Isets.Rw

      let name = "broken-invalid-value"
      let locations ~n:_ = Some 0
      let proc ~n:_ ~pid:_ ~input:_ = Model.Proc.return 999
    end)
  in
  let report = Consensus.Driver.run invalid ~inputs ~sched:Model.Sched.round_robin in
  match Consensus.Driver.check report ~inputs with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker accepted an invalid decision"

(* 13. Unbounded rows really grow: contention makes tracks spread. *)
let test_tracks_space_grows_with_contention () =
  let proto = Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Write1_only in
  let n = 4 in
  let inputs = Array.init n (fun i -> i) in
  let solo = Consensus.Driver.run proto ~inputs ~sched:(Model.Sched.solo 0) in
  let contended =
    Consensus.Driver.run proto ~inputs
      ~sched:(Model.Sched.random_then_sequential ~seed:13 ~prefix:2000)
  in
  Alcotest.(check bool)
    (Printf.sprintf "contended run (%d) uses more space than solo (%d)"
       contended.locations_used solo.locations_used)
    true
    (contended.locations_used > solo.locations_used)

(* 13a. Semi-synchronous fairness (the [FLMS05] model): protocols decide
   under a fair scheduler with no solo phase at all. *)
let test_fair_scheduler_terminates () =
  List.iter
    (fun (name, proto) ->
      List.iter
        (fun seed ->
          let n = 4 in
          let inputs = Array.init n (fun i -> i) in
          let report =
            Consensus.Driver.run ~fuel:2_000_000 proto ~inputs
              ~sched:(Model.Sched.fair ~bound:6 ~seed)
          in
          Consensus.Driver.check_exn report ~inputs;
          Alcotest.(check bool)
            (Printf.sprintf "%s decides under fair schedule (seed %d)" name seed)
            true
            (report.outcome = `All_decided))
        [ 1; 2; 3 ])
    [
      ("arith-add", Consensus.Arith_protocols.add);
      ("max-registers", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("rw-registers", Consensus.Rw_protocol.protocol);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2);
    ]

(* 13b. Crash faults: obstruction-freedom means survivors still decide when
   any processes crash (are never scheduled again). *)
let test_crash_tolerance () =
  List.iter
    (fun (name, proto, binary) ->
      let n = 4 in
      let inputs = inputs_for ~binary ~n ~seed:6 in
      List.iter
        (fun crashed ->
          let sched =
            Model.Sched.excluding crashed
              (Model.Sched.random_then_sequential ~seed:8 ~prefix:150)
          in
          let report = run_and_check name proto ~inputs ~sched in
          let survivors = List.filter (fun p -> not (List.mem p crashed)) [ 0; 1; 2; 3 ] in
          List.iter
            (fun pid ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: survivor %d decided (crashed %s)" name pid
                   (String.concat "," (List.map string_of_int crashed)))
                true
                (List.mem_assoc pid report.decisions))
            survivors)
        [ [ 3 ]; [ 1; 2 ]; [ 0; 1; 3 ] ])
    [
      ("arith-add", Consensus.Arith_protocols.add, false);
      ("max-registers", Consensus.Maxreg_protocol.protocol, false);
      ("swap", Consensus.Swap_protocol.protocol, false);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2, false);
      ("tracks-tas", Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only, false);
      ( "increment-logn",
        Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only,
        false );
    ]

(* 13c. A mid-run crash: everyone runs for a while, then process 0 crashes
   (is never scheduled again) and the survivors must still finish. *)
let test_mid_run_crash () =
  List.iter
    (fun (name, proto) ->
      let inputs = [| 0; 1; 2; 3 |] in
      List.iter
        (fun seed ->
          let sched =
            Model.Sched.phased
              [ (80, Model.Sched.random ~seed) ]
              (Model.Sched.excluding [ 0 ]
                 (Model.Sched.random_then_sequential ~seed:(seed + 1) ~prefix:100))
          in
          let report = run_and_check (name ^ " mid-crash") proto ~inputs ~sched in
          List.iter
            (fun pid ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: survivor %d decided (seed %d)" name pid seed)
                true
                (List.mem_assoc pid report.decisions))
            [ 1; 2; 3 ])
        [ 3; 4; 5 ])
    [
      ("swap", Consensus.Swap_protocol.protocol);
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2);
    ]

(* 14. Racing rejects out-of-range inputs. *)
let test_input_validation () =
  Alcotest.check_raises "input >= n rejected"
    (Invalid_argument "Racing.consensus: bad input") (fun () ->
      let (module P : Consensus.Proto.S) = Consensus.Arith_protocols.mul in
      ignore (P.proc ~n:3 ~pid:0 ~input:3));
  Alcotest.check_raises "binary protocol rejects 2"
    (Invalid_argument "intro protocols are binary-only") (fun () ->
      let (module P : Consensus.Proto.S) = Consensus.Intro_protocols.faa2_tas in
      ignore (P.proc ~n:3 ~pid:0 ~input:2))

let () =
  Alcotest.run "consensus"
    [
      ( "all protocols",
        [
          Alcotest.test_case "solo decides own input" `Quick test_solo_decides_own_input;
          Alcotest.test_case "run_solo_each" `Quick test_run_solo_each;
          Alcotest.test_case "adversarial schedules" `Quick test_adversarial_schedules;
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "space within bounds" `Quick test_space_within_bounds;
          Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
        ] );
      ( "specific bounds",
        [
          Alcotest.test_case "exact space" `Quick test_space_exact;
          Alcotest.test_case "wait-free step counts" `Quick test_wait_free_step_counts;
          Alcotest.test_case "swap solo bound (Lemma 8.7)" `Quick test_swap_solo_step_bound;
          Alcotest.test_case "intro first mover wins" `Quick test_intro_first_mover_wins;
          Alcotest.test_case "two-process assignment wait-free" `Quick
            test_two_process_assignment;
          Alcotest.test_case "maxreg encoding" `Quick test_maxreg_encoding;
          Alcotest.test_case "bit-by-bit accounting (Lemma 5.2)" `Quick
            test_bit_by_bit_accounting;
          Alcotest.test_case "tracks grow with contention" `Quick
            test_tracks_space_grows_with_contention;
          Alcotest.test_case "fair scheduler terminates" `Quick
            test_fair_scheduler_terminates;
          Alcotest.test_case "crash tolerance" `Quick test_crash_tolerance;
          Alcotest.test_case "mid-run crash" `Quick test_mid_run_crash;
        ] );
      ( "harness",
        [
          Alcotest.test_case "checker catches broken protocols" `Quick
            test_checker_catches_disagreement;
          Alcotest.test_case "input validation" `Quick test_input_validation;
        ] );
    ]
