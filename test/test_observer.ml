(* Tests for the observer subsystem: the differential pin of the built-in
   observers against the legacy hard-coded checks, the engine × fingerprint
   × reduction agreement matrix, the combinators, the registry, and the
   reduction-soundness gate. *)

let engines = [ ("naive", `Naive); ("memo", `Memo); ("parallel-2", `Parallel 2) ]
let fp_modes = [ ("flat", `Flat); ("fold", `Fold) ]

(* ------------------------------------------------- violating fixtures -- *)

let broken_disagree : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-disagree"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid ~input:_ = Model.Proc.return pid
  end)

let broken_invalid : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-invalid"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid:_ ~input:_ = Model.Proc.return 7
  end)

(* Not obstruction-free: p0 waits forever for p1's write. *)
let broken_nonterminating : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-spin"
    let locations ~n:_ = Some 1

    let proc ~n:_ ~pid ~input =
      let open Model.Proc.Syntax in
      if pid = 0 then
        Model.Proc.rec_loop () (fun () ->
            let* v = Isets.Rw.read 0 in
            match v with
            | Model.Value.Int w -> Model.Proc.return (Either.Right w)
            | _ -> Model.Proc.return (Either.Left ()))
      else
        let* () = Isets.Rw.write 0 (Model.Value.Int input) in
        Model.Proc.return input
  end)

(* p0 spins on a location nobody ever writes: decides under no schedule, so
   a fairly scheduled p0 exceeds any patience — the lockout witness. *)
let spin_forever : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "spin-forever"
    let locations ~n:_ = Some 1

    let proc ~n:_ ~pid ~input =
      let open Model.Proc.Syntax in
      if pid = 0 then
        Model.Proc.rec_loop () (fun () ->
            let* v = Isets.Rw.read 0 in
            match v with
            | Model.Value.Int w -> Model.Proc.return (Either.Right w)
            | _ -> Model.Proc.return (Either.Left ()))
      else Model.Proc.return input
  end)

(* A read observes 5 and a later read of the same location observes 3 on the
   solo schedule — the maxreg-monotonic witness.  Unanimous inputs keep the
   consensus properties themselves clean. *)
let decreasing_writes : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "decreasing-writes"
    let locations ~n:_ = Some 1

    let proc ~n:_ ~pid:_ ~input =
      let open Model.Proc.Syntax in
      let* () = Isets.Rw.write 0 (Model.Value.Int 5) in
      let* _ = Isets.Rw.read 0 in
      let* () = Isets.Rw.write 0 (Model.Value.Int 3) in
      let* _ = Isets.Rw.read 0 in
      Model.Proc.return input
  end)

let outcome_string = function
  | Explore.Completed (_ : Explore.stats) -> "ok"
  | Explore.Falsified f ->
    "violation:" ^ Explore.kind_name f.Explore.witness.Explore.kind
  | Explore.Timed_out _ -> "timeout"

let run ?(probe = `Leaves) ?(solo_fuel = 100_000) ?(engine = `Naive)
    ?(reduce = Explore.no_reduction) ?(fingerprint_mode = `Flat) ?(observers = [])
    ?(shrink = false) proto ~inputs ~depth =
  Explore.run ~probe ~solo_fuel ~engine ~reduce ~fingerprint_mode ~observers ~shrink
    proto ~inputs ~depth

(* 1. The acceptance pin: over the full registry, the default observer set
   renders the same verdict — including the witness kind — as the legacy
   hard-coded checker, under all three engines. *)
let test_legacy_differential () =
  let rows = Hierarchy.rows ~ells:[ 1; 2 ] () in
  List.iter
    (fun (row : Hierarchy.row) ->
      let n = 3 in
      let inputs =
        if row.binary_only then Array.init n (fun i -> i land 1)
        else Array.init n (fun i -> i mod n)
      in
      List.iter
        (fun (ename, engine) ->
          let outcome observers =
            outcome_string (run ~engine ~observers row.protocol ~inputs ~depth:8)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: default observers == legacy" row.id ename)
            (outcome []) (outcome Observer.defaults))
        engines)
    rows

(* 2. Each built-in observer renders one verdict across engines ×
   fingerprint modes × its sound reductions, on a clean protocol and on the
   protocol built to violate it.  Symmetric reduction is exercised only
   where the protocol certifies pid-symmetric AND the observer permits it. *)
let matrix_cases =
  (* (label, proto, inputs, depth, probe, solo_fuel, symmetric_certifiable) *)
  [
    ("cas", Consensus.Cas_protocol.protocol, [| 0; 1; 1 |], 6, `Leaves, 100_000, true);
    ("disagree", broken_disagree, [| 0; 1 |], 3, `Leaves, 100_000, false);
    ("invalid", broken_invalid, [| 0; 1 |], 3, `Leaves, 100_000, false);
    ("spin", broken_nonterminating, [| 0; 1 |], 2, `Everywhere, 1_000, false);
    ("lockout-victim", spin_forever, [| 0; 1 |], 6, `Leaves, 1_000, false);
    ("decreasing", decreasing_writes, [| 0; 0 |], 8, `Leaves, 100_000, false);
  ]

let test_engine_matrix () =
  let observers =
    [
      Observer.agreement;
      Observer.validity;
      Observer.solo_termination;
      Observer.lockout ~fair_bound:2 ~patience:4 ();
      Observer.maxreg_monotonic;
    ]
  in
  List.iter
    (fun obs ->
      let (module O : Observer.S) = obs in
      let reductions =
        [ ("none", Explore.no_reduction) ]
        @ (if O.commute_safe then
             [ ("commute", { Explore.commute = true; symmetric = false }) ]
           else [])
        @
        if O.symmetric_safe then
          [ ("symmetric", { Explore.commute = false; symmetric = true }) ]
        else []
      in
      List.iter
        (fun (cname, proto, inputs, depth, probe, solo_fuel, certifiable) ->
          let reference =
            outcome_string
              (run ~probe ~solo_fuel ~observers:[ obs ] proto ~inputs ~depth)
          in
          List.iter
            (fun (ename, engine) ->
              List.iter
                (fun (fname, fingerprint_mode) ->
                  List.iter
                    (fun (rname, reduce) ->
                      if rname <> "symmetric" || certifiable then
                        Alcotest.(check string)
                          (Printf.sprintf "%s on %s: %s/%s/%s" O.name cname ename
                             fname rname)
                          reference
                          (outcome_string
                             (run ~probe ~solo_fuel ~engine ~reduce ~fingerprint_mode
                                ~observers:[ obs ] proto ~inputs ~depth)))
                    reductions)
                fp_modes)
            engines)
        matrix_cases)
    observers

(* 3. Each purpose-built violation trips exactly its observer, with the
   advertised witness kind. *)
let expect_kind name kind outcome =
  match outcome with
  | Explore.Falsified f ->
    Alcotest.(check string)
      (name ^ ": witness kind")
      kind
      (Explore.kind_name f.Explore.witness.Explore.kind)
  | Explore.Completed _ | Explore.Timed_out _ ->
    Alcotest.fail (name ^ ": violation not detected")

let test_builtin_violations () =
  expect_kind "agreement" "agreement"
    (run ~observers:[ Observer.agreement ] broken_disagree ~inputs:[| 0; 1 |] ~depth:3);
  expect_kind "validity" "validity"
    (run ~observers:[ Observer.validity ] broken_invalid ~inputs:[| 0; 1 |] ~depth:3);
  expect_kind "solo-termination" "obstruction-freedom"
    (run ~probe:`Everywhere ~solo_fuel:1_000
       ~observers:[ Observer.solo_termination ]
       broken_nonterminating ~inputs:[| 0; 1 |] ~depth:2);
  expect_kind "lockout" "lockout"
    (run
       ~observers:[ Observer.lockout ~fair_bound:2 ~patience:4 () ]
       spin_forever ~inputs:[| 0; 1 |] ~depth:6);
  expect_kind "maxreg-monotonic" "maxreg-monotonic"
    (run
       ~observers:[ Observer.maxreg_monotonic ]
       decreasing_writes ~inputs:[| 0; 0 |] ~depth:8);
  (* and all of them stay quiet on a correct protocol *)
  match
    run ~probe:`Everywhere
      ~observers:
        (Observer.defaults
        @ [ Observer.lockout (); Observer.maxreg_monotonic ])
      Consensus.Cas_protocol.protocol ~inputs:[| 0; 1 |] ~depth:6
  with
  | Explore.Completed _ -> ()
  | Explore.Falsified f ->
    Alcotest.fail ("cas clean: " ^ f.Explore.witness.Explore.message)
  | Explore.Timed_out _ -> Alcotest.fail "cas clean: timeout"

(* 4. Combinators. *)
let test_combinators () =
  (* [all] reports the first member's violation in list order *)
  expect_kind "all" "agreement"
    (run
       ~observers:[ Observer.all [ Observer.agreement; Observer.validity ] ]
       broken_disagree ~inputs:[| 0; 1 |] ~depth:3);
  (* [named] renames the witness kind *)
  expect_kind "named" "no-split-brain"
    (run
       ~observers:[ Observer.named "no-split-brain" Observer.agreement ]
       broken_disagree ~inputs:[| 0; 1 |] ~depth:3);
  (* [per_pid] routes each pid's events to its own copy: a per-pid agreement
     observer never sees two decisions, so the disagreement vanishes —
     evidence the routing is really per-process *)
  (match
     run
       ~observers:[ Observer.per_pid Observer.agreement ]
       broken_disagree ~inputs:[| 0; 1 |] ~depth:3
   with
  | Explore.Completed _ -> ()
  | Explore.Falsified _ | Explore.Timed_out _ ->
    Alcotest.fail "per_pid agreement saw a cross-pid decision");
  (* a per-pid validity copy still catches its own pid's invalid decision,
     and prefixes the message with the pid *)
  match
    run
      ~observers:[ Observer.per_pid Observer.validity ]
      broken_invalid ~inputs:[| 0; 1 |] ~depth:3
  with
  | Explore.Falsified f ->
    let msg = f.Explore.witness.Explore.message in
    Alcotest.(check bool)
      "per_pid message names the pid" true
      (String.length msg >= 1 && msg.[0] = 'p')
  | Explore.Completed _ | Explore.Timed_out _ ->
    Alcotest.fail "per_pid validity missed the violation"

(* 5. Registry. *)
let test_registry () =
  List.iter
    (fun (name, _) ->
      match Observer.of_name name with
      | Ok o -> Alcotest.(check string) "registry name" name (Observer.name o)
      | Error e -> Alcotest.fail e)
    Observer.known;
  (match Observer.of_name "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown observer resolved");
  match Observer.of_names [ "default"; "lockout" ] with
  | Error e -> Alcotest.fail e
  | Ok os ->
    Alcotest.(check (list string))
      "default expands in place"
      [ "agreement"; "validity"; "solo-termination"; "lockout" ]
      (List.map Observer.name os)

(* 6. The reduction gate: an observer that declares a reduction unsafe
   refuses to run under it (unless forced), BEFORE any exploration. *)
let test_reduction_gate () =
  let lockout = Observer.lockout () in
  let commute = { Explore.commute = true; symmetric = false } in
  (match
     run ~reduce:commute ~observers:[ lockout ] Consensus.Cas_protocol.protocol
       ~inputs:[| 0; 1 |] ~depth:4
   with
  | exception Explore.Observer_unsafe_reduction { observer; reduction } ->
    Alcotest.(check string) "gate names the observer" "lockout" observer;
    Alcotest.(check string) "gate names the reduction" "commute" reduction
  | _ -> Alcotest.fail "lockout ran under the commute reduction");
  (* per_pid is never symmetric-safe, whatever it wraps *)
  (match
     Explore.run ~reduce:{ Explore.commute = false; symmetric = true }
       ~observers:[ Observer.per_pid Observer.validity ]
       Consensus.Cas_protocol.protocol ~inputs:[| 1; 1 |] ~depth:4
   with
  | exception Explore.Observer_unsafe_reduction { reduction; _ } ->
    Alcotest.(check string) "per_pid symmetric refused" "symmetric" reduction
  | _ -> Alcotest.fail "per_pid ran under the symmetric reduction");
  (* force overrides the gate, mirroring the symmetry certifier's escape
     hatch *)
  match
    Explore.run ~force:true ~reduce:commute ~observers:[ lockout ]
      Consensus.Cas_protocol.protocol ~inputs:[| 0; 1 |] ~depth:4
  with
  | Explore.Completed _ | Explore.Falsified _ | Explore.Timed_out _ -> ()

(* 7. Witnesses found by observers replay — through the observer-aware
   replay path — to the same kind, and deepen threads observers too. *)
let test_observer_witness_replays () =
  List.iter
    (fun (ename, engine) ->
      match
        run ~engine ~observers:Observer.defaults ~shrink:true broken_disagree
          ~inputs:[| 0; 1 |] ~depth:3
      with
      | Explore.Falsified f ->
        Alcotest.(check bool)
          (ename ^ ": witness reproduced") true f.Explore.reproduced;
        (match
           Explore.replay ~observers:Observer.defaults broken_disagree
             ~inputs:[| 0; 1 |] f.Explore.witness
         with
        | Error e -> Alcotest.fail (ename ^ ": replay rejected the witness: " ^ e)
        | Ok r ->
          (match r.Explore.violation with
          | Some (k, _) ->
            Alcotest.(check string)
              (ename ^ ": replay kind") "agreement" (Explore.kind_name k)
          | None -> Alcotest.fail (ename ^ ": observer replay found no violation")))
      | Explore.Completed _ | Explore.Timed_out _ ->
        Alcotest.fail (ename ^ ": violation not detected"))
    engines;
  match
    Explore.deepen ~observers:Observer.defaults Consensus.Cas_protocol.protocol
      ~inputs:[| 0; 1 |] ~max_depth:6
  with
  | Explore.Completed r -> Alcotest.(check bool) "deepen complete" true r.Explore.complete
  | Explore.Falsified _ | Explore.Timed_out _ ->
    Alcotest.fail "deepen with observers failed on cas"

let () =
  Alcotest.run "observer"
    [
      ( "differential",
        [
          Alcotest.test_case "defaults == legacy over the registry" `Quick
            test_legacy_differential;
          Alcotest.test_case "engine x fingerprint x reduction matrix" `Quick
            test_engine_matrix;
        ] );
      ( "violations",
        [
          Alcotest.test_case "each builtin trips on its violation" `Quick
            test_builtin_violations;
          Alcotest.test_case "observer witnesses replay" `Quick
            test_observer_witness_replays;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "all/named/per_pid" `Quick test_combinators;
          Alcotest.test_case "registry round-trip" `Quick test_registry;
        ] );
      ( "soundness",
        [ Alcotest.test_case "reduction gate" `Quick test_reduction_gate ] );
    ]
