(* The multi-writer store under real OS-process concurrency: four forked
   workers share one campaign directory and the same task list, so every task
   is contended by all four.  The claim protocol must arbitrate them down to
   exactly one execution per task fleet-wide, with no lost or torn record
   files, verdicts identical to a single-process run, and a telemetry log
   whose lines all parse.

   This is a plain executable (exit 0 = pass): alcotest and [Unix.fork] do
   not mix, and each child must be a single-domain process for fork safety. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("test_campaign_multiproc: FAIL: " ^ s);
      exit 1)
    fmt

let check cond fmt =
  Printf.ksprintf
    (fun s ->
      if not cond then (
        prerr_endline ("test_campaign_multiproc: FAIL: " ^ s);
        exit 1))
    fmt

let temp_dir () =
  let dir = Filename.temp_file "campaign_multiproc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

let tasks () =
  let spec =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "cas"; "swap"; "max-register" ];
      depths = [ 3 ];
    }
  in
  match Campaign.Spec.tasks spec with
  | Ok tasks -> tasks
  | Error e -> fail "spec: %s" e

let workers = 4

(* Each child runs the whole overlapping task list through the shared-store
   executor and reports its outcome through a file; asserting inside a forked
   child would be invisible to the parent's exit code, so children only
   report and the parent judges. *)
let child ~dir ~out tasks =
  let report =
    try
      let store = Campaign.Store.open_ ~dir () in
      let o = Campaign.Executor.run_shared ~store tasks in
      Campaign.Store.close store;
      Printf.sprintf "%d %d %d %d" o.Campaign.Executor.executed
        o.Campaign.Executor.cached o.Campaign.Executor.aborted
        (List.length o.Campaign.Executor.records)
    with exn -> "EXN " ^ Printexc.to_string exn
  in
  let oc = open_out out in
  output_string oc report;
  close_out oc;
  Unix._exit 0

let () =
  let tasks = tasks () in
  let total = List.length tasks in
  let dir = temp_dir () in
  let out i = Filename.concat dir (Printf.sprintf "outcome.%d" i) in
  flush stdout;
  flush stderr;
  let pids =
    List.init workers (fun i ->
        match Unix.fork () with
        | 0 -> child ~dir ~out:(out i) tasks
        | pid -> pid)
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, status ->
        let s =
          match status with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
        in
        fail "worker %d died: %s" pid s)
    pids;
  (* every worker accounted for every task, and nobody aborted *)
  let outcomes =
    List.init workers (fun i ->
        let report = read_file (out i) in
        match Scanf.sscanf report "%d %d %d %d" (fun a b c d -> (a, b, c, d)) with
        | outcome -> outcome
        | exception _ -> fail "worker %d reported %S" i report)
  in
  List.iteri
    (fun i (executed, cached, aborted, records) ->
      check (executed + cached = total)
        "worker %d: executed %d + cached %d <> %d tasks" i executed cached total;
      check (aborted = 0) "worker %d aborted %d task(s)" i aborted;
      check (records = total) "worker %d returned %d/%d records" i records total)
    outcomes;
  (* the claim protocol arbitrated to exactly one execution per task *)
  let executions =
    List.fold_left (fun acc (executed, _, _, _) -> acc + executed) 0 outcomes
  in
  check (executions = total)
    "fleet executed %d task(s) for %d distinct tasks (lost or duplicated work)"
    executions total;
  (* no lost, torn, or half-renamed record files *)
  let store = Campaign.Store.open_ ~dir () in
  check (Campaign.Store.count store = total) "store holds %d/%d records"
    (Campaign.Store.count store) total;
  (* verdicts are identical to an uncontended single-process run *)
  let reference_store = Campaign.Store.open_ ~dir:(temp_dir ()) () in
  let reference = Campaign.Executor.run ~store:reference_store tasks in
  List.iter
    (fun task ->
      let fp = Campaign.Task.fingerprint task in
      let shared =
        match Campaign.Store.find store fp with
        | Some r -> r
        | None -> fail "no shared record for %s" fp
      in
      let solo =
        match Campaign.Store.find reference_store fp with
        | Some r -> r
        | None -> fail "no reference record for %s" fp
      in
      check
        (Campaign.Record.same_verdict shared solo)
        "verdict diverged for %s: %s (shared) vs %s (solo)" fp
        (Campaign.Record.status_name shared.Campaign.Record.status)
        (Campaign.Record.status_name solo.Campaign.Record.status))
    tasks;
  ignore reference;
  (* the shared telemetry log parses line by line and names all four pids *)
  let pids_seen = Hashtbl.create 8 in
  let lines = read_lines (Filename.concat dir "events.jsonl") in
  List.iter
    (fun line ->
      match Campaign.Json.of_string line with
      | Error e -> fail "torn event line %S: %s" line e
      | Ok j -> (
        match Campaign.Json.get_int (Campaign.Json.member "pid" j) with
        | Some pid -> Hashtbl.replace pids_seen pid ()
        | None -> fail "event line without a pid: %S" line))
    lines;
  check
    (Hashtbl.length pids_seen = workers)
    "telemetry names %d pid(s), expected %d" (Hashtbl.length pids_seen) workers;
  (* the status aggregator agrees: zero duplicated executions *)
  (match Campaign.Status.load ~dir with
   | Error e -> fail "status: %s" e
   | Ok s ->
     check
       (s.Campaign.Status.tasks_finished = total)
       "status folded %d finished task(s), expected %d"
       s.Campaign.Status.tasks_finished total;
     check
       (s.Campaign.Status.executions = total)
       "status counted %d execution(s), expected %d" s.Campaign.Status.executions
       total;
     check
       (s.Campaign.Status.duplicated = 0)
       "status counted %d duplicated execution(s)" s.Campaign.Status.duplicated;
     check (s.Campaign.Status.malformed = 0) "status skipped %d malformed line(s)"
       s.Campaign.Status.malformed);
  (* no leases survive a clean fleet *)
  (match Sys.readdir (Filename.concat dir "claims") with
   | [||] -> ()
   | leftover -> fail "claims/ not empty: %s" (String.concat ", " (Array.to_list leftover)));
  Printf.printf
    "test_campaign_multiproc: ok — %d workers, %d tasks, %d executions, 0 \
     duplicated\n"
    workers total executions
