(* Semantics tests for every instruction set: each instruction's effect on
   a cell and its return value, plus the dynamic flavour restrictions that
   implement the uniformity requirement. *)

open Model

let big = Alcotest.testable Bignum.pp Bignum.equal
let value = Alcotest.testable Value.pp Value.equal
let b = Bignum.of_int

(* --- read/write ------------------------------------------------------- *)

let test_rw () =
  Alcotest.(check value) "init" Value.Bot Isets.Rw.init;
  let c, r = Isets.Rw.apply Isets.Rw.Read Isets.Rw.init in
  Alcotest.(check value) "read leaves cell" Value.Bot c;
  Alcotest.(check value) "read returns cell" Value.Bot r;
  let c, r = Isets.Rw.apply (Isets.Rw.Write (Value.Int 5)) Isets.Rw.init in
  Alcotest.(check value) "write stores" (Value.Int 5) c;
  Alcotest.(check value) "write returns unit" Value.Unit r;
  Alcotest.(check bool) "read trivial" true (Isets.Rw.trivial Isets.Rw.Read);
  Alcotest.(check bool) "write non-trivial" false
    (Isets.Rw.trivial (Isets.Rw.Write Value.Unit));
  Alcotest.(check bool) "no multi-assignment" false Isets.Rw.multi_assignment

(* --- swap ------------------------------------------------------------- *)

let test_swap () =
  let c, r = Isets.Swap.apply (Isets.Swap.Swap (Value.Int 7)) (Value.Int 3) in
  Alcotest.(check value) "swap stores" (Value.Int 7) c;
  Alcotest.(check value) "swap returns previous" (Value.Int 3) r;
  let c, r = Isets.Swap.apply Isets.Swap.Read (Value.Int 3) in
  Alcotest.(check value) "read keeps" (Value.Int 3) c;
  Alcotest.(check value) "read returns" (Value.Int 3) r

(* --- max-register ----------------------------------------------------- *)

let test_maxreg () =
  let c, _ = Isets.Maxreg.apply (Isets.Maxreg.Write_max (b 5)) (b 3) in
  Alcotest.(check big) "larger write wins" (b 5) c;
  let c, _ = Isets.Maxreg.apply (Isets.Maxreg.Write_max (b 2)) (b 3) in
  Alcotest.(check big) "smaller write ignored" (b 3) c;
  let c, r = Isets.Maxreg.apply Isets.Maxreg.Read_max (b 9) in
  Alcotest.(check big) "read-max keeps" (b 9) c;
  Alcotest.(check value) "read-max returns" (Value.Big (b 9)) r

(* --- compare-and-swap ------------------------------------------------- *)

let test_cas () =
  let c, r = Isets.Cas.apply (Isets.Cas.Cas (Value.Bot, Value.Int 4)) Value.Bot in
  Alcotest.(check value) "success installs" (Value.Int 4) c;
  Alcotest.(check value) "returns old" Value.Bot r;
  let c, r = Isets.Cas.apply (Isets.Cas.Cas (Value.Bot, Value.Int 9)) (Value.Int 4) in
  Alcotest.(check value) "failure keeps" (Value.Int 4) c;
  Alcotest.(check value) "failure returns current" (Value.Int 4) r;
  Alcotest.(check bool)
    "cas(v,v) is trivial" true
    (Isets.Cas.trivial (Isets.Cas.Cas (Value.Int 1, Value.Int 1)));
  Alcotest.(check bool)
    "cas(x,y) is not" false
    (Isets.Cas.trivial (Isets.Cas.Cas (Value.Int 1, Value.Int 2)))

(* --- arithmetic ------------------------------------------------------- *)

let test_add_mul_setbit () =
  let open Isets.Arith in
  let c, _ = Add.apply (Add.Add (b 7)) (b 10) in
  Alcotest.(check big) "add" (b 17) c;
  let c, _ = Add.apply (Add.Add (b (-3))) (b 10) in
  Alcotest.(check big) "add negative" (b 7) c;
  Alcotest.(check big) "add init 0" Bignum.zero Add.init;
  let c, _ = Mul.apply (Mul.Mul (b 6)) (b 7) in
  Alcotest.(check big) "multiply" (b 42) c;
  Alcotest.(check big) "mul init 1" Bignum.one Mul.init;
  let c, _ = Setbit.apply (Setbit.Set_bit 5) Bignum.zero in
  Alcotest.(check big) "set-bit" (b 32) c;
  let c2, _ = Setbit.apply (Setbit.Set_bit 5) c in
  Alcotest.(check big) "set-bit idempotent" (b 32) c2

let test_fetch_variants () =
  let open Isets.Arith in
  let c, r = Faa.apply (Faa.Fetch_add (b 4)) (b 10) in
  Alcotest.(check big) "faa adds" (b 14) c;
  Alcotest.(check value) "faa returns old" (Value.Big (b 10)) r;
  Alcotest.(check bool) "faa(0) trivial" true (Faa.trivial (Faa.Fetch_add Bignum.zero));
  Alcotest.(check bool) "faa(1) not" false (Faa.trivial (Faa.Fetch_add Bignum.one));
  let c, r = Fam.apply (Fam.Fetch_mul (b 3)) (b 10) in
  Alcotest.(check big) "fam multiplies" (b 30) c;
  Alcotest.(check value) "fam returns old" (Value.Big (b 10)) r;
  Alcotest.(check bool) "fam(1) trivial" true (Fam.trivial (Fam.Fetch_mul Bignum.one))

let test_intro_sets () =
  let open Isets.Arith in
  (* the paper's strong test-and-set: only 0 -> 1 *)
  let c, r = Faa2_tas.apply Faa2_tas.Tas Bignum.zero in
  Alcotest.(check big) "tas sets 0 to 1" Bignum.one c;
  Alcotest.(check value) "tas returns old" (Value.Big Bignum.zero) r;
  let c, _ = Faa2_tas.apply Faa2_tas.Tas (b 6) in
  Alcotest.(check big) "tas leaves non-zero" (b 6) c;
  let c, r = Faa2_tas.apply Faa2_tas.Fetch_add2 (b 6) in
  Alcotest.(check big) "faa2 adds 2" (b 8) c;
  Alcotest.(check value) "faa2 returns old" (Value.Big (b 6)) r;
  let c, _ = Decmul.apply Decmul.Decrement Bignum.one in
  Alcotest.(check big) "decrement" Bignum.zero c;
  let c, _ = Decmul.apply (Decmul.Multiply 5) (b (-2)) in
  Alcotest.(check big) "multiply negative" (b (-10)) c;
  Alcotest.(check big) "decmul init 1" Bignum.one Decmul.init

(* --- bits flavours ---------------------------------------------------- *)

let test_bits_semantics () =
  let module B = Isets.Bits.Make (struct
    let flavour = Isets.Bits.Tas_reset
  end) in
  let c, r = B.apply Isets.Bits.Tas false in
  Alcotest.(check bool) "tas sets" true c;
  Alcotest.(check value) "tas returns 0" (Value.Int 0) r;
  let c, r = B.apply Isets.Bits.Tas true in
  Alcotest.(check bool) "tas keeps" true c;
  Alcotest.(check value) "tas returns 1" (Value.Int 1) r;
  let c, _ = B.apply Isets.Bits.Reset true in
  Alcotest.(check bool) "reset clears" false c;
  let _, r = B.apply Isets.Bits.Read true in
  Alcotest.(check value) "read 1" (Value.Int 1) r

let test_bits_flavour_restrictions () =
  let module W1 = Isets.Bits.Make (struct
    let flavour = Isets.Bits.Write1_only
  end) in
  (try
     ignore (W1.apply Isets.Bits.Write0 true);
     Alcotest.fail "write(0) must be rejected by {read, write(1)}"
   with Invalid_argument _ -> ());
  (try
     ignore (W1.apply Isets.Bits.Tas false);
     Alcotest.fail "tas must be rejected by {read, write(1)}"
   with Invalid_argument _ -> ());
  let c, _ = W1.apply Isets.Bits.Write1 false in
  Alcotest.(check bool) "write1 allowed" true c;
  let module T = Isets.Bits.Make (struct
    let flavour = Isets.Bits.Tas_only
  end) in
  (try
     ignore (T.apply Isets.Bits.Reset true);
     Alcotest.fail "reset must be rejected by {read, test-and-set}"
   with Invalid_argument _ -> ())

let test_bits_names () =
  let module W01 = Isets.Bits.Make (struct
    let flavour = Isets.Bits.Write01
  end) in
  Alcotest.(check string) "name" "{read(), write(1), write(0)}" W01.name

(* --- increment flavours ------------------------------------------------ *)

let test_incr_semantics () =
  let module F = Isets.Incr.Make (struct
    let flavour = Isets.Incr.Fetch_increment
  end) in
  let c, r = F.apply Isets.Incr.Fetch_incr (b 5) in
  Alcotest.(check big) "fai increments" (b 6) c;
  Alcotest.(check value) "fai returns old" (Value.Big (b 5)) r;
  let c, _ = F.apply (Isets.Incr.Write (b 9)) (b 5) in
  Alcotest.(check big) "write" (b 9) c;
  (try
     ignore (F.apply Isets.Incr.Increment (b 5));
     Alcotest.fail "bare increment rejected under fetch flavour"
   with Invalid_argument _ -> ());
  let module I = Isets.Incr.Make (struct
    let flavour = Isets.Incr.Increment_only
  end) in
  let c, r = I.apply Isets.Incr.Increment (b 5) in
  Alcotest.(check big) "increment" (b 6) c;
  Alcotest.(check value) "increment returns unit" Value.Unit r;
  (try
     ignore (I.apply Isets.Incr.Fetch_incr (b 5));
     Alcotest.fail "fai rejected under increment flavour"
   with Invalid_argument _ -> ())

(* --- buffers ----------------------------------------------------------- *)

module B3 = Isets.Buffer_set.Make (struct
  let capacity = 3
  let multi_assignment = false
end)

let buf_read cell = snd (B3.apply Isets.Buffer_set.Buf_read cell)

let test_buffer_semantics () =
  Alcotest.(check value)
    "empty read: all bot"
    (Value.Vec [| Value.Bot; Value.Bot; Value.Bot |])
    (buf_read B3.init);
  let w cell x = fst (B3.apply (Isets.Buffer_set.Buf_write (Value.Int x)) cell) in
  let cell = w B3.init 1 in
  Alcotest.(check value)
    "one write front-padded"
    (Value.Vec [| Value.Bot; Value.Bot; Value.Int 1 |])
    (buf_read cell);
  let cell = w (w cell 2) 3 in
  Alcotest.(check value)
    "full buffer, oldest first"
    (Value.Vec [| Value.Int 1; Value.Int 2; Value.Int 3 |])
    (buf_read cell);
  let cell = w cell 4 in
  Alcotest.(check value)
    "fourth write evicts the oldest"
    (Value.Vec [| Value.Int 2; Value.Int 3; Value.Int 4 |])
    (buf_read cell);
  Alcotest.(check int) "capacity" 3 B3.capacity;
  Alcotest.(check bool) "read trivial" true (B3.trivial Isets.Buffer_set.Buf_read)

let test_buffer_one_is_register () =
  let module B1 = Isets.Buffer_set.Make (struct
    let capacity = 1
    let multi_assignment = false
  end) in
  let cell = fst (B1.apply (Isets.Buffer_set.Buf_write (Value.Int 8)) B1.init) in
  let cell = fst (B1.apply (Isets.Buffer_set.Buf_write (Value.Int 9)) cell) in
  Alcotest.(check value)
    "1-buffer behaves as a register"
    (Value.Vec [| Value.Int 9 |])
    (snd (B1.apply Isets.Buffer_set.Buf_read cell))

let test_buffer_capacity_validation () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Buffer_set.Make: capacity < 1") (fun () ->
      let module Bad =
        Isets.Buffer_set.Make (struct
          let capacity = 0
          let multi_assignment = false
        end)
      in
      ignore Bad.init)

(* --- the Section 6.2 reduction to ℓ-buffers ----------------------------- *)

(* Bisimulation: a random instruction sequence executed natively and
   through the buffer reduction must return identical results. *)
module Red_rw = Isets.Buffered_reduction.Make (Isets.Buffered_reduction.Rw_spec)

module B1 = Isets.Buffer_set.Make (struct
  let capacity = 1
  let multi_assignment = false
end)

module MB1 = Machine.Make (B1)

let run_reduction ops =
  let proc =
    let rec go acc = function
      | [] -> Proc.return (List.rev acc)
      | op :: rest ->
        Proc.bind (Red_rw.apply ~loc:0 op) (fun r -> go (r :: acc) rest)
    in
    go [] ops
  in
  let cfg = MB1.make ~n:1 (fun _ -> proc) in
  let cfg, _ = MB1.run ~sched:(Sched.solo 0) cfg in
  Option.get (MB1.decision cfg 0)

let run_native ops =
  let _, rev =
    List.fold_left
      (fun (cell, acc) op ->
        let cell, r = Isets.Rw.apply op cell in
        (cell, r :: acc))
      (Isets.Rw.init, []) ops
  in
  List.rev rev

let prop_reduction_bisimulates =
  QCheck2.Test.make ~name:"rw via 1-buffers bisimulates native rw" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (oneof
           [ pure Isets.Rw.Read;
             map (fun i -> Isets.Rw.Write (Value.Int i)) (int_range 0 9) ]))
    (fun ops ->
      List.for_all2 Value.equal (run_native ops) (run_reduction ops))

let test_reduction_w1 () =
  let module Red = Isets.Buffered_reduction.Make (Isets.Buffered_reduction.W1_spec) in
  let proc =
    let open Proc.Syntax in
    let* r0 = Red.apply ~loc:0 Isets.Bits.Read in
    let* _ = Red.apply ~loc:0 Isets.Bits.Write1 in
    let* r1 = Red.apply ~loc:0 Isets.Bits.Read in
    let* _ = Red.apply ~loc:0 Isets.Bits.Write1 in
    let* r2 = Red.apply ~loc:0 Isets.Bits.Read in
    Proc.return (r0, r1, r2)
  in
  let cfg = MB1.make ~n:1 (fun _ -> proc) in
  let cfg, _ = MB1.run ~sched:(Sched.solo 0) cfg in
  let r0, r1, r2 = Option.get (MB1.decision cfg 0) in
  Alcotest.(check bool) "initially 0" true (Value.equal r0 (Value.Int 0));
  Alcotest.(check bool) "after write(1): 1" true (Value.equal r1 (Value.Int 1));
  Alcotest.(check bool) "stays 1" true (Value.equal r2 (Value.Int 1))

let test_reduction_rejects_outside_set () =
  (try
     ignore (Isets.Buffered_reduction.W1_spec.nontrivial Isets.Bits.Tas);
     Alcotest.fail "tas is outside {read, write(1)}"
   with Invalid_argument _ -> ());
  try
    ignore (Isets.Buffered_reduction.Rw_spec.encode_op Isets.Rw.Read);
    Alcotest.fail "read is trivial; it is never recorded"
  with Invalid_argument _ -> ()

(* --- uniformity sanity: names ------------------------------------------ *)

(* --- commutes --------------------------------------------------------- *)

module BW01 = Isets.Bits.Make (struct
  let flavour = Isets.Bits.Write01
end)

module B2 = Isets.Buffer_set.Make (struct
  let capacity = 2
  let multi_assignment = false
end)

(* Soundness of each [commutes] predicate on sample cells: a pair declared
   independent must leave the cell in the same state and return the same
   result to each invoker in both orders.  (The converse — missed commuting
   pairs — only costs pruning, so it is not checked exhaustively; a few
   known-commuting pairs are asserted directly below.) *)
let check_commutes_exact (type c o) name
    (module I : Model.Iset.S with type cell = c and type op = o) ops cells =
  List.iter
    (fun cell ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if I.commutes a b then begin
                let c1, ra1 = I.apply a cell in
                let c1, rb1 = I.apply b c1 in
                let c2, rb2 = I.apply b cell in
                let c2, ra2 = I.apply a c2 in
                let label =
                  Format.asprintf "%s: %a / %a on %a" name I.pp_op a I.pp_op b I.pp_cell
                    cell
                in
                Alcotest.(check bool) (label ^ ": same cell") true (I.equal_cell c1 c2);
                Alcotest.(check bool) (label ^ ": same results") true
                  (ra1 = ra2 && rb1 = rb2)
              end)
            ops)
        ops)
    cells

let test_commutes_sound () =
  check_commutes_exact "rw"
    (module Isets.Rw)
    [ Isets.Rw.Read; Write (Value.Int 1); Write (Value.Int 2) ]
    [ Value.Bot; Value.Int 1; Value.Int 2 ];
  check_commutes_exact "swap"
    (module Isets.Swap)
    [ Isets.Swap.Read; Swap (Value.Int 1); Swap (Value.Int 2) ]
    [ Value.Bot; Value.Int 1 ];
  check_commutes_exact "cas"
    (module Isets.Cas)
    [
      Isets.Cas.Cas (Value.Bot, Value.Int 1);
      Cas (Value.Int 1, Value.Int 2);
      Cas (Value.Bot, Value.Bot);
    ]
    [ Value.Bot; Value.Int 1 ];
  check_commutes_exact "maxreg"
    (module Isets.Maxreg)
    [ Isets.Maxreg.Read_max; Write_max (b 1); Write_max (b 4) ]
    [ b 0; b 2; b 5 ];
  check_commutes_exact "arith-add"
    (module Isets.Arith.Add)
    [ Isets.Arith.Add.Read; Add (b 1); Add (b 3) ]
    [ b 0; b 2 ];
  check_commutes_exact "faa"
    (module Isets.Arith.Faa)
    [ Isets.Arith.Faa.Fetch_add (b 0); Fetch_add (b 1) ]
    [ b 0; b 2 ];
  check_commutes_exact "dec+mul"
    (module Isets.Arith.Decmul)
    [ Isets.Arith.Decmul.Read; Decrement; Multiply 3 ]
    [ b 1; b 4 ];
  check_commutes_exact "incdec"
    (module Isets.Incdec)
    [ Isets.Incdec.Read; Write (b 2); Increment; Decrement ]
    [ b 0; b 3 ];
  check_commutes_exact "bits-write01"
    (module BW01)
    [ Isets.Bits.Read; Write0; Write1 ]
    [ false; true ];
  check_commutes_exact "buffer-2"
    (module B2)
    [ Isets.Buffer_set.Buf_read; Buf_write (Value.Int 1); Buf_write (Value.Int 2) ]
    [ []; [ Value.Int 1 ] ];
  check_commutes_exact "hetero"
    (module Isets.Hetero_buffer)
    [
      Isets.Hetero_buffer.Buf_read 2;
      Buf_write (2, Value.Int 1);
      Buf_write (2, Value.Int 2);
    ]
    [ (0, []); (2, [ Value.Int 1 ]) ]

let test_commutes_pairs () =
  (* blind symmetric updates commute *)
  Alcotest.(check bool) "write-max pair" true
    Isets.Maxreg.(commutes (Write_max (b 1)) (Write_max (b 9)));
  Alcotest.(check bool) "add pair" true
    Isets.Arith.Add.(commutes (Add (b 1)) (Add (b 2)));
  Alcotest.(check bool) "inc/dec" true Isets.Incdec.(commutes Increment Decrement);
  (* returning the old value breaks independence *)
  Alcotest.(check bool) "swap pair" false
    Isets.Swap.(commutes (Swap (Value.Int 1)) (Swap (Value.Int 1)));
  Alcotest.(check bool) "fetch-add pair" false
    Isets.Arith.Faa.(commutes (Fetch_add (b 1)) (Fetch_add (b 2)));
  Alcotest.(check bool) "cas pair" false
    Isets.Cas.(commutes (Cas (Value.Bot, Value.Int 1)) (Cas (Value.Bot, Value.Int 1)));
  (* distinct written values are order-sensitive *)
  Alcotest.(check bool) "rw distinct writes" false
    Isets.Rw.(commutes (Write (Value.Int 1)) (Write (Value.Int 2)));
  Alcotest.(check bool) "rw equal writes" true
    Isets.Rw.(commutes (Write (Value.Int 1)) (Write (Value.Int 1)));
  (* mixed decrement/multiply is order-sensitive *)
  Alcotest.(check bool) "dec vs mul" false
    Isets.Arith.Decmul.(commutes Decrement (Multiply 3));
  (* trivial ops always commute (the contract documented in Iset.S) *)
  Alcotest.(check bool) "reads" true Isets.Rw.(commutes Read Read);
  Alcotest.(check bool) "trivial cas" true
    Isets.Cas.(commutes (Cas (Value.Bot, Value.Bot)) (Cas (Value.Int 1, Value.Int 1)))

let test_names () =
  Alcotest.(check string) "rw" "{read(), write(x)}" Isets.Rw.name;
  Alcotest.(check string) "swap" "{read(), swap(x)}" Isets.Swap.name;
  Alcotest.(check string) "maxreg" "{read-max(), write-max(x)}" Isets.Maxreg.name;
  Alcotest.(check string) "cas" "{compare-and-swap(x,y)}" Isets.Cas.name;
  Alcotest.(check string) "add" "{read(), add(x)}" Isets.Arith.Add.name;
  Alcotest.(check string) "buffer-3" "{3-buffer-read(), 3-buffer-write(x)}" B3.name

let () =
  Alcotest.run "isets"
    [
      ( "instruction sets",
        [
          Alcotest.test_case "read/write" `Quick test_rw;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "max-register" `Quick test_maxreg;
          Alcotest.test_case "compare-and-swap" `Quick test_cas;
          Alcotest.test_case "add/mul/set-bit" `Quick test_add_mul_setbit;
          Alcotest.test_case "fetch-and-add/multiply" `Quick test_fetch_variants;
          Alcotest.test_case "intro sets" `Quick test_intro_sets;
          Alcotest.test_case "bits semantics" `Quick test_bits_semantics;
          Alcotest.test_case "bits flavour restrictions" `Quick
            test_bits_flavour_restrictions;
          Alcotest.test_case "bits names" `Quick test_bits_names;
          Alcotest.test_case "increment flavours" `Quick test_incr_semantics;
          Alcotest.test_case "buffer semantics" `Quick test_buffer_semantics;
          Alcotest.test_case "1-buffer is a register" `Quick test_buffer_one_is_register;
          Alcotest.test_case "buffer capacity validation" `Quick
            test_buffer_capacity_validation;
          Alcotest.test_case "commutes is exact" `Quick test_commutes_sound;
          Alcotest.test_case "commutes known pairs" `Quick test_commutes_pairs;
          Alcotest.test_case "names" `Quick test_names;
        ] );
      ( "buffered reduction (Sec 6.2 remark)",
        [
          Alcotest.test_case "write(1) reduction" `Quick test_reduction_w1;
          Alcotest.test_case "rejects outside instructions" `Quick
            test_reduction_rejects_outside_set;
          QCheck_alcotest.to_alcotest prop_reduction_bisimulates;
        ] );
    ]
