(* Tests for the static-analysis subsystem (lib/analysis): iset contract
   checking, pid-symmetry certification, space-claim linting, the mutant
   selftest corpus, and the soundness gate the certifier puts in front of
   the symmetric state-space reduction. *)

open Analysis

let sym = { Explore.commute = false; symmetric = true }

(* 1. The mutant corpus selftest: the clean base lints clean and every
   deliberately broken iset/protocol trips exactly its expected rule. *)
let test_selftest () =
  let findings = Lint.selftest () in
  let escaped =
    List.filter (fun f -> f.Report.severity = Report.Error) findings
  in
  List.iter (fun f -> Format.eprintf "%a@." Report.pp_finding f) escaped;
  Alcotest.(check int) "no mutant escapes the linter" 0 (List.length escaped);
  Alcotest.(check bool) "selftest reports each catch" true
    (List.length findings >= List.length Mutants.iset_mutants
                             + List.length Mutants.proto_mutants)

(* 2. Every registered hierarchy row lints without errors: iset contracts
   hold, space claims are respected, symmetry verdicts are classifiable. *)
let test_registry_lints_clean () =
  let findings = Lint.run ~ns:[ 2 ] () in
  let bad =
    List.filter (fun f -> f.Report.severity <> Report.Info) findings
  in
  List.iter (fun f -> Format.eprintf "%a@." Report.pp_finding f) bad;
  Alcotest.(check int) "registry: no errors or warnings" 0 (List.length bad)

(* 3. Symmetry verdicts on known protocols: the paper's upper-bound
   protocols treat equal-input processes identically; the rw and swap
   protocols index per-process registers by pid. *)
let test_symmetry_verdicts () =
  let certified_protos =
    [
      ("cas", Consensus.Cas_protocol.protocol);
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
      ("tug-of-war", Consensus.Tugofwar_protocol.binary);
      ("faa2+tas", Consensus.Intro_protocols.faa2_tas);
    ]
  in
  List.iter
    (fun (name, proto) ->
      let v = Symmetry.certify proto ~n:2 in
      Alcotest.(check bool)
        (Format.asprintf "%s certifies (%a)" name Symmetry.pp_verdict v)
        true (Symmetry.certified v))
    certified_protos;
  let asymmetric_protos =
    [
      ("rw", Consensus.Rw_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
    ]
  in
  List.iter
    (fun (name, proto) ->
      match Symmetry.certify proto ~n:2 with
      | Symmetry.Asymmetric _ -> ()
      | v ->
        Alcotest.failf "%s: expected Asymmetric, got %a" name Symmetry.pp_verdict v)
    asymmetric_protos

(* 4. The certifier on the hand-built mutants: pid-dependent accesses and
   pid-dependent decisions both produce a concrete witness; the uniform
   control certifies. *)
let test_symmetry_mutants () =
  (match Symmetry.certify Mutants.asymmetric_access ~n:2 with
   | Symmetry.Asymmetric w ->
     Alcotest.(check bool) "witness names distinct pids" true (w.pid_a <> w.pid_b)
   | v -> Alcotest.failf "asymmetric access: got %a" Symmetry.pp_verdict v);
  (match Symmetry.certify Mutants.asymmetric_decision ~n:2 with
   | Symmetry.Asymmetric _ -> ()
   | v -> Alcotest.failf "asymmetric decision: got %a" Symmetry.pp_verdict v);
  Alcotest.(check bool) "uniform control certifies" true
    (Symmetry.certified (Symmetry.certify Mutants.symmetric_control ~n:2))

(* 5. The soundness gate: symmetric reduction on an uncertified protocol is
   refused with the verdict attached, runs under [~force:true], and runs
   silently for a certified protocol.  Equal inputs make the certification
   non-vacuous (the reduction only conflates equal-input processes, so
   all-distinct inputs certify trivially). *)
let test_gate_refuses_uncertified () =
  let rw = Consensus.Rw_protocol.protocol in
  (match
     Explore.run ~engine:`Memo ~reduce:sym rw ~inputs:[| 0; 0 |] ~depth:4
   with
   | exception Explore.Uncertified_symmetry { protocol; verdict } ->
     Alcotest.(check string) "names the protocol" "read-write-registers" protocol;
     (match verdict with
      | Symmetry.Asymmetric _ -> ()
      | v -> Alcotest.failf "gate verdict: got %a" Symmetry.pp_verdict v)
   | Explore.Completed _ | Explore.Falsified _ | Explore.Timed_out _ ->
     Alcotest.fail "gate did not fire on rw with equal inputs");
  (* decidable_values goes through the same gate *)
  (match Explore.decidable_values ~reduce:sym rw ~inputs:[| 0; 0 |] ~depth:4 with
   | exception Explore.Uncertified_symmetry _ -> ()
   | _ -> Alcotest.fail "decidable_values gate did not fire");
  (* --force suppresses the refusal but still reports the verdict *)
  let notified = ref None in
  (match
     Explore.run ~engine:`Memo ~reduce:sym ~force:true
       ~notify_symmetry:(fun v -> notified := Some v)
       rw ~inputs:[| 0; 0 |] ~depth:4
   with
   | Explore.Completed _ -> ()
   | Explore.Falsified f -> Alcotest.failf "forced run failed: %s" (Explore.failure_message f)
   | Explore.Timed_out _ -> Alcotest.fail "forced run timed out without a deadline"
   | exception Explore.Uncertified_symmetry _ ->
     Alcotest.fail "gate fired despite ~force:true");
  (match !notified with
   | Some (Symmetry.Asymmetric _) -> ()
   | Some v -> Alcotest.failf "notified verdict: %a" Symmetry.pp_verdict v
   | None -> Alcotest.fail "notify_symmetry was not called")

let test_gate_passes_certified () =
  let notified = ref None in
  match
    Explore.run ~engine:`Memo ~reduce:sym
      ~notify_symmetry:(fun v -> notified := Some v)
      Consensus.Cas_protocol.protocol ~inputs:[| 0; 0 |] ~depth:6
  with
  | Explore.Completed _ ->
    Alcotest.(check bool) "verdict is a certificate" true
      (match !notified with Some v -> Symmetry.certified v | None -> false)
  | Explore.Falsified f -> Alcotest.failf "cas failed: %s" (Explore.failure_message f)
  | Explore.Timed_out _ -> Alcotest.fail "cas timed out without a deadline"
  | exception Explore.Uncertified_symmetry { verdict; _ } ->
    Alcotest.failf "gate refused certified cas: %a" Symmetry.pp_verdict verdict

(* 6. Differential: on certified protocols the symmetric reduction changes
   only the amount of work, never the verdict or the decidable-value set —
   across all three engines. *)
let test_certified_reduction_differential () =
  let protos =
    [
      ("cas", Consensus.Cas_protocol.protocol, 6);
      ("faa2+tas", Consensus.Intro_protocols.faa2_tas, 6);
      ("tug-of-war", Consensus.Tugofwar_protocol.binary, 8);
    ]
  in
  let engines = [ ("naive", `Naive); ("memo", `Memo); ("parallel", `Parallel 2) ] in
  List.iter
    (fun (name, proto, depth) ->
      List.iter
        (fun inputs ->
          let completed = function Explore.Completed _ -> true | _ -> false in
          let plain =
            Explore.run ~engine:`Naive proto ~inputs ~depth |> completed
          in
          List.iter
            (fun (ename, engine) ->
              let reduced =
                Explore.run ~engine ~reduce:Explore.full_reduction proto ~inputs
                  ~depth
                |> completed
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s: reduced verdict matches plain" name ename)
                plain reduced)
            engines;
          let values = function
            | Explore.Completed vs -> vs
            | _ -> Alcotest.fail "decidable_values did not complete"
          in
          let plain_vs = values (Explore.decidable_values proto ~inputs ~depth) in
          let reduced_vs =
            values
              (Explore.decidable_values ~reduce:Explore.full_reduction proto
                 ~inputs ~depth)
          in
          Alcotest.(check (list int))
            (name ^ ": reduction preserves decidable values")
            plain_vs reduced_vs)
        [ [| 0; 0 |]; [| 0; 1 |] ])
    protos

(* 7. Contract checker: spot-check two real isets and the report renderer. *)
let test_contracts_and_report () =
  let findings = Lint.lint_iset (module Isets.Cas) in
  Alcotest.(check int) "cas iset: clean" 0 (Report.errors findings);
  let findings = Lint.lint_iset (module Isets.Maxreg) in
  Alcotest.(check int) "maxreg iset: clean" 0 (Report.errors findings);
  (* mutants produce machine-readable findings; JSON survives round-trip
     characters (quotes in op printers etc.) *)
  let (module Bad : Model.Iset.S) = (List.hd Mutants.iset_mutants).iset in
  let bad = Lint.lint_iset (module Bad) in
  Alcotest.(check bool) "mutant produces errors" true (Report.errors bad > 0);
  let json = Report.json_of_findings bad in
  Alcotest.(check bool) "json is an array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

(* 8. Space lint: the overrun mutant is an Error, the symbolic-only overrun
   is a Warning (never observed concretely), and a sound protocol is quiet. *)
let test_space_lint () =
  let rules sev fs =
    List.filter_map
      (fun f -> if f.Report.severity = sev then Some f.Report.rule else None)
      fs
  in
  let overrun =
    List.find (fun (m : Mutants.proto_mutant) -> m.expected_rule = "space-claim-violated")
      Mutants.proto_mutants
  in
  let fs = Space.lint overrun.proto ~n:2 in
  Alcotest.(check bool) "overrun mutant: error" true
    (List.mem "space-claim-violated" (rules Report.Error fs));
  let fs = Space.lint Mutants.symmetric_control ~n:2 in
  Alcotest.(check int) "control protocol: no errors" 0 (Report.errors fs)

let () =
  Alcotest.run "analysis"
    [
      ( "selftest",
        [
          Alcotest.test_case "mutant corpus selftest" `Quick test_selftest;
          Alcotest.test_case "registry lints clean" `Slow test_registry_lints_clean;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "verdicts on known protocols" `Quick
            test_symmetry_verdicts;
          Alcotest.test_case "verdicts on mutants" `Quick test_symmetry_mutants;
        ] );
      ( "gate",
        [
          Alcotest.test_case "refuses uncertified" `Quick test_gate_refuses_uncertified;
          Alcotest.test_case "passes certified" `Quick test_gate_passes_certified;
          Alcotest.test_case "certified reduction differential" `Quick
            test_certified_reduction_differential;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "real isets and report JSON" `Quick
            test_contracts_and_report;
          Alcotest.test_case "space lint severities" `Quick test_space_lint;
        ] );
    ]
