(* Tests for the static-analysis subsystem (lib/analysis): iset contract
   checking, pid-symmetry certification, space-claim linting, the mutant
   selftest corpus, and the soundness gate the certifier puts in front of
   the symmetric state-space reduction. *)

open Analysis

let sym = { Explore.commute = false; symmetric = true }

(* 1. The mutant corpus selftest: the clean base lints clean and every
   deliberately broken iset/protocol trips exactly its expected rule. *)
let test_selftest () =
  let findings = Lint.selftest () in
  let escaped =
    List.filter (fun f -> f.Report.severity = Report.Error) findings
  in
  List.iter (fun f -> Format.eprintf "%a@." Report.pp_finding f) escaped;
  Alcotest.(check int) "no mutant escapes the linter" 0 (List.length escaped);
  Alcotest.(check bool) "selftest reports each catch" true
    (List.length findings >= List.length Mutants.iset_mutants
                             + List.length Mutants.proto_mutants)

(* 2. Every registered hierarchy row lints without errors: iset contracts
   hold, space claims are respected, symmetry verdicts are classifiable. *)
let test_registry_lints_clean () =
  let findings = Lint.run ~ns:[ 2 ] () in
  let bad =
    List.filter (fun f -> f.Report.severity <> Report.Info) findings
  in
  List.iter (fun f -> Format.eprintf "%a@." Report.pp_finding f) bad;
  Alcotest.(check int) "registry: no errors or warnings" 0 (List.length bad)

(* 3. Symmetry verdicts on known protocols: the paper's upper-bound
   protocols treat equal-input processes identically; the rw and swap
   protocols index per-process registers by pid. *)
let test_symmetry_verdicts () =
  let certified_protos =
    [
      ("cas", Consensus.Cas_protocol.protocol);
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
      ("tug-of-war", Consensus.Tugofwar_protocol.binary);
      ("faa2+tas", Consensus.Intro_protocols.faa2_tas);
    ]
  in
  List.iter
    (fun (name, proto) ->
      let v = Symmetry.certify proto ~n:2 in
      Alcotest.(check bool)
        (Format.asprintf "%s certifies (%a)" name Symmetry.pp_verdict v)
        true (Symmetry.certified v))
    certified_protos;
  let asymmetric_protos =
    [
      ("rw", Consensus.Rw_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
    ]
  in
  List.iter
    (fun (name, proto) ->
      match Symmetry.certify proto ~n:2 with
      | Symmetry.Asymmetric _ -> ()
      | v ->
        Alcotest.failf "%s: expected Asymmetric, got %a" name Symmetry.pp_verdict v)
    asymmetric_protos

(* 4. The certifier on the hand-built mutants: pid-dependent accesses and
   pid-dependent decisions both produce a concrete witness; the uniform
   control certifies. *)
let test_symmetry_mutants () =
  (match Symmetry.certify Mutants.asymmetric_access ~n:2 with
   | Symmetry.Asymmetric w ->
     Alcotest.(check bool) "witness names distinct pids" true (w.pid_a <> w.pid_b)
   | v -> Alcotest.failf "asymmetric access: got %a" Symmetry.pp_verdict v);
  (match Symmetry.certify Mutants.asymmetric_decision ~n:2 with
   | Symmetry.Asymmetric _ -> ()
   | v -> Alcotest.failf "asymmetric decision: got %a" Symmetry.pp_verdict v);
  Alcotest.(check bool) "uniform control certifies" true
    (Symmetry.certified (Symmetry.certify Mutants.symmetric_control ~n:2))

(* 5. The soundness gate: symmetric reduction on an uncertified protocol is
   refused with the verdict attached, runs under [~force:true], and runs
   silently for a certified protocol.  Equal inputs make the certification
   non-vacuous (the reduction only conflates equal-input processes, so
   all-distinct inputs certify trivially). *)
let test_gate_refuses_uncertified () =
  let rw = Consensus.Rw_protocol.protocol in
  (match
     Explore.run ~engine:`Memo ~reduce:sym rw ~inputs:[| 0; 0 |] ~depth:4
   with
   | exception Explore.Uncertified_symmetry { protocol; verdict } ->
     Alcotest.(check string) "names the protocol" "read-write-registers" protocol;
     (match verdict with
      | Symmetry.Asymmetric _ -> ()
      | v -> Alcotest.failf "gate verdict: got %a" Symmetry.pp_verdict v)
   | Explore.Completed _ | Explore.Falsified _ | Explore.Timed_out _ ->
     Alcotest.fail "gate did not fire on rw with equal inputs");
  (* decidable_values goes through the same gate *)
  (match Explore.decidable_values ~reduce:sym rw ~inputs:[| 0; 0 |] ~depth:4 with
   | exception Explore.Uncertified_symmetry _ -> ()
   | _ -> Alcotest.fail "decidable_values gate did not fire");
  (* --force suppresses the refusal but still reports the verdict *)
  let notified = ref None in
  (match
     Explore.run ~engine:`Memo ~reduce:sym ~force:true
       ~notify_symmetry:(fun v -> notified := Some v)
       rw ~inputs:[| 0; 0 |] ~depth:4
   with
   | Explore.Completed _ -> ()
   | Explore.Falsified f -> Alcotest.failf "forced run failed: %s" (Explore.failure_message f)
   | Explore.Timed_out _ -> Alcotest.fail "forced run timed out without a deadline"
   | exception Explore.Uncertified_symmetry _ ->
     Alcotest.fail "gate fired despite ~force:true");
  (match !notified with
   | Some (Symmetry.Asymmetric _) -> ()
   | Some v -> Alcotest.failf "notified verdict: %a" Symmetry.pp_verdict v
   | None -> Alcotest.fail "notify_symmetry was not called")

let test_gate_passes_certified () =
  let notified = ref None in
  match
    Explore.run ~engine:`Memo ~reduce:sym
      ~notify_symmetry:(fun v -> notified := Some v)
      Consensus.Cas_protocol.protocol ~inputs:[| 0; 0 |] ~depth:6
  with
  | Explore.Completed _ ->
    Alcotest.(check bool) "verdict is a certificate" true
      (match !notified with Some v -> Symmetry.certified v | None -> false)
  | Explore.Falsified f -> Alcotest.failf "cas failed: %s" (Explore.failure_message f)
  | Explore.Timed_out _ -> Alcotest.fail "cas timed out without a deadline"
  | exception Explore.Uncertified_symmetry { verdict; _ } ->
    Alcotest.failf "gate refused certified cas: %a" Symmetry.pp_verdict verdict

(* 6. Differential: on certified protocols the symmetric reduction changes
   only the amount of work, never the verdict or the decidable-value set —
   across all three engines. *)
let test_certified_reduction_differential () =
  let protos =
    [
      ("cas", Consensus.Cas_protocol.protocol, 6);
      ("faa2+tas", Consensus.Intro_protocols.faa2_tas, 6);
      ("tug-of-war", Consensus.Tugofwar_protocol.binary, 8);
    ]
  in
  let engines = [ ("naive", `Naive); ("memo", `Memo); ("parallel", `Parallel 2) ] in
  List.iter
    (fun (name, proto, depth) ->
      List.iter
        (fun inputs ->
          let completed = function Explore.Completed _ -> true | _ -> false in
          let plain =
            Explore.run ~engine:`Naive proto ~inputs ~depth |> completed
          in
          List.iter
            (fun (ename, engine) ->
              let reduced =
                Explore.run ~engine ~reduce:Explore.full_reduction proto ~inputs
                  ~depth
                |> completed
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s: reduced verdict matches plain" name ename)
                plain reduced)
            engines;
          let values = function
            | Explore.Completed vs -> vs
            | _ -> Alcotest.fail "decidable_values did not complete"
          in
          let plain_vs = values (Explore.decidable_values proto ~inputs ~depth) in
          let reduced_vs =
            values
              (Explore.decidable_values ~reduce:Explore.full_reduction proto
                 ~inputs ~depth)
          in
          Alcotest.(check (list int))
            (name ^ ": reduction preserves decidable values")
            plain_vs reduced_vs)
        [ [| 0; 0 |]; [| 0; 1 |] ])
    protos

(* 7. Contract checker: spot-check two real isets and the report renderer. *)
let test_contracts_and_report () =
  let findings = Lint.lint_iset (module Isets.Cas) in
  Alcotest.(check int) "cas iset: clean" 0 (Report.errors findings);
  let findings = Lint.lint_iset (module Isets.Maxreg) in
  Alcotest.(check int) "maxreg iset: clean" 0 (Report.errors findings);
  (* mutants produce machine-readable findings; JSON survives round-trip
     characters (quotes in op printers etc.) *)
  let (module Bad : Model.Iset.S) = (List.hd Mutants.iset_mutants).iset in
  let bad = Lint.lint_iset (module Bad) in
  Alcotest.(check bool) "mutant produces errors" true (Report.errors bad > 0);
  let json = Report.json_of_findings bad in
  Alcotest.(check bool) "json is an array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

(* 8. Space lint: the overrun mutant is an Error, the symbolic-only overrun
   is a Warning (never observed concretely), and a sound protocol is quiet. *)
let test_space_lint () =
  let rules sev fs =
    List.filter_map
      (fun f -> if f.Report.severity = sev then Some f.Report.rule else None)
      fs
  in
  let overrun =
    List.find (fun (m : Mutants.proto_mutant) -> m.expected_rule = "space-claim-violated")
      Mutants.proto_mutants
  in
  let fs = Space.lint overrun.proto ~n:2 in
  Alcotest.(check bool) "overrun mutant: error" true
    (List.mem "space-claim-violated" (rules Report.Error fs));
  let fs = Space.lint Mutants.symmetric_control ~n:2 in
  Alcotest.(check int) "control protocol: no errors" 0 (Report.errors fs)

(* 9. CFG extraction terminates on every registry protocol: the symbolic
   unfolding either closes into a finite step graph (retry loops become
   back-edges) or reports why it was truncated — it never diverges or
   raises.  Untruncated builds must have unfolded a root for every
   (pid, input) in the sampled grid. *)
let test_cfg_terminates () =
  List.iter
    (fun (row : Hierarchy.row) ->
      let (module P : Consensus.Proto.S) = row.protocol in
      let cfg = Cfg.of_proto (module P) ~n:2 in
      Alcotest.(check bool) (row.id ^ ": cfg has nodes") true
        (Cfg.node_count cfg >= 1);
      if cfg.Cfg.truncated = None then
        List.iter
          (fun pid ->
            List.iter
              (fun input ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: root for pid %d input %d" row.id pid input)
                  true
                  (List.mem_assoc (pid, input) cfg.Cfg.roots))
              [ 0; 1 ])
          [ 0; 1 ])
    (Hierarchy.rows ())

(* Concrete worst-case footprint: the schedule portfolio plus a bounded
   exhaustive walk, both counting distinct locations touched.  This is the
   ground truth the abstract footprint must dominate. *)
let concrete_worst_footprint (module P : Consensus.Proto.S) ~inputs ~depth =
  let worst = ref 0 in
  let note used = if used > !worst then worst := used in
  let scheds =
    [ Model.Sched.sequential; Model.Sched.round_robin;
      Model.Sched.random ~seed:1; Model.Sched.random ~seed:2 ]
  in
  List.iter
    (fun sched ->
      match Consensus.Driver.run ~fuel:20_000 (module P) ~inputs ~sched with
      | r -> note r.Consensus.Driver.locations_used
      | exception _ -> ())
    scheds;
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let seen = Hashtbl.create 1024 in
  let rec go d cfg =
    note (M.locations_used cfg);
    if d > 0 then
      List.iter
        (fun pid ->
          let cfg' = M.step cfg pid in
          let key = (M.fingerprint cfg', M.locations_used cfg') in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            go (d - 1) cfg'
          end)
        (M.running cfg)
  in
  (match M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid)) with
   | cfg0 -> (try go depth cfg0 with _ -> ())
   | exception _ -> ());
  !worst

(* 10. Registry-wide footprint domination differential: wherever the
   abstract interpretation completes (no truncation, converged, no Top),
   its certified feasible footprint dominates every concretely observed
   footprint, and the feasible footprint is a subset of the
   may-footprint. *)
let test_footprint_domination () =
  let complete = ref 0 in
  List.iter
    (fun (row : Hierarchy.row) ->
      let (module P : Consensus.Proto.S) = row.protocol in
      (* reduced work budget: rows that complete do so well within it, and
         rows that would truncate at the default budget truncate cheaply
         instead of burning a million feeds to report the same verdict *)
      let a =
        Absint.analyze_uncached ~work_budget:200_000 ~inputs:[ 0; 1 ]
          (module P) ~n:2
      in
      List.iter
        (fun loc ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: feasible loc %d is in may-footprint" row.id loc)
            true
            (List.mem loc a.Absint.footprint_all))
        a.Absint.footprint_feasible;
      if a.Absint.complete then begin
        incr complete;
        let bound = List.length a.Absint.footprint_feasible in
        List.iter
          (fun inputs ->
            let worst = concrete_worst_footprint (module P) ~inputs ~depth:6 in
            Alcotest.(check bool)
              (Printf.sprintf "%s (inputs %d,%d): certified bound %d >= concrete %d"
                 row.id inputs.(0) inputs.(1) bound worst)
              true (worst <= bound))
          [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
      end)
    (Hierarchy.rows ());
  Alcotest.(check bool) "several rows analyze to completion" true (!complete >= 3)

(* 11. CFG-vs-lockstep differential: wherever both certifiers are decisive
   on a registry row, their verdict constructors agree — the CFG route may
   say Unknown (truncated build falls back to lockstep in [certify]), but
   it must never contradict the reference unfolding. *)
let test_cfg_lockstep_agreement () =
  let compared = ref 0 in
  List.iter
    (fun (row : Hierarchy.row) ->
      let (module P : Consensus.Proto.S) = row.protocol in
      match Symmetry.certify_lockstep (module P) ~n:2 with
      | Symmetry.Unknown _ -> ()
      | lock -> (
        let pair_inputs = Symmetry.all_pair_inputs ~n:2 [ 0; 1 ] in
        match
          Symmetry.certify_cfg_pairs (module P) ~n:2
            ~depth:Symmetry.default_depth pair_inputs
        with
        | Symmetry.Unknown _ -> ()
        | cfg ->
          incr compared;
          let same =
            match (lock, cfg) with
            | Symmetry.Certified_symmetric _, Symmetry.Certified_symmetric _
            | Symmetry.Asymmetric _, Symmetry.Asymmetric _ ->
              true
            | _ -> false
          in
          Alcotest.(check bool)
            (Format.asprintf "%s: cfg (%a) agrees with lockstep (%a)" row.id
               Symmetry.pp_verdict cfg Symmetry.pp_verdict lock)
            true same))
    (Hierarchy.rows ());
  Alcotest.(check bool) "both certifiers decisive on several rows" true
    (!compared >= 5)

(* 12. Deep-depth regression: the loop-bearing upper-bound protocols that
   used to exhaust the lockstep unfolding budget at depth 12 now certify
   through the CFG route (equal roots hold through any depth). *)
let test_deep_certification () =
  List.iter
    (fun id ->
      match Hierarchy.find id with
      | None -> Alcotest.failf "registry row %s missing" id
      | Some row -> (
        let (module P : Consensus.Proto.S) = row.protocol in
        match Symmetry.certify (module P) ~n:2 ~depth:12 with
        | Symmetry.Certified_symmetric _ -> ()
        | v -> Alcotest.failf "%s at depth 12: %a" id Symmetry.pp_verdict v))
    [ "increment"; "fetch-incr"; "max-register"; "fetch-add"; "fetch-multiply" ]

let () =
  Alcotest.run "analysis"
    [
      ( "selftest",
        [
          Alcotest.test_case "mutant corpus selftest" `Quick test_selftest;
          Alcotest.test_case "registry lints clean" `Slow test_registry_lints_clean;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "verdicts on known protocols" `Quick
            test_symmetry_verdicts;
          Alcotest.test_case "verdicts on mutants" `Quick test_symmetry_mutants;
        ] );
      ( "gate",
        [
          Alcotest.test_case "refuses uncertified" `Quick test_gate_refuses_uncertified;
          Alcotest.test_case "passes certified" `Quick test_gate_passes_certified;
          Alcotest.test_case "certified reduction differential" `Quick
            test_certified_reduction_differential;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "real isets and report JSON" `Quick
            test_contracts_and_report;
          Alcotest.test_case "space lint severities" `Quick test_space_lint;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "extraction terminates registry-wide" `Quick
            test_cfg_terminates;
          Alcotest.test_case "footprint domination differential" `Slow
            test_footprint_domination;
          Alcotest.test_case "cfg-vs-lockstep verdict agreement" `Slow
            test_cfg_lockstep_agreement;
          Alcotest.test_case "deep-depth certification" `Quick
            test_deep_certification;
        ] );
    ]
