(* The campaign subsystem: JSON round-trips, the shared record schema, task
   fingerprints, the persistent store, and the resumable executor. *)

let temp_dir () =
  let dir = Filename.temp_file "test_campaign" "" in
  Sys.remove dir;
  dir

(* --- json -------------------------------------------------------------- *)

let sample_json =
  Campaign.Json.(
    Obj
      [
        ("null", Null);
        ("bool", Bool true);
        ("int", Int (-42));
        ("float", Float 1.5);
        ("big", Float 6.02214076e23);
        ("string", String "with \"quotes\", a \\ backslash,\n a newline and \t tab");
        ("control", String "bell \007 and escape \027 go through \\u");
        ("list", List [ Int 1; Int 2; List []; Obj [] ]);
        ("nested", Obj [ ("inner", List [ Bool false; Null ]) ]);
      ])

let test_json_roundtrip () =
  List.iter
    (fun to_string ->
      match Campaign.Json.of_string (to_string sample_json) with
      | Ok j -> Alcotest.(check bool) "round-trips" true (j = sample_json)
      | Error e -> Alcotest.fail e)
    [ Campaign.Json.to_string; Campaign.Json.to_string_pretty ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Campaign.Json.of_string s with
      | Ok _ -> Alcotest.failf "parsed %S?!" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\" 1}";
      "nul";
      "\"unterminated";
      "{} trailing";
      (* \u escapes: non-hex, OCaml-isms int_of_string would accept, truncated *)
      "\"\\uZZZZ\"";
      "\"\\u00_7\"";
      "\"\\u-001\"";
      "\"\\u12\"";
    ]

let test_json_accessors () =
  let j = sample_json in
  Alcotest.(check (option int)) "int" (Some (-42))
    (Campaign.Json.get_int (Campaign.Json.member "int" j));
  Alcotest.(check (option bool)) "bool" (Some true)
    (Campaign.Json.get_bool (Campaign.Json.member "bool" j));
  Alcotest.(check (option (float 1e-9))) "int promotes to float" (Some (-42.0))
    (Campaign.Json.get_float (Campaign.Json.member "int" j));
  Alcotest.(check bool) "absent member is Null" true
    (Campaign.Json.member "no-such-key" j = Campaign.Json.Null)

(* --- record ------------------------------------------------------------ *)

let record ?(status = Campaign.Record.Verified) ?(task = "0123456789abcdef") () =
  Campaign.Record.make ~task ~kind:"check" ~row:"cas" ~protocol:"cas-consensus" ~n:3
    ~depth:6 ~engine:"memo" ~reduce:"commute" ~status ~configs:120 ~probes:14
    ~dedup_hits:9 ~sleep_pruned:2 ~truncated:true ~elapsed:0.125
    ~extra:[ ("seed", Campaign.Json.Int 7) ]
    ()

let statuses =
  [
    Campaign.Record.Verified;
    Campaign.Record.Violation
      { kind = "agreement"; message = "p0=1 p1=0"; schedule = [ 0; 1; 1 ]; probe = Some 1 };
    Campaign.Record.Violation
      { kind = "validity"; message = "decided 9"; schedule = []; probe = None };
    Campaign.Record.Timeout;
    Campaign.Record.Crash "Stack_overflow";
  ]

let test_record_roundtrip () =
  List.iter
    (fun status ->
      let r = record ~status () in
      match Campaign.Record.of_json (Campaign.Record.to_json r) with
      | Ok r' -> Alcotest.(check bool) "round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    statuses

let test_record_rejects_garbage () =
  List.iter
    (fun j ->
      match Campaign.Record.of_json j with
      | Ok _ -> Alcotest.fail "accepted a non-record?!"
      | Error _ -> ())
    [
      Campaign.Json.Null;
      Campaign.Json.Obj [ ("task", Campaign.Json.String "x") ];
      Campaign.Json.Obj [ ("status", Campaign.Json.String "verified") ];
    ]

(* --- tasks and fingerprints -------------------------------------------- *)

let row id =
  match Hierarchy.find ~ells:[ 1; 2 ] id with
  | Some r -> r
  | None -> Alcotest.failf "registry row %s missing" id

let commute = { Explore.commute = true; symmetric = false }

let test_fingerprint_stable_and_distinct () =
  let task = Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "cas") ~n:2 in
  let fp = Campaign.Task.fingerprint task in
  Alcotest.(check string) "deterministic" fp (Campaign.Task.fingerprint task);
  Alcotest.(check int) "16 hex chars" 16 (String.length fp);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    fp;
  let fingerprints =
    List.map Campaign.Task.fingerprint
      [
        task;
        Campaign.Task.check ~engine:`Naive ~reduce:commute ~depth:4 (row "cas") ~n:2;
        Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:5 (row "cas") ~n:2;
        Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "cas") ~n:3;
        Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "swap") ~n:2;
        Campaign.Task.stress ~seed:1 ~prefix:64 ~max_burst:4 (row "cas") ~n:2;
        Campaign.Task.stress ~seed:2 ~prefix:64 ~max_burst:4 (row "cas") ~n:2;
      ]
  in
  Alcotest.(check int) "all distinct"
    (List.length fingerprints)
    (List.length (List.sort_uniq compare fingerprints))

let test_spec_expansion () =
  let spec =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "cas"; "swap" ];
      ns = [ 2; 3 ];
      depths = [ 3; 4 ];
      stress_seeds = [ 1 ];
    }
  in
  match Campaign.Spec.tasks spec with
  | Error e -> Alcotest.fail e
  | Ok tasks ->
    (* 2 rows x 2 ns x (2 depths x 1 engine x 1 reduction + 1 stress seed) *)
    Alcotest.(check int) "grid size" 12 (List.length tasks);
    (match Campaign.Spec.tasks { spec with Campaign.Spec.include_rows = [ "no-such" ] } with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "accepted an unknown row id");
    (match Campaign.Spec.tasks { spec with Campaign.Spec.ns = [] } with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "accepted an empty n grid")

(* --- store ------------------------------------------------------------- *)

let test_store_roundtrip_and_reopen () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir in
  Alcotest.(check int) "fresh store empty" 0 (Campaign.Store.count store);
  let r1 = record ~task:"aaaaaaaaaaaaaaaa" () in
  let r2 = record ~task:"bbbbbbbbbbbbbbbb" ~status:Campaign.Record.Timeout () in
  Campaign.Store.put store r1;
  Campaign.Store.put store r2;
  Alcotest.(check bool) "mem" true (Campaign.Store.mem store "aaaaaaaaaaaaaaaa");
  Alcotest.(check bool) "find" true (Campaign.Store.find store "bbbbbbbbbbbbbbbb" = Some r2);
  (* a second handle on the same directory recovers both records *)
  let store' = Campaign.Store.open_ ~dir in
  Alcotest.(check int) "reopened count" 2 (Campaign.Store.count store');
  Alcotest.(check bool) "reopened record" true
    (Campaign.Store.find store' "aaaaaaaaaaaaaaaa" = Some r1);
  (* overwrite wins *)
  let r1' = { r1 with Campaign.Record.elapsed = 9.0 } in
  Campaign.Store.put store' r1';
  Alcotest.(check bool) "overwritten" true
    (Campaign.Store.find store' "aaaaaaaaaaaaaaaa" = Some r1')

let test_store_skips_corrupt_files () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir in
  Campaign.Store.put store (record ~task:"cccccccccccccccc" ());
  let write name contents =
    let oc = open_out (Filename.concat (Filename.concat dir "results") name) in
    output_string oc contents;
    close_out oc
  in
  write "not-json.json" "{ this is not json";
  write "not-a-record.json" "{\"hello\": 1}";
  write "bad-escape.json" "{\"task\": \"\\uZZZZ\"}";
  let store' = Campaign.Store.open_ ~dir in
  Alcotest.(check int) "only the valid record" 1 (Campaign.Store.count store');
  Alcotest.(check bool) "valid record survives" true
    (Campaign.Store.mem store' "cccccccccccccccc")

(* --- executor ---------------------------------------------------------- *)

let smoke_tasks () =
  let spec =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "cas"; "swap"; "max-register" ];
      depths = [ 3 ];
    }
  in
  match Campaign.Spec.tasks spec with
  | Ok tasks -> tasks
  | Error e -> Alcotest.fail e

let test_executor_runs_and_verifies () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir in
  let tasks = smoke_tasks () in
  let o = Campaign.Executor.run ~store tasks in
  Alcotest.(check int) "total" (List.length tasks) o.Campaign.Executor.total;
  Alcotest.(check int) "all executed" (List.length tasks) o.Campaign.Executor.executed;
  Alcotest.(check int) "none cached" 0 o.Campaign.Executor.cached;
  Alcotest.(check int) "records for every task" (List.length tasks)
    (List.length o.Campaign.Executor.records);
  List.iter
    (fun (r : Campaign.Record.t) ->
      Alcotest.(check string) "verified"
        "verified"
        (Campaign.Record.status_name r.Campaign.Record.status))
    o.Campaign.Executor.records;
  (* the report covers every requested row with a verified cell *)
  let report = Campaign.Report.make o.Campaign.Executor.records in
  Alcotest.(check int) "nothing unexpected" 0
    (List.length (Campaign.Report.unexpected report));
  let rendered = Campaign.Report.render report in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " appears in the rendering")
        true (contains rendered id))
    [ "cas"; "swap"; "max-register" ]

let test_executor_resumes_after_interrupt () =
  let dir = temp_dir () in
  let tasks = smoke_tasks () in
  let total = List.length tasks in
  (* first run: stop after 4 completed tasks — an interrupted campaign *)
  let finished = ref 0 in
  let on_event = function
    | Campaign.Executor.Task_finished _ -> incr finished
    | _ -> ()
  in
  let store = Campaign.Store.open_ ~dir in
  let first =
    Campaign.Executor.run ~store ~stop:(fun () -> !finished >= 4) ~on_event tasks
  in
  Alcotest.(check int) "first run executed 4" 4 first.Campaign.Executor.executed;
  Alcotest.(check int) "first run aborted the rest" (total - 4)
    first.Campaign.Executor.aborted;
  (* second run against the same directory: picks up exactly the remainder *)
  let store' = Campaign.Store.open_ ~dir in
  let second = Campaign.Executor.run ~store:store' tasks in
  Alcotest.(check int) "second run skips completed tasks" 4
    second.Campaign.Executor.cached;
  Alcotest.(check int) "second run executes the remainder" (total - 4)
    second.Campaign.Executor.executed;
  Alcotest.(check int) "nothing aborted" 0 second.Campaign.Executor.aborted;
  Alcotest.(check int) "full record set" total
    (List.length second.Campaign.Executor.records);
  (* third run: everything cached, nothing executed *)
  let third = Campaign.Executor.run ~store:(Campaign.Store.open_ ~dir) tasks in
  Alcotest.(check int) "third run all cached" total third.Campaign.Executor.cached;
  Alcotest.(check int) "third run executes nothing" 0 third.Campaign.Executor.executed

let test_executor_honours_deadline () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir in
  (* a negative deadline expires at the first check: verdict must be a
     timeout record, not a hang and not a crash *)
  let task =
    Campaign.Task.check ~deadline:(-1.0) ~engine:`Memo ~reduce:commute ~depth:8
      (row "swap") ~n:3
  in
  let o = Campaign.Executor.run ~store [ task ] in
  match o.Campaign.Executor.records with
  | [ r ] ->
    Alcotest.(check string) "timeout verdict" "timeout"
      (Campaign.Record.status_name r.Campaign.Record.status)
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let test_executor_isolates_crashes () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir in
  let broken : Consensus.Proto.t =
    (module struct
      module I = Isets.Rw

      let name = "deliberately-broken"
      let locations ~n:_ = Some 1
      let proc ~n:_ ~pid:_ ~input:_ = failwith "boom"
    end)
  in
  let broken_row =
    { (row "cas") with Hierarchy.id = "broken"; protocol = broken }
  in
  let tasks =
    [
      Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 broken_row ~n:2;
      Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 (row "cas") ~n:2;
    ]
  in
  let o = Campaign.Executor.run ~store tasks in
  Alcotest.(check int) "both tasks ran" 2 o.Campaign.Executor.executed;
  match o.Campaign.Executor.records with
  | [ r_broken; r_ok ] ->
    Alcotest.(check string) "crash captured" "crash"
      (Campaign.Record.status_name r_broken.Campaign.Record.status);
    Alcotest.(check string) "sweep continued past it" "verified"
      (Campaign.Record.status_name r_ok.Campaign.Record.status)
  | rs -> Alcotest.failf "expected two records, got %d" (List.length rs)

let test_executor_logs_events () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir in
  let tasks = [ Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 (row "cas") ~n:2 ] in
  ignore (Campaign.Executor.run ~store tasks);
  let ic = open_in (Filename.concat dir "events.jsonl") in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let events =
    List.rev_map
      (fun line ->
        match Campaign.Json.of_string line with
        | Ok j -> Option.get (Campaign.Json.get_string (Campaign.Json.member "event" j))
        | Error e -> Alcotest.failf "unparseable event line %S: %s" line e)
      !lines
  in
  Alcotest.(check (list string)) "telemetry sequence"
    [ "campaign_started"; "task_started"; "task_finished"; "campaign_finished" ]
    events

(* --- report ------------------------------------------------------------ *)

let test_report_worst_status_wins () =
  let rs =
    [
      record ~task:"1111111111111111" ();
      record ~task:"2222222222222222" ~status:Campaign.Record.Timeout ();
      record ~task:"3333333333333333"
        ~status:
          (Campaign.Record.Violation
             { kind = "agreement"; message = "boom"; schedule = [ 0 ]; probe = None })
        ();
    ]
  in
  let report = Campaign.Report.make rs in
  (match Campaign.Report.cells report with
   | [ c ] ->
     Alcotest.(check string) "violation dominates" "violation:agreement"
       (Campaign.Record.status_name c.Campaign.Report.status);
     Alcotest.(check int) "verified count" 1 c.Campaign.Report.verified;
     Alcotest.(check int) "total count" 3 c.Campaign.Report.total
   | cs -> Alcotest.failf "expected one cell, got %d" (List.length cs));
  Alcotest.(check int) "two unexpected records" 2
    (List.length (Campaign.Report.unexpected report));
  (* csv: a header plus one line per record *)
  let csv = Campaign.Report.to_csv report in
  Alcotest.(check int) "csv lines" 4
    (List.length (String.split_on_char '\n' (String.trim csv)))

let () =
  Alcotest.run "campaign"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "record",
        [
          Alcotest.test_case "round-trip all statuses" `Quick test_record_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_record_rejects_garbage;
        ] );
      ( "task",
        [
          Alcotest.test_case "fingerprints stable and distinct" `Quick
            test_fingerprint_stable_and_distinct;
          Alcotest.test_case "spec expansion" `Quick test_spec_expansion;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip and reopen" `Quick test_store_roundtrip_and_reopen;
          Alcotest.test_case "skips corrupt files" `Quick test_store_skips_corrupt_files;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs and verifies" `Quick test_executor_runs_and_verifies;
          Alcotest.test_case "resumes after interrupt" `Quick
            test_executor_resumes_after_interrupt;
          Alcotest.test_case "honours deadlines" `Quick test_executor_honours_deadline;
          Alcotest.test_case "isolates crashes" `Quick test_executor_isolates_crashes;
          Alcotest.test_case "logs telemetry events" `Quick test_executor_logs_events;
        ] );
      ( "report",
        [
          Alcotest.test_case "worst status wins" `Quick test_report_worst_status_wins;
        ] );
    ]
