(* The campaign subsystem: JSON round-trips, the shared record schema, task
   fingerprints, the persistent store, and the resumable executor. *)

let temp_dir () =
  let dir = Filename.temp_file "test_campaign" "" in
  Sys.remove dir;
  dir

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let list_claims dir =
  match Sys.readdir (Filename.concat dir "claims") with
  | entries -> List.sort compare (Array.to_list entries)
  | exception Sys_error _ -> []

let write_raw path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let age_file path seconds =
  let past = Unix.gettimeofday () -. seconds in
  Unix.utimes path past past

(* --- json -------------------------------------------------------------- *)

let sample_json =
  Campaign.Json.(
    Obj
      [
        ("null", Null);
        ("bool", Bool true);
        ("int", Int (-42));
        ("float", Float 1.5);
        ("big", Float 6.02214076e23);
        ("string", String "with \"quotes\", a \\ backslash,\n a newline and \t tab");
        ("control", String "bell \007 and escape \027 go through \\u");
        ("list", List [ Int 1; Int 2; List []; Obj [] ]);
        ("nested", Obj [ ("inner", List [ Bool false; Null ]) ]);
      ])

let test_json_roundtrip () =
  List.iter
    (fun to_string ->
      match Campaign.Json.of_string (to_string sample_json) with
      | Ok j -> Alcotest.(check bool) "round-trips" true (j = sample_json)
      | Error e -> Alcotest.fail e)
    [ Campaign.Json.to_string; Campaign.Json.to_string_pretty ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Campaign.Json.of_string s with
      | Ok _ -> Alcotest.failf "parsed %S?!" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\" 1}";
      "nul";
      "\"unterminated";
      "{} trailing";
      (* \u escapes: non-hex, OCaml-isms int_of_string would accept, truncated *)
      "\"\\uZZZZ\"";
      "\"\\u00_7\"";
      "\"\\u-001\"";
      "\"\\u12\"";
    ]

let test_json_accessors () =
  let j = sample_json in
  Alcotest.(check (option int)) "int" (Some (-42))
    (Campaign.Json.get_int (Campaign.Json.member "int" j));
  Alcotest.(check (option bool)) "bool" (Some true)
    (Campaign.Json.get_bool (Campaign.Json.member "bool" j));
  Alcotest.(check (option (float 1e-9))) "int promotes to float" (Some (-42.0))
    (Campaign.Json.get_float (Campaign.Json.member "int" j));
  Alcotest.(check bool) "absent member is Null" true
    (Campaign.Json.member "no-such-key" j = Campaign.Json.Null)

let test_json_nonfinite () =
  (* JSON has no literals for these; [to_string] must still emit something
     [of_string] accepts (a sentinel string), and [get_float] must map the
     sentinel back to the original float. *)
  let reparse f =
    let rendered = Campaign.Json.to_string (Campaign.Json.Float f) in
    match Campaign.Json.of_string rendered with
    | Error e -> Alcotest.failf "Float %h rendered as unparsable %S: %s" f rendered e
    | Ok j -> j
  in
  let numeric_view f =
    match Campaign.Json.get_float (reparse f) with
    | Some v -> v
    | None -> Alcotest.failf "Float %h lost its numeric view across a round-trip" f
  in
  Alcotest.(check bool) "nan survives" true (Float.is_nan (numeric_view Float.nan));
  Alcotest.(check (float 0.0)) "infinity survives" Float.infinity
    (numeric_view Float.infinity);
  Alcotest.(check (float 0.0)) "-infinity survives" Float.neg_infinity
    (numeric_view Float.neg_infinity);
  (* -0.0 is finite: it must stay a real JSON number, sign included *)
  (match reparse (-0.0) with
   | Campaign.Json.Float v ->
     Alcotest.(check bool) "negative zero keeps its sign" true
       (1.0 /. v = Float.neg_infinity)
   | j -> Alcotest.failf "-0.0 re-parsed as %s" (Campaign.Json.to_string j));
  (* the original bug: a whole record with a non-finite elapsed must
     round-trip through the store's serialization instead of corrupting *)
  let r =
    Campaign.Record.make ~task:"0123456789abcdef" ~kind:"check" ~row:"cas"
      ~protocol:"cas-consensus" ~n:3 ~depth:6 ~engine:"memo" ~reduce:"commute"
      ~status:Campaign.Record.Timeout ~configs:0 ~probes:0 ~dedup_hits:0
      ~sleep_pruned:0 ~truncated:true ~elapsed:Float.nan ()
  in
  match Campaign.Record.of_json (Campaign.Record.to_json r) with
  | Error e -> Alcotest.fail ("record with nan elapsed: " ^ e)
  | Ok r' ->
    Alcotest.(check bool) "nan elapsed survives a record round-trip" true
      (Float.is_nan r'.Campaign.Record.elapsed)

(* --- record ------------------------------------------------------------ *)

let record ?(status = Campaign.Record.Verified) ?(task = "0123456789abcdef") () =
  Campaign.Record.make ~task ~kind:"check" ~row:"cas" ~protocol:"cas-consensus" ~n:3
    ~depth:6 ~engine:"memo" ~reduce:"commute" ~status ~configs:120 ~probes:14
    ~dedup_hits:9 ~sleep_pruned:2 ~truncated:true ~elapsed:0.125
    ~extra:[ ("seed", Campaign.Json.Int 7) ]
    ()

let statuses =
  [
    Campaign.Record.Verified;
    Campaign.Record.Violation
      { kind = "agreement"; message = "p0=1 p1=0"; schedule = [ 0; 1; 1 ]; probe = Some 1 };
    Campaign.Record.Violation
      { kind = "validity"; message = "decided 9"; schedule = []; probe = None };
    Campaign.Record.Timeout;
    Campaign.Record.Crash "Stack_overflow";
  ]

let test_record_roundtrip () =
  List.iter
    (fun status ->
      let r = record ~status () in
      match Campaign.Record.of_json (Campaign.Record.to_json r) with
      | Ok r' -> Alcotest.(check bool) "round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    statuses

let test_record_rejects_garbage () =
  List.iter
    (fun j ->
      match Campaign.Record.of_json j with
      | Ok _ -> Alcotest.fail "accepted a non-record?!"
      | Error _ -> ())
    [
      Campaign.Json.Null;
      Campaign.Json.Obj [ ("task", Campaign.Json.String "x") ];
      Campaign.Json.Obj [ ("status", Campaign.Json.String "verified") ];
    ]

let test_record_same_verdict () =
  let r = record () in
  Alcotest.(check bool) "timing and counters are not part of the verdict" true
    (Campaign.Record.same_verdict r
       {
         r with
         Campaign.Record.configs = 1;
         probes = 0;
         dedup_hits = 0;
         sleep_pruned = 0;
         truncated = false;
         elapsed = 99.0;
         extra = [];
       });
  Alcotest.(check bool) "a status difference is a verdict difference" false
    (Campaign.Record.same_verdict r
       { r with Campaign.Record.status = Campaign.Record.Timeout });
  Alcotest.(check bool) "different tasks never share a verdict" false
    (Campaign.Record.same_verdict r (record ~task:"fedcba9876543210" ()))

let test_record_observers () =
  let make observers =
    Campaign.Record.make ~task:"0123456789abcdef" ~kind:"check" ~row:"cas"
      ~protocol:"cas-consensus" ~n:3 ~depth:6 ~engine:"memo" ~reduce:"commute"
      ~observers ~status:Campaign.Record.Verified ~configs:120 ~probes:14
      ~dedup_hits:9 ~sleep_pruned:2 ~truncated:false ~elapsed:0.125 ()
  in
  let observed = make [ "agreement"; "validity" ] in
  (match Campaign.Record.of_json (Campaign.Record.to_json observed) with
   | Ok r' -> Alcotest.(check bool) "observed record round-trips" true (observed = r')
   | Error e -> Alcotest.fail e);
  (* a record written before the observer field existed has no "observers"
     member: it must parse (as the empty set) and re-serialize byte-for-byte *)
  let legacy = make [] in
  let legacy_json = Campaign.Record.to_json legacy in
  Alcotest.(check bool) "empty observer set is omitted from the JSON" true
    (Campaign.Json.member "observers" legacy_json = Campaign.Json.Null);
  (match Campaign.Record.of_json legacy_json with
   | Ok r' ->
     Alcotest.(check (list string)) "absent field parses as no observers" []
       r'.Campaign.Record.observers;
     Alcotest.(check string) "pre-observer records re-serialize unchanged"
       (Campaign.Json.to_string legacy_json)
       (Campaign.Json.to_string (Campaign.Record.to_json r'))
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "the observer set is part of the verdict" false
    (Campaign.Record.same_verdict observed legacy);
  match
    Campaign.Record.of_json
      (Campaign.Json.Obj
         (List.map
            (fun (k, v) ->
              if k = "observers" then (k, Campaign.Json.List [ Campaign.Json.Int 3 ])
              else (k, v))
            (match Campaign.Record.to_json observed with
             | Campaign.Json.Obj fields -> fields
             | _ -> Alcotest.fail "record JSON is not an object")))
  with
  | Ok _ -> Alcotest.fail "accepted a non-string observer name"
  | Error _ -> ()

(* --- tasks and fingerprints -------------------------------------------- *)

let row id =
  match Hierarchy.find ~ells:[ 1; 2 ] id with
  | Some r -> r
  | None -> Alcotest.failf "registry row %s missing" id

let commute = { Explore.commute = true; symmetric = false }

let test_fingerprint_stable_and_distinct () =
  let task = Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "cas") ~n:2 in
  let fp = Campaign.Task.fingerprint task in
  Alcotest.(check string) "deterministic" fp (Campaign.Task.fingerprint task);
  Alcotest.(check int) "16 hex chars" 16 (String.length fp);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    fp;
  let fingerprints =
    List.map Campaign.Task.fingerprint
      [
        task;
        Campaign.Task.check ~engine:`Naive ~reduce:commute ~depth:4 (row "cas") ~n:2;
        Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:5 (row "cas") ~n:2;
        Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "cas") ~n:3;
        Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "swap") ~n:2;
        Campaign.Task.stress ~seed:1 ~prefix:64 ~max_burst:4 (row "cas") ~n:2;
        Campaign.Task.stress ~seed:2 ~prefix:64 ~max_burst:4 (row "cas") ~n:2;
      ]
  in
  Alcotest.(check int) "all distinct"
    (List.length fingerprints)
    (List.length (List.sort_uniq compare fingerprints))

let test_spec_expansion () =
  let spec =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "cas"; "swap" ];
      ns = [ 2; 3 ];
      depths = [ 3; 4 ];
      stress_seeds = [ 1 ];
    }
  in
  match Campaign.Spec.tasks spec with
  | Error e -> Alcotest.fail e
  | Ok tasks ->
    (* 2 rows x 2 ns x (2 depths x 1 engine x 1 reduction + 1 stress seed) *)
    Alcotest.(check int) "grid size" 12 (List.length tasks);
    (match Campaign.Spec.tasks { spec with Campaign.Spec.include_rows = [ "no-such" ] } with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "accepted an unknown row id");
    (match Campaign.Spec.tasks { spec with Campaign.Spec.ns = [] } with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "accepted an empty n grid")

let test_observed_tasks () =
  let check ?observe () =
    Campaign.Task.check ?observe ~engine:`Memo
      ~reduce:{ Explore.commute = true; symmetric = false }
      ~depth:3
      (match Hierarchy.find ~ells:[ 1; 2 ] "cas" with
       | Some r -> r
       | None -> Alcotest.fail "cas row missing")
      ~n:2
  in
  let plain = check () in
  let observed = check ~observe:[ "agreement"; "validity" ] () in
  (* the observer set is part of the content address: an observed run must
     never be answered from an unobserved run's cached record *)
  Alcotest.(check bool) "observer set changes the fingerprint" false
    (Campaign.Task.fingerprint plain = Campaign.Task.fingerprint observed);
  Alcotest.(check string) "no observers leaves the legacy fingerprint alone"
    (Campaign.Task.fingerprint plain)
    (Campaign.Task.fingerprint (check ~observe:[] ()));
  let r = Campaign.Task.run observed in
  Alcotest.(check (list string)) "record carries the observer names"
    [ "agreement"; "validity" ] r.Campaign.Record.observers;
  (match r.Campaign.Record.status with
   | Campaign.Record.Verified -> ()
   | _ -> Alcotest.fail "observed cas check should verify");
  (* unknown names resolve at run time into a Crash record, not an exception *)
  (match (Campaign.Task.run (check ~observe:[ "no-such-monitor" ] ())).Campaign.Record.status with
   | Campaign.Record.Crash _ -> ()
   | _ -> Alcotest.fail "unknown observer name should crash the task");
  (* specs canonicalize names before building tasks, so "default" and its
     expansion fingerprint identically *)
  let spec observe =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "cas" ];
      ns = [ 2 ];
      depths = [ 3 ];
      stress_seeds = [];
      observe;
    }
  in
  let fingerprints observe =
    match Campaign.Spec.tasks (spec observe) with
    | Ok tasks -> List.map Campaign.Task.fingerprint tasks
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "\"default\" expands before fingerprinting"
    (fingerprints [ "agreement"; "validity"; "solo-termination" ])
    (fingerprints [ "default" ]);
  match Campaign.Spec.tasks (spec [ "no-such-monitor" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spec accepted an unknown observer name"

let test_crash_tasks () =
  let check ?crashes () =
    Campaign.Task.check ?crashes ~engine:`Memo ~reduce:commute ~depth:4 (row "cas") ~n:2
  in
  let plain = check () in
  (* an explicit zero budget is the historical fingerprint: crash-free grids
     keep addressing the store entries they wrote before the crash subsystem *)
  Alcotest.(check string) "crashes=0 keeps the legacy fingerprint"
    (Campaign.Task.fingerprint plain)
    (Campaign.Task.fingerprint (check ~crashes:0 ()));
  Alcotest.(check bool) "a positive budget changes the fingerprint" false
    (Campaign.Task.fingerprint plain = Campaign.Task.fingerprint (check ~crashes:1 ()));
  let mk crashes =
    Campaign.Record.make ~task:"0123456789abcdef" ~kind:"check" ~row:"rc-cas"
      ~protocol:"rc-cas" ~n:2 ~depth:14 ~engine:"memo" ~reduce:"none" ~crashes
      ~status:Campaign.Record.Verified ()
  in
  Alcotest.(check bool) "crash-free records omit the field" true
    (Campaign.Json.member "crashes" (Campaign.Record.to_json (mk 0)) = Campaign.Json.Null);
  (match Campaign.Record.of_json (Campaign.Record.to_json (mk 1)) with
   | Ok r -> Alcotest.(check int) "crash budget round-trips" 1 r.Campaign.Record.crashes
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "the crash budget is part of the verdict" false
    (Campaign.Record.same_verdict (mk 0) (mk 1));
  (* specs: the recovery rows are visible exactly when the budget is positive *)
  let spec crashes =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "rc-cas" ];
      ns = [ 2 ];
      depths = [ 14 ];
      stress_seeds = [];
      crashes;
    }
  in
  (match Campaign.Spec.tasks (spec 0) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "crash-free spec admitted a recovery row");
  match Campaign.Spec.tasks (spec 1) with
  | Ok [ t ] ->
    let r = Campaign.Task.run t in
    Alcotest.(check int) "record carries the crash budget" 1 r.Campaign.Record.crashes;
    (match r.Campaign.Record.status with
     | Campaign.Record.Verified -> ()
     | s -> Alcotest.failf "rc-cas crash check: %s" (Campaign.Record.status_name s))
  | Ok ts -> Alcotest.failf "expected 1 task, got %d" (List.length ts)
  | Error e -> Alcotest.fail e

(* --- store ------------------------------------------------------------- *)

let test_store_roundtrip_and_reopen () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  Alcotest.(check int) "fresh store empty" 0 (Campaign.Store.count store);
  let r1 = record ~task:"aaaaaaaaaaaaaaaa" () in
  let r2 = record ~task:"bbbbbbbbbbbbbbbb" ~status:Campaign.Record.Timeout () in
  Campaign.Store.put store r1;
  Campaign.Store.put store r2;
  Alcotest.(check bool) "mem" true (Campaign.Store.mem store "aaaaaaaaaaaaaaaa");
  Alcotest.(check bool) "find" true (Campaign.Store.find store "bbbbbbbbbbbbbbbb" = Some r2);
  (* a second handle on the same directory recovers both records *)
  let store' = Campaign.Store.open_ ~dir () in
  Alcotest.(check int) "reopened count" 2 (Campaign.Store.count store');
  Alcotest.(check bool) "reopened record" true
    (Campaign.Store.find store' "aaaaaaaaaaaaaaaa" = Some r1);
  (* overwrite wins *)
  let r1' = { r1 with Campaign.Record.elapsed = 9.0 } in
  Campaign.Store.put store' r1';
  Alcotest.(check bool) "overwritten" true
    (Campaign.Store.find store' "aaaaaaaaaaaaaaaa" = Some r1')

let test_store_skips_corrupt_files () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  Campaign.Store.put store (record ~task:"cccccccccccccccc" ());
  let write name contents =
    let oc = open_out (Filename.concat (Filename.concat dir "results") name) in
    output_string oc contents;
    close_out oc
  in
  write "not-json.json" "{ this is not json";
  write "not-a-record.json" "{\"hello\": 1}";
  write "bad-escape.json" "{\"task\": \"\\uZZZZ\"}";
  let store' = Campaign.Store.open_ ~dir () in
  Alcotest.(check int) "only the valid record" 1 (Campaign.Store.count store');
  Alcotest.(check bool) "valid record survives" true
    (Campaign.Store.mem store' "cccccccccccccccc")

let test_store_claim_protocol () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let task = "aaaaaaaaaaaaaaaa" in
  (match Campaign.Store.claim store task with
   | `Claimed -> ()
   | `Done _ | `Lost -> Alcotest.fail "fresh claim should win");
  Alcotest.(check (list string)) "lease files on disk"
    [ Printf.sprintf "%s.%d" task (Unix.getpid ()); task ^ ".lease" ]
    (list_claims dir);
  (* re-claiming one's own live lease is idempotent, not a deadlock *)
  (match Campaign.Store.claim store task with
   | `Claimed -> ()
   | `Done _ | `Lost -> Alcotest.fail "the holder must be able to re-claim");
  Campaign.Store.put store (record ~task ());
  Alcotest.(check (list string)) "put releases the lease" [] (list_claims dir);
  match Campaign.Store.claim store task with
  | `Done r -> Alcotest.(check string) "claim short-circuits to the record" task
                 r.Campaign.Record.task
  | `Claimed | `Lost -> Alcotest.fail "a completed task must claim as Done"

let test_store_claim_release () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let task = "bbbbbbbbbbbbbbbb" in
  (match Campaign.Store.claim store task with
   | `Claimed -> ()
   | `Done _ | `Lost -> Alcotest.fail "fresh claim should win");
  Campaign.Store.release store task;
  Alcotest.(check (list string)) "release clears claims/" [] (list_claims dir);
  match Campaign.Store.claim store task with
  | `Claimed -> ()
  | `Done _ | `Lost -> Alcotest.fail "a released task must be claimable again"

let test_store_claim_foreign_lease () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let task = "cccccccccccccccc" in
  (* a live lease from some other writer: a distinct inode, fresh mtime *)
  let lock = Filename.concat (Filename.concat dir "claims") (task ^ ".lease") in
  write_raw lock "99999\n";
  (match Campaign.Store.claim store task with
   | `Lost -> ()
   | `Claimed | `Done _ -> Alcotest.fail "a live foreign lease must not be stolen");
  (* the loser withdraws its own pid file; the foreign lease survives *)
  Alcotest.(check (list string)) "only the foreign lease remains"
    [ task ^ ".lease" ] (list_claims dir);
  (* once the holder is presumed dead (mtime beyond the ttl), break the lease *)
  age_file lock 3600.0;
  match Campaign.Store.claim store task with
  | `Claimed -> ()
  | `Done _ | `Lost -> Alcotest.fail "an expired lease must be re-claimable"

let test_store_sweeps_stale_debris () =
  let dir = temp_dir () in
  ignore (Campaign.Store.open_ ~dir ());
  let results = Filename.concat dir "results" in
  let record_path = Filename.concat results "dddddddddddddddd.json" in
  write_raw record_path
    (Campaign.Json.to_string
       (Campaign.Record.to_json (record ~task:"dddddddddddddddd" ())));
  age_file record_path 7200.0;
  let stale_tmp = Filename.concat results "eeeeeeeeeeeeeeee.json.tmp.424242.7" in
  write_raw stale_tmp "{ truncated by a crashed wri";
  age_file stale_tmp 7200.0;
  let fresh_tmp = Filename.concat results "ffffffffffffffff.json.tmp.424242.8" in
  write_raw fresh_tmp "{ a live writer is mid-put";
  let stale_claim =
    Filename.concat (Filename.concat dir "claims") "dddddddddddddddd.lease"
  in
  write_raw stale_claim "424242\n";
  age_file stale_claim 7200.0;
  let store = Campaign.Store.open_ ~dir () in
  Alcotest.(check bool) "stale tmp swept" false (Sys.file_exists stale_tmp);
  Alcotest.(check bool) "fresh tmp kept" true (Sys.file_exists fresh_tmp);
  Alcotest.(check bool) "stale claim swept" false (Sys.file_exists stale_claim);
  Alcotest.(check bool) "old records are never swept" true
    (Campaign.Store.mem store "dddddddddddddddd")

let test_store_put_race_two_handles () =
  let dir = temp_dir () in
  let a = Campaign.Store.open_ ~dir () in
  let b = Campaign.Store.open_ ~dir () in
  let task = "0000000000000000" in
  (* two handles share a pid but must never share a tmp name: hammer the same
     final path from two domains and require a whole record at the end *)
  let hammer store =
    Domain.spawn (fun () ->
        for i = 1 to 40 do
          Campaign.Store.put store
            { (record ~task ()) with Campaign.Record.elapsed = float_of_int i }
        done)
  in
  let d1 = hammer a and d2 = hammer b in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check (list string)) "one whole record file, no tmp debris"
    [ task ^ ".json" ]
    (List.sort compare (Array.to_list (Sys.readdir (Filename.concat dir "results"))));
  let store = Campaign.Store.open_ ~dir () in
  match Campaign.Store.find store task with
  | Some r -> Alcotest.(check string) "record parses whole" task r.Campaign.Record.task
  | None -> Alcotest.fail "record lost in the race"

let test_store_find_rescans_disk () =
  let dir = temp_dir () in
  let a = Campaign.Store.open_ ~dir () in
  let b = Campaign.Store.open_ ~dir () in
  let task = "1111111111111111" in
  Alcotest.(check bool) "b starts empty" false (Campaign.Store.mem b task);
  Campaign.Store.put a (record ~task ());
  (* b's in-memory index missed it; the on-miss disk probe must reconcile *)
  Alcotest.(check bool) "b sees a's record without reopening" true
    (Campaign.Store.mem b task)

let test_store_event_lines_stay_whole () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let payload = String.make 64 'x' in
  let writers =
    Array.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to 25 do
              Campaign.Store.log_event store
                (Campaign.Json.Obj
                   [
                     ("event", Campaign.Json.String "noise");
                     ("writer", Campaign.Json.Int w);
                     ("i", Campaign.Json.Int i);
                     ("pad", Campaign.Json.String payload);
                   ])
            done))
  in
  Array.iter Domain.join writers;
  Campaign.Store.close store;
  let lines = read_lines (Filename.concat dir "events.jsonl") in
  Alcotest.(check int) "one line per event" 100 (List.length lines);
  List.iter
    (fun line ->
      match Campaign.Json.of_string line with
      | Error e -> Alcotest.failf "interleaved or torn line %S: %s" line e
      | Ok j ->
        Alcotest.(check (option int)) "stamped with the writer pid"
          (Some (Unix.getpid ()))
          (Campaign.Json.get_int (Campaign.Json.member "pid" j));
        Alcotest.(check bool) "stamped with a timestamp" true
          (Campaign.Json.get_float (Campaign.Json.member "ts" j) <> None))
    lines

(* --- executor ---------------------------------------------------------- *)

let smoke_tasks () =
  let spec =
    {
      Campaign.Spec.smoke with
      Campaign.Spec.include_rows = [ "cas"; "swap"; "max-register" ];
      depths = [ 3 ];
    }
  in
  match Campaign.Spec.tasks spec with
  | Ok tasks -> tasks
  | Error e -> Alcotest.fail e

let test_executor_runs_and_verifies () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let tasks = smoke_tasks () in
  let o = Campaign.Executor.run ~store tasks in
  Alcotest.(check int) "total" (List.length tasks) o.Campaign.Executor.total;
  Alcotest.(check int) "all executed" (List.length tasks) o.Campaign.Executor.executed;
  Alcotest.(check int) "none cached" 0 o.Campaign.Executor.cached;
  Alcotest.(check int) "records for every task" (List.length tasks)
    (List.length o.Campaign.Executor.records);
  List.iter
    (fun (r : Campaign.Record.t) ->
      Alcotest.(check string) "verified"
        "verified"
        (Campaign.Record.status_name r.Campaign.Record.status))
    o.Campaign.Executor.records;
  (* the report covers every requested row with a verified cell *)
  let report = Campaign.Report.make o.Campaign.Executor.records in
  Alcotest.(check int) "nothing unexpected" 0
    (List.length (Campaign.Report.unexpected report));
  let rendered = Campaign.Report.render report in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " appears in the rendering")
        true (contains rendered id))
    [ "cas"; "swap"; "max-register" ]

let test_executor_resumes_after_interrupt () =
  let dir = temp_dir () in
  let tasks = smoke_tasks () in
  let total = List.length tasks in
  (* first run: stop after 4 completed tasks — an interrupted campaign *)
  let finished = ref 0 in
  let on_event = function
    | Campaign.Executor.Task_finished _ -> incr finished
    | _ -> ()
  in
  let store = Campaign.Store.open_ ~dir () in
  let first =
    Campaign.Executor.run ~store ~stop:(fun () -> !finished >= 4) ~on_event tasks
  in
  Alcotest.(check int) "first run executed 4" 4 first.Campaign.Executor.executed;
  Alcotest.(check int) "first run aborted the rest" (total - 4)
    first.Campaign.Executor.aborted;
  (* second run against the same directory: picks up exactly the remainder *)
  let store' = Campaign.Store.open_ ~dir () in
  let second = Campaign.Executor.run ~store:store' tasks in
  Alcotest.(check int) "second run skips completed tasks" 4
    second.Campaign.Executor.cached;
  Alcotest.(check int) "second run executes the remainder" (total - 4)
    second.Campaign.Executor.executed;
  Alcotest.(check int) "nothing aborted" 0 second.Campaign.Executor.aborted;
  Alcotest.(check int) "full record set" total
    (List.length second.Campaign.Executor.records);
  (* third run: everything cached, nothing executed *)
  let third = Campaign.Executor.run ~store:(Campaign.Store.open_ ~dir ()) tasks in
  Alcotest.(check int) "third run all cached" total third.Campaign.Executor.cached;
  Alcotest.(check int) "third run executes nothing" 0 third.Campaign.Executor.executed

let test_executor_honours_deadline () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  (* a negative deadline expires at the first check: verdict must be a
     timeout record, not a hang and not a crash *)
  let task =
    Campaign.Task.check ~deadline:(-1.0) ~engine:`Memo ~reduce:commute ~depth:8
      (row "swap") ~n:3
  in
  let o = Campaign.Executor.run ~store [ task ] in
  match o.Campaign.Executor.records with
  | [ r ] ->
    Alcotest.(check string) "timeout verdict" "timeout"
      (Campaign.Record.status_name r.Campaign.Record.status)
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let test_executor_isolates_crashes () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let broken : Consensus.Proto.t =
    (module struct
      module I = Isets.Rw

      let name = "deliberately-broken"
      let locations ~n:_ = Some 1
      let proc ~n:_ ~pid:_ ~input:_ = failwith "boom"
    end)
  in
  let broken_row =
    { (row "cas") with Hierarchy.id = "broken"; protocol = broken }
  in
  let tasks =
    [
      Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 broken_row ~n:2;
      Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 (row "cas") ~n:2;
    ]
  in
  let o = Campaign.Executor.run ~store tasks in
  Alcotest.(check int) "both tasks ran" 2 o.Campaign.Executor.executed;
  match o.Campaign.Executor.records with
  | [ r_broken; r_ok ] ->
    Alcotest.(check string) "crash captured" "crash"
      (Campaign.Record.status_name r_broken.Campaign.Record.status);
    Alcotest.(check string) "sweep continued past it" "verified"
      (Campaign.Record.status_name r_ok.Campaign.Record.status)
  | rs -> Alcotest.failf "expected two records, got %d" (List.length rs)

let test_executor_logs_events () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let tasks = [ Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 (row "cas") ~n:2 ] in
  ignore (Campaign.Executor.run ~store tasks);
  let ic = open_in (Filename.concat dir "events.jsonl") in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let events =
    List.rev_map
      (fun line ->
        match Campaign.Json.of_string line with
        | Ok j -> Option.get (Campaign.Json.get_string (Campaign.Json.member "event" j))
        | Error e -> Alcotest.failf "unparseable event line %S: %s" line e)
      !lines
  in
  Alcotest.(check (list string)) "telemetry sequence"
    [ "campaign_started"; "task_started"; "task_finished"; "campaign_finished" ]
    events

let test_run_shared_executes_then_dedupes () =
  let dir = temp_dir () in
  let tasks = smoke_tasks () in
  let total = List.length tasks in
  let store = Campaign.Store.open_ ~dir () in
  let first = Campaign.Executor.run_shared ~store tasks in
  Alcotest.(check int) "first run executes everything" total
    first.Campaign.Executor.executed;
  Alcotest.(check int) "nothing cached" 0 first.Campaign.Executor.cached;
  Alcotest.(check int) "nothing aborted" 0 first.Campaign.Executor.aborted;
  Alcotest.(check (list string)) "no leases left behind" [] (list_claims dir);
  (* a second worker over the same directory replays from the store *)
  let store' = Campaign.Store.open_ ~dir () in
  let second = Campaign.Executor.run_shared ~store:store' tasks in
  Alcotest.(check int) "rerun executes nothing" 0 second.Campaign.Executor.executed;
  Alcotest.(check int) "rerun fully cached" total second.Campaign.Executor.cached;
  (* `campaign report` over the store renders exactly what the run returned *)
  Alcotest.(check string) "report over the store matches the run's records"
    (Campaign.Report.render (Campaign.Report.make first.Campaign.Executor.records))
    (Campaign.Report.render (Campaign.Report.of_store store'))

let test_run_shared_breaks_expired_leases () =
  let dir = temp_dir () in
  let task =
    Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 (row "cas") ~n:2
  in
  let fp = Campaign.Task.fingerprint task in
  let store = Campaign.Store.open_ ~lease_ttl:0.2 ~dir () in
  (* a crashed worker's lease: live at first sight, expired shortly after *)
  write_raw (Filename.concat (Filename.concat dir "claims") (fp ^ ".lease"))
    "99999\n";
  let yielded = ref 0 in
  let on_event = function
    | Campaign.Executor.Task_yielded _ -> incr yielded
    | _ -> ()
  in
  let o = Campaign.Executor.run_shared ~store ~on_event ~poll_interval:0.02 [ task ] in
  Alcotest.(check bool) "the live lease was honoured first" true (!yielded >= 1);
  Alcotest.(check int) "executed here once the lease expired" 1
    o.Campaign.Executor.executed;
  Alcotest.(check int) "nothing aborted" 0 o.Campaign.Executor.aborted;
  Alcotest.(check (list string)) "claims dir clean afterwards" [] (list_claims dir)

let test_run_shared_drain_bounded_by_timeout () =
  let dir = temp_dir () in
  let task =
    Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:3 (row "cas") ~n:2
  in
  let fp = Campaign.Task.fingerprint task in
  let store = Campaign.Store.open_ ~lease_ttl:0.2 ~dir () in
  (* a foreign lease whose mtime sits an hour in the future — clock skew on a
     shared filesystem.  Its age never exceeds the ttl, so before the drain
     bound existed [run_shared] would honour it forever and spin. *)
  let lease = Filename.concat (Filename.concat dir "claims") (fp ^ ".lease") in
  write_raw lease "99999\n";
  let future = Unix.gettimeofday () +. 3600.0 in
  Unix.utimes lease future future;
  let started = Unix.gettimeofday () in
  let o =
    Campaign.Executor.run_shared ~store ~poll_interval:0.02 ~drain_timeout:0.3
      [ task ]
  in
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check int) "executed after the drain bound broke the stuck lease" 1
    o.Campaign.Executor.executed;
  Alcotest.(check int) "nothing aborted" 0 o.Campaign.Executor.aborted;
  Alcotest.(check bool)
    (Printf.sprintf "returned promptly (%.1fs)" elapsed)
    true (elapsed < 30.0);
  Alcotest.(check (list string)) "claims dir clean afterwards" [] (list_claims dir)

(* --- status ------------------------------------------------------------ *)

let test_status_folds_multiwriter_log () =
  let lines =
    [
      {|{"event": "campaign_started", "total": 2, "cached": 0, "pid": 11, "ts": 10.0}|};
      {|{"event": "task_started", "index": 0, "task": "t1", "pid": 11, "ts": 10.5}|};
      {|{"event": "task_finished", "task": "t1", "cached": false, "configs": 40, "elapsed": 1.5, "pid": 11, "ts": 12.0}|};
      {|{"event": "task_yielded", "index": 1, "task": "t2", "pid": 11, "ts": 12.1}|};
      {|{"event": "task_finished", "task": "t2", "cached": false, "configs": 10, "elapsed": 0.5, "pid": 22, "ts": 12.5}|};
      {|{"event": "task_finished", "task": "t2", "cached": true, "pid": 11, "ts": 13.0}|};
      {|{"event": "task_finished", "task": "t2", "cached": false, "configs": 10, "elapsed": 0.4, "pid": 33, "ts": 13.5}|};
      (* a line predating the multi-writer schema: no pid, folds under pid 0 *)
      {|{"event": "campaign_finished", "executed": 1}|};
      "this line is not json";
      "";
    ]
  in
  let s = Campaign.Status.of_lines lines in
  Alcotest.(check int) "workers (three pids plus legacy)" 4
    (List.length s.Campaign.Status.workers);
  Alcotest.(check int) "events" 8 s.Campaign.Status.events;
  Alcotest.(check int) "malformed lines skipped, not fatal" 1
    s.Campaign.Status.malformed;
  Alcotest.(check int) "tasks finished" 2 s.Campaign.Status.tasks_finished;
  Alcotest.(check int) "executions" 3 s.Campaign.Status.executions;
  Alcotest.(check int) "t2 ran twice: one duplicated" 1 s.Campaign.Status.duplicated;
  let w11 =
    List.find (fun w -> w.Campaign.Status.pid = 11) s.Campaign.Status.workers
  in
  Alcotest.(check int) "pid 11 runs" 1 w11.Campaign.Status.runs;
  Alcotest.(check int) "pid 11 claimed" 1 w11.Campaign.Status.claimed;
  Alcotest.(check int) "pid 11 executed" 1 w11.Campaign.Status.executed;
  Alcotest.(check int) "pid 11 cached" 1 w11.Campaign.Status.cached;
  Alcotest.(check int) "pid 11 yielded" 1 w11.Campaign.Status.yielded;
  Alcotest.(check int) "pid 11 configs" 40 w11.Campaign.Status.configs;
  Alcotest.(check (float 1e-9)) "pid 11 span" 3.0 (Campaign.Status.worker_span w11);
  Alcotest.(check (float 1e-9)) "fleet span" 3.5 s.Campaign.Status.span;
  let rendered = Campaign.Status.render s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true (contains rendered needle))
    [ "pid 11"; "pid 22"; "(no pid)"; "3 execution(s)"; "1 duplicated" ]

let test_status_of_live_run () =
  let dir = temp_dir () in
  let store = Campaign.Store.open_ ~dir () in
  let tasks = smoke_tasks () in
  ignore (Campaign.Executor.run_shared ~store tasks);
  Campaign.Store.close store;
  match Campaign.Status.load ~dir with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "one worker" 1 (List.length s.Campaign.Status.workers);
    Alcotest.(check int) "no malformed telemetry" 0 s.Campaign.Status.malformed;
    Alcotest.(check int) "every task finished" (List.length tasks)
      s.Campaign.Status.tasks_finished;
    Alcotest.(check int) "one execution per task" (List.length tasks)
      s.Campaign.Status.executions;
    Alcotest.(check int) "no duplicated executions" 0 s.Campaign.Status.duplicated

(* --- report ------------------------------------------------------------ *)

let test_report_worst_status_wins () =
  let rs =
    [
      record ~task:"1111111111111111" ();
      record ~task:"2222222222222222" ~status:Campaign.Record.Timeout ();
      record ~task:"3333333333333333"
        ~status:
          (Campaign.Record.Violation
             { kind = "agreement"; message = "boom"; schedule = [ 0 ]; probe = None })
        ();
    ]
  in
  let report = Campaign.Report.make rs in
  (match Campaign.Report.cells report with
   | [ c ] ->
     Alcotest.(check string) "violation dominates" "violation:agreement"
       (Campaign.Record.status_name c.Campaign.Report.status);
     Alcotest.(check int) "verified count" 1 c.Campaign.Report.verified;
     Alcotest.(check int) "total count" 3 c.Campaign.Report.total
   | cs -> Alcotest.failf "expected one cell, got %d" (List.length cs));
  Alcotest.(check int) "two unexpected records" 2
    (List.length (Campaign.Report.unexpected report));
  (* csv: a header plus one line per record *)
  let csv = Campaign.Report.to_csv report in
  Alcotest.(check int) "csv lines" 4
    (List.length (String.split_on_char '\n' (String.trim csv)))

(* --- certificates ------------------------------------------------------ *)

(* Every verdict kind survives the certs/ file format, and the fingerprint
   is a pure function of (protocol behaviour, inputs, budgets). *)
let test_cert_roundtrip () =
  let verdicts =
    [
      Analysis.Symmetry.Certified_symmetric { depth = 7; pairs = 4 };
      Analysis.Symmetry.Asymmetric
        { pid_a = 0; pid_b = 1; input = 1; detail = "accesses \"quoted\" loc" };
      Analysis.Symmetry.Unknown "budget exhausted";
    ]
  in
  List.iter
    (fun v ->
      match Campaign.Cert.of_string (Campaign.Cert.to_string v) with
      | Ok v' -> Alcotest.(check bool) "verdict round-trips" true (v = v')
      | Error e -> Alcotest.fail e)
    verdicts;
  List.iter
    (fun garbage ->
      match Campaign.Cert.of_string garbage with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage certificate %S" garbage)
    [ "nonsense"; "{}"; "{\"kind\": \"certified\"}"; "{\"kind\": \"sideways\"}" ];
  let task = Campaign.Task.check ~engine:`Memo ~reduce:commute ~depth:4 (row "cas") ~n:2 in
  let fp = Campaign.Cert.fingerprint task ~depth:5 ~budget:1000 in
  Alcotest.(check string) "fingerprint deterministic" fp
    (Campaign.Cert.fingerprint task ~depth:5 ~budget:1000);
  Alcotest.(check bool) "budgets are part of the address" true
    (fp <> Campaign.Cert.fingerprint task ~depth:6 ~budget:1000
     && fp <> Campaign.Cert.fingerprint task ~depth:5 ~budget:2000)

(* Precertification writes its verdicts to the store's certs/ side-table,
   and a cold process (empty in-process cache) over the same directory
   preloads them instead of recomputing — the fleet certifies once. *)
let test_precertify_uses_store () =
  let dir = temp_dir () in
  let symmetric = { Explore.commute = false; symmetric = true } in
  (* a binary-only row at n = 3 has an equal-input pid pair, so the
     certification is non-vacuous; the two depths clamp to the same
     certification key, which also exercises the dedup *)
  let tasks =
    [
      Campaign.Task.check ~engine:`Memo ~reduce:symmetric ~depth:3
        (row "intro-faa2-tas") ~n:3;
      Campaign.Task.check ~engine:`Memo ~reduce:symmetric ~depth:4
        (row "intro-faa2-tas") ~n:3;
    ]
  in
  Analysis.Symmetry.reset_run_cache ();
  let store = Campaign.Store.open_ ~dir () in
  let o = Campaign.Executor.run ~store tasks in
  Alcotest.(check int) "first run executes" 2 o.Campaign.Executor.executed;
  let certs =
    Sys.readdir (Filename.concat dir "certs")
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
  in
  Alcotest.(check bool) "certificates persisted" true (certs <> []);
  (* simulate another fleet member: empty in-process cache, fresh handle *)
  Analysis.Symmetry.reset_run_cache ();
  let computed_before = Atomic.get Analysis.Symmetry.computed_count in
  let store2 = Campaign.Store.open_ ~dir () in
  let o2 = Campaign.Executor.run ~use_cache:false ~store:store2 tasks in
  Alcotest.(check int) "second run re-executes" 2 o2.Campaign.Executor.executed;
  Alcotest.(check int) "certification read from the store, not recomputed"
    computed_before
    (Atomic.get Analysis.Symmetry.computed_count)

let () =
  Alcotest.run "campaign"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "non-finite floats round-trip" `Quick
            test_json_nonfinite;
        ] );
      ( "record",
        [
          Alcotest.test_case "round-trip all statuses" `Quick test_record_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_record_rejects_garbage;
          Alcotest.test_case "same verdict ignores timing" `Quick
            test_record_same_verdict;
          Alcotest.test_case "observer field round-trips and back-compats" `Quick
            test_record_observers;
        ] );
      ( "task",
        [
          Alcotest.test_case "fingerprints stable and distinct" `Quick
            test_fingerprint_stable_and_distinct;
          Alcotest.test_case "spec expansion" `Quick test_spec_expansion;
          Alcotest.test_case "observed tasks" `Quick test_observed_tasks;
          Alcotest.test_case "crash budgets in tasks, records and specs" `Quick
            test_crash_tasks;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip and reopen" `Quick test_store_roundtrip_and_reopen;
          Alcotest.test_case "skips corrupt files" `Quick test_store_skips_corrupt_files;
          Alcotest.test_case "claim protocol" `Quick test_store_claim_protocol;
          Alcotest.test_case "claim release" `Quick test_store_claim_release;
          Alcotest.test_case "foreign leases: honoured then broken" `Quick
            test_store_claim_foreign_lease;
          Alcotest.test_case "sweeps stale debris at open" `Quick
            test_store_sweeps_stale_debris;
          Alcotest.test_case "put race between two handles" `Quick
            test_store_put_race_two_handles;
          Alcotest.test_case "find rescans the disk" `Quick
            test_store_find_rescans_disk;
          Alcotest.test_case "event lines stay whole" `Quick
            test_store_event_lines_stay_whole;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs and verifies" `Quick test_executor_runs_and_verifies;
          Alcotest.test_case "resumes after interrupt" `Quick
            test_executor_resumes_after_interrupt;
          Alcotest.test_case "honours deadlines" `Quick test_executor_honours_deadline;
          Alcotest.test_case "isolates crashes" `Quick test_executor_isolates_crashes;
          Alcotest.test_case "logs telemetry events" `Quick test_executor_logs_events;
          Alcotest.test_case "shared mode executes then dedupes" `Quick
            test_run_shared_executes_then_dedupes;
          Alcotest.test_case "shared mode breaks expired leases" `Quick
            test_run_shared_breaks_expired_leases;
          Alcotest.test_case "shared mode drain is bounded under clock skew"
            `Quick test_run_shared_drain_bounded_by_timeout;
        ] );
      ( "cert",
        [
          Alcotest.test_case "verdicts round-trip the file format" `Quick
            test_cert_roundtrip;
          Alcotest.test_case "precertify reads and writes the store" `Quick
            test_precertify_uses_store;
        ] );
      ( "status",
        [
          Alcotest.test_case "folds a multi-writer log" `Quick
            test_status_folds_multiwriter_log;
          Alcotest.test_case "folds a live run's telemetry" `Quick
            test_status_of_live_run;
        ] );
      ( "report",
        [
          Alcotest.test_case "worst status wins" `Quick test_report_worst_status_wins;
        ] );
    ]
