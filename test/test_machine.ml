(* Tests for the shared-memory model: the process monad, the machine
   functor, and the schedulers. *)

open Model

(* A tiny instruction set for driving the machine: integer cells with read
   and write. *)
module Cell = struct
  type cell = int
  type op = Read | Write of int
  type result = int

  let name = "{read, write} (test cells)"
  let init = 0
  let apply op c = match op with Read -> (c, c) | Write x -> (x, c)
  let trivial = function Read -> true | Write _ -> false

  (* this Write returns the old cell, so only read pairs commute *)
  let commutes a b = trivial a && trivial b
  let multi_assignment = false
  let equal_cell = Int.equal
  let hash_cell c = c
  let hash_result r = r
  let observe_result r = Some r
  let pp_cell = Format.pp_print_int
  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read"
    | Write x -> Format.fprintf ppf "write %d" x
  let pp_result = Format.pp_print_int
  let sample_cells = Iset.memo (fun () -> [ 0; 1; 2 ])
  let sample_ops = Iset.memo (fun () -> [ Read; Write 1; Write 2 ])
end

module Multi_cell = struct
  include Cell

  let multi_assignment = true
end

module M = Machine.Make (Cell)
module MM = Machine.Make (Multi_cell)
open Proc.Syntax

let read loc = Proc.access loc Cell.Read
let write loc x = Proc.map ignore (Proc.access loc (Cell.Write x))

(* --- proc monad ------------------------------------------------------- *)

let run_one proc =
  let cfg = M.make ~n:1 (fun _ -> proc) in
  let cfg, outcome = M.run ~sched:(Sched.solo 0) cfg in
  (M.decision cfg 0, M.steps cfg, outcome)

let test_return () =
  let d, steps, outcome = run_one (Proc.return 42) in
  Alcotest.(check (option int)) "decision" (Some 42) d;
  Alcotest.(check int) "no steps" 0 steps;
  Alcotest.(check bool) "all decided" true (outcome = `All_decided)

let test_bind_sequencing () =
  let proc =
    let* () = write 0 5 in
    let* () = write 1 7 in
    let* a = read 0 in
    let* c = read 1 in
    Proc.return (a + c)
  in
  let d, steps, _ = run_one proc in
  Alcotest.(check (option int)) "5+7" (Some 12) d;
  Alcotest.(check int) "four accesses" 4 steps

let test_map () =
  let d, _, _ = run_one (Proc.map (fun x -> x * 2) (Proc.return 21)) in
  Alcotest.(check (option int)) "map" (Some 42) d

let test_rec_loop () =
  let proc =
    Proc.rec_loop 0 (fun i ->
        if i >= 5 then Proc.return (Either.Right i)
        else
          let* () = write 0 i in
          Proc.return (Either.Left (i + 1)))
  in
  let d, steps, _ = run_one proc in
  Alcotest.(check (option int)) "loop result" (Some 5) d;
  Alcotest.(check int) "five writes" 5 steps

let test_proc_reexecution_purity () =
  (* The same proc value must be executable twice with identical results —
     the property model checking and double collect rely on. *)
  let proc =
    let* () = write 0 1 in
    let* v = read 0 in
    Proc.return v
  in
  let d1, _, _ = run_one proc in
  let d2, _, _ = run_one proc in
  Alcotest.(check (option int)) "same result" d1 d2

(* --- machine ---------------------------------------------------------- *)

let test_memory_isolation () =
  let cfg = M.make ~n:2 (fun pid -> write pid (pid + 10)) in
  let cfg = M.step (M.step cfg 0) 1 in
  Alcotest.(check int) "loc 0" 10 (M.cell cfg 0);
  Alcotest.(check int) "loc 1" 11 (M.cell cfg 1);
  Alcotest.(check int) "untouched loc" 0 (M.cell cfg 99)

let test_persistent_configs () =
  (* Stepping a configuration must not disturb the original: branching. *)
  let cfg = M.make ~n:2 (fun pid -> write 0 pid) in
  let branch0 = M.step cfg 0 in
  let branch1 = M.step cfg 1 in
  Alcotest.(check int) "branch0 sees pid 0's write" 0 (M.cell branch0 0);
  Alcotest.(check int) "branch1 sees pid 1's write" 1 (M.cell branch1 0);
  Alcotest.(check int) "original memory untouched" 0 (M.cell cfg 0);
  Alcotest.(check (list int)) "original still running" [ 0; 1 ] (M.running cfg)

let test_locations_accounting () =
  let proc =
    let* () = write 3 1 in
    let* () = write 7 1 in
    let* _ = read 3 in
    Proc.return 0
  in
  let cfg = M.make ~n:1 (fun _ -> proc) in
  let cfg, _ = M.run ~sched:(Sched.solo 0) cfg in
  Alcotest.(check int) "two distinct locations" 2 (M.locations_used cfg);
  Alcotest.(check (option int)) "max location" (Some 7) (M.max_location cfg);
  Alcotest.(check int) "three steps" 3 (M.steps cfg)

let test_poised_and_decisions () =
  let cfg =
    M.make ~n:2 (fun pid ->
        if pid = 0 then Proc.return 9 else Proc.map (fun () -> 0) (write 4 1))
  in
  Alcotest.(check (option int)) "pid 0 decided" (Some 9) (M.decision cfg 0);
  Alcotest.(check bool) "pid 0 not poised" true (M.poised cfg 0 = None);
  (match M.poised cfg 1 with
   | Some [ (4, Cell.Write 1) ] -> ()
   | _ -> Alcotest.fail "pid 1 should be poised to write location 4");
  Alcotest.(check (list int)) "only pid 1 runs" [ 1 ] (M.running cfg);
  Alcotest.(check bool)
    "decisions list" true
    (M.decisions cfg = [ (0, 9) ])

let test_step_errors () =
  let cfg = M.make ~n:1 (fun _ -> Proc.return 1) in
  Alcotest.check_raises "stepping decided process"
    (Invalid_argument "Machine.step: process has decided") (fun () ->
      ignore (M.step cfg 0))

let test_multi_assignment_rejected () =
  let proc = Proc.map ignore (Proc.multi_access [ (0, Cell.Write 1); (1, Cell.Write 2) ]) in
  let cfg = M.make ~n:1 (fun _ -> proc) in
  (try
     ignore (M.step cfg 0);
     Alcotest.fail "multi assignment should be rejected"
   with M.Multi_assignment_not_supported -> ())

let test_multi_assignment_allowed () =
  let proc =
    let* _ = Proc.multi_access [ (0, Cell.Write 1); (1, Cell.Write 2) ] in
    let* a = Proc.access 0 Cell.Read in
    let* b = Proc.access 1 Cell.Read in
    Proc.return (a + b)
  in
  let cfg = MM.make ~n:1 (fun _ -> proc) in
  let cfg, _ = MM.run ~sched:(Sched.solo 0) cfg in
  Alcotest.(check (option int)) "atomic pair write" (Some 3) (MM.decision cfg 0);
  (* the multi access is one step *)
  Alcotest.(check int) "steps" 3 (MM.steps cfg)

let test_multi_atomicity () =
  (* No interleaving can observe one half of a multiple assignment. *)
  let writer = Proc.map (fun _ -> -1) (Proc.multi_access [ (0, Cell.Write 1); (1, Cell.Write 1) ]) in
  let reader =
    let* a = Proc.access 0 Cell.Read in
    let* b = Proc.access 1 Cell.Read in
    Proc.return ((a * 10) + b)
  in
  (* Explore all interleavings by brute force. *)
  let rec explore cfg acc =
    match MM.running cfg with
    | [] ->
      (match MM.decision cfg 1 with Some d -> d :: acc | None -> acc)
    | pids -> List.fold_left (fun acc pid -> explore (MM.step cfg pid) acc) acc pids
  in
  let cfg = MM.make ~n:2 (fun pid -> if pid = 0 then writer else reader) in
  let observations = List.sort_uniq compare (explore cfg []) in
  (* The reader takes two separate steps, so 00, 01 and 11 are all legal —
     but 10 would mean location 0 was written while location 1 was not,
     i.e. the multiple assignment was torn. *)
  Alcotest.(check bool) "no torn observation (10)" false (List.mem 10 observations);
  Alcotest.(check bool) "00 observable" true (List.mem 0 observations);
  Alcotest.(check bool) "11 observable" true (List.mem 11 observations)

let test_fold_cells () =
  let cfg = M.make ~n:1 (fun _ -> Proc.bind (write 2 5) (fun () -> Proc.bind (write 8 6) (fun () -> Proc.return 0))) in
  let cfg, _ = M.run ~sched:(Sched.solo 0) cfg in
  let cells = M.fold_cells cfg ~init:[] ~f:(fun acc loc c -> (loc, c) :: acc) in
  Alcotest.(check bool) "cells recorded" true
    (List.mem (2, 5) cells && List.mem (8, 6) cells)

let test_fingerprint_init_write () =
  (* A location explicitly written back to the initial value is
     indistinguishable from an untouched one, so it must not contribute to
     the fingerprint: writing init to location 5 and writing init to
     location 9 give configurations with equal fingerprints (the write's
     result — the old value, 0 — is the same, so the histories agree). *)
  let at loc v = M.step (M.make ~n:1 (fun _ -> Proc.map (fun () -> 0) (write loc v))) 0 in
  Alcotest.(check int)
    "init writes land on the untouched fingerprint"
    (M.fingerprint (at 5 Cell.init))
    (M.fingerprint (at 9 Cell.init));
  Alcotest.(check bool)
    "non-init writes still distinguish locations" true
    (M.fingerprint (at 5 1) <> M.fingerprint (at 9 1));
  Alcotest.(check bool)
    "init vs non-init write differs" true
    (M.fingerprint (at 5 Cell.init) <> M.fingerprint (at 5 1))

let test_canonical_fingerprint_symmetry () =
  (* Two processes running the same program: stepping p0 first and stepping
     p1 first yield configurations that are process permutations of each
     other.  The plain fingerprint tells them apart (per-pid histories live
     at different indices); the canonical one — the basis of the explorer's
     [~symmetric] reduction — identifies them when the inputs agree. *)
  let prog _pid =
    let* _ = read 0 in
    let* _ = read 0 in
    Proc.return 0
  in
  let cfg = M.make ~n:2 prog in
  let a = M.step cfg 0 and b = M.step cfg 1 in
  Alcotest.(check bool)
    "plain fingerprints differ" true
    (M.fingerprint a <> M.fingerprint b);
  Alcotest.(check int)
    "canonical fingerprints collide under equal inputs"
    (M.canonical_fingerprint ~inputs:[| 7; 7 |] a)
    (M.canonical_fingerprint ~inputs:[| 7; 7 |] b);
  (* with distinct inputs the permutation is no longer a symmetry *)
  Alcotest.(check bool)
    "distinct inputs are not conflated" true
    (M.canonical_fingerprint ~inputs:[| 1; 2 |] a
     <> M.canonical_fingerprint ~inputs:[| 1; 2 |] b)

let test_canonical_fingerprint_arity () =
  let cfg = M.make ~n:2 (fun _ -> Proc.return 0) in
  Alcotest.check_raises "inputs length mismatch"
    (Invalid_argument "Machine.canonical_fingerprint: inputs length mismatch")
    (fun () -> ignore (M.canonical_fingerprint ~inputs:[| 0 |] cfg))

let test_canonical_fingerprint_asymmetric_conflation () =
  (* Why [~symmetric] reduction is opt-in: for a pid-DEPENDENT program the
     canonical fingerprint conflates behaviourally different configurations.
     p0 needs three reads to decide, p1 only two; after one step by either
     process the per-pid (input, history, decision) components form the same
     multiset, so the two configurations canonicalize identically — yet p1's
     solo distance to a decision differs between them.  An explorer keyed on
     the canonical fingerprint would prune one of the two, which is exactly
     the unsoundness the documentation warns about. *)
  let prog pid =
    if pid = 0 then
      let* _ = read 0 in
      let* _ = read 0 in
      let* _ = read 0 in
      Proc.return 0
    else
      let* _ = read 0 in
      let* _ = read 0 in
      Proc.return 0
  in
  let cfg = M.make ~n:2 prog in
  let a = M.step cfg 0 (* p0: 2 reads left, p1: 2 *) in
  let b = M.step cfg 1 (* p0: 3 reads left, p1: 1 *) in
  Alcotest.(check int)
    "canonical fingerprints conflate the asymmetric pair"
    (M.canonical_fingerprint ~inputs:[| 0; 0 |] a)
    (M.canonical_fingerprint ~inputs:[| 0; 0 |] b);
  let solo_steps cfg pid =
    let rec go cfg k =
      if M.decision cfg pid <> None then k else go (M.step cfg pid) (k + 1)
    in
    go cfg 0
  in
  Alcotest.(check bool)
    "yet p1's solo distance differs" true
    (solo_steps a 1 <> solo_steps b 1)

let test_run_fuel () =
  let rec spin () = Proc.bind (read 0) (fun _ -> spin ()) in
  let cfg = M.make ~n:1 (fun _ -> spin ()) in
  let cfg, outcome = M.run ~fuel:50 ~sched:(Sched.solo 0) cfg in
  Alcotest.(check bool) "out of fuel" true (outcome = `Out_of_fuel);
  Alcotest.(check int) "consumed exactly fuel" 50 (M.steps cfg)

(* --- schedulers ------------------------------------------------------- *)

let trace sched ~n ~steps =
  let writer _pid = Proc.rec_loop 0 (fun i -> Proc.bind (write 0 i) (fun () -> Proc.return (Either.Left (i + 1)))) in
  let cfg = M.make ~n writer in
  let rec go cfg sched acc k =
    if k = 0 then List.rev acc
    else begin
      match Sched.next sched ~running:(M.running cfg) ~step:(M.steps cfg) with
      | None -> List.rev acc
      | Some (pid, sched') -> go (M.step cfg pid) sched' (pid :: acc) (k - 1)
    end
  in
  go cfg sched [] steps

let test_sched_round_robin () =
  Alcotest.(check (list int))
    "cycles"
    [ 0; 1; 2; 0; 1; 2; 0; 1 ]
    (trace Sched.round_robin ~n:3 ~steps:8)

let test_sched_solo () =
  Alcotest.(check (list int)) "solo picks one" [ 1; 1; 1; 1 ] (trace (Sched.solo 1) ~n:3 ~steps:4)

let test_sched_script () =
  Alcotest.(check (list int))
    "script order"
    [ 2; 0; 0; 1 ]
    (trace (Sched.script [ 2; 0; 0; 1 ]) ~n:3 ~steps:10)

let test_sched_random_deterministic () =
  let t1 = trace (Sched.random ~seed:5) ~n:3 ~steps:30 in
  let t2 = trace (Sched.random ~seed:5) ~n:3 ~steps:30 in
  let t3 = trace (Sched.random ~seed:6) ~n:3 ~steps:30 in
  Alcotest.(check (list int)) "same seed, same trace" t1 t2;
  Alcotest.(check bool) "different seed differs" true (t1 <> t3);
  List.iter (fun p -> Alcotest.(check bool) "pid in range" true (p >= 0 && p < 3)) t1

let test_sched_random_bursts () =
  let t1 = trace (Sched.random_bursts ~seed:5 ~max_burst:4) ~n:3 ~steps:60 in
  let t2 = trace (Sched.random_bursts ~seed:5 ~max_burst:4) ~n:3 ~steps:60 in
  let t3 = trace (Sched.random_bursts ~seed:9 ~max_burst:4) ~n:3 ~steps:60 in
  Alcotest.(check (list int)) "same seed, same trace" t1 t2;
  Alcotest.(check bool) "different seed differs" true (t1 <> t3);
  List.iter (fun p -> Alcotest.(check bool) "pid in range" true (p >= 0 && p < 3)) t1;
  (* bursty: some run of equal pids longer than 1, yet every pid gets a turn
     (back-to-back bursts of one pid can chain, so no upper run bound) *)
  let longest_run =
    let best, _, _ =
      List.fold_left
        (fun (best, run, prev) p ->
          let run = if Some p = prev then run + 1 else 1 in
          (max best run, run, Some p))
        (0, 0, None) t1
    in
    best
  in
  Alcotest.(check bool) "some burst longer than 1" true (longest_run > 1);
  List.iter
    (fun pid -> Alcotest.(check bool) "every pid scheduled" true (List.mem pid t1))
    [ 0; 1; 2 ];
  (* max_burst = 1 degenerates to a plain uniform pick every step *)
  let t = trace (Sched.random_bursts ~seed:5 ~max_burst:1) ~n:3 ~steps:40 in
  Alcotest.(check int) "still schedules" 40 (List.length t);
  Alcotest.check_raises "max_burst must be positive"
    (Invalid_argument "Sched.random_bursts: max_burst < 1") (fun () ->
      ignore (Sched.random_bursts ~seed:1 ~max_burst:0))

let test_sched_alternate () =
  Alcotest.(check (list int))
    "alternates"
    [ 0; 2; 0; 2; 0 ]
    (trace (Sched.alternate [ 0; 2 ]) ~n:3 ~steps:5)

let test_sched_fair () =
  let bound = 4 in
  let t = trace (Sched.fair ~bound ~seed:2) ~n:3 ~steps:60 in
  Alcotest.(check int) "length" 60 (List.length t);
  (* no process waits more than [bound] steps between turns *)
  let last = Array.make 3 (-1) in
  List.iteri
    (fun i p ->
      last.(p) <- i;
      Array.iteri
        (fun _q lq -> Alcotest.(check bool) "fairness bound" true (i - lq <= bound || lq < 0))
        last)
    t;
  (* deterministic in seed *)
  Alcotest.(check (list int)) "deterministic" t (trace (Sched.fair ~bound ~seed:2) ~n:3 ~steps:60)

let test_sched_excluding_and_phased () =
  let t = trace (Sched.excluding [ 1 ] Sched.round_robin) ~n:3 ~steps:6 in
  Alcotest.(check bool) "never schedules 1" true (not (List.mem 1 t));
  let t =
    trace (Sched.phased [ (4, Sched.solo 2) ] (Sched.solo 0)) ~n:3 ~steps:7
  in
  Alcotest.(check (list int)) "phase switch" [ 2; 2; 2; 2; 0; 0; 0 ] t

let test_sched_fair_tight_bounds () =
  (* Regression: with bound = 1 every process is overdue at every step, and
     picking the {e first} overdue one scheduled p0 forever.  For small
     bounds and several seeds, every process must keep appearing and no
     process may sit out more than [bound] consecutive steps. *)
  List.iter
    (fun bound ->
      List.iter
        (fun seed ->
          let n = 2 in
          let t = trace (Sched.fair ~bound ~seed) ~n ~steps:40 in
          let last = Array.make n (-1) in
          List.iteri
            (fun i p ->
              Array.iteri
                (fun q lq ->
                  if q <> p then
                    Alcotest.(check bool)
                      (Printf.sprintf "bound=%d seed=%d: p%d gap at step %d" bound seed q i)
                      true
                      (i - lq <= bound))
                last;
              last.(p) <- i)
            t;
          Array.iteri
            (fun q lq ->
              Alcotest.(check bool)
                (Printf.sprintf "bound=%d seed=%d: p%d scheduled at all" bound seed q)
                true (lq >= 0))
            last)
        [ 0; 1; 2; 3; 4 ])
    [ 1; 2; 3 ]

let test_sched_phased_budgets () =
  (* each phase hands over after exactly its budget *)
  Alcotest.(check (list int))
    "budgets respected in sequence"
    [ 1; 1; 2; 2; 2; 0; 0; 0 ]
    (trace (Sched.phased [ (2, Sched.solo 1); (3, Sched.solo 2) ] (Sched.solo 0)) ~n:3 ~steps:8);
  (* a zero-budget phase is skipped without consuming a step *)
  Alcotest.(check (list int))
    "zero-budget phase skipped"
    [ 2; 2; 0; 0 ]
    (trace (Sched.phased [ (0, Sched.solo 1); (2, Sched.solo 2) ] (Sched.solo 0)) ~n:3 ~steps:4)

let test_sched_alternate_skips_decided () =
  (* pid 1 decides before taking a step; alternate must cycle through the
     still-running pids without stalling on it *)
  let cfg =
    M.make ~n:3 (fun pid ->
        if pid = 1 then Proc.return 0
        else
          Proc.rec_loop 0 (fun i ->
              Proc.bind (write 0 i) (fun () -> Proc.return (Either.Left (i + 1)))))
  in
  let rec go cfg sched acc k =
    if k = 0 then List.rev acc
    else begin
      match Sched.next sched ~running:(M.running cfg) ~step:(M.steps cfg) with
      | None -> List.rev acc
      | Some (pid, sched') -> go (M.step cfg pid) sched' (pid :: acc) (k - 1)
    end
  in
  Alcotest.(check (list int))
    "skips the decided pid"
    [ 0; 2; 0; 2; 0 ]
    (go cfg (Sched.alternate [ 0; 1; 2 ]) [] 5)

let test_sched_excluding_all_crashed () =
  (* crashing every process stops the run instead of spinning *)
  Alcotest.(check (list int))
    "no step when everyone crashed" []
    (trace (Sched.excluding [ 0; 1; 2 ] Sched.round_robin) ~n:3 ~steps:5)

let test_sched_random_then_sequential () =
  let t = trace (Sched.random_then_sequential ~seed:1 ~prefix:5) ~n:3 ~steps:12 in
  Alcotest.(check int) "length" 12 (List.length t);
  (* after the prefix, always the lowest running pid (0 here: spinners never decide) *)
  let tail = List.filteri (fun i _ -> i >= 5) t in
  List.iter (fun p -> Alcotest.(check int) "sequential tail" 0 p) tail

let test_sched_fair_debt_survives_filtering () =
  (* Regression: the debt ledger must keep entries for pids absent from the
     current running list.  With bound = 1 every running pid is overdue, so
     the most-indebted one is picked deterministically (the random roll is
     never consulted).  p2 sits out step 2; the debt it earned at step 1 must
     survive so that it — not p1 — outranks everyone by step 4.  The buggy
     scheduler rebuilt the ledger from the running list alone, zeroing p2's
     debt and picking [0; 1; 0; 1]. *)
  let feed = [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
  let _, picks =
    List.fold_left
      (fun (sched, acc) running ->
        match Sched.next sched ~running ~step:(List.length acc) with
        | None -> Alcotest.fail "fair returned None on nonempty running"
        | Some (pid, sched') -> (sched', pid :: acc))
      (Sched.fair ~bound:1 ~seed:0, [])
      feed
  in
  Alcotest.(check (list int))
    "debt survives a filtered step"
    [ 0; 1; 0; 2 ]
    (List.rev picks)

(* --- traces -------------------------------------------------------------- *)

let test_trace_records_steps () =
  let cfg =
    M.make ~n:2 (fun pid ->
        let* () = write pid (pid + 5) in
        let* v = read pid in
        Proc.return v)
  in
  let cfg, _ = M.run ~sched:Sched.round_robin cfg in
  let t = M.trace cfg in
  Alcotest.(check int) "four events" 4 (List.length t);
  (match t with
   | M.Step { pid = 0; accesses = [ (0, Cell.Write 5, _) ] } :: _ -> ()
   | _ -> Alcotest.fail "first event should be p0's write to 0");
  (* pp_trace renders without exception *)
  Alcotest.(check bool) "printable" true
    (String.length (Format.asprintf "%a" M.pp_trace cfg) > 0)

(* --- properties ---------------------------------------------------------- *)

(* Steps on disjoint locations commute: the order of two processes writing
   different locations does not change the final memory. *)
let prop_disjoint_steps_commute =
  QCheck2.Test.make ~name:"disjoint-location steps commute" ~count:300
    QCheck2.Gen.(
      quad (int_range 0 4) (int_range 5 9) (int_range 0 100) (int_range 0 100))
    (fun (l0, l1, v0, v1) ->
      let cfg =
        M.make ~n:2 (fun pid ->
            Proc.map (fun () -> 0) (write (if pid = 0 then l0 else l1) (if pid = 0 then v0 else v1)))
      in
      let a = M.step (M.step cfg 0) 1 in
      let b = M.step (M.step cfg 1) 0 in
      M.cell a l0 = M.cell b l0 && M.cell a l1 = M.cell b l1)

(* Runs are reproducible: same protocol, same scheduler seed, same trace. *)
let prop_runs_deterministic =
  QCheck2.Test.make ~name:"seeded runs are reproducible" ~count:100
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, n) ->
      let mk () =
        M.make ~n (fun pid ->
            let* () = write 0 pid in
            let* v = read 0 in
            Proc.return v)
      in
      let r1, _ = M.run ~sched:(Sched.random ~seed) (mk ()) in
      let r2, _ = M.run ~sched:(Sched.random ~seed) (mk ()) in
      M.decisions r1 = M.decisions r2 && M.steps r1 = M.steps r2
      && List.map M.event_pid (M.trace r1) = List.map M.event_pid (M.trace r2))

let () =
  Alcotest.run "machine"
    [
      ( "proc",
        [
          Alcotest.test_case "return" `Quick test_return;
          Alcotest.test_case "bind sequencing" `Quick test_bind_sequencing;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "rec_loop" `Quick test_rec_loop;
          Alcotest.test_case "re-execution purity" `Quick test_proc_reexecution_purity;
        ] );
      ( "machine",
        [
          Alcotest.test_case "memory isolation" `Quick test_memory_isolation;
          Alcotest.test_case "persistent configs" `Quick test_persistent_configs;
          Alcotest.test_case "locations accounting" `Quick test_locations_accounting;
          Alcotest.test_case "poised and decisions" `Quick test_poised_and_decisions;
          Alcotest.test_case "step errors" `Quick test_step_errors;
          Alcotest.test_case "multi-assignment rejected" `Quick test_multi_assignment_rejected;
          Alcotest.test_case "multi-assignment allowed" `Quick test_multi_assignment_allowed;
          Alcotest.test_case "multi-assignment atomicity" `Quick test_multi_atomicity;
          Alcotest.test_case "fold_cells" `Quick test_fold_cells;
          Alcotest.test_case "fingerprint skips init-valued cells" `Quick
            test_fingerprint_init_write;
          Alcotest.test_case "canonical fingerprint symmetry" `Quick
            test_canonical_fingerprint_symmetry;
          Alcotest.test_case "canonical fingerprint arity" `Quick
            test_canonical_fingerprint_arity;
          Alcotest.test_case "canonical fingerprint conflates asymmetric" `Quick
            test_canonical_fingerprint_asymmetric_conflation;
          Alcotest.test_case "fuel" `Quick test_run_fuel;
          Alcotest.test_case "trace records steps" `Quick test_trace_records_steps;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_disjoint_steps_commute; prop_runs_deterministic ] );
      ( "schedulers",
        [
          Alcotest.test_case "round robin" `Quick test_sched_round_robin;
          Alcotest.test_case "solo" `Quick test_sched_solo;
          Alcotest.test_case "script" `Quick test_sched_script;
          Alcotest.test_case "random deterministic" `Quick test_sched_random_deterministic;
          Alcotest.test_case "random bursts" `Quick test_sched_random_bursts;
          Alcotest.test_case "alternate" `Quick test_sched_alternate;
          Alcotest.test_case "fair" `Quick test_sched_fair;
          Alcotest.test_case "fair tight bounds" `Quick test_sched_fair_tight_bounds;
          Alcotest.test_case "fair debt survives filtering" `Quick
            test_sched_fair_debt_survives_filtering;
          Alcotest.test_case "excluding and phased" `Quick test_sched_excluding_and_phased;
          Alcotest.test_case "phased budgets" `Quick test_sched_phased_budgets;
          Alcotest.test_case "alternate skips decided" `Quick
            test_sched_alternate_skips_decided;
          Alcotest.test_case "excluding all crashed" `Quick
            test_sched_excluding_all_crashed;
          Alcotest.test_case "random then sequential" `Quick test_sched_random_then_sequential;
        ] );
    ]
